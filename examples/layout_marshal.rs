//! Data-layout marshaling with elementary transpositions: AoS ↔ SoA ↔ ASTA.
//!
//! This is the original use of the paper's building blocks (Sung et al.'s
//! DL system): converting an array of structures to the GPU-friendly ASTA
//! layout *in place* is exactly the `010!` elementary transposition; SoA to
//! ASTA is `100!`.
//!
//! ```text
//! cargo run --release --example layout_marshal
//! ```

use ipt::core::layout::StructArray;

/// A particle record: position (3), velocity (3), mass, charge.
const FIELDS: usize = 8;
const N_PARTICLES: usize = 4096;
const TILE: usize = 64; // ASTA tile height (coalescing granule)

fn main() {
    let sa = StructArray::new(N_PARTICLES, FIELDS);

    // Build AoS data: particle p, field f = p*10 + f (easily checkable).
    let mut data: Vec<f32> = vec![0.0; sa.len()];
    for p in 0..N_PARTICLES {
        for f in 0..FIELDS {
            data[sa.aos_index(p, f)] = (p * 10 + f) as f32;
        }
    }
    println!("{N_PARTICLES} particles x {FIELDS} fields (AoS, {} floats)", sa.len());

    // AoS -> ASTA in place: one 010! elementary transposition.
    let op = sa.aos_to_asta(TILE);
    println!(
        "AoS -> ASTA(tile={TILE}): 010! as InstancedTranspose {{ instances: {}, rows: {}, cols: {}, super: {} }}",
        op.instances, op.rows, op.cols, op.super_size
    );
    op.apply_par(&mut data);
    // Fields of one tile are now contiguous: perfect for SIMD/warp loads.
    assert_eq!(data[sa.asta_index(123, 5, TILE)], (123 * 10 + 5) as f32);
    let base = sa.asta_index(0, 3, TILE);
    print!("field 3 of particles 0..6 is contiguous in ASTA: ");
    println!("{:?}", &data[base..base + 6]);

    // ASTA -> SoA in place: the inverse 100!.
    sa.asta_to_soa(TILE).apply_par(&mut data);
    assert_eq!(data[sa.soa_index(123, 5)], (123 * 10 + 5) as f32);
    println!("ASTA -> SoA: field-major layout restored (100! inverse)");

    // And SoA straight back to AoS: a full rectangular transposition.
    sa.aos_to_soa().inverse().apply_par(&mut data);
    assert_eq!(data[sa.aos_index(123, 5)], (123 * 10 + 5) as f32);
    println!("SoA -> AoS: full {}x{} in-place transposition — round trip exact", FIELDS, N_PARTICLES);
}
