//! Quickstart: in-place transposition of a rectangular matrix, on the host
//! and on the simulated accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ipt::core::{
    transpose_in_place_par, Algorithm, Matrix, StagePlan, TileHeuristic, TransposePerm,
};
use ipt::gpu::{plan_flag_words, transpose_on_device, GpuOptions};
use ipt::sim::{DeviceSpec, Sim};

fn main() {
    let (rows, cols) = (720, 180);

    // --- the mathematics -------------------------------------------------
    let perm = TransposePerm::new(rows, cols);
    let stats = perm.stats();
    println!("transposing a {rows}x{cols} matrix in place:");
    println!(
        "  permutation k -> k*{rows} mod {}: {} cycles, longest {}, {} fixed points",
        perm.modulus(),
        stats.count,
        stats.max_len,
        stats.fixed_points
    );

    // --- host-side (rayon) ------------------------------------------------
    let a = Matrix::pattern_f32(rows, cols);
    let expect = a.transposed();
    let t0 = std::time::Instant::now();
    let t = transpose_in_place_par(a.clone(), Algorithm::ThreeStage);
    let host_s = t0.elapsed().as_secs_f64();
    assert_eq!(t, expect);
    println!(
        "  host 3-stage (in place, same buffer): {:.2} ms = {:.2} GB/s",
        host_s * 1e3,
        2.0 * (rows * cols * 4) as f64 / host_s / 1e9
    );

    // --- simulated Tesla K20 ----------------------------------------------
    let tile = TileHeuristic::default()
        .select(rows, cols)
        .expect("divisor-rich dimensions always tile");
    println!("  tile chosen by the paper's heuristic: ({}, {})", tile.m, tile.n);
    let plan = StagePlan::three_stage(rows, cols, tile).unwrap();
    for stage in &plan.stages {
        println!("    stage {}: {}", stage.code, stage.describe);
    }
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    let mut sim = Sim::new(dev, rows * cols + plan_flag_words(&plan) + 64);
    let mut data = Matrix::iota(rows, cols).into_vec();
    let stats = transpose_on_device(&mut sim, &mut data, rows, cols, &plan, &opts).unwrap();
    println!(
        "  simulated Tesla K20: {:.3} ms = {:.2} GB/s over {} stages",
        stats.time_s() * 1e3,
        stats.throughput_gbps((rows * cols * 4) as f64),
        stats.stages.len()
    );
    for s in &stats.stages {
        println!(
            "    {:45} {:8.1} us  ({} bound, occupancy {:.0}%)",
            s.name,
            s.time_s * 1e6,
            s.bounds.limiting(),
            s.occupancy.occupancy * 100.0
        );
    }
}
