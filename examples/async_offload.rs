//! Virtual in-place transposition from the CPU (§6 of the paper): ship the
//! matrix to the accelerator, transpose in place there, ship it back to the
//! same host buffer — synchronously and then with stages 2–3 overlapping
//! the D2H transfer over Q command queues.
//!
//! ```text
//! cargo run --release --example async_offload
//! ```

use ipt::core::{StagePlan, TileHeuristic};
use ipt::gpu::{run_host_async, run_host_sync, GpuOptions};
use ipt::sim::DeviceSpec;

fn main() {
    let (rows, cols) = (3600, 900); // 13 MB of f32 — PCIe-dominated
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    let tile = TileHeuristic::default().select(rows, cols).expect("tileable");
    let plan = StagePlan::three_stage(rows, cols, tile).unwrap();
    let bytes = (rows * cols * 4) as f64;

    println!(
        "virtual in-place transposition of {rows}x{cols} ({:.1} MB) via a simulated {}",
        bytes / 1e6,
        dev.name
    );

    let sync = run_host_sync(&dev, rows, cols, &plan, &opts).unwrap();
    println!(
        "\nsynchronous (1 queue):  {:.2} ms  ({:.2} GB/s effective)",
        sync.total_s * 1e3,
        sync.effective_gbps
    );
    for s in &sync.timeline.spans {
        println!(
            "  [{}] {:8.2} - {:8.2} ms  {}",
            ["H2D", "D2H", "GPU"][s.engine],
            s.start_s * 1e3,
            s.end_s * 1e3,
            s.label
        );
    }

    for q in [2usize, 4, 8] {
        let asy = run_host_async(&dev, rows, cols, &plan, &opts, q).unwrap();
        println!(
            "\nasynchronous (Q = {q}):  {:.2} ms  ({:.2} GB/s effective, {:+.1}% vs sync)",
            asy.total_s * 1e3,
            asy.effective_gbps,
            (asy.effective_gbps / sync.effective_gbps - 1.0) * 100.0
        );
        if q == 4 {
            print!("{}", asy.timeline.gantt(64, &["H2D", "D2H", "GPU"]));
        }
    }
    println!(
        "\nstage 1 (100!) cannot be split: its shifting cycles span the whole \
         matrix (§6); only stages 2-3 chunk along N' and overlap the D2H copy."
    );
}
