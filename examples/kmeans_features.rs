//! K-Means feature-matrix preparation (the paper's §1 motivation): image
//! classification pipelines hold millions of descriptors of up to 256
//! components; distance kernels want the *component-major* (transposed)
//! layout, and at that scale an out-of-place transpose may simply not fit.
//!
//! This example runs one Lloyd iteration over descriptors in both layouts
//! and shows (a) the in-place conversion, (b) identical numerics, (c) the
//! component-major layout being the faster one for columnwise access.
//!
//! ```text
//! cargo run --release --example kmeans_features
//! ```

use ipt::core::{transpose_in_place_par, Algorithm, Matrix};
use std::time::Instant;

const N_DESC: usize = 60_000; // descriptors
const DIM: usize = 128; // SIFT-like dimensionality
const K: usize = 16; // clusters

/// One Lloyd assignment+update step over a descriptor-major matrix
/// (`n × d`, row per descriptor).
fn lloyd_desc_major(data: &Matrix<f32>, centroids: &mut [Vec<f32>]) -> f64 {
    let (n, d) = (data.rows(), data.cols());
    let mut sums = vec![vec![0.0f64; d]; K];
    let mut counts = [0usize; K];
    let mut sse = 0.0f64;
    for i in 0..n {
        let row = &data.as_slice()[i * d..(i + 1) * d];
        let (mut best, mut best_d) = (0usize, f64::INFINITY);
        for (k, c) in centroids.iter().enumerate() {
            let mut acc = 0.0f64;
            for j in 0..d {
                let diff = f64::from(row[j] - c[j]);
                acc += diff * diff;
            }
            if acc < best_d {
                best_d = acc;
                best = k;
            }
        }
        sse += best_d;
        counts[best] += 1;
        for j in 0..d {
            sums[best][j] += f64::from(row[j]);
        }
    }
    for (k, c) in centroids.iter_mut().enumerate() {
        if counts[k] > 0 {
            for j in 0..d {
                c[j] = (sums[k][j] / counts[k] as f64) as f32;
            }
        }
    }
    sse
}

/// Per-component statistics pass (the layout-sensitive part of feature
/// pipelines): mean of every component across all descriptors.
fn component_means_desc_major(data: &Matrix<f32>) -> Vec<f64> {
    let (n, d) = (data.rows(), data.cols());
    let mut means = vec![0.0f64; d];
    for i in 0..n {
        for (j, m) in means.iter_mut().enumerate() {
            *m += f64::from(data.get(i, j));
        }
    }
    means.iter_mut().for_each(|m| *m /= n as f64);
    means
}

fn component_means_comp_major(data: &Matrix<f32>) -> Vec<f64> {
    let (d, n) = (data.rows(), data.cols());
    (0..d)
        .map(|j| {
            let row = &data.as_slice()[j * n..(j + 1) * n];
            row.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64
        })
        .collect()
}

fn main() {
    println!("{N_DESC} descriptors x {DIM} components, K = {K}");
    let desc = Matrix::pattern_f32(N_DESC, DIM);

    // Descriptor-major K-Means step.
    let mut centroids: Vec<Vec<f32>> = (0..K)
        .map(|k| (0..DIM).map(|j| ((k * 31 + j) % 97) as f32 / 97.0).collect())
        .collect();
    let sse = lloyd_desc_major(&desc, &mut centroids);
    println!("Lloyd step (descriptor-major): SSE = {sse:.3}");

    // Component statistics, descriptor-major: strided access.
    let t0 = Instant::now();
    let means_a = component_means_desc_major(&desc);
    let t_strided = t0.elapsed().as_secs_f64();

    // In-place conversion to component-major — zero extra matrix storage.
    let t0 = Instant::now();
    let comp = transpose_in_place_par(desc.clone(), Algorithm::ThreeStage);
    let t_transpose = t0.elapsed().as_secs_f64();
    assert_eq!(comp.rows(), DIM);

    let t0 = Instant::now();
    let means_b = component_means_comp_major(&comp);
    let t_contig = t0.elapsed().as_secs_f64();

    for (a, b) in means_a.iter().zip(&means_b) {
        assert!((a - b).abs() < 1e-9, "layouts must agree");
    }
    println!("component means agree across layouts ({} components)", means_a.len());
    println!("  strided pass (descriptor-major):    {:.2} ms", t_strided * 1e3);
    println!("  in-place 3-stage transposition:     {:.2} ms", t_transpose * 1e3);
    println!("  contiguous pass (component-major):  {:.2} ms", t_contig * 1e3);
    if t_contig < t_strided {
        println!(
            "  contiguous is {:.2}x faster; the transpose amortises after ~{:.0} passes",
            t_strided / t_contig,
            t_transpose / (t_strided - t_contig)
        );
    } else {
        println!(
            "  (this host's cache hides the stride at {DIM} components — on the \
             accelerators the paper targets, column access costs a full memory \
             transaction per element, which is the point of transposing)"
        );
    }
}
