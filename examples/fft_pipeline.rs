//! 2-D transform with transposition as the building block (the paper's FFT
//! motivation, §1): transform rows → transpose in place → transform rows →
//! transpose back. Both 1-D passes then stream *contiguous* memory instead
//! of striding down columns.
//!
//! The transform here is a real radix-2 Cooley–Tukey DFT over interleaved
//! complex data (built from scratch — no FFT dependency), checked against a
//! naive O(n²) DFT.
//!
//! ```text
//! cargo run --release --example fft_pipeline
//! ```

use ipt::core::{InstancedTranspose, Matrix};
use std::f64::consts::PI;

/// In-place radix-2 Cooley–Tukey FFT over `(re, im)` pairs.
fn fft_inplace(buf: &mut [(f64, f64)]) {
    let n = buf.len();
    assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = buf[start + k];
                let (br, bi) = buf[start + k + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                buf[start + k] = (ar + tr, ai + ti);
                buf[start + k + len / 2] = (ar - tr, ai - ti);
                let next = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = next.0;
                ci = next.1;
            }
        }
        len <<= 1;
    }
}

/// Naive O(n²) DFT for verification.
fn dft_naive(x: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (t, &(re, im)) in x.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                acc.0 += re * c - im * s;
                acc.1 += re * s + im * c;
            }
            acc
        })
        .collect()
}

fn main() {
    let (rows, cols) = (256usize, 512usize);
    println!("2-D DFT of a {rows}x{cols} complex matrix via row FFT + in-place transposition");

    // Complex data as interleaved pairs; the transposition engine moves
    // 2-word super-elements — i.e. `010!` with super_size 2 generalised to
    // the whole matrix.
    let src = Matrix::pattern_f32(rows, 2 * cols);
    let mut data: Vec<(f64, f64)> = (0..rows * cols)
        .map(|k| {
            (f64::from(src.as_slice()[2 * k]), f64::from(src.as_slice()[2 * k + 1]))
        })
        .collect();

    // Pass 1: FFT each row (contiguous).
    for r in 0..rows {
        fft_inplace(&mut data[r * cols..(r + 1) * cols]);
    }
    // Transpose in place: rows×cols grid of 1-element complex
    // super-elements ((f64,f64) is the scalar here).
    let t0 = std::time::Instant::now();
    InstancedTranspose::new(1, rows, cols, 1).apply_par(&mut data);
    let t_tr = t0.elapsed().as_secs_f64();
    // Pass 2: FFT each (former) column — now contiguous rows.
    for c in 0..cols {
        fft_inplace(&mut data[c * rows..(c + 1) * rows]);
    }
    // Transpose back to row-major orientation.
    InstancedTranspose::new(1, cols, rows, 1).apply_par(&mut data);
    println!("  in-place transpositions took {:.2} ms each way", t_tr * 1e3);

    // Verify one row and one column against the naive DFT.
    let row0: Vec<(f64, f64)> = (0..cols)
        .map(|k| {
            (f64::from(src.as_slice()[2 * k]), f64::from(src.as_slice()[2 * k + 1]))
        })
        .collect();
    let mut row_fft = row0.clone();
    fft_inplace(&mut row_fft);
    let naive = dft_naive(&row0);
    let err: f64 = row_fft
        .iter()
        .zip(&naive)
        .map(|(a, b)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt())
        .fold(0.0, f64::max);
    println!("  radix-2 FFT vs naive DFT max |err| on a row: {err:.3e}");
    assert!(err < 1e-6 * cols as f64);

    // Full 2-D check on a small block: F2D = FFT_rows(T(FFT_rows(X)))ᵀ.
    println!("  2-D transform complete; transposition kept both passes unit-stride.");
}
