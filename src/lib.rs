//! # ipt — in-place transposition of rectangular matrices on accelerators
//!
//! Facade crate for the reproduction of Sung, Gómez-Luna, González-Linares,
//! Guil & Hwu, *"In-Place Transposition of Rectangular Matrices on
//! Accelerators"*, PPoPP 2014. Re-exports the four workspace crates:
//!
//! * [`core`] (`ipt-core`) — permutation/cycle mathematics, elementary
//!   tiled transpositions, 3-stage/4-stage plans, tile selection,
//!   AoS/SoA/ASTA layout marshaling; sequential and rayon execution.
//! * [`sim`] (`gpu-sim`) — the SIMT execution simulator substrate
//!   (devices, warps, banks, locks, occupancy, command queues, PCIe).
//! * [`gpu`] (`ipt-gpu`) — the paper's kernels on the simulator: BS,
//!   PTTWAC `010!`/`100!`, staged pipelines, the host async scheme,
//!   autotuning.
//! * [`baselines`] (`ipt-baselines`) — CPU comparators (GKK parallel
//!   in-place, MKL-like out-of-place, sequential in-place, P-IPT).
//!
//! ## Quick start
//!
//! ```
//! use ipt::core::{Matrix, Algorithm, transpose_in_place_par};
//!
//! let a = Matrix::iota(60, 48);
//! let expect = a.transposed();
//! // 3-stage in-place transposition, automatic tile selection:
//! let t = transpose_in_place_par(a, Algorithm::ThreeStage);
//! assert_eq!(t, expect);
//! ```
//!
//! On the simulated accelerator:
//!
//! ```
//! use ipt::gpu::{transpose_on_device, plan_flag_words, GpuOptions};
//! use ipt::sim::{DeviceSpec, Sim};
//! use ipt::core::{Matrix, StagePlan, TileConfig};
//!
//! let (rows, cols) = (72, 60);
//! let plan = StagePlan::three_stage(rows, cols, TileConfig::new(12, 10)).unwrap();
//! let dev = DeviceSpec::tesla_k20();
//! let opts = GpuOptions::tuned_for(&dev);
//! let mut sim = Sim::new(dev, rows * cols + plan_flag_words(&plan) + 64);
//! let mut data = Matrix::iota(rows, cols).into_vec();
//! let stats = transpose_on_device(&mut sim, &mut data, rows, cols, &plan, &opts).unwrap();
//! assert!(stats.time_s() > 0.0); // simulated kernel time
//! ```

#![warn(missing_docs)]

pub use gpu_sim as sim;
pub use ipt_baselines as baselines;
pub use ipt_core as core;
pub use ipt_gpu as gpu;
