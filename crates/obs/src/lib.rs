//! # ipt-obs — observability for the transposition pipeline
//!
//! The paper's argument (§5–§7) rests on *measured* phenomena: lock,
//! position and bank conflicts in `010!`, super-element throughput in
//! `100!`, tile-size pruning driven by observed cost. This crate makes every
//! one of those measurements a first-class, exportable artifact:
//!
//! * [`Recorder`] — the instrumentation trait the whole stack is generic
//!   over. Hierarchical spans (algorithm → stage → kernel launch → warp
//!   step → DES queue), typed [`Counter`]s, gauges, cycle-length
//!   histograms, and instantaneous events (faults, retries, autotune
//!   decisions).
//! * [`NoopRecorder`] — the zero-cost disabled path. Every un-traced entry
//!   point monomorphizes against it, so hot loops compile to exactly the
//!   pre-observability code.
//! * [`TraceRecorder`] — the in-memory collector behind the exporters.
//! * [`chrome`] — Chrome trace-event JSON (open in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)); DES timestamps in microseconds.
//! * [`prom`] — Prometheus text exposition of counters/gauges/histograms.
//! * [`report`] — the versioned [`report::BenchReport`] schema replacing
//!   ad-hoc `bench_out/*.json`, plus the tolerance-based regression
//!   comparison behind `repro --check`.
//! * [`histo`] / [`window`] / [`alert`] / [`telemetry`] — fleet-wide
//!   request telemetry: mergeable log2 latency histograms with
//!   OpenMetrics exemplars, DES-time SLO windows, and multi-window
//!   burn-rate alerting with causal [`SpanCtx`] trace propagation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alert;
pub mod chrome;
pub mod histo;
pub mod prom;
pub mod recorder;
pub mod report;
pub mod telemetry;
pub mod window;

pub use alert::{Alert, BurnRule, RuleState};
pub use chrome::chrome_trace_json;
pub use histo::{Exemplar, LogHisto};
pub use prom::prometheus_text;
pub use recorder::{
    Counter, EventRec, Level, NoopRecorder, Recorder, SpanCtx, SpanRec, TraceRecorder,
};
pub use telemetry::{ClassSeries, SloClass, Telemetry, TelemetryConfig};
pub use window::{Window, WindowRing};
pub use report::{
    compare_metrics, compare_slo_metrics, current_git_rev, extract_metrics,
    extract_slo_metrics, extract_wall_metrics, BenchReport, Metric, Provenance, Regression,
    SCHEMA_VERSION,
};
