//! Prometheus text-exposition exporter.
//!
//! Renders a [`TraceRecorder`]'s counters, gauges, and cycle-length
//! histograms in the [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! counters as `ipt_<name>_total{scope="..."}`, gauges as
//! `ipt_<name>{scope="..."}`, and each scope's cycle-length histogram as a
//! cumulative `ipt_cycle_length_bucket{scope="...",le="..."}` series with
//! `_sum` / `_count`. Scope labels are escaped per the format rules.

use crate::recorder::TraceRecorder;
use std::fmt::Write as _;

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x}")
    }
}

/// Render the recorder's aggregates in Prometheus text exposition format.
#[must_use]
pub fn prometheus_text(rec: &TraceRecorder) -> String {
    let mut out = String::new();

    // Counters, grouped by metric stem so each gets one TYPE header.
    let counters = rec.counters();
    let mut last_stem = "";
    for (scope, counter, value) in &counters {
        let stem = counter.name();
        if stem != last_stem {
            let _ = writeln!(out, "# TYPE ipt_{stem}_total counter");
            last_stem = stem;
        }
        let _ = writeln!(
            out,
            "ipt_{stem}_total{{scope=\"{}\"}} {value}",
            escape_label(scope)
        );
    }

    // Gauges.
    let gauges = rec.gauges();
    let mut last_name = "";
    for (scope, name, value) in &gauges {
        if *name != last_name {
            let _ = writeln!(out, "# TYPE ipt_{name} gauge");
            last_name = name;
        }
        let _ = writeln!(
            out,
            "ipt_{name}{{scope=\"{}\"}} {}",
            escape_label(scope),
            fmt_value(*value)
        );
    }

    // Cycle-length histogram, one cumulative series per scope. The recorder
    // keys are already sorted (scope, len) ascending, so a running group
    // walk suffices.
    let hist = rec.cycle_histogram();
    if !hist.is_empty() {
        let _ = writeln!(out, "# TYPE ipt_cycle_length histogram");
        let mut i = 0;
        while i < hist.len() {
            let scope = hist[i].0.clone();
            let esc = escape_label(&scope);
            let mut cum = 0u64;
            let mut sum = 0u64;
            while i < hist.len() && hist[i].0 == scope {
                let (_, len, count) = &hist[i];
                cum += count;
                sum += *count * (*len as u64);
                let _ = writeln!(
                    out,
                    "ipt_cycle_length_bucket{{scope=\"{esc}\",le=\"{len}\"}} {cum}"
                );
                i += 1;
            }
            let _ = writeln!(
                out,
                "ipt_cycle_length_bucket{{scope=\"{esc}\",le=\"+Inf\"}} {cum}"
            );
            let _ = writeln!(out, "ipt_cycle_length_sum{{scope=\"{esc}\"}} {sum}");
            let _ = writeln!(out, "ipt_cycle_length_count{{scope=\"{esc}\"}} {cum}");
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Recorder};

    #[test]
    fn counters_gauges_and_histogram_render() {
        let r = TraceRecorder::new();
        r.add("PTTWAC010", Counter::LockConflicts, 12);
        r.add("PTTWAC010", Counter::BankConflicts, 3);
        r.add("BS", Counter::Barriers, 4);
        r.gauge("PTTWAC010", "occupancy", 0.75);
        r.cycles("stage:010!", 1, 10);
        r.cycles("stage:010!", 5, 2);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE ipt_lock_conflicts_total counter"), "{text}");
        assert!(
            text.contains("ipt_lock_conflicts_total{scope=\"PTTWAC010\"} 12"),
            "{text}"
        );
        assert!(text.contains("ipt_barriers_total{scope=\"BS\"} 4"), "{text}");
        assert!(text.contains("ipt_occupancy{scope=\"PTTWAC010\"} 0.75"), "{text}");
        // Histogram is cumulative: le=1 → 10, le=5 → 12, +Inf → 12.
        assert!(
            text.contains("ipt_cycle_length_bucket{scope=\"stage:010!\",le=\"1\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("ipt_cycle_length_bucket{scope=\"stage:010!\",le=\"5\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("ipt_cycle_length_bucket{scope=\"stage:010!\",le=\"+Inf\"} 12"),
            "{text}"
        );
        // sum = 1*10 + 5*2 = 20, count = 12.
        assert!(text.contains("ipt_cycle_length_sum{scope=\"stage:010!\"} 20"), "{text}");
        assert!(text.contains("ipt_cycle_length_count{scope=\"stage:010!\"} 12"), "{text}");
    }

    #[test]
    fn fleet_counters_export_exactly() {
        // The serving-fleet counters render under their stable stems with
        // exact values — byte-for-byte lines, not substring guesses.
        let r = TraceRecorder::new();
        r.add("fleet", Counter::RequestsShed, 7);
        r.add("fleet", Counter::PlansDegraded, 3);
        r.add("fleet", Counter::SnapshotRestores, 1);
        r.add("fleet", Counter::ShardFailovers, 2);
        let text = prometheus_text(&r);
        for line in [
            "# TYPE ipt_requests_shed_total counter",
            "ipt_requests_shed_total{scope=\"fleet\"} 7",
            "# TYPE ipt_plans_degraded_total counter",
            "ipt_plans_degraded_total{scope=\"fleet\"} 3",
            "# TYPE ipt_snapshot_restores_total counter",
            "ipt_snapshot_restores_total{scope=\"fleet\"} 1",
            "# TYPE ipt_shard_failovers_total counter",
            "ipt_shard_failovers_total{scope=\"fleet\"} 2",
        ] {
            assert!(text.lines().any(|l| l == line), "missing {line:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_recorder_renders_empty() {
        assert!(prometheus_text(&TraceRecorder::new()).is_empty());
    }

    #[test]
    fn scope_labels_are_escaped() {
        let r = TraceRecorder::new();
        r.gauge("a\"b\\c", "g", 1.0);
        let text = prometheus_text(&r);
        assert!(text.contains(r#"ipt_g{scope="a\"b\\c"} 1"#), "{text}");
    }
}
