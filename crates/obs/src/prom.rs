//! Prometheus text-exposition exporter.
//!
//! Renders a [`TraceRecorder`]'s counters, gauges, and histograms in the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! counters as `ipt_<name>_total{scope="..."}` with `# HELP`/`# TYPE`
//! headers, gauges as `ipt_<name>{scope="..."}`, each scope's cycle-length
//! histogram as a cumulative `ipt_cycle_length_bucket{scope="...",le="..."}`
//! series with `_sum` / `_count`, and each latency histogram (see
//! [`crate::histo::LogHisto`]) as a cumulative log2-bucket series whose
//! p99 bucket carries an OpenMetrics exemplar (`# {trace_id="..."} v`)
//! linking the tail back to a concrete request trace. Scope labels are
//! escaped and non-finite values render as `+Inf`/`-Inf`/`NaN` per the
//! format rules.

use crate::histo::LogHisto;
use crate::recorder::TraceRecorder;
use std::fmt::Write as _;

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x}")
    }
}

/// Render the recorder's aggregates in Prometheus text exposition format.
#[must_use]
pub fn prometheus_text(rec: &TraceRecorder) -> String {
    let mut out = String::new();

    // Counters, grouped by metric stem so each gets one HELP/TYPE header.
    let counters = rec.counters();
    let mut last_stem = "";
    for (scope, counter, value) in &counters {
        let stem = counter.name();
        if stem != last_stem {
            let _ = writeln!(out, "# HELP ipt_{stem}_total {}", counter.help());
            let _ = writeln!(out, "# TYPE ipt_{stem}_total counter");
            last_stem = stem;
        }
        let _ = writeln!(
            out,
            "ipt_{stem}_total{{scope=\"{}\"}} {value}",
            escape_label(scope)
        );
    }

    // Gauges.
    let gauges = rec.gauges();
    let mut last_name = "";
    for (scope, name, value) in &gauges {
        if *name != last_name {
            let _ = writeln!(out, "# HELP ipt_{name} point-in-time value recorded on the DES clock");
            let _ = writeln!(out, "# TYPE ipt_{name} gauge");
            last_name = name;
        }
        let _ = writeln!(
            out,
            "ipt_{name}{{scope=\"{}\"}} {}",
            escape_label(scope),
            fmt_value(*value)
        );
    }

    // Cycle-length histogram, one cumulative series per scope. The recorder
    // keys are already sorted (scope, len) ascending, so a running group
    // walk suffices.
    let hist = rec.cycle_histogram();
    if !hist.is_empty() {
        let _ = writeln!(out, "# HELP ipt_cycle_length permutation cycle-length distribution");
        let _ = writeln!(out, "# TYPE ipt_cycle_length histogram");
        let mut i = 0;
        while i < hist.len() {
            let scope = hist[i].0.clone();
            let esc = escape_label(&scope);
            let mut cum = 0u64;
            let mut sum = 0u64;
            while i < hist.len() && hist[i].0 == scope {
                let (_, len, count) = &hist[i];
                cum += count;
                sum += *count * (*len as u64);
                let _ = writeln!(
                    out,
                    "ipt_cycle_length_bucket{{scope=\"{esc}\",le=\"{len}\"}} {cum}"
                );
                i += 1;
            }
            let _ = writeln!(
                out,
                "ipt_cycle_length_bucket{{scope=\"{esc}\",le=\"+Inf\"}} {cum}"
            );
            let _ = writeln!(out, "ipt_cycle_length_sum{{scope=\"{esc}\"}} {sum}");
            let _ = writeln!(out, "ipt_cycle_length_count{{scope=\"{esc}\"}} {cum}");
        }
    }

    // Latency histograms (log2 µs buckets), grouped by metric name so each
    // gets one HELP/TYPE header; the p99 bucket carries an OpenMetrics
    // exemplar linking it to the trace id of its last observation.
    let mut latency = rec.latency_histograms();
    latency.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
    let mut last_lat = "";
    for (scope, name, histo) in &latency {
        if *name != last_lat {
            let _ = writeln!(out, "# HELP ipt_{name} log2-bucketed latency, microseconds");
            let _ = writeln!(out, "# TYPE ipt_{name} histogram");
            last_lat = name;
        }
        let esc = escape_label(scope);
        let p99_bucket = histo.quantile_bucket(0.99);
        let buckets = histo.buckets();
        let last_nonzero = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (idx, &count) in buckets.iter().enumerate().take(last_nonzero + 1) {
            cum += count;
            let le = fmt_value(LogHisto::bucket_le(idx));
            let _ = write!(out, "ipt_{name}_bucket{{scope=\"{esc}\",le=\"{le}\"}} {cum}");
            if idx == p99_bucket && !histo.is_empty() {
                if let Some(ex) = histo.exemplar(idx) {
                    let _ = write!(
                        out,
                        " # {{trace_id=\"{:016x}\"}} {}",
                        ex.trace_id,
                        fmt_value(ex.value_us)
                    );
                }
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "ipt_{name}_bucket{{scope=\"{esc}\",le=\"+Inf\"}} {}",
            histo.count()
        );
        let _ = writeln!(out, "ipt_{name}_sum{{scope=\"{esc}\"}} {}", fmt_value(histo.sum_us()));
        let _ = writeln!(out, "ipt_{name}_count{{scope=\"{esc}\"}} {}", histo.count());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Recorder};

    #[test]
    fn counters_gauges_and_histogram_render() {
        let r = TraceRecorder::new();
        r.add("PTTWAC010", Counter::LockConflicts, 12);
        r.add("PTTWAC010", Counter::BankConflicts, 3);
        r.add("BS", Counter::Barriers, 4);
        r.gauge("PTTWAC010", "occupancy", 0.75);
        r.cycles("stage:010!", 1, 10);
        r.cycles("stage:010!", 5, 2);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE ipt_lock_conflicts_total counter"), "{text}");
        assert!(
            text.contains("ipt_lock_conflicts_total{scope=\"PTTWAC010\"} 12"),
            "{text}"
        );
        assert!(text.contains("ipt_barriers_total{scope=\"BS\"} 4"), "{text}");
        assert!(text.contains("ipt_occupancy{scope=\"PTTWAC010\"} 0.75"), "{text}");
        // Histogram is cumulative: le=1 → 10, le=5 → 12, +Inf → 12.
        assert!(
            text.contains("ipt_cycle_length_bucket{scope=\"stage:010!\",le=\"1\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("ipt_cycle_length_bucket{scope=\"stage:010!\",le=\"5\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("ipt_cycle_length_bucket{scope=\"stage:010!\",le=\"+Inf\"} 12"),
            "{text}"
        );
        // sum = 1*10 + 5*2 = 20, count = 12.
        assert!(text.contains("ipt_cycle_length_sum{scope=\"stage:010!\"} 20"), "{text}");
        assert!(text.contains("ipt_cycle_length_count{scope=\"stage:010!\"} 12"), "{text}");
    }

    #[test]
    fn fleet_counters_export_exactly() {
        // The serving-fleet counters render under their stable stems with
        // exact values — byte-for-byte lines, not substring guesses.
        let r = TraceRecorder::new();
        r.add("fleet", Counter::RequestsShed, 7);
        r.add("fleet", Counter::PlansDegraded, 3);
        r.add("fleet", Counter::SnapshotRestores, 1);
        r.add("fleet", Counter::ShardFailovers, 2);
        let text = prometheus_text(&r);
        for line in [
            "# HELP ipt_requests_shed_total requests shed to the host path under overload",
            "# TYPE ipt_requests_shed_total counter",
            "ipt_requests_shed_total{scope=\"fleet\"} 7",
            "# TYPE ipt_plans_degraded_total counter",
            "ipt_plans_degraded_total{scope=\"fleet\"} 3",
            "# TYPE ipt_snapshot_restores_total counter",
            "ipt_snapshot_restores_total{scope=\"fleet\"} 1",
            "# HELP ipt_shard_failovers_total requests re-routed off an unhealthy affinity shard",
            "# TYPE ipt_shard_failovers_total counter",
            "ipt_shard_failovers_total{scope=\"fleet\"} 2",
        ] {
            assert!(text.lines().any(|l| l == line), "missing {line:?} in:\n{text}");
        }
    }

    #[test]
    fn every_counter_gets_a_help_line_before_its_type_line() {
        let r = TraceRecorder::new();
        r.add("k", Counter::ClaimRetries, 1);
        r.add("fleet", Counter::AlertsRaised, 2);
        let text = prometheus_text(&r);
        let lines: Vec<&str> = text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# TYPE ") {
                let metric = rest.split(' ').next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {metric} ")),
                    "TYPE without preceding HELP for {metric}:\n{text}"
                );
            }
        }
        assert!(
            text.lines().any(|l| l == "ipt_alerts_raised_total{scope=\"fleet\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn non_finite_values_render_in_prometheus_spelling() {
        // Satellite fix: Rust's `{}` renders `inf`/`NaN`; the exposition
        // format requires `+Inf`/`-Inf`/`NaN`.
        let r = TraceRecorder::new();
        r.gauge("z", "a_pos", f64::INFINITY);
        r.gauge("z", "b_neg", f64::NEG_INFINITY);
        r.gauge("z", "c_nan", f64::NAN);
        r.gauge("z", "d_plain", 1.5);
        let text = prometheus_text(&r);
        for line in [
            "ipt_a_pos{scope=\"z\"} +Inf",
            "ipt_b_neg{scope=\"z\"} -Inf",
            "ipt_c_nan{scope=\"z\"} NaN",
            "ipt_d_plain{scope=\"z\"} 1.5",
        ] {
            assert!(text.lines().any(|l| l == line), "missing {line:?} in:\n{text}");
        }
        assert!(!text.contains(" inf"), "bare Rust inf leaked:\n{text}");
    }

    #[test]
    fn latency_histogram_renders_with_p99_exemplar_byte_exact() {
        let r = TraceRecorder::new();
        // Two fast, one slow: p99 rank 3 → the 100µs observation's bucket
        // (64..128, le=128) carries the exemplar of its last observation.
        r.latency("class:batch", "queue_wait_us", 3.0, Some(0xA1));
        r.latency("class:batch", "queue_wait_us", 5.0, Some(0xB2));
        r.latency("class:batch", "queue_wait_us", 100.0, Some(0xC3));
        let text = prometheus_text(&r);
        let expected = "\
# HELP ipt_queue_wait_us log2-bucketed latency, microseconds
# TYPE ipt_queue_wait_us histogram
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"1\"} 0
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"2\"} 0
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"4\"} 1
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"8\"} 2
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"16\"} 2
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"32\"} 2
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"64\"} 2
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"128\"} 3 # {trace_id=\"00000000000000c3\"} 100
ipt_queue_wait_us_bucket{scope=\"class:batch\",le=\"+Inf\"} 3
ipt_queue_wait_us_sum{scope=\"class:batch\"} 108
ipt_queue_wait_us_count{scope=\"class:batch\"} 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn latency_histograms_group_by_metric_name_across_scopes() {
        let r = TraceRecorder::new();
        r.latency("shard:0", "e2e_us", 10.0, None);
        r.latency("shard:1", "e2e_us", 20.0, None);
        r.latency("shard:0", "service_us", 5.0, None);
        let text = prometheus_text(&r);
        assert_eq!(
            text.matches("# TYPE ipt_e2e_us histogram").count(),
            1,
            "one TYPE header per metric name:\n{text}"
        );
        assert!(text.contains("ipt_e2e_us_count{scope=\"shard:0\"} 1"), "{text}");
        assert!(text.contains("ipt_e2e_us_count{scope=\"shard:1\"} 1"), "{text}");
        assert!(text.contains("# TYPE ipt_service_us histogram"), "{text}");
    }

    #[test]
    fn empty_recorder_renders_empty() {
        assert!(prometheus_text(&TraceRecorder::new()).is_empty());
    }

    #[test]
    fn scope_labels_are_escaped() {
        let r = TraceRecorder::new();
        r.gauge("a\"b\\c", "g", 1.0);
        let text = prometheus_text(&r);
        assert!(text.contains(r#"ipt_g{scope="a\"b\\c"} 1"#), "{text}");
    }
}
