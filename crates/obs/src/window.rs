//! DES-time windowed good/bad aggregation.
//!
//! A [`WindowRing`] chops simulated time into fixed-width windows and
//! counts good/bad outcomes per window in a bounded ring: the newest
//! `capacity` windows stay queryable for burn-rate math (see
//! [`crate::alert`]) while older windows are drained into a compact
//! closed-window series for post-run inspection. All bookkeeping is
//! driven by the DES clock, so the window series — like every other
//! telemetry artifact — is byte-identical across runs and engines.

use serde::Serialize;
use std::collections::VecDeque;

/// One fixed-width window of outcome counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Window {
    /// Window ordinal: window `i` covers `[i*window_s, (i+1)*window_s)`.
    pub index: u64,
    /// Requests that met their objective in this window.
    pub good: u64,
    /// Requests that missed (shed, rejected, or over deadline).
    pub bad: u64,
}

impl Window {
    /// Total outcomes recorded in this window.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.good + self.bad
    }

    /// Fraction of bad outcomes (0 when the window is empty).
    #[must_use]
    pub fn bad_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 { 0.0 } else { self.bad as f64 / t as f64 }
    }
}

/// Bounded ring of fixed DES-time windows with a closed-window archive.
#[derive(Debug, Clone)]
pub struct WindowRing {
    window_s: f64,
    capacity: usize,
    ring: VecDeque<Window>,
    closed: Vec<Window>,
}

impl WindowRing {
    /// A ring of `capacity` live windows, each `window_s` seconds wide.
    ///
    /// # Panics
    /// Panics if `window_s` is not positive or `capacity` is zero.
    #[must_use]
    pub fn new(window_s: f64, capacity: usize) -> Self {
        assert!(window_s > 0.0, "window width must be positive");
        assert!(capacity > 0, "ring capacity must be nonzero");
        Self { window_s, capacity, ring: VecDeque::new(), closed: Vec::new() }
    }

    /// Window width, seconds.
    #[must_use]
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Window ordinal for DES time `t_s` (clamped at 0 for negative noise).
    #[must_use]
    pub fn index_of(&self, t_s: f64) -> u64 {
        if t_s <= 0.0 { 0 } else { (t_s / self.window_s) as u64 }
    }

    fn rotate_to(&mut self, index: u64) {
        let newest = self.ring.back().map(|w| w.index);
        match newest {
            None => self.ring.push_back(Window { index, good: 0, bad: 0 }),
            Some(n) if index > n => {
                // Gap-fill so burn-rate windows see silence as empty
                // windows rather than skipping time.
                for i in (n + 1)..=index {
                    self.ring.push_back(Window { index: i, good: 0, bad: 0 });
                    while self.ring.len() > self.capacity {
                        let old = self.ring.pop_front().expect("nonempty ring");
                        self.closed.push(old);
                    }
                }
            }
            Some(_) => {}
        }
    }

    /// Record one outcome at DES time `t_s`. Out-of-order records landing
    /// before the newest open window are credited to the oldest live
    /// window still in the ring (deterministic, and a negligible skew at
    /// the window widths used here).
    pub fn record(&mut self, t_s: f64, good: bool) {
        let index = self.index_of(t_s);
        self.rotate_to(index);
        let pos = self
            .ring
            .iter()
            .position(|w| w.index == index)
            .unwrap_or(0);
        let w = &mut self.ring[pos];
        if good {
            w.good += 1;
        } else {
            w.bad += 1;
        }
    }

    /// Advance the clock to `t_s` without recording an outcome (opens and
    /// gap-fills windows so idle periods read as empty).
    pub fn advance(&mut self, t_s: f64) {
        let index = self.index_of(t_s);
        self.rotate_to(index);
    }

    /// Aggregate bad-rate over the most recent `k` live windows
    /// (including the open one), divided by `error_budget`: the SRE
    /// burn rate. 0 when no traffic was seen or the budget is degenerate.
    #[must_use]
    pub fn burn_rate(&self, k: usize, error_budget: f64) -> f64 {
        if error_budget <= 0.0 {
            return 0.0;
        }
        let n = self.ring.len();
        let take = k.min(n);
        let (mut good, mut bad) = (0u64, 0u64);
        for w in self.ring.iter().skip(n - take) {
            good += w.good;
            bad += w.bad;
        }
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / error_budget
    }

    /// Live windows, oldest first.
    pub fn live(&self) -> impl Iterator<Item = &Window> {
        self.ring.iter()
    }

    /// Full window series: closed windows followed by live ones, oldest
    /// first.
    #[must_use]
    pub fn series(&self) -> Vec<Window> {
        let mut out = self.closed.clone();
        out.extend(self.ring.iter().copied());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_rotate_and_gap_fill() {
        let mut r = WindowRing::new(1.0, 4);
        r.record(0.5, true);
        r.record(0.9, false);
        r.record(3.2, true); // skips windows 1 and 2
        let live: Vec<Window> = r.live().copied().collect();
        assert_eq!(live.len(), 4);
        assert_eq!(live[0], Window { index: 0, good: 1, bad: 1 });
        assert_eq!(live[1], Window { index: 1, good: 0, bad: 0 });
        assert_eq!(live[2], Window { index: 2, good: 0, bad: 0 });
        assert_eq!(live[3], Window { index: 3, good: 1, bad: 0 });
        // One more window evicts window 0 into the closed archive.
        r.record(4.1, false);
        assert_eq!(r.live().count(), 4);
        let series = r.series();
        assert_eq!(series.len(), 5);
        assert_eq!(series[0], Window { index: 0, good: 1, bad: 1 });
        assert_eq!(series[4], Window { index: 4, good: 0, bad: 1 });
    }

    #[test]
    fn burn_rate_is_windowed_bad_fraction_over_budget() {
        let mut r = WindowRing::new(1.0, 8);
        for i in 0..4 {
            // Windows 0..3: 10% bad.
            for j in 0..10 {
                r.record(i as f64 + 0.05 * j as f64, j != 0);
            }
        }
        // Budget 10% → burn 1.0 over any span of these windows.
        assert!((r.burn_rate(4, 0.10) - 1.0).abs() < 1e-12);
        assert!((r.burn_rate(1, 0.10) - 1.0).abs() < 1e-12);
        // Window 4: all bad → short-window burn spikes to 10×.
        for j in 0..10 {
            r.record(4.0 + 0.05 * j as f64, false);
        }
        assert!((r.burn_rate(1, 0.10) - 10.0).abs() < 1e-12);
        // Long window dilutes: 14 bad / 50 total / 0.10 = 2.8.
        assert!((r.burn_rate(5, 0.10) - 2.8).abs() < 1e-12);
        // Degenerate budget and empty spans are silent.
        assert_eq!(r.burn_rate(4, 0.0), 0.0);
        assert_eq!(WindowRing::new(1.0, 4).burn_rate(4, 0.1), 0.0);
    }

    #[test]
    fn advance_opens_empty_windows() {
        let mut r = WindowRing::new(0.25, 16);
        r.record(0.1, false);
        r.advance(1.1); // windows 1..4 open empty
        assert_eq!(r.live().count(), 5);
        assert_eq!(r.burn_rate(4, 0.1), 0.0); // bad outcome rotated out of view
        assert!((r.burn_rate(5, 0.1) - 10.0).abs() < 1e-12);
    }
}
