//! The [`Recorder`] trait, its zero-cost [`NoopRecorder`], and the
//! collecting [`TraceRecorder`].
//!
//! ## Design
//!
//! The simulator computes durations *after* an activity completes (the
//! four-bound time model needs the whole launch), so spans are recorded as
//! **completed intervals** with explicit start/duration in simulated
//! microseconds rather than via begin/end calls. Orchestrators (the
//! pipeline, the DES queue scheduler) thread a cumulative time base through
//! the layers, which keeps every timestamp on the single DES clock.
//!
//! Hot paths are generic over `R: Recorder` and gate argument marshalling on
//! [`Recorder::enabled`]; with [`NoopRecorder`] (`enabled() == false`,
//! empty inline bodies) the instrumentation monomorphizes to nothing.

use crate::histo::LogHisto;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Hierarchy level of a span (also the Chrome-trace category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Level {
    /// A whole staged algorithm (e.g. one 3-stage plan execution).
    Algorithm,
    /// One stage of a plan (one elementary transposition).
    Stage,
    /// One kernel launch on the simulated device.
    Kernel,
    /// One warp scheduling slice (sampled; see `DroppedWarpSpans`).
    Warp,
    /// One DES command-queue span (transfer or kernel on an engine).
    Queue,
    /// One serving-layer request phase (admission, routing, queueing,
    /// execution) — the spine of a request trace.
    Request,
}

impl Level {
    /// Category string for exporters.
    #[must_use]
    pub fn cat(self) -> &'static str {
        match self {
            Level::Algorithm => "algorithm",
            Level::Stage => "stage",
            Level::Kernel => "kernel",
            Level::Warp => "warp",
            Level::Queue => "queue",
            Level::Request => "request",
        }
    }

    /// Default display track (Chrome `tid`) for this level; warp and queue
    /// spans add their own offsets on top.
    #[must_use]
    pub fn base_track(self) -> u32 {
        match self {
            Level::Algorithm => 0,
            Level::Stage => 1,
            Level::Kernel => 2,
            Level::Warp => 8,
            Level::Request => 40,
            Level::Queue => 100,
        }
    }
}

/// Causal trace context, Dapper-style: one request is one `trace_id`;
/// each phase of its journey (admission, route, queue, exec) is a span
/// with a `span_id` whose `parent_span_id` links back toward the root.
/// `0` means "none" — the root span has `parent_span_id == 0`, and
/// deep device-level spans that inherit a context from the recorder's
/// ambient stack carry `span_id == 0` (they are leaves: nothing links
/// below them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SpanCtx {
    /// The request's trace id (stable across shards, failover, retries).
    pub trace_id: u64,
    /// This span's id within the trace (0 for anonymous leaf spans).
    pub span_id: u64,
    /// Parent span id (0 for the trace root).
    pub parent_span_id: u64,
}

impl SpanCtx {
    /// The root context of trace `trace_id` with span id `span_id`.
    #[must_use]
    pub fn root(trace_id: u64, span_id: u64) -> Self {
        Self { trace_id, span_id, parent_span_id: 0 }
    }

    /// A child context of `self` with span id `span_id`.
    #[must_use]
    pub fn child(&self, span_id: u64) -> Self {
        Self { trace_id: self.trace_id, span_id, parent_span_id: self.span_id }
    }
}

/// Typed counters — the closed set of quantities the paper's analysis uses.
/// A closed enum (vs. free-form strings) keeps hot-path increments
/// allocation-free and makes exporter names stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Counter {
    /// Intra-warp same-word atomic collisions (§5.1.1).
    PositionConflicts,
    /// Same-lock different-word local-atomic collisions (§5.1.2).
    LockConflicts,
    /// Same-bank different-word collisions (§5.1.2).
    BankConflicts,
    /// Failed flag claims (a lane lost a cycle to another owner and had to
    /// fetch a new start) — the PTTWAC claim-protocol retry count.
    ClaimRetries,
    /// Local atomic operations, lane granularity.
    LocalAtomics,
    /// Global atomic operations, lane granularity.
    GlobalAtomics,
    /// DRAM bytes moved by kernels (whole transactions).
    DramBytes,
    /// Bytes the kernels asked for (4 × active lanes).
    UsefulBytes,
    /// Global load transactions.
    GldTransactions,
    /// Global store transactions.
    GstTransactions,
    /// Work-group barriers executed.
    Barriers,
    /// Warp scheduling slices executed.
    WarpSteps,
    /// Host→device bytes (uploads).
    H2dBytes,
    /// Device→host bytes (downloads).
    D2hBytes,
    /// Device-side memset bytes (flag clears).
    MemsetBytes,
    /// Injected faults that fired.
    FaultsInjected,
    /// Stage-granular recovery retries.
    StageRetries,
    /// DES transfer resubmissions.
    TransferRetries,
    /// Whole-scheme recovery retries.
    SchemeRetries,
    /// Autotune candidate tiles considered (measured or pruned).
    AutotuneConsidered,
    /// Autotune candidates rejected as infeasible by measurement.
    AutotuneRejectedInfeasible,
    /// Autotune candidates pruned before measurement (§7.4 heuristic).
    AutotunePruned,
    /// Warp spans dropped by the per-launch sampling cap (no silent caps:
    /// truncation is itself counted).
    DroppedWarpSpans,
    /// Serving-layer plan-cache hits (autotune skipped).
    PlanCacheHits,
    /// Serving-layer plan-cache misses (full plan + autotune ran).
    PlanCacheMisses,
    /// Batched launches issued by the serving layer.
    BatchesLaunched,
    /// Requests coalesced into batches (Σ batch occupancy).
    BatchedRequests,
    /// Simulated queue-wait, microseconds, summed over served requests.
    QueueWaitUs,
    /// Requests refused at admission because the bounded queue was full.
    AdmissionRejections,
    /// Requests shed to the host path under overload (served correct but
    /// never launched on a device).
    RequestsShed,
    /// Requests degraded from the tuned plan to conservative options under
    /// overload (the graceful-degradation ladder's first rung).
    PlansDegraded,
    /// Plan-cache snapshots successfully restored on warm restart.
    SnapshotRestores,
    /// Requests re-routed because their affinity shard was unhealthy.
    ShardFailovers,
    /// Requests that missed their objective (shed, or served past their
    /// priority class's deadline budget) — the SLO "bad" count.
    SloViolations,
    /// Burn-rate alerts fired by the telemetry engine (rising edges only).
    AlertsRaised,
    /// Transient transfer faults injected by a fault source and observed by
    /// a retrying consumer (the DES resubmission paths).
    TransferFaultsInjected,
    /// Out-of-core streaming chunks durably committed (journal reached
    /// `Committed`).
    StreamChunksCommitted,
    /// Out-of-core chunk-granular retries (transfer or kernel redo of one
    /// chunk after a fault).
    StreamChunkRetries,
    /// Out-of-core resumes after a mid-stream engine crash (journal replay
    /// from the last committed chunk).
    StreamCrashResumes,
    /// Out-of-core degradation-ladder steps taken (overlapped → serialized
    /// → host-chunk).
    StreamDegradations,
    /// Oversized requests routed to the streaming path instead of being
    /// rejected at admission.
    OversizedRouted,
}

impl Counter {
    /// Stable exporter name (Prometheus metric stem).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::PositionConflicts => "position_conflicts",
            Counter::LockConflicts => "lock_conflicts",
            Counter::BankConflicts => "bank_conflicts",
            Counter::ClaimRetries => "claim_retries",
            Counter::LocalAtomics => "local_atomics",
            Counter::GlobalAtomics => "global_atomics",
            Counter::DramBytes => "dram_bytes",
            Counter::UsefulBytes => "useful_bytes",
            Counter::GldTransactions => "gld_transactions",
            Counter::GstTransactions => "gst_transactions",
            Counter::Barriers => "barriers",
            Counter::WarpSteps => "warp_steps",
            Counter::H2dBytes => "h2d_bytes",
            Counter::D2hBytes => "d2h_bytes",
            Counter::MemsetBytes => "memset_bytes",
            Counter::FaultsInjected => "faults_injected",
            Counter::StageRetries => "stage_retries",
            Counter::TransferRetries => "transfer_retries",
            Counter::SchemeRetries => "scheme_retries",
            Counter::AutotuneConsidered => "autotune_considered",
            Counter::AutotuneRejectedInfeasible => "autotune_rejected_infeasible",
            Counter::AutotunePruned => "autotune_pruned",
            Counter::DroppedWarpSpans => "dropped_warp_spans",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::BatchesLaunched => "batches_launched",
            Counter::BatchedRequests => "batched_requests",
            Counter::QueueWaitUs => "queue_wait_us",
            Counter::AdmissionRejections => "admission_rejections",
            Counter::RequestsShed => "requests_shed",
            Counter::PlansDegraded => "plans_degraded",
            Counter::SnapshotRestores => "snapshot_restores",
            Counter::ShardFailovers => "shard_failovers",
            Counter::SloViolations => "slo_violations",
            Counter::AlertsRaised => "alerts_raised",
            Counter::TransferFaultsInjected => "transfer_faults_injected",
            Counter::StreamChunksCommitted => "stream_chunks_committed",
            Counter::StreamChunkRetries => "stream_chunk_retries",
            Counter::StreamCrashResumes => "stream_crash_resumes",
            Counter::StreamDegradations => "stream_degradations",
            Counter::OversizedRouted => "oversized_routed",
        }
    }

    /// One-line Prometheus `# HELP` text for this counter.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Counter::PositionConflicts => "intra-warp same-word atomic collisions",
            Counter::LockConflicts => "same-lock different-word local-atomic collisions",
            Counter::BankConflicts => "same-bank different-word collisions",
            Counter::ClaimRetries => "failed PTTWAC flag claims (lost cycles refetched)",
            Counter::LocalAtomics => "local atomic operations, lane granularity",
            Counter::GlobalAtomics => "global atomic operations, lane granularity",
            Counter::DramBytes => "DRAM bytes moved by kernels (whole transactions)",
            Counter::UsefulBytes => "bytes the kernels asked for (4 x active lanes)",
            Counter::GldTransactions => "global load transactions",
            Counter::GstTransactions => "global store transactions",
            Counter::Barriers => "work-group barriers executed",
            Counter::WarpSteps => "warp scheduling slices executed",
            Counter::H2dBytes => "host-to-device bytes (uploads)",
            Counter::D2hBytes => "device-to-host bytes (downloads)",
            Counter::MemsetBytes => "device-side memset bytes (flag clears)",
            Counter::FaultsInjected => "injected faults that fired",
            Counter::StageRetries => "stage-granular recovery retries",
            Counter::TransferRetries => "DES transfer resubmissions",
            Counter::SchemeRetries => "whole-scheme recovery retries",
            Counter::AutotuneConsidered => "autotune candidate tiles considered",
            Counter::AutotuneRejectedInfeasible => {
                "autotune candidates rejected as infeasible by measurement"
            }
            Counter::AutotunePruned => "autotune candidates pruned before measurement",
            Counter::DroppedWarpSpans => "warp spans dropped by the per-launch sampling cap",
            Counter::PlanCacheHits => "serving-layer plan-cache hits (autotune skipped)",
            Counter::PlanCacheMisses => "serving-layer plan-cache misses (full autotune ran)",
            Counter::BatchesLaunched => "batched launches issued by the serving layer",
            Counter::BatchedRequests => "requests coalesced into batches (sum of occupancy)",
            Counter::QueueWaitUs => "simulated queue-wait microseconds summed over requests",
            Counter::AdmissionRejections => "requests refused at admission (bounded queue full)",
            Counter::RequestsShed => "requests shed to the host path under overload",
            Counter::PlansDegraded => "requests degraded to conservative options under overload",
            Counter::SnapshotRestores => "plan-cache snapshots restored on warm restart",
            Counter::ShardFailovers => "requests re-routed off an unhealthy affinity shard",
            Counter::SloViolations => "requests that missed their SLO (shed or over deadline)",
            Counter::AlertsRaised => "burn-rate alerts fired (rising edges only)",
            Counter::TransferFaultsInjected => {
                "transient transfer faults injected and observed by a retrying consumer"
            }
            Counter::StreamChunksCommitted => "out-of-core streaming chunks durably committed",
            Counter::StreamChunkRetries => "out-of-core chunk-granular retries after faults",
            Counter::StreamCrashResumes => "out-of-core resumes after a mid-stream engine crash",
            Counter::StreamDegradations => "out-of-core degradation-ladder steps taken",
            Counter::OversizedRouted => "oversized requests routed to the streaming path",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Serialize)]
pub struct SpanRec {
    /// Hierarchy level.
    pub level: Level,
    /// Display name. Borrowed for the static names of the request-trace
    /// hot path, owned for dynamic names (warp/kernel labels).
    pub name: std::borrow::Cow<'static, str>,
    /// Start, simulated microseconds on the DES clock.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Display track (Chrome `tid`).
    pub track: u32,
    /// Numeric annotations (occupancy, GB/s, …). Keys are static: the
    /// recording hot path stores them without per-span allocation.
    pub args: Vec<(&'static str, f64)>,
    /// Causal trace context, when this span belongs to a request trace.
    pub ctx: Option<SpanCtx>,
}

/// One instantaneous event (fault fired, retry, autotune decision…).
#[derive(Debug, Clone, Serialize)]
pub struct EventRec {
    /// Timestamp, simulated microseconds (0 when the producer has no
    /// timeline, e.g. post-hoc recovery reports).
    pub ts_us: f64,
    /// Event name (static: stored without allocation).
    pub name: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// The instrumentation sink the stack is generic over.
pub trait Recorder {
    /// False for disabled recorders: hot paths may skip building arguments.
    fn enabled(&self) -> bool;

    /// Record one completed span.
    fn span(
        &self,
        level: Level,
        name: &str,
        start_us: f64,
        dur_us: f64,
        track: u32,
        args: &[(&'static str, f64)],
    );

    /// Record one completed span carrying an explicit causal trace
    /// context. The default forwards to [`Recorder::span`] (context
    /// dropped), so context-unaware recorders keep working unchanged.
    /// Names are static so the per-request hot path records without
    /// allocating.
    #[allow(clippy::too_many_arguments)]
    fn span_ctx(
        &self,
        _ctx: SpanCtx,
        level: Level,
        name: &'static str,
        start_us: f64,
        dur_us: f64,
        track: u32,
        args: &[(&'static str, f64)],
    ) {
        self.span(level, name, start_us, dur_us, track, args);
    }

    /// Push an ambient trace context: until the matching
    /// [`Recorder::pop_ctx`], plain [`Recorder::span`] emissions from
    /// deeper layers (stages, kernels, warps) are tagged as anonymous
    /// children of this context — how kernel-launch spans join a request
    /// trace without threading ids through every signature. Default: no-op.
    fn push_ctx(&self, _ctx: SpanCtx) {}

    /// Pop the ambient trace context pushed by [`Recorder::push_ctx`].
    /// Default: no-op.
    fn pop_ctx(&self) {}

    /// Record one latency observation (microseconds) into the mergeable
    /// log2 histogram keyed by `(scope, name)`, optionally tagged with the
    /// originating trace id as the bucket's exemplar. Bounded aggregate:
    /// collected even by `counters_only` recorders. Default: no-op.
    fn latency(&self, _scope: &str, _name: &'static str, _value_us: f64, _trace_id: Option<u64>) {}

    /// Add `delta` to the typed counter `counter` under `scope` (a kernel
    /// or stage name).
    fn add(&self, scope: &str, counter: Counter, delta: u64);

    /// Record a point-in-time value (occupancy, queue busy fraction, …).
    fn gauge(&self, scope: &str, name: &'static str, value: f64);

    /// Add `count` cycles of length `len` to `scope`'s permutation
    /// cycle-length histogram.
    fn cycles(&self, scope: &str, len: usize, count: u64);

    /// Record an instantaneous event.
    fn event(&self, ts_us: f64, name: &'static str, detail: &str);
}

/// The zero-cost disabled recorder: every method is an empty `#[inline]`
/// body, so instrumented hot paths monomorphize to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn span(&self, _: Level, _: &str, _: f64, _: f64, _: u32, _: &[(&'static str, f64)]) {}
    #[inline(always)]
    fn add(&self, _: &str, _: Counter, _: u64) {}
    #[inline(always)]
    fn gauge(&self, _: &str, _: &'static str, _: f64) {}
    #[inline(always)]
    fn cycles(&self, _: &str, _: usize, _: u64) {}
    #[inline(always)]
    fn event(&self, _: f64, _: &'static str, _: &str) {}
}

#[derive(Default)]
struct TraceData {
    spans: Vec<SpanRec>,
    counters: BTreeMap<(String, Counter), u64>,
    gauges: BTreeMap<(String, &'static str), f64>,
    cycle_hist: BTreeMap<(String, usize), u64>,
    events: Vec<EventRec>,
    latency: BTreeMap<(String, &'static str), LogHisto>,
    ctx_stack: Vec<SpanCtx>,
}

/// The collecting recorder behind the exporters. Interior-mutable
/// (`Mutex`) so it can be shared by reference through the launch plumbing;
/// contention is irrelevant at trace volumes.
#[derive(Default)]
pub struct TraceRecorder {
    inner: Mutex<TraceData>,
    /// Collect spans and events (the unbounded streams).
    streams_on: bool,
    /// Collect counters, gauges, and histograms (bounded aggregates).
    aggregates_on: bool,
}

impl TraceRecorder {
    /// An enabled recorder.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Mutex::default(), streams_on: true, aggregates_on: true }
    }

    /// A *disabled* collecting recorder: every emission is dropped. Used by
    /// tests to assert that instrumented paths emit nothing when disabled
    /// (the monomorphized-noop guarantee, observable).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: Mutex::default(), streams_on: false, aggregates_on: false }
    }

    /// A bounded recorder for long soaks: counters, gauges, and histograms
    /// aggregate normally, but the unbounded streams (spans, events) are
    /// dropped — memory stays O(distinct scopes) over millions of
    /// requests. `enabled()` is false, so hot paths also skip span
    /// argument marshalling.
    #[must_use]
    pub fn counters_only() -> Self {
        Self { inner: Mutex::default(), streams_on: false, aggregates_on: true }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceData> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Snapshot of all recorded spans.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRec> {
        self.lock().spans.clone()
    }

    /// Snapshot of all recorded events.
    #[must_use]
    pub fn events(&self) -> Vec<EventRec> {
        self.lock().events.clone()
    }

    /// Value of one counter under one scope (0 when never touched).
    #[must_use]
    pub fn counter(&self, scope: &str, counter: Counter) -> u64 {
        self.lock().counters.get(&(scope.to_string(), counter)).copied().unwrap_or(0)
    }

    /// Sum of one counter over all scopes.
    #[must_use]
    pub fn total(&self, counter: Counter) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((_, c), _)| *c == counter)
            .map(|(_, v)| v)
            .sum()
    }

    /// All `(scope, counter, value)` triples, sorted.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, Counter, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|((s, c), v)| (s.clone(), *c, *v))
            .collect()
    }

    /// All `(scope, gauge-name, value)` triples, sorted.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, &'static str, f64)> {
        self.lock()
            .gauges
            .iter()
            .map(|((s, n), v)| (s.clone(), *n, *v))
            .collect()
    }

    /// Cycle-length histogram: `(scope, length, count)` triples, sorted.
    #[must_use]
    pub fn cycle_histogram(&self) -> Vec<(String, usize, u64)> {
        self.lock()
            .cycle_hist
            .iter()
            .map(|((s, l), v)| (s.clone(), *l, *v))
            .collect()
    }

    /// Snapshot of one latency histogram (`None` when never observed).
    #[must_use]
    pub fn latency_histogram(&self, scope: &str, name: &str) -> Option<LogHisto> {
        self.lock()
            .latency
            .iter()
            .find(|((s, n), _)| s == scope && *n == name)
            .map(|(_, h)| h.clone())
    }

    /// All latency histograms as `(scope, name, histogram)` triples,
    /// sorted by key.
    #[must_use]
    pub fn latency_histograms(&self) -> Vec<(String, &'static str, LogHisto)> {
        self.lock()
            .latency
            .iter()
            .map(|((s, n), h)| (s.clone(), *n, h.clone()))
            .collect()
    }

    /// All spans belonging to trace `trace_id`, in recording order.
    #[must_use]
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanRec> {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.ctx.is_some_and(|c| c.trace_id == trace_id))
            .cloned()
            .collect()
    }

    /// Distinct trace ids present in the span stream, ascending.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> =
            self.lock().spans.iter().filter_map(|s| s.ctx.map(|c| c.trace_id)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// True when nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let d = self.lock();
        d.spans.is_empty()
            && d.counters.is_empty()
            && d.gauges.is_empty()
            && d.cycle_hist.is_empty()
            && d.events.is_empty()
            && d.latency.is_empty()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        self.streams_on
    }

    fn span(
        &self,
        level: Level,
        name: &str,
        start_us: f64,
        dur_us: f64,
        track: u32,
        args: &[(&'static str, f64)],
    ) {
        if !self.streams_on {
            return;
        }
        let mut d = self.lock();
        // Deep spans recorded inside a push_ctx window become anonymous
        // leaf children of the ambient context.
        let ctx = d.ctx_stack.last().map(|top| top.child(0));
        d.spans.push(SpanRec {
            level,
            name: std::borrow::Cow::Owned(name.to_string()),
            start_us,
            dur_us,
            track,
            args: args.to_vec(),
            ctx,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn span_ctx(
        &self,
        ctx: SpanCtx,
        level: Level,
        name: &'static str,
        start_us: f64,
        dur_us: f64,
        track: u32,
        args: &[(&'static str, f64)],
    ) {
        if !self.streams_on {
            return;
        }
        self.lock().spans.push(SpanRec {
            level,
            name: std::borrow::Cow::Borrowed(name),
            start_us,
            dur_us,
            track,
            args: args.to_vec(),
            ctx: Some(ctx),
        });
    }

    fn push_ctx(&self, ctx: SpanCtx) {
        if !self.streams_on {
            return;
        }
        self.lock().ctx_stack.push(ctx);
    }

    fn pop_ctx(&self) {
        if !self.streams_on {
            return;
        }
        self.lock().ctx_stack.pop();
    }

    fn latency(&self, scope: &str, name: &'static str, value_us: f64, trace_id: Option<u64>) {
        if !self.aggregates_on {
            return;
        }
        self.lock()
            .latency
            .entry((scope.to_string(), name))
            .or_default()
            .observe(value_us, trace_id);
    }

    fn add(&self, scope: &str, counter: Counter, delta: u64) {
        if !self.aggregates_on || delta == 0 {
            return;
        }
        *self.lock().counters.entry((scope.to_string(), counter)).or_insert(0) += delta;
    }

    fn gauge(&self, scope: &str, name: &'static str, value: f64) {
        if !self.aggregates_on {
            return;
        }
        self.lock().gauges.insert((scope.to_string(), name), value);
    }

    fn cycles(&self, scope: &str, len: usize, count: u64) {
        if !self.aggregates_on || count == 0 {
            return;
        }
        *self.lock().cycle_hist.entry((scope.to_string(), len)).or_insert(0) += count;
    }

    fn event(&self, ts_us: f64, name: &'static str, detail: &str) {
        if !self.streams_on {
            return;
        }
        self.lock().events.push(EventRec { ts_us, name, detail: detail.to_string() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        // Calls are accepted and do nothing (compile-time no-ops).
        r.span(Level::Kernel, "k", 0.0, 1.0, 2, &[("x", 1.0)]);
        r.add("k", Counter::PositionConflicts, 3);
        r.gauge("k", "occupancy", 0.5);
        r.cycles("k", 4, 2);
        r.event(0.0, "fault", "detail");
    }

    #[test]
    fn trace_recorder_collects() {
        let r = TraceRecorder::new();
        assert!(r.enabled() && r.is_empty());
        r.span(Level::Stage, "100!", 0.0, 10.0, 1, &[("gbps", 42.0)]);
        r.add("k", Counter::LockConflicts, 5);
        r.add("k", Counter::LockConflicts, 2);
        r.gauge("k", "occupancy", 0.75);
        r.cycles("k", 3, 7);
        r.event(1.5, "fault", "drop");
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.counter("k", Counter::LockConflicts), 7);
        assert_eq!(r.total(Counter::LockConflicts), 7);
        assert_eq!(r.gauges(), vec![("k".to_string(), "occupancy", 0.75)]);
        assert_eq!(r.cycle_histogram(), vec![("k".to_string(), 3, 7)]);
        assert_eq!(r.events().len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn counters_only_drops_streams_keeps_aggregates() {
        let r = TraceRecorder::counters_only();
        assert!(!r.enabled(), "hot paths must skip span marshalling");
        r.span(Level::Warp, "w", 0.0, 1.0, 9, &[]);
        r.event(0.0, "e", "d");
        r.add("soak", Counter::RequestsShed, 4);
        r.gauge("soak", "occupancy", 0.5);
        r.cycles("soak", 2, 3);
        assert!(r.spans().is_empty() && r.events().is_empty(), "streams dropped");
        assert_eq!(r.counter("soak", Counter::RequestsShed), 4);
        assert_eq!(r.gauges().len(), 1);
        assert_eq!(r.cycle_histogram(), vec![("soak".to_string(), 2, 3)]);
    }

    #[test]
    fn disabled_trace_recorder_emits_nothing() {
        let r = TraceRecorder::disabled();
        assert!(!r.enabled());
        r.span(Level::Warp, "w", 0.0, 1.0, 9, &[]);
        r.span_ctx(SpanCtx::root(7, 1), Level::Request, "req", 0.0, 1.0, 40, &[]);
        r.add("k", Counter::BankConflicts, 10);
        r.gauge("k", "g", 1.0);
        r.cycles("k", 2, 2);
        r.event(0.0, "e", "d");
        r.latency("k", "e2e_us", 5.0, Some(7));
        assert!(r.is_empty());
    }

    #[test]
    fn ctx_stack_tags_plain_spans_as_leaf_children() {
        let r = TraceRecorder::new();
        let root = SpanCtx::root(0xABCD, 1);
        r.span_ctx(root, Level::Request, "request", 0.0, 10.0, 40, &[("id", 3.0)]);
        let exec = root.child(4);
        r.span_ctx(exec, Level::Kernel, "exec", 2.0, 8.0, 2, &[]);
        r.push_ctx(exec);
        // A deep layer that knows nothing about traces...
        r.span(Level::Warp, "warp 0", 3.0, 1.0, 9, &[]);
        r.pop_ctx();
        // ...and one recorded outside the window stays untagged.
        r.span(Level::Warp, "warp 1", 5.0, 1.0, 9, &[]);

        let trace = r.trace_spans(0xABCD);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].ctx, Some(root));
        assert_eq!(trace[1].ctx, Some(exec));
        let leaf = trace[2].ctx.expect("leaf tagged");
        assert_eq!(leaf.trace_id, 0xABCD);
        assert_eq!(leaf.span_id, 0);
        assert_eq!(leaf.parent_span_id, 4);
        assert_eq!(r.trace_ids(), vec![0xABCD]);
        assert!(r.spans().iter().any(|s| s.ctx.is_none()));
        // Every span in the trace is reachable from the root via parents.
        let ids: Vec<u64> = trace.iter().map(|s| s.ctx.unwrap().span_id).collect();
        for s in &trace {
            let p = s.ctx.unwrap().parent_span_id;
            assert!(p == 0 || ids.contains(&p), "orphan span {}", s.name);
        }
    }

    #[test]
    fn latency_histograms_aggregate_with_exemplars() {
        let r = TraceRecorder::new();
        r.latency("class:batch", "queue_wait_us", 100.0, Some(0x1));
        r.latency("class:batch", "queue_wait_us", 120.0, Some(0x2));
        r.latency("shard:0", "queue_wait_us", 7.0, None);
        let h = r.latency_histogram("class:batch", "queue_wait_us").expect("histo");
        assert_eq!(h.count(), 2);
        assert!((h.mean_us() - 110.0).abs() < 1e-12);
        assert_eq!(h.p99_us(), 128.0);
        // 100 and 120 share bucket 7 (64..128): last exemplar wins.
        assert_eq!(h.exemplar(7).expect("exemplar").trace_id, 0x2);
        assert_eq!(r.latency_histograms().len(), 2);
        assert!(r.latency_histogram("class:batch", "nope").is_none());
    }

    #[test]
    fn counters_only_stays_bounded_over_a_100k_stream() {
        // Satellite: the soak recorder's memory proxy must stay flat no
        // matter how many spans/events the serving layer would emit.
        let r = TraceRecorder::counters_only();
        for i in 0..100_000u64 {
            r.span(Level::Request, "request", i as f64, 1.0, 40, &[("id", i as f64)]);
            r.span_ctx(SpanCtx::root(i, 1), Level::Request, "request", i as f64, 1.0, 40, &[]);
            r.event(i as f64, "request_shed", "overload");
            r.push_ctx(SpanCtx::root(i, 1));
            r.pop_ctx();
            r.add("soak", Counter::BatchedRequests, 1);
            r.latency("class:batch", "e2e_us", (i % 1024) as f64, Some(i));
            if i % 25_000 == 0 {
                assert_eq!(r.spans().len(), 0, "span stream must stay empty");
                assert_eq!(r.events().len(), 0, "event stream must stay empty");
            }
        }
        assert_eq!(r.spans().len(), 0);
        assert_eq!(r.events().len(), 0);
        assert_eq!(r.counter("soak", Counter::BatchedRequests), 100_000);
        let h = r.latency_histogram("class:batch", "e2e_us").expect("histo");
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.buckets().len(), crate::histo::NUM_BUCKETS);
    }
}
