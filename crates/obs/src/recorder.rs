//! The [`Recorder`] trait, its zero-cost [`NoopRecorder`], and the
//! collecting [`TraceRecorder`].
//!
//! ## Design
//!
//! The simulator computes durations *after* an activity completes (the
//! four-bound time model needs the whole launch), so spans are recorded as
//! **completed intervals** with explicit start/duration in simulated
//! microseconds rather than via begin/end calls. Orchestrators (the
//! pipeline, the DES queue scheduler) thread a cumulative time base through
//! the layers, which keeps every timestamp on the single DES clock.
//!
//! Hot paths are generic over `R: Recorder` and gate argument marshalling on
//! [`Recorder::enabled`]; with [`NoopRecorder`] (`enabled() == false`,
//! empty inline bodies) the instrumentation monomorphizes to nothing.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Hierarchy level of a span (also the Chrome-trace category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Level {
    /// A whole staged algorithm (e.g. one 3-stage plan execution).
    Algorithm,
    /// One stage of a plan (one elementary transposition).
    Stage,
    /// One kernel launch on the simulated device.
    Kernel,
    /// One warp scheduling slice (sampled; see `DroppedWarpSpans`).
    Warp,
    /// One DES command-queue span (transfer or kernel on an engine).
    Queue,
}

impl Level {
    /// Category string for exporters.
    #[must_use]
    pub fn cat(self) -> &'static str {
        match self {
            Level::Algorithm => "algorithm",
            Level::Stage => "stage",
            Level::Kernel => "kernel",
            Level::Warp => "warp",
            Level::Queue => "queue",
        }
    }

    /// Default display track (Chrome `tid`) for this level; warp and queue
    /// spans add their own offsets on top.
    #[must_use]
    pub fn base_track(self) -> u32 {
        match self {
            Level::Algorithm => 0,
            Level::Stage => 1,
            Level::Kernel => 2,
            Level::Warp => 8,
            Level::Queue => 100,
        }
    }
}

/// Typed counters — the closed set of quantities the paper's analysis uses.
/// A closed enum (vs. free-form strings) keeps hot-path increments
/// allocation-free and makes exporter names stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Counter {
    /// Intra-warp same-word atomic collisions (§5.1.1).
    PositionConflicts,
    /// Same-lock different-word local-atomic collisions (§5.1.2).
    LockConflicts,
    /// Same-bank different-word collisions (§5.1.2).
    BankConflicts,
    /// Failed flag claims (a lane lost a cycle to another owner and had to
    /// fetch a new start) — the PTTWAC claim-protocol retry count.
    ClaimRetries,
    /// Local atomic operations, lane granularity.
    LocalAtomics,
    /// Global atomic operations, lane granularity.
    GlobalAtomics,
    /// DRAM bytes moved by kernels (whole transactions).
    DramBytes,
    /// Bytes the kernels asked for (4 × active lanes).
    UsefulBytes,
    /// Global load transactions.
    GldTransactions,
    /// Global store transactions.
    GstTransactions,
    /// Work-group barriers executed.
    Barriers,
    /// Warp scheduling slices executed.
    WarpSteps,
    /// Host→device bytes (uploads).
    H2dBytes,
    /// Device→host bytes (downloads).
    D2hBytes,
    /// Device-side memset bytes (flag clears).
    MemsetBytes,
    /// Injected faults that fired.
    FaultsInjected,
    /// Stage-granular recovery retries.
    StageRetries,
    /// DES transfer resubmissions.
    TransferRetries,
    /// Whole-scheme recovery retries.
    SchemeRetries,
    /// Autotune candidate tiles considered (measured or pruned).
    AutotuneConsidered,
    /// Autotune candidates rejected as infeasible by measurement.
    AutotuneRejectedInfeasible,
    /// Autotune candidates pruned before measurement (§7.4 heuristic).
    AutotunePruned,
    /// Warp spans dropped by the per-launch sampling cap (no silent caps:
    /// truncation is itself counted).
    DroppedWarpSpans,
    /// Serving-layer plan-cache hits (autotune skipped).
    PlanCacheHits,
    /// Serving-layer plan-cache misses (full plan + autotune ran).
    PlanCacheMisses,
    /// Batched launches issued by the serving layer.
    BatchesLaunched,
    /// Requests coalesced into batches (Σ batch occupancy).
    BatchedRequests,
    /// Simulated queue-wait, microseconds, summed over served requests.
    QueueWaitUs,
    /// Requests refused at admission because the bounded queue was full.
    AdmissionRejections,
    /// Requests shed to the host path under overload (served correct but
    /// never launched on a device).
    RequestsShed,
    /// Requests degraded from the tuned plan to conservative options under
    /// overload (the graceful-degradation ladder's first rung).
    PlansDegraded,
    /// Plan-cache snapshots successfully restored on warm restart.
    SnapshotRestores,
    /// Requests re-routed because their affinity shard was unhealthy.
    ShardFailovers,
}

impl Counter {
    /// Stable exporter name (Prometheus metric stem).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::PositionConflicts => "position_conflicts",
            Counter::LockConflicts => "lock_conflicts",
            Counter::BankConflicts => "bank_conflicts",
            Counter::ClaimRetries => "claim_retries",
            Counter::LocalAtomics => "local_atomics",
            Counter::GlobalAtomics => "global_atomics",
            Counter::DramBytes => "dram_bytes",
            Counter::UsefulBytes => "useful_bytes",
            Counter::GldTransactions => "gld_transactions",
            Counter::GstTransactions => "gst_transactions",
            Counter::Barriers => "barriers",
            Counter::WarpSteps => "warp_steps",
            Counter::H2dBytes => "h2d_bytes",
            Counter::D2hBytes => "d2h_bytes",
            Counter::MemsetBytes => "memset_bytes",
            Counter::FaultsInjected => "faults_injected",
            Counter::StageRetries => "stage_retries",
            Counter::TransferRetries => "transfer_retries",
            Counter::SchemeRetries => "scheme_retries",
            Counter::AutotuneConsidered => "autotune_considered",
            Counter::AutotuneRejectedInfeasible => "autotune_rejected_infeasible",
            Counter::AutotunePruned => "autotune_pruned",
            Counter::DroppedWarpSpans => "dropped_warp_spans",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::BatchesLaunched => "batches_launched",
            Counter::BatchedRequests => "batched_requests",
            Counter::QueueWaitUs => "queue_wait_us",
            Counter::AdmissionRejections => "admission_rejections",
            Counter::RequestsShed => "requests_shed",
            Counter::PlansDegraded => "plans_degraded",
            Counter::SnapshotRestores => "snapshot_restores",
            Counter::ShardFailovers => "shard_failovers",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Serialize)]
pub struct SpanRec {
    /// Hierarchy level.
    pub level: Level,
    /// Display name.
    pub name: String,
    /// Start, simulated microseconds on the DES clock.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Display track (Chrome `tid`).
    pub track: u32,
    /// Numeric annotations (occupancy, GB/s, …).
    pub args: Vec<(String, f64)>,
}

/// One instantaneous event (fault fired, retry, autotune decision…).
#[derive(Debug, Clone, Serialize)]
pub struct EventRec {
    /// Timestamp, simulated microseconds (0 when the producer has no
    /// timeline, e.g. post-hoc recovery reports).
    pub ts_us: f64,
    /// Event name.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
}

/// The instrumentation sink the stack is generic over.
pub trait Recorder {
    /// False for disabled recorders: hot paths may skip building arguments.
    fn enabled(&self) -> bool;

    /// Record one completed span.
    fn span(
        &self,
        level: Level,
        name: &str,
        start_us: f64,
        dur_us: f64,
        track: u32,
        args: &[(&'static str, f64)],
    );

    /// Add `delta` to the typed counter `counter` under `scope` (a kernel
    /// or stage name).
    fn add(&self, scope: &str, counter: Counter, delta: u64);

    /// Record a point-in-time value (occupancy, queue busy fraction, …).
    fn gauge(&self, scope: &str, name: &'static str, value: f64);

    /// Add `count` cycles of length `len` to `scope`'s permutation
    /// cycle-length histogram.
    fn cycles(&self, scope: &str, len: usize, count: u64);

    /// Record an instantaneous event.
    fn event(&self, ts_us: f64, name: &'static str, detail: &str);
}

/// The zero-cost disabled recorder: every method is an empty `#[inline]`
/// body, so instrumented hot paths monomorphize to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn span(&self, _: Level, _: &str, _: f64, _: f64, _: u32, _: &[(&'static str, f64)]) {}
    #[inline(always)]
    fn add(&self, _: &str, _: Counter, _: u64) {}
    #[inline(always)]
    fn gauge(&self, _: &str, _: &'static str, _: f64) {}
    #[inline(always)]
    fn cycles(&self, _: &str, _: usize, _: u64) {}
    #[inline(always)]
    fn event(&self, _: f64, _: &'static str, _: &str) {}
}

#[derive(Default)]
struct TraceData {
    spans: Vec<SpanRec>,
    counters: BTreeMap<(String, Counter), u64>,
    gauges: BTreeMap<(String, &'static str), f64>,
    cycle_hist: BTreeMap<(String, usize), u64>,
    events: Vec<EventRec>,
}

/// The collecting recorder behind the exporters. Interior-mutable
/// (`Mutex`) so it can be shared by reference through the launch plumbing;
/// contention is irrelevant at trace volumes.
#[derive(Default)]
pub struct TraceRecorder {
    inner: Mutex<TraceData>,
    /// Collect spans and events (the unbounded streams).
    streams_on: bool,
    /// Collect counters, gauges, and histograms (bounded aggregates).
    aggregates_on: bool,
}

impl TraceRecorder {
    /// An enabled recorder.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Mutex::default(), streams_on: true, aggregates_on: true }
    }

    /// A *disabled* collecting recorder: every emission is dropped. Used by
    /// tests to assert that instrumented paths emit nothing when disabled
    /// (the monomorphized-noop guarantee, observable).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: Mutex::default(), streams_on: false, aggregates_on: false }
    }

    /// A bounded recorder for long soaks: counters, gauges, and histograms
    /// aggregate normally, but the unbounded streams (spans, events) are
    /// dropped — memory stays O(distinct scopes) over millions of
    /// requests. `enabled()` is false, so hot paths also skip span
    /// argument marshalling.
    #[must_use]
    pub fn counters_only() -> Self {
        Self { inner: Mutex::default(), streams_on: false, aggregates_on: true }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceData> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Snapshot of all recorded spans.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRec> {
        self.lock().spans.clone()
    }

    /// Snapshot of all recorded events.
    #[must_use]
    pub fn events(&self) -> Vec<EventRec> {
        self.lock().events.clone()
    }

    /// Value of one counter under one scope (0 when never touched).
    #[must_use]
    pub fn counter(&self, scope: &str, counter: Counter) -> u64 {
        self.lock().counters.get(&(scope.to_string(), counter)).copied().unwrap_or(0)
    }

    /// Sum of one counter over all scopes.
    #[must_use]
    pub fn total(&self, counter: Counter) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((_, c), _)| *c == counter)
            .map(|(_, v)| v)
            .sum()
    }

    /// All `(scope, counter, value)` triples, sorted.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, Counter, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|((s, c), v)| (s.clone(), *c, *v))
            .collect()
    }

    /// All `(scope, gauge-name, value)` triples, sorted.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, &'static str, f64)> {
        self.lock()
            .gauges
            .iter()
            .map(|((s, n), v)| (s.clone(), *n, *v))
            .collect()
    }

    /// Cycle-length histogram: `(scope, length, count)` triples, sorted.
    #[must_use]
    pub fn cycle_histogram(&self) -> Vec<(String, usize, u64)> {
        self.lock()
            .cycle_hist
            .iter()
            .map(|((s, l), v)| (s.clone(), *l, *v))
            .collect()
    }

    /// True when nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let d = self.lock();
        d.spans.is_empty()
            && d.counters.is_empty()
            && d.gauges.is_empty()
            && d.cycle_hist.is_empty()
            && d.events.is_empty()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        self.streams_on
    }

    fn span(
        &self,
        level: Level,
        name: &str,
        start_us: f64,
        dur_us: f64,
        track: u32,
        args: &[(&'static str, f64)],
    ) {
        if !self.streams_on {
            return;
        }
        self.lock().spans.push(SpanRec {
            level,
            name: name.to_string(),
            start_us,
            dur_us,
            track,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    fn add(&self, scope: &str, counter: Counter, delta: u64) {
        if !self.aggregates_on || delta == 0 {
            return;
        }
        *self.lock().counters.entry((scope.to_string(), counter)).or_insert(0) += delta;
    }

    fn gauge(&self, scope: &str, name: &'static str, value: f64) {
        if !self.aggregates_on {
            return;
        }
        self.lock().gauges.insert((scope.to_string(), name), value);
    }

    fn cycles(&self, scope: &str, len: usize, count: u64) {
        if !self.aggregates_on || count == 0 {
            return;
        }
        *self.lock().cycle_hist.entry((scope.to_string(), len)).or_insert(0) += count;
    }

    fn event(&self, ts_us: f64, name: &'static str, detail: &str) {
        if !self.streams_on {
            return;
        }
        self.lock().events.push(EventRec {
            ts_us,
            name: name.to_string(),
            detail: detail.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        // Calls are accepted and do nothing (compile-time no-ops).
        r.span(Level::Kernel, "k", 0.0, 1.0, 2, &[("x", 1.0)]);
        r.add("k", Counter::PositionConflicts, 3);
        r.gauge("k", "occupancy", 0.5);
        r.cycles("k", 4, 2);
        r.event(0.0, "fault", "detail");
    }

    #[test]
    fn trace_recorder_collects() {
        let r = TraceRecorder::new();
        assert!(r.enabled() && r.is_empty());
        r.span(Level::Stage, "100!", 0.0, 10.0, 1, &[("gbps", 42.0)]);
        r.add("k", Counter::LockConflicts, 5);
        r.add("k", Counter::LockConflicts, 2);
        r.gauge("k", "occupancy", 0.75);
        r.cycles("k", 3, 7);
        r.event(1.5, "fault", "drop");
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.counter("k", Counter::LockConflicts), 7);
        assert_eq!(r.total(Counter::LockConflicts), 7);
        assert_eq!(r.gauges(), vec![("k".to_string(), "occupancy", 0.75)]);
        assert_eq!(r.cycle_histogram(), vec![("k".to_string(), 3, 7)]);
        assert_eq!(r.events().len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn counters_only_drops_streams_keeps_aggregates() {
        let r = TraceRecorder::counters_only();
        assert!(!r.enabled(), "hot paths must skip span marshalling");
        r.span(Level::Warp, "w", 0.0, 1.0, 9, &[]);
        r.event(0.0, "e", "d");
        r.add("soak", Counter::RequestsShed, 4);
        r.gauge("soak", "occupancy", 0.5);
        r.cycles("soak", 2, 3);
        assert!(r.spans().is_empty() && r.events().is_empty(), "streams dropped");
        assert_eq!(r.counter("soak", Counter::RequestsShed), 4);
        assert_eq!(r.gauges().len(), 1);
        assert_eq!(r.cycle_histogram(), vec![("soak".to_string(), 2, 3)]);
    }

    #[test]
    fn disabled_trace_recorder_emits_nothing() {
        let r = TraceRecorder::disabled();
        assert!(!r.enabled());
        r.span(Level::Warp, "w", 0.0, 1.0, 9, &[]);
        r.add("k", Counter::BankConflicts, 10);
        r.gauge("k", "g", 1.0);
        r.cycles("k", 2, 2);
        r.event(0.0, "e", "d");
        assert!(r.is_empty());
    }
}
