//! Versioned benchmark-report schema and the regression comparison behind
//! `repro --check`.
//!
//! Every archived `bench_out/*.json` is a [`BenchReport`] envelope:
//! a `schema_version`, the experiment name, [`Provenance`] (git revision,
//! full simulated-device configuration, seed, scale), and the experiment's
//! rows as a free-form value tree. The regression harness re-runs an
//! experiment, extracts throughput metrics ([`extract_metrics`]) from both
//! the committed baseline and the fresh report, and flags every
//! higher-is-better metric that dropped by more than the tolerance
//! ([`compare_metrics`]).

use serde::{Serialize, Value};

/// Current report schema version. Bump on breaking layout changes; the
/// checker refuses to compare mismatched versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Where a report came from: enough to reproduce it.
#[derive(Debug, Clone, Serialize)]
pub struct Provenance {
    /// `git rev-parse --short HEAD` at generation time (`"unknown"` outside
    /// a work tree).
    pub git_rev: String,
    /// Full simulated-device configuration the run used (the serialized
    /// `DeviceSpec`), so a baseline is only ever compared against runs of
    /// the same simulated hardware.
    pub device: Value,
    /// RNG seed of the run (0 for deterministic experiments).
    pub seed: u64,
    /// Workload scale preset (`"smoke"`, `"paper"`, …).
    pub scale: String,
    /// Warp-scheduling policy the run used (`"round-robin"`,
    /// `"pct(seed=S,d=D)"`, …) — schedule provenance, so a report from a
    /// randomized-schedule campaign is never mistaken for a baseline run.
    pub schedule: String,
    /// How shapes were planned: `"heuristic"` for direct per-run planning,
    /// `"plan-cache"` for the serving layer, or a specific short-circuit
    /// scheme name (`"identity"`, `"square-tiled"`, …) when one applies to
    /// the whole report.
    pub scheme: String,
    /// Simulation engine the run executed on: `"serial"` or `"parallel"`.
    /// Wall-clock (`wall_*`) metrics are only comparable between runs of
    /// the same engine.
    pub engine: String,
    /// Worker threads the parallel engine used (1 for serial runs), so a
    /// wall-clock baseline from a 1-core runner is never silently compared
    /// against an 8-core run.
    pub sim_threads: u64,
}

/// The versioned envelope every archived benchmark JSON uses.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Experiment name (`fig6`, `table2`, …).
    pub experiment: String,
    /// Reproduction provenance.
    pub provenance: Provenance,
    /// Experiment rows, exactly the value tree the experiment produced.
    pub rows: Value,
}

impl BenchReport {
    /// Wrap experiment rows in the versioned envelope.
    pub fn new(experiment: &str, provenance: Provenance, rows: &impl Serialize) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            experiment: experiment.to_string(),
            provenance,
            rows: rows.to_value(),
        }
    }
}

/// Best-effort current git revision (short), `"unknown"` when git or the
/// work tree is unavailable. Resolved by shelling out to `git rev-parse`
/// once per process and cached — `BenchReport`s are minted per request
/// stream in the serving experiments, and the revision cannot change
/// mid-run.
#[must_use]
pub fn current_git_rev() -> String {
    static GIT_REV: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    GIT_REV
        .get_or_init(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "--short=12", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_string())
        })
        .clone()
}

/// One comparable metric extracted from a report: a throughput-style
/// higher-is-better quantity, addressed by its path in the value tree.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Metric {
    /// Slash-joined path from the report root (array indices as numbers),
    /// e.g. `rows/3/gbps`.
    pub path: String,
    /// The value.
    pub value: f64,
}

/// One detected regression.
#[derive(Debug, Clone, Serialize)]
pub struct Regression {
    /// Metric path (see [`Metric::path`]).
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value (`NaN` when the metric disappeared).
    pub fresh: f64,
    /// Relative change, `(fresh - baseline) / baseline` (negative = slower).
    pub change: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.fresh.is_nan() {
            write!(f, "{}: metric missing (baseline {:.3})", self.path, self.baseline)
        } else {
            write!(
                f,
                "{}: {:.3} -> {:.3} ({:+.1}%)",
                self.path,
                self.baseline,
                self.fresh,
                self.change * 100.0
            )
        }
    }
}

/// Walk a report's value tree and collect every higher-is-better
/// throughput metric: numeric leaves whose key contains `gbps` or
/// `speedup` — except `wall_`-prefixed keys (e.g. `wall_gbps`), which
/// are host measurements and belong to [`extract_wall_metrics`].
///
/// Paths are stable across runs because the serializer preserves field and
/// row order, so a path identifies the same logical measurement in the
/// baseline and the fresh report.
#[must_use]
pub fn extract_metrics(report: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    walk(report, "", &mut out);
    out
}

/// Walk a report's value tree and collect every **host wall-clock** metric:
/// numeric leaves whose key starts with `wall_`.
///
/// These are deliberately a separate channel from [`extract_metrics`]: the
/// simulated-throughput keys (`gbps`/`speedup`) are deterministic and gate
/// with a tight tolerance, while `wall_*` numbers measure the real machine
/// the harness ran on and need a far wider tolerance (shared CI runners
/// jitter by tens of percent). Experiments therefore never name a host
/// timing with `gbps`/`speedup`, and never name a simulated quantity with
/// a `wall_` prefix.
#[must_use]
pub fn extract_wall_metrics(report: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    walk_by(report, "", &mut out, &|k| k.starts_with("wall_"));
    out
}

/// Walk a report's value tree and collect every **lower-is-better SLO**
/// metric: numeric leaves whose key starts with `slo_` (queue-wait
/// percentiles, shed/reject rates from the soak harness).
///
/// A third channel next to [`extract_metrics`] (higher-is-better
/// throughput) and [`extract_wall_metrics`] (host wall clock): SLO numbers
/// are deterministic simulated quantities, but *lower* is better, so they
/// gate with the inverted comparison of [`compare_slo_metrics`].
/// Experiments therefore never name a throughput with an `slo_` prefix.
#[must_use]
pub fn extract_slo_metrics(report: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    walk_by(report, "", &mut out, &|k| k.starts_with("slo_"));
    out
}

/// Compare fresh **lower-is-better** metrics against a baseline.
///
/// The mirror image of [`compare_metrics`]: a regression is a metric that
/// *rose* above `baseline * (1 + tolerance)`, or that exists in the
/// baseline but not in the fresh report. Improvements (drops) and new
/// metrics never fail. A zero baseline fails on any fresh value above
/// `tolerance` (absolute), so a baseline with zero sheds still gates.
#[must_use]
pub fn compare_slo_metrics(
    baseline: &[Metric],
    fresh: &[Metric],
    tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for b in baseline {
        match fresh.iter().find(|f| f.path == b.path) {
            None => regressions.push(Regression {
                path: b.path.clone(),
                baseline: b.value,
                fresh: f64::NAN,
                change: f64::NAN,
            }),
            Some(f) => {
                let limit = if b.value > 0.0 { b.value * (1.0 + tolerance) } else { tolerance };
                if f.value > limit {
                    let change = if b.value > 0.0 {
                        (f.value - b.value) / b.value
                    } else {
                        f64::INFINITY
                    };
                    regressions.push(Regression {
                        path: b.path.clone(),
                        baseline: b.value,
                        fresh: f.value,
                        change,
                    });
                }
            }
        }
    }
    regressions
}

fn walk(v: &Value, path: &str, out: &mut Vec<Metric>) {
    walk_by(v, path, out, &|k| {
        (k.contains("gbps") || k.contains("speedup")) && !k.starts_with("wall_")
    });
}

fn walk_by(v: &Value, path: &str, out: &mut Vec<Metric>, is_metric: &dyn Fn(&str) -> bool) {
    match v {
        Value::Obj(entries) => {
            for (k, val) in entries {
                let child = if path.is_empty() { k.clone() } else { format!("{path}/{k}") };
                if is_metric(k) {
                    if let Some(x) = val.as_f64() {
                        out.push(Metric { path: child, value: x });
                        continue;
                    }
                }
                walk_by(val, &child, out, is_metric);
            }
        }
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let child = if path.is_empty() { i.to_string() } else { format!("{path}/{i}") };
                walk_by(item, &child, out, is_metric);
            }
        }
        _ => {}
    }
}

/// Compare fresh metrics against a baseline with a relative tolerance.
///
/// Returns every regression: a metric that dropped below
/// `baseline * (1 - tolerance)`, or that exists in the baseline but not in
/// the fresh report (shape drift is a failure, not a silent skip).
/// Improvements and new metrics never fail the check.
#[must_use]
pub fn compare_metrics(baseline: &[Metric], fresh: &[Metric], tolerance: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for b in baseline {
        match fresh.iter().find(|f| f.path == b.path) {
            None => regressions.push(Regression {
                path: b.path.clone(),
                baseline: b.value,
                fresh: f64::NAN,
                change: f64::NAN,
            }),
            Some(f) => {
                if b.value > 0.0 && f.value < b.value * (1.0 - tolerance) {
                    regressions.push(Regression {
                        path: b.path.clone(),
                        baseline: b.value,
                        fresh: f.value,
                        change: (f.value - b.value) / b.value,
                    });
                }
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_rev_is_cached_and_stable() {
        let a = current_git_rev();
        let b = current_git_rev();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    fn report_rows(gbps: &[f64]) -> Value {
        Value::Arr(
            gbps.iter()
                .map(|&g| {
                    Value::Obj(vec![
                        ("input".to_string(), Value::Str("4096x512".to_string())),
                        ("gbps".to_string(), Value::Float(g)),
                        ("lock_conflicts".to_string(), Value::UInt(17)),
                    ])
                })
                .collect(),
        )
    }

    #[test]
    fn extracts_only_gbps_keys_with_paths() {
        let v = Value::Obj(vec![
            ("rows".to_string(), report_rows(&[10.0, 20.0])),
            (
                "summary".to_string(),
                Value::Obj(vec![("effective_gbps".to_string(), Value::Float(15.0))]),
            ),
        ]);
        let m = extract_metrics(&v);
        assert_eq!(
            m,
            vec![
                Metric { path: "rows/0/gbps".into(), value: 10.0 },
                Metric { path: "rows/1/gbps".into(), value: 20.0 },
                Metric { path: "summary/effective_gbps".into(), value: 15.0 },
            ]
        );
    }

    #[test]
    fn wall_metrics_are_a_separate_channel() {
        let v = Value::Obj(vec![
            ("gbps".to_string(), Value::Float(10.0)),
            ("wall_gain_x".to_string(), Value::Float(2.5)),
            (
                "summary".to_string(),
                Value::Obj(vec![("wall_serial_ms".to_string(), Value::Float(120.0))]),
            ),
            ("firewall_ms".to_string(), Value::Float(9.0)), // prefix, not substring
            // A *host-measured* throughput: wall channel only, never tight.
            ("wall_gbps".to_string(), Value::Float(6.0)),
        ]);
        let wall = extract_wall_metrics(&v);
        assert_eq!(
            wall,
            vec![
                Metric { path: "wall_gain_x".into(), value: 2.5 },
                Metric { path: "summary/wall_serial_ms".into(), value: 120.0 },
                Metric { path: "wall_gbps".into(), value: 6.0 },
            ]
        );
        // The throughput channel must not see wall metrics and vice versa.
        let sim = extract_metrics(&v);
        assert_eq!(sim, vec![Metric { path: "gbps".into(), value: 10.0 }]);
    }

    #[test]
    fn slo_metrics_are_lower_is_better() {
        let report = |p50: f64, shed: f64| {
            Value::Obj(vec![
                ("slo_p50_wait_us".to_string(), Value::Float(p50)),
                ("slo_shed_rate".to_string(), Value::Float(shed)),
                ("gbps".to_string(), Value::Float(40.0)),
            ])
        };
        let base = extract_slo_metrics(&report(100.0, 0.0));
        assert_eq!(
            base,
            vec![
                Metric { path: "slo_p50_wait_us".into(), value: 100.0 },
                Metric { path: "slo_shed_rate".into(), value: 0.0 },
            ],
            "slo channel must not see throughput keys"
        );
        // Identical and improved (lower) values pass.
        assert!(compare_slo_metrics(&base, &base, 0.1).is_empty());
        let better = extract_slo_metrics(&report(50.0, 0.0));
        assert!(compare_slo_metrics(&base, &better, 0.1).is_empty());
        // A 20% rise fails a 10% tolerance.
        let worse = extract_slo_metrics(&report(120.0, 0.0));
        let regs = compare_slo_metrics(&base, &worse, 0.1);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "slo_p50_wait_us");
        assert!((regs[0].change - 0.2).abs() < 1e-12);
        // A zero baseline still gates: rising past the absolute tolerance
        // fails, staying under it passes.
        let shedding = extract_slo_metrics(&report(100.0, 0.5));
        let regs = compare_slo_metrics(&base, &shedding, 0.1);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "slo_shed_rate");
        let tiny = extract_slo_metrics(&report(100.0, 0.05));
        assert!(compare_slo_metrics(&base, &tiny, 0.1).is_empty());
        // Disappearing slo metrics are a regression.
        let gone = vec![Metric { path: "slo_p50_wait_us".into(), value: 90.0 }];
        let regs = compare_slo_metrics(&base, &gone, 0.1);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].fresh.is_nan());
        // And the throughput channel never sees slo keys.
        let sim = extract_metrics(&report(100.0, 0.0));
        assert_eq!(sim, vec![Metric { path: "gbps".into(), value: 40.0 }]);
    }

    #[test]
    fn self_comparison_is_clean() {
        let m = extract_metrics(&report_rows(&[10.0, 20.0, 0.5]));
        assert!(compare_metrics(&m, &m, 0.1).is_empty());
    }

    #[test]
    fn twenty_percent_slowdown_fails_at_ten_percent_tolerance() {
        let base = extract_metrics(&report_rows(&[10.0, 20.0]));
        let slow = extract_metrics(&report_rows(&[10.0, 16.0])); // -20% on row 1
        let regs = compare_metrics(&base, &slow, 0.1);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "1/gbps");
        assert!((regs[0].change - (-0.2)).abs() < 1e-12);
        assert!(regs[0].to_string().contains("-20.0%"), "{}", regs[0]);
    }

    #[test]
    fn tolerance_absorbs_small_jitter_and_improvements_pass() {
        let base = extract_metrics(&report_rows(&[10.0]));
        let jitter = extract_metrics(&report_rows(&[9.5])); // -5%
        assert!(compare_metrics(&base, &jitter, 0.1).is_empty());
        let faster = extract_metrics(&report_rows(&[14.0]));
        assert!(compare_metrics(&base, &faster, 0.1).is_empty());
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let base = extract_metrics(&report_rows(&[10.0, 20.0]));
        let fewer = extract_metrics(&report_rows(&[10.0]));
        let regs = compare_metrics(&base, &fewer, 0.1);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].fresh.is_nan());
        assert!(regs[0].to_string().contains("missing"), "{}", regs[0]);
    }

    #[test]
    fn envelope_serializes_with_version_and_provenance() {
        let rep = BenchReport::new(
            "fig6",
            Provenance {
                git_rev: "abc123".into(),
                device: Value::Obj(vec![("name".into(), Value::Str("gtx580".into()))]),
                seed: 0,
                scale: "smoke".into(),
                schedule: "round-robin".into(),
                scheme: "heuristic".into(),
                engine: "serial".into(),
                sim_threads: 1,
            },
            &report_rows(&[10.0]),
        );
        let v = rep.to_value();
        assert_eq!(v.get("schema_version").and_then(Value::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(v.get("experiment").and_then(Value::as_str), Some("fig6"));
        let prov = v.get("provenance").expect("provenance");
        assert_eq!(
            prov.get("device").and_then(|d| d.get("name")).and_then(Value::as_str),
            Some("gtx580")
        );
        // Round-trip through the serializer and parser.
        let json = serde_json::to_string_pretty(&rep).unwrap();
        let back = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.get("rows").and_then(Value::as_array).map(<[_]>::len),
            Some(1)
        );
        let m = extract_metrics(&back);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].path, "rows/0/gbps");
    }
}
