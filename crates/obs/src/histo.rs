//! Mergeable log2-bucketed latency histograms.
//!
//! A [`LogHisto`] summarizes a latency population in 64 power-of-two
//! microsecond buckets plus an exact running sum/count, so means stay
//! exact while quantiles come from deterministic bucket upper bounds —
//! bounded memory (one fixed array) over any stream length, and two
//! histograms merge by bucket-wise addition. Each bucket remembers the
//! last observation's trace id and value as an OpenMetrics exemplar, so a
//! p99 bucket in the Prometheus exposition links back to a concrete
//! request trace.
//!
//! Quantile extraction is deliberately *not* an interpolation: it returns
//! the upper edge of the bucket containing the rank, which is the same
//! value on every machine, every run, and every merge order — the
//! property the regression baselines and the cross-engine bit-identity
//! tests rely on.

use serde::Serialize;

/// Number of log2 buckets: bucket 0 holds values ≤ 1 µs, bucket `k`
/// holds values in `[2^(k-1), 2^k)` µs, the last bucket absorbs overflow.
pub const NUM_BUCKETS: usize = 64;

/// One exemplar: the last observation recorded in a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Exemplar {
    /// Trace id of the observation (see `ipt_obs::recorder::SpanCtx`).
    pub trace_id: u64,
    /// The observed value, microseconds.
    pub value_us: f64,
}

/// A mergeable log2-bucketed latency histogram (microsecond domain).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LogHisto {
    counts: Vec<u64>,
    exemplars: Vec<Option<Exemplar>>,
    sum_us: f64,
    count: u64,
}

impl Default for LogHisto {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHisto {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            exemplars: vec![None; NUM_BUCKETS],
            sum_us: 0.0,
            count: 0,
        }
    }

    /// Bucket index for `value_us`: 0 for values ≤ 1 µs (and non-finite
    /// garbage), otherwise `floor(log2(value))+1`, capped at the last
    /// bucket.
    #[must_use]
    pub fn bucket_index(value_us: f64) -> usize {
        if value_us.is_nan() || value_us <= 1.0 {
            return 0;
        }
        let v = if value_us >= u64::MAX as f64 { u64::MAX } else { value_us as u64 };
        ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }

    /// Upper edge (`le` label) of bucket `idx`: 1 µs for bucket 0, else
    /// `2^idx` µs.
    #[must_use]
    pub fn bucket_le(idx: usize) -> f64 {
        if idx == 0 {
            1.0
        } else {
            (1u128 << idx.min(NUM_BUCKETS - 1)) as f64
        }
    }

    /// Record one observation, optionally tagged with the trace id it came
    /// from (the bucket's exemplar; last observation wins, which is
    /// deterministic under the single-threaded DES drivers).
    pub fn observe(&mut self, value_us: f64, trace_id: Option<u64>) {
        let idx = Self::bucket_index(value_us);
        self.counts[idx] += 1;
        self.count += 1;
        if value_us.is_finite() {
            self.sum_us += value_us;
        }
        if let Some(t) = trace_id {
            self.exemplars[idx] = Some(Exemplar { trace_id: t, value_us });
        }
    }

    /// Merge `other` into `self` (bucket-wise addition; `other`'s
    /// exemplars win where present, matching last-observation semantics
    /// when `other` is the later shard).
    pub fn merge(&mut self, other: &LogHisto) {
        for i in 0..NUM_BUCKETS {
            self.counts[i] += other.counts[i];
            if other.exemplars[i].is_some() {
                self.exemplars[i] = other.exemplars[i];
            }
        }
        self.sum_us += other.sum_us;
        self.count += other.count;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations, microseconds.
    #[must_use]
    pub fn sum_us(&self) -> f64 {
        self.sum_us
    }

    /// Exact mean, microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum_us / self.count as f64 }
    }

    /// True when nothing was observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts (length [`NUM_BUCKETS`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// The exemplar recorded in bucket `idx`, if any.
    #[must_use]
    pub fn exemplar(&self, idx: usize) -> Option<Exemplar> {
        self.exemplars.get(idx).copied().flatten()
    }

    /// Index of the bucket containing quantile `q` (0 when empty).
    #[must_use]
    pub fn quantile_bucket(&self, q: f64) -> usize {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return i;
            }
        }
        NUM_BUCKETS - 1
    }

    /// Deterministic quantile estimate: the upper edge of the bucket
    /// containing rank `ceil(q * count)`. 0 when empty.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        Self::bucket_le(self.quantile_bucket(q))
    }

    /// p50 (median) upper bound, microseconds.
    #[must_use]
    pub fn p50_us(&self) -> f64 {
        self.quantile_us(0.50)
    }

    /// p90 upper bound, microseconds.
    #[must_use]
    pub fn p90_us(&self) -> f64 {
        self.quantile_us(0.90)
    }

    /// p99 upper bound, microseconds.
    #[must_use]
    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    /// p99.9 upper bound, microseconds.
    #[must_use]
    pub fn p999_us(&self) -> f64 {
        self.quantile_us(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(LogHisto::bucket_index(0.0), 0);
        assert_eq!(LogHisto::bucket_index(-3.0), 0);
        assert_eq!(LogHisto::bucket_index(f64::NAN), 0);
        assert_eq!(LogHisto::bucket_index(1.0), 0);
        assert_eq!(LogHisto::bucket_index(1.5), 1);
        assert_eq!(LogHisto::bucket_index(2.0), 2);
        assert_eq!(LogHisto::bucket_index(3.9), 2);
        assert_eq!(LogHisto::bucket_index(4.0), 3);
        assert_eq!(LogHisto::bucket_index(1000.0), 10);
        assert_eq!(LogHisto::bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
        assert_eq!(LogHisto::bucket_le(0), 1.0);
        assert_eq!(LogHisto::bucket_le(1), 2.0);
        assert_eq!(LogHisto::bucket_le(10), 1024.0);
        // Every representable value lands in a bucket whose edge bounds it.
        for v in [0.0, 0.5, 1.0, 7.3, 255.9, 256.0, 1e9, 1e300] {
            let idx = LogHisto::bucket_index(v);
            assert!(v <= LogHisto::bucket_le(idx) || idx == NUM_BUCKETS - 1, "{v}");
        }
    }

    #[test]
    fn mean_is_exact_and_quantiles_are_bucket_edges() {
        let mut h = LogHisto::new();
        for v in [10.0, 20.0, 30.0, 1000.0] {
            h.observe(v, None);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean_us() - 265.0).abs() < 1e-12);
        // p50 rank 2 → 20.0 lives in bucket 5 (16..32) → edge 32.
        assert_eq!(h.p50_us(), 32.0);
        // p99 rank 4 → 1000 in bucket 10 → edge 1024.
        assert_eq!(h.p99_us(), 1024.0);
        assert_eq!(h.p999_us(), 1024.0);
        assert_eq!(LogHisto::new().quantile_us(0.99), 0.0);
    }

    #[test]
    fn merge_adds_buckets_and_keeps_exemplars() {
        let mut a = LogHisto::new();
        a.observe(10.0, Some(0xA));
        let mut b = LogHisto::new();
        b.observe(12.0, Some(0xB));
        b.observe(100.0, Some(0xC));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sum_us() - 122.0).abs() < 1e-12);
        // 10 and 12 share bucket 4 (8..16): b's exemplar wins the merge.
        let e = a.exemplar(4).expect("exemplar");
        assert_eq!(e.trace_id, 0xB);
        assert_eq!(a.exemplar(7).expect("exemplar").trace_id, 0xC);
        // Merging is equivalent to observing the union.
        let mut u = LogHisto::new();
        for v in [10.0, 12.0, 100.0] {
            u.observe(v, None);
        }
        assert_eq!(u.buckets(), a.buckets());
        assert_eq!(u.quantile_us(0.5), a.quantile_us(0.5));
    }

    #[test]
    fn memory_is_bounded_over_a_large_stream() {
        let mut h = LogHisto::new();
        for i in 0..100_000u64 {
            h.observe((i % 4096) as f64, Some(i));
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.buckets().len(), NUM_BUCKETS);
        // Deterministic repeat.
        let mut g = LogHisto::new();
        for i in 0..100_000u64 {
            g.observe((i % 4096) as f64, Some(i));
        }
        assert_eq!(g, h);
    }
}
