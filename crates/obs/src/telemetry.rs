//! Fleet-wide telemetry bundle: windowed SLO tracking + burn-rate alerts.
//!
//! [`Telemetry`] ties the pieces of this PR together for a serving
//! driver: one [`WindowRing`] per tracked class (priority classes, in
//! the fleet) fed with good/bad outcomes on the DES clock, and a set of
//! multi-window [`BurnRule`]s evaluated per class on each tick, emitting
//! typed [`Alert`]s with rising-edge dedup. Everything is driven by
//! simulated time, so the alert stream and window series are
//! byte-identical across runs and across serial/parallel engines.

use crate::alert::{Alert, BurnRule, RuleState};
use crate::window::{Window, WindowRing};
use serde::Serialize;

/// One tracked outcome class (e.g. a priority class) and its SLO.
#[derive(Debug, Clone, Serialize)]
pub struct SloClass {
    /// Class name, used in alerts and exported series.
    pub name: String,
    /// Error budget: the tolerated bad-outcome fraction (e.g. `0.01`
    /// = 1% of requests may miss their objective).
    pub error_budget: f64,
}

impl SloClass {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, error_budget: f64) -> Self {
        Self { name: name.to_string(), error_budget }
    }
}

/// Configuration for a [`Telemetry`] bundle.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryConfig {
    /// Width of one SLO window, DES seconds.
    pub window_s: f64,
    /// Live windows kept per class ring (must cover the longest rule).
    pub ring_windows: usize,
    /// Burn-rate rules, each evaluated against every class.
    pub rules: Vec<BurnRule>,
}

impl TelemetryConfig {
    /// Defaults tuned for the serving fleet: 250 µs windows (a few
    /// serving rounds each), a 64-window ring, and a single multi-window
    /// rule — sustained burn over 8 windows gated by a 2-window reset.
    #[must_use]
    pub fn fleet_default() -> Self {
        Self {
            window_s: 250e-6,
            ring_windows: 64,
            rules: vec![BurnRule::new("burn", 8, 2, 2.0)],
        }
    }
}

/// Per-class window series snapshot, for reports.
#[derive(Debug, Clone, Serialize)]
pub struct ClassSeries {
    /// Class name.
    pub class: String,
    /// Window series, oldest first (closed + live).
    pub windows: Vec<Window>,
}

/// Windowed SLO tracker + burn-rate alert engine over a set of classes.
#[derive(Debug, Clone)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    classes: Vec<SloClass>,
    rings: Vec<WindowRing>,
    rules: Vec<Vec<RuleState>>,
    alerts: Vec<Alert>,
}

impl Telemetry {
    /// A tracker over `classes` with the given config.
    #[must_use]
    pub fn new(cfg: TelemetryConfig, classes: Vec<SloClass>) -> Self {
        let rings = classes
            .iter()
            .map(|_| WindowRing::new(cfg.window_s, cfg.ring_windows))
            .collect();
        let rules = classes
            .iter()
            .map(|_| cfg.rules.iter().cloned().map(RuleState::new).collect())
            .collect();
        Self { cfg, classes, rings, rules, alerts: Vec::new() }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Tracked classes in index order.
    #[must_use]
    pub fn classes(&self) -> &[SloClass] {
        &self.classes
    }

    /// Record one outcome for class `class_idx` at DES time `t_s`.
    pub fn record(&mut self, class_idx: usize, t_s: f64, good: bool) {
        self.rings[class_idx].record(t_s, good);
    }

    /// Advance every class ring to `t_s` (idle time reads as empty
    /// windows) and evaluate all rules, returning only the alerts that
    /// fired on this tick. Fired alerts are also retained in
    /// [`Telemetry::alerts`].
    pub fn tick(&mut self, t_s: f64) -> Vec<Alert> {
        let mut fired = Vec::new();
        for (ci, class) in self.classes.iter().enumerate() {
            self.rings[ci].advance(t_s);
            for st in &mut self.rules[ci] {
                if let Some(a) = st.evaluate(&self.rings[ci], &class.name, class.error_budget, t_s)
                {
                    fired.push(a);
                }
            }
        }
        self.alerts.extend(fired.iter().cloned());
        fired
    }

    /// Every alert fired so far, in firing order.
    #[must_use]
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The ring for class `class_idx`.
    #[must_use]
    pub fn ring(&self, class_idx: usize) -> &WindowRing {
        &self.rings[class_idx]
    }

    /// Per-class window series snapshots (closed + live, oldest first).
    #[must_use]
    pub fn series(&self) -> Vec<ClassSeries> {
        self.classes
            .iter()
            .zip(&self.rings)
            .map(|(c, r)| ClassSeries { class: c.name.clone(), windows: r.series() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TelemetryConfig {
        TelemetryConfig {
            window_s: 1.0,
            ring_windows: 16,
            rules: vec![BurnRule::new("burn", 4, 1, 2.0)],
        }
    }

    #[test]
    fn per_class_rings_alert_independently() {
        let classes = vec![SloClass::new("interactive", 0.10), SloClass::new("batch", 0.10)];
        let mut t = Telemetry::new(cfg(), classes);
        // Both classes see clean traffic for 4 windows.
        for w in 0..4 {
            for j in 0..10 {
                let at = w as f64 + 0.05 * j as f64;
                t.record(0, at, true);
                t.record(1, at, true);
            }
        }
        assert!(t.tick(4.0).is_empty());
        // Only batch melts down. Tick inside the hot window (the fleet
        // ticks at the clock of the outcomes it just recorded).
        for j in 0..10 {
            t.record(1, 4.0 + 0.05 * j as f64, false);
        }
        let fired = t.tick(4.9);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].class, "batch");
        assert_eq!(t.alerts().len(), 1);
        // Dedup while hot.
        assert!(t.tick(5.2).is_empty());
        // Series covers both classes with identical window boundaries.
        let series = t.series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].class, "interactive");
        assert_eq!(series[0].windows.len(), series[1].windows.len());
    }

    #[test]
    fn deterministic_replay_gives_identical_alert_streams() {
        let run = || {
            let mut t =
                Telemetry::new(cfg(), vec![SloClass::new("a", 0.05), SloClass::new("b", 0.02)]);
            let mut fired = Vec::new();
            for step in 0..200u64 {
                let at = step as f64 * 0.1;
                let cls = (step % 2) as usize;
                // Periodic incident: every 5th second is all-bad for b.
                let good = !(cls == 1 && (step / 10) % 5 == 4);
                t.record(cls, at, good);
                fired.extend(t.tick(at));
            }
            (fired.len(), t.series().iter().map(|s| s.windows.clone()).collect::<Vec<_>>())
        };
        let (n1, s1) = run();
        let (n2, s2) = run();
        assert!(n1 > 0);
        assert_eq!(n1, n2);
        assert_eq!(s1, s2);
    }
}
