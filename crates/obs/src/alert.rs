//! Multi-window burn-rate SLO alerting.
//!
//! Implements the SRE multi-window, multi-burn-rate pattern: a
//! [`BurnRule`] fires only when **both** a long window and a short window
//! burn the error budget faster than `threshold`. The long window keeps
//! the alert meaningful (sustained damage, not a blip); the short window
//! makes it reset quickly once the incident ends. Rules are evaluated
//! against [`crate::window::WindowRing`]s on the DES clock, so alert
//! streams are byte-identical across runs and engines. Each firing is a
//! typed [`Alert`] record; a rule re-arms (rising-edge dedup) only after
//! the long-window burn drops back under threshold.

use crate::window::WindowRing;
use serde::Serialize;

/// One multi-window burn-rate rule.
#[derive(Debug, Clone, Serialize)]
pub struct BurnRule {
    /// Rule name, e.g. `"fast-burn"`.
    pub name: String,
    /// Number of ring windows in the long (sustain) view.
    pub long_windows: usize,
    /// Number of ring windows in the short (reset) view.
    pub short_windows: usize,
    /// Fire when both window burn rates reach this multiple of the
    /// error budget.
    pub threshold: f64,
}

impl BurnRule {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, long_windows: usize, short_windows: usize, threshold: f64) -> Self {
        Self { name: name.to_string(), long_windows, short_windows, threshold }
    }
}

/// A typed record of one rule firing for one tracked class.
#[derive(Debug, Clone, Serialize)]
pub struct Alert {
    /// Name of the [`BurnRule`] that fired.
    pub rule: String,
    /// The tracked class (e.g. priority class) whose budget is burning.
    pub class: String,
    /// DES time of the evaluation that fired, seconds.
    pub at_s: f64,
    /// Ordinal of the newest window at firing time.
    pub window_index: u64,
    /// Long-window burn rate at firing time.
    pub burn_long: f64,
    /// Short-window burn rate at firing time.
    pub burn_short: f64,
}

/// Per-rule rising-edge state machine: evaluates one [`BurnRule`]
/// against a ring and deduplicates while the condition stays true.
#[derive(Debug, Clone)]
pub struct RuleState {
    rule: BurnRule,
    active: bool,
}

impl RuleState {
    /// Fresh (armed) state for `rule`.
    #[must_use]
    pub fn new(rule: BurnRule) -> Self {
        Self { rule, active: false }
    }

    /// The rule under evaluation.
    #[must_use]
    pub fn rule(&self) -> &BurnRule {
        &self.rule
    }

    /// Whether the rule is currently firing (condition held at the last
    /// evaluation).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Evaluate against `ring` at DES time `t_s` with the class's error
    /// budget. Returns an [`Alert`] only on the rising edge.
    pub fn evaluate(
        &mut self,
        ring: &WindowRing,
        class: &str,
        error_budget: f64,
        t_s: f64,
    ) -> Option<Alert> {
        let burn_long = ring.burn_rate(self.rule.long_windows, error_budget);
        let burn_short = ring.burn_rate(self.rule.short_windows, error_budget);
        let firing = burn_long >= self.rule.threshold && burn_short >= self.rule.threshold;
        if firing && !self.active {
            self.active = true;
            return Some(Alert {
                rule: self.rule.name.clone(),
                class: class.to_string(),
                at_s: t_s,
                window_index: ring.index_of(t_s),
                burn_long,
                burn_short,
            });
        }
        // Re-arm only once the sustained view cools off, so one incident
        // is one alert even if the short window flaps.
        if self.active && burn_long < self.rule.threshold {
            self.active = false;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(ring: &mut WindowRing, t0: f64, windows: usize, per: u64, bad_per: u64) {
        for w in 0..windows {
            for j in 0..per {
                ring.record(t0 + w as f64 + 0.01 * j as f64, j >= bad_per);
            }
        }
    }

    #[test]
    fn fires_only_when_both_windows_burn() {
        let mut ring = WindowRing::new(1.0, 16);
        let mut st = RuleState::new(BurnRule::new("fast-burn", 4, 1, 2.0));
        // 4 clean-ish windows: 5% bad on a 10% budget → burn 0.5, silent.
        fill(&mut ring, 0.0, 4, 20, 1);
        assert!(st.evaluate(&ring, "batch", 0.10, 4.0).is_none());
        // One hot window (100% bad): short burns at 10× but long is still
        // 24/100/0.1 = 2.4 ≥ 2 → both over threshold → fire.
        fill(&mut ring, 4.0, 1, 20, 20);
        let a = st.evaluate(&ring, "batch", 0.10, 5.0).expect("alert");
        assert_eq!(a.rule, "fast-burn");
        assert_eq!(a.class, "batch");
        assert!(a.burn_short >= 2.0 && a.burn_long >= 2.0);
        // Still burning → deduplicated.
        assert!(st.evaluate(&ring, "batch", 0.10, 5.1).is_none());
        assert!(st.is_active());
        // Cool off: enough clean windows push the long view under
        // threshold → re-arm, then a new incident fires again.
        fill(&mut ring, 5.0, 4, 20, 0);
        assert!(st.evaluate(&ring, "batch", 0.10, 9.0).is_none());
        assert!(!st.is_active());
        fill(&mut ring, 9.0, 1, 20, 20);
        assert!(st.evaluate(&ring, "batch", 0.10, 10.0).is_some());
    }

    #[test]
    fn short_window_gates_stale_long_burn() {
        let mut ring = WindowRing::new(1.0, 16);
        let mut st = RuleState::new(BurnRule::new("sustain", 8, 2, 2.0));
        // A hot burst long ago...
        fill(&mut ring, 0.0, 2, 10, 10);
        // ...followed by clean traffic: long view still burns (20 bad of
        // 60 → 3.3×) but the short view is clean → no alert.
        fill(&mut ring, 2.0, 4, 10, 0);
        assert!(st.evaluate(&ring, "interactive", 0.10, 6.0).is_none());
    }
}
