//! Chrome trace-event JSON exporter.
//!
//! Produces the [trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! object form (`{"traceEvents": [...]}`) loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev). Spans become complete (`"X"`)
//! events with DES timestamps in **microseconds**; recorder events become
//! global instant (`"i"`) events; display tracks get thread-name metadata
//! so the hierarchy reads algorithm → stage → request phases → kernel →
//! warp → DES engines top to bottom. Spans carrying a causal
//! [`crate::recorder::SpanCtx`] additionally emit flow events
//! (`"s"`/`"t"`/`"f"` keyed by trace id), so one request's
//! admission→route→queue→exec→kernel journey renders as a connected
//! arrow chain across tracks and shards.

use crate::recorder::{Level, SpanCtx, TraceRecorder};
use serde::Value;
use std::collections::BTreeMap;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// Render the recorder's spans and events as a Chrome trace JSON string.
#[must_use]
pub fn chrome_trace_json(rec: &TraceRecorder) -> String {
    let spans = rec.spans();
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 16);

    // Thread-name metadata: one per distinct track, named after the most
    // informative level seen on it.
    let mut track_levels: BTreeMap<u32, Level> = BTreeMap::new();
    for sp in &spans {
        track_levels.entry(sp.track).or_insert(sp.level);
    }
    for (&track, &level) in &track_levels {
        let name = match level {
            Level::Algorithm => "algorithm".to_string(),
            Level::Stage => "stages".to_string(),
            Level::Kernel => "kernel launches".to_string(),
            Level::Warp => format!("warps #{}", track.saturating_sub(Level::Warp.base_track())),
            Level::Request => {
                format!("requests #{}", track.saturating_sub(Level::Request.base_track()))
            }
            Level::Queue => {
                format!("DES engine {}", track.saturating_sub(Level::Queue.base_track()))
            }
        };
        events.push(obj(vec![
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(u64::from(track))),
            ("args", obj(vec![("name", Value::Str(name))])),
        ]));
    }

    for sp in &spans {
        let mut entries: Vec<(String, Value)> =
            sp.args.iter().map(|&(k, v)| (k.to_string(), Value::Float(v))).collect();
        if let Some(ctx) = sp.ctx {
            entries.push(("trace_id".to_string(), Value::Str(format!("{:016x}", ctx.trace_id))));
            entries.push(("span_id".to_string(), Value::UInt(ctx.span_id)));
            entries.push(("parent_span_id".to_string(), Value::UInt(ctx.parent_span_id)));
        }
        events.push(obj(vec![
            ("name", Value::Str(sp.name.to_string())),
            ("cat", s(sp.level.cat())),
            ("ph", s("X")),
            ("ts", Value::Float(sp.start_us)),
            ("dur", Value::Float(sp.dur_us)),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(u64::from(sp.track))),
            ("args", Value::Obj(entries)),
        ]));
    }

    // Flow events: each trace's spans become one arrow chain in causal
    // order (start time, then span id), so a request's journey connects
    // across tracks/shards in the viewer.
    let mut traced: BTreeMap<u64, Vec<(f64, SpanCtx, u32)>> = BTreeMap::new();
    for sp in &spans {
        if let Some(ctx) = sp.ctx {
            traced.entry(ctx.trace_id).or_default().push((sp.start_us, ctx, sp.track));
        }
    }
    for (trace_id, mut chain) in traced {
        if chain.len() < 2 {
            continue;
        }
        chain.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.span_id.cmp(&b.1.span_id))
        });
        let last = chain.len() - 1;
        for (i, (ts, _, track)) in chain.into_iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i == last {
                "f"
            } else {
                "t"
            };
            let mut entries = vec![
                ("name", s("request flow")),
                ("cat", s("request")),
                ("ph", s(ph)),
                ("id", Value::Str(format!("{trace_id:016x}"))),
                ("ts", Value::Float(ts)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(u64::from(track))),
            ];
            if ph == "f" {
                // Bind the arrowhead to the enclosing slice.
                entries.push(("bp", s("e")));
            }
            events.push(obj(entries));
        }
    }

    for ev in rec.events() {
        events.push(obj(vec![
            ("name", Value::Str(ev.name.to_string())),
            ("cat", s("event")),
            ("ph", s("i")),
            ("s", s("g")),
            ("ts", Value::Float(ev.ts_us)),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(0)),
            ("args", obj(vec![("detail", Value::Str(ev.detail.clone()))])),
        ]));
    }

    let root = obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", s("ms")),
    ]);
    serde_json::to_string_pretty(&root).expect("infallible shim serializer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn trace_is_valid_json_with_complete_events() {
        let r = TraceRecorder::new();
        r.span(Level::Algorithm, "3-stage", 0.0, 100.0, 0, &[]);
        r.span(Level::Stage, "100!", 0.0, 60.0, 1, &[("gbps", 12.0)]);
        r.span(Level::Kernel, "PTTWAC100", 0.0, 60.0, 2, &[]);
        r.span(Level::Warp, "wg0.w0", 0.0, 1.0, 8, &[]);
        r.event(5.0, "fault", "injected");
        let json = chrome_trace_json(&r);
        let v = serde_json::from_str(&json).expect("valid JSON");
        let evs = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        // 4 spans + 1 instant + 4 thread-name metadata.
        assert_eq!(evs.len(), 9);
        let complete: Vec<&Value> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 4);
        for e in &complete {
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("dur").and_then(Value::as_f64).is_some());
        }
    }

    #[test]
    fn traced_spans_emit_a_flow_chain_with_ctx_args() {
        let r = TraceRecorder::new();
        let root = SpanCtx::root(0xBEEF, 1);
        r.span_ctx(root, Level::Request, "request", 0.0, 30.0, 40, &[("id", 9.0)]);
        r.span_ctx(root.child(3), Level::Request, "queue", 0.0, 10.0, 40, &[]);
        r.span_ctx(root.child(4), Level::Kernel, "exec", 10.0, 20.0, 2, &[]);
        // An untraced span must not join the flow.
        r.span(Level::Warp, "w", 0.0, 1.0, 8, &[]);
        let json = chrome_trace_json(&r);
        let v = serde_json::from_str(&json).expect("valid JSON");
        let evs = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        let flows: Vec<&Value> = evs
            .iter()
            .filter(|e| {
                matches!(e.get("ph").and_then(Value::as_str), Some("s" | "t" | "f"))
            })
            .collect();
        assert_eq!(flows.len(), 3, "one flow step per traced span");
        assert_eq!(flows[0].get("ph").and_then(Value::as_str), Some("s"));
        assert_eq!(flows[1].get("ph").and_then(Value::as_str), Some("t"));
        assert_eq!(flows[2].get("ph").and_then(Value::as_str), Some("f"));
        for f in &flows {
            assert_eq!(f.get("id").and_then(Value::as_str), Some("000000000000beef"));
        }
        // The finish step binds to the enclosing slice and lands on the
        // kernel track (the causally-last span).
        assert_eq!(flows[2].get("bp").and_then(Value::as_str), Some("e"));
        assert_eq!(flows[2].get("tid").and_then(Value::as_u64), Some(2));
        // ctx args ride on the complete events.
        let req = evs
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("request"))
            .expect("request span");
        let args = req.get("args").expect("args");
        assert_eq!(args.get("trace_id").and_then(Value::as_str), Some("000000000000beef"));
        assert_eq!(args.get("span_id").and_then(Value::as_u64), Some(1));
        assert_eq!(args.get("parent_span_id").and_then(Value::as_u64), Some(0));
    }
}
