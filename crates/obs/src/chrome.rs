//! Chrome trace-event JSON exporter.
//!
//! Produces the [trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! object form (`{"traceEvents": [...]}`) loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev). Spans become complete (`"X"`)
//! events with DES timestamps in **microseconds**; recorder events become
//! global instant (`"i"`) events; display tracks get thread-name metadata
//! so the hierarchy reads algorithm → stage → kernel → warp → DES engines
//! top to bottom.

use crate::recorder::{Level, TraceRecorder};
use serde::Value;
use std::collections::BTreeMap;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// Render the recorder's spans and events as a Chrome trace JSON string.
#[must_use]
pub fn chrome_trace_json(rec: &TraceRecorder) -> String {
    let spans = rec.spans();
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 16);

    // Thread-name metadata: one per distinct track, named after the most
    // informative level seen on it.
    let mut track_levels: BTreeMap<u32, Level> = BTreeMap::new();
    for sp in &spans {
        track_levels.entry(sp.track).or_insert(sp.level);
    }
    for (&track, &level) in &track_levels {
        let name = match level {
            Level::Algorithm => "algorithm".to_string(),
            Level::Stage => "stages".to_string(),
            Level::Kernel => "kernel launches".to_string(),
            Level::Warp => format!("warps #{}", track.saturating_sub(Level::Warp.base_track())),
            Level::Queue => {
                format!("DES engine {}", track.saturating_sub(Level::Queue.base_track()))
            }
        };
        events.push(obj(vec![
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(u64::from(track))),
            ("args", obj(vec![("name", Value::Str(name))])),
        ]));
    }

    for sp in &spans {
        let args = Value::Obj(
            sp.args.iter().map(|(k, v)| (k.clone(), Value::Float(*v))).collect(),
        );
        events.push(obj(vec![
            ("name", Value::Str(sp.name.clone())),
            ("cat", s(sp.level.cat())),
            ("ph", s("X")),
            ("ts", Value::Float(sp.start_us)),
            ("dur", Value::Float(sp.dur_us)),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(u64::from(sp.track))),
            ("args", args),
        ]));
    }

    for ev in rec.events() {
        events.push(obj(vec![
            ("name", Value::Str(ev.name.clone())),
            ("cat", s("event")),
            ("ph", s("i")),
            ("s", s("g")),
            ("ts", Value::Float(ev.ts_us)),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(0)),
            ("args", obj(vec![("detail", Value::Str(ev.detail.clone()))])),
        ]));
    }

    let root = obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", s("ms")),
    ]);
    serde_json::to_string_pretty(&root).expect("infallible shim serializer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn trace_is_valid_json_with_complete_events() {
        let r = TraceRecorder::new();
        r.span(Level::Algorithm, "3-stage", 0.0, 100.0, 0, &[]);
        r.span(Level::Stage, "100!", 0.0, 60.0, 1, &[("gbps", 12.0)]);
        r.span(Level::Kernel, "PTTWAC100", 0.0, 60.0, 2, &[]);
        r.span(Level::Warp, "wg0.w0", 0.0, 1.0, 8, &[]);
        r.event(5.0, "fault", "injected");
        let json = chrome_trace_json(&r);
        let v = serde_json::from_str(&json).expect("valid JSON");
        let evs = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        // 4 spans + 1 instant + 4 thread-name metadata.
        assert_eq!(evs.len(), 9);
        let complete: Vec<&Value> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 4);
        for e in &complete {
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("dur").and_then(Value::as_f64).is_some());
        }
    }
}
