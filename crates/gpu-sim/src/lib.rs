//! # gpu-sim — a SIMT execution simulator for memory-system studies
//!
//! The substrate on which this workspace reproduces the PPoPP'14 in-place
//! transposition paper without GPU hardware. Kernels are written in
//! warp-vector style against [`exec::WarpCtx`]; they **functionally
//! execute** over [`mem::GlobalMem`] (results are bit-exact and verified
//! against references) while the engine accounts the memory-system costs the
//! paper's evaluation hinges on:
//!
//! * DRAM coalescing (transaction counting per warp instruction),
//! * local-memory **bank conflicts**, atomic **position conflicts** and
//!   **lock conflicts** (Gómez-Luna et al. model, §5.1 of the paper),
//! * occupancy (warp slots / WG slots / registers / local memory),
//! * a four-bound time model (bandwidth, latency, serial chain, local port),
//! * command queues + PCIe discrete-event timeline for the §6/§7.6
//!   asynchronous execution scheme.
//!
//! Nothing here knows about transposition: this crate is a generic little
//! accelerator simulator; the paper's kernels live in `ipt-gpu`.

// One audited unsafe block exists: `mem::zeroed_atomic_words` reinterprets a
// bulk-zeroed `Vec<u32>` as `Vec<AtomicU32>`. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod device;
pub mod exec;
pub mod fault;
pub mod lanes;
pub mod mem;
pub mod occupancy;
pub mod queue;
pub mod report;
pub mod sched;
pub mod sim;

pub use device::{Arch, DeviceSpec, PcieSpec};
pub use exec::{
    launch_configured, launch_traced, launch_with_faults, ControlCtx, Coordination, EngineMode,
    Grid, Kernel, LaunchConfig, LaunchError, Step, WarpCtx, WARP_SPAN_CAP,
};
pub use fault::{
    AtomicTamper, ChaosConfig, ChaosPlan, FaultKind, FaultPlan, FaultRecord, FaultSource,
    StepFault,
};
pub use lanes::{LaneAddrs, LaneVals, LaneWrites, Lanes, MAX_LANES};
pub use mem::{Buffer, GlobalMem, LocalMem, MemTraffic, TrafficSnapshot};
pub use occupancy::{occupancy, KernelResources, Limiter, Occupancy};
pub use queue::{
    simulate_engines, simulate_queues, simulate_queues_dep, try_simulate_engines,
    try_simulate_engines_at, try_simulate_queues_crash, try_simulate_queues_dep,
    try_simulate_shards_at, Cmd, ECmd, EngineCrash, FleetTimeline, QCmd, QueueError, ShardLoad,
    Span, Timeline,
};
pub use report::{KernelStats, PipelineStats, TimeBounds};
pub use sched::{
    explore, ExploreConfig, ExploreOutcome, PctScheduler, Pick, RoundRobin, ScheduleFailure,
    Scheduler, TraceScheduler, Watchdog, WarpId,
};
pub use sim::{SchedPolicy, Sim};
