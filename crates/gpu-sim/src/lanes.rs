//! Fixed-capacity per-lane vectors.
//!
//! Kernels in this simulator are written in *warp-vector* style: one kernel
//! "instruction" operates on all lanes of a SIMD unit at once, which is what
//! lets the cost model see the full access pattern of each warp instruction
//! (coalescing, bank conflicts, atomic collisions). `Lanes<T>` is the
//! stack-allocated vector carrying one value per lane — capacity 64 covers
//! AMD wavefronts; NVIDIA warps use the first 32 slots.

/// Maximum SIMD width supported (AMD wavefront).
pub const MAX_LANES: usize = 64;

/// A per-lane value vector of up to [`MAX_LANES`] entries, stack-allocated.
#[derive(Debug, Clone, Copy)]
pub struct Lanes<T: Copy + Default> {
    vals: [T; MAX_LANES],
    len: usize,
}

impl<T: Copy + Default> Lanes<T> {
    /// An empty vector sized for `len` lanes filled with `T::default()`.
    #[must_use]
    pub fn splat(len: usize, v: T) -> Self {
        assert!(len <= MAX_LANES);
        let mut vals = [T::default(); MAX_LANES];
        vals[..len].fill(v);
        Self { vals, len }
    }

    /// Build by evaluating `f(lane)` for each lane.
    #[must_use]
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        assert!(len <= MAX_LANES);
        let mut vals = [T::default(); MAX_LANES];
        for (i, v) in vals[..len].iter_mut().enumerate() {
            *v = f(i);
        }
        Self { vals, len }
    }

    /// Number of lanes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when sized for zero lanes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the active slice.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.vals[..self.len]
    }

    /// Mutably borrow the active slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.vals[..self.len]
    }

    /// Value at `lane`.
    #[inline]
    #[must_use]
    pub fn get(&self, lane: usize) -> T {
        debug_assert!(lane < self.len);
        self.vals[lane]
    }

    /// Set value at `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize, v: T) {
        debug_assert!(lane < self.len);
        self.vals[lane] = v;
    }

    /// Map each lane.
    #[must_use]
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Lanes<U> {
        Lanes::from_fn(self.len, |i| f(self.vals[i]))
    }

    /// Iterate `(lane, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, T)> + '_ {
        self.as_slice().iter().copied().enumerate()
    }

    /// True when `pred` holds for at least one lane.
    #[must_use]
    pub fn any(&self, mut pred: impl FnMut(T) -> bool) -> bool {
        self.as_slice().iter().any(|&v| pred(v))
    }

    /// Number of lanes for which `pred` holds.
    #[must_use]
    pub fn count_where(&self, mut pred: impl FnMut(T) -> bool) -> usize {
        self.as_slice().iter().filter(|&&v| pred(v)).count()
    }
}

/// Per-lane `Option<usize>` address vector: `None` = inactive lane.
pub type LaneAddrs = Lanes<Option<usize>>;
/// Per-lane optional (address, value) write vector.
pub type LaneWrites = Lanes<Option<(usize, u32)>>;
/// Per-lane 32-bit results.
pub type LaneVals = Lanes<u32>;

impl LaneAddrs {
    /// Number of active lanes.
    #[must_use]
    pub fn active(&self) -> usize {
        self.as_slice().iter().filter(|a| a.is_some()).count()
    }

    /// `Some(base)` when every lane is active and lane `i` addresses
    /// `base + i` — the fully coalesced pattern the engine can service with
    /// one bounds-checked slice operation instead of a per-lane walk.
    #[must_use]
    pub fn contiguous_base(&self) -> Option<usize> {
        let s = self.as_slice();
        let base = match s.first() {
            Some(&Some(b)) => b,
            _ => return None,
        };
        for (i, a) in s.iter().enumerate() {
            if *a != Some(base + i) {
                return None;
            }
        }
        Some(base)
    }
}

impl LaneWrites {
    /// Number of active lanes.
    #[must_use]
    pub fn active(&self) -> usize {
        self.as_slice().iter().filter(|a| a.is_some()).count()
    }

    /// `Some(base)` when every lane is active and lane `i` writes
    /// `base + i` (see [`LaneAddrs::contiguous_base`]).
    #[must_use]
    pub fn contiguous_base(&self) -> Option<usize> {
        let s = self.as_slice();
        let base = match s.first() {
            Some(&Some((b, _))) => b,
            _ => return None,
        };
        for (i, w) in s.iter().enumerate() {
            match w {
                Some((a, _)) if *a == base + i => {}
                _ => return None,
            }
        }
        Some(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let l = Lanes::from_fn(8, |i| i * 2);
        assert_eq!(l.len(), 8);
        assert_eq!(l.get(3), 6);
        assert_eq!(l.as_slice(), &[0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn splat_map() {
        let l = Lanes::splat(4, 7u32);
        let m = l.map(|v| v + 1);
        assert_eq!(m.as_slice(), &[8, 8, 8, 8]);
    }

    #[test]
    fn active_counts() {
        let a = LaneAddrs::from_fn(6, |i| if i % 2 == 0 { Some(i) } else { None });
        assert_eq!(a.active(), 3);
    }

    #[test]
    #[should_panic]
    fn oversize_panics() {
        let _ = Lanes::splat(65, 0u32);
    }

    #[test]
    fn contiguous_detection() {
        let c = LaneAddrs::from_fn(4, |i| Some(10 + i));
        assert_eq!(c.contiguous_base(), Some(10));
        let gap = LaneAddrs::from_fn(4, |i| Some(10 + i * 2));
        assert_eq!(gap.contiguous_base(), None);
        let hole = LaneAddrs::from_fn(4, |i| if i == 2 { None } else { Some(10 + i) });
        assert_eq!(hole.contiguous_base(), None);
        assert_eq!(LaneAddrs::splat(0, None).contiguous_base(), None);
        let w = LaneWrites::from_fn(3, |i| Some((5 + i, i as u32)));
        assert_eq!(w.contiguous_base(), Some(5));
        let wd = LaneWrites::from_fn(3, |i| Some((5 + 2 * i, i as u32)));
        assert_eq!(wd.contiguous_base(), None);
    }

    #[test]
    fn any_and_count_where() {
        let l = Lanes::from_fn(5, |i| i as u32);
        assert!(l.any(|v| v == 4));
        assert!(!l.any(|v| v > 4));
        assert_eq!(l.count_where(|v| v % 2 == 0), 3);
        assert_eq!(Lanes::<u32>::splat(0, 0).count_where(|_| true), 0);
    }
}
