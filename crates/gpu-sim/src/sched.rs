//! Deterministic schedule exploration: pluggable warp schedulers, a
//! liveness watchdog, and a bounded exhaustive interleaving explorer.
//!
//! The execution engine's atomicity unit is one [`Kernel::step`] scheduling
//! slice: a slice runs to completion before any other warp observes its
//! effects, so the space of interleavings is exactly the space of *warp
//! step orders*. A [`Scheduler`] controls that order. Each engine round the
//! scheduler is shown the runnable warps and repeatedly picks one to
//! [`Pick::Step`] or [`Pick::Skip`] (defer until the next round); deferral
//! is what lets a scheduler run one warp for many consecutive slices while
//! the rest starve — the unfair schedules that expose claim-protocol races.
//!
//! Three schedulers ship:
//!
//! * [`RoundRobin`] — steps every runnable warp once per round in canonical
//!   (work-group slot, warp index) order, reproducing the engine's historic
//!   fixed schedule bit for bit.
//! * [`PctScheduler`] — PCT-style randomized priorities (Burckhardt et al.):
//!   the highest-priority runnable warp runs; at `depth` seeded *change
//!   points*, counted in coordination touchpoints (atomics, barriers), the
//!   running warp's priority drops below everyone else's. Same seed, same
//!   schedule.
//! * [`TraceScheduler`] — replays an explicit decision trace and records
//!   every decision it makes, the replay substrate for [`explore`].
//!
//! [`explore`] drives repeated deterministic re-executions over decision
//! traces: starting from the empty trace it branches at decision points
//! that immediately follow a coordination touchpoint (a sleep-set-style
//! pruning — slices that touch no shared coordination state commute, so
//! preempting between them cannot change the outcome) and bounds the
//! number of *preemptions* (picking a warp other than the one that could
//! have continued) per schedule. Failing schedules are minimized by prefix
//! shrinking before they are reported.
//!
//! [`Kernel::step`]: crate::exec::Kernel::step

use std::collections::{HashMap, HashSet, VecDeque};

/// Identity of a live warp as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WarpId {
    /// Work-group id (the launch-wide id, not the residency slot).
    pub wg: usize,
    /// Warp index within the work-group.
    pub warp: usize,
}

/// One scheduling choice over the round's remaining runnable warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// Step the warp at this index of the pending slice now.
    Step(usize),
    /// Defer the warp at this index to the next round without stepping it.
    Skip(usize),
}

/// A pluggable warp scheduler.
///
/// Contract: each engine round, [`Scheduler::begin_round`] is called once
/// with the runnable snapshot, then [`Scheduler::pick`] repeatedly with the
/// still-undecided remainder until it is empty. Out-of-range indices are
/// clamped by the engine. A round in which every warp was skipped makes no
/// progress; the engine then force-steps the first runnable warp so a
/// scheduler bug cannot hang a launch.
pub trait Scheduler {
    /// Short label for provenance (`"round-robin"`, `"pct(seed=7,depth=3)"`).
    fn name(&self) -> String;
    /// A new engine round begins with these runnable warps.
    fn begin_round(&mut self, runnable: &[WarpId]) {
        let _ = runnable;
    }
    /// Choose what to do with one warp of the non-empty `pending` slice.
    fn pick(&mut self, pending: &[WarpId]) -> Pick;
    /// Feedback after a warp stepped. `touched` is true when the slice
    /// performed a coordination event (atomic, barrier) — the preemption
    /// points PCT and the explorer key on.
    fn note_step(&mut self, id: WarpId, touched: bool) {
        let _ = (id, touched);
    }
}

/// The engine's historic schedule: every runnable warp steps once per
/// round, in canonical order. Bit-identical to the unscheduled fast path.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn pick(&mut self, _pending: &[WarpId]) -> Pick {
        Pick::Step(0)
    }
}

/// SplitMix64 over an explicit state — re-exported seed mixer used by every
/// seeded component in this module so schedules derive from one top seed.
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded PCT-style randomized-priority scheduler.
///
/// Each warp gets a random base priority (all above `depth`); the
/// highest-priority runnable warp runs every round and everyone else is
/// deferred. `depth` change points are drawn over a touchpoint horizon; when
/// the global touchpoint counter crosses the k-th change point, the warp
/// that just stepped has its priority dropped to `depth - k` — below every
/// base priority and every earlier change, forcing a preemption exactly at
/// a coordination event. Deterministic in the seed.
#[derive(Debug)]
pub struct PctScheduler {
    seed: u64,
    depth: usize,
    horizon: u64,
    priorities: HashMap<WarpId, u64>,
    change_points: Vec<u64>,
    next_change: usize,
    touches: u64,
    stepped_this_round: bool,
}

impl PctScheduler {
    /// Default touchpoint horizon change points are drawn over.
    pub const DEFAULT_HORIZON: u64 = 4096;

    /// A PCT scheduler with `depth` priority-change points over the default
    /// horizon.
    #[must_use]
    pub fn new(seed: u64, depth: usize) -> Self {
        Self::with_horizon(seed, depth, Self::DEFAULT_HORIZON)
    }

    /// A PCT scheduler whose change points are drawn over the first
    /// `horizon` coordination touchpoints.
    #[must_use]
    pub fn with_horizon(seed: u64, depth: usize, horizon: u64) -> Self {
        let horizon = horizon.max(1);
        let mut change_points: Vec<u64> =
            (0..depth).map(|k| mix64(seed, 0xC0FF_EE00 + k as u64) % horizon).collect();
        change_points.sort_unstable();
        Self {
            seed,
            depth,
            horizon,
            priorities: HashMap::new(),
            change_points,
            next_change: 0,
            touches: 0,
            stepped_this_round: false,
        }
    }

    fn priority(&mut self, id: WarpId) -> u64 {
        let seed = self.seed;
        let depth = self.depth;
        *self.priorities.entry(id).or_insert_with(|| {
            // Base priorities all sit above the change-point band [0, depth).
            depth as u64 + 1 + (mix64(seed, ((id.wg as u64) << 20) | id.warp as u64) >> 16)
        })
    }
}

impl Scheduler for PctScheduler {
    fn name(&self) -> String {
        format!("pct(seed={},depth={},horizon={})", self.seed, self.depth, self.horizon)
    }

    fn begin_round(&mut self, _runnable: &[WarpId]) {
        self.stepped_this_round = false;
    }

    fn pick(&mut self, pending: &[WarpId]) -> Pick {
        if self.stepped_this_round {
            return Pick::Skip(0);
        }
        self.stepped_this_round = true;
        let mut best = 0usize;
        let mut best_p = 0u64;
        for (i, &id) in pending.iter().enumerate() {
            let p = self.priority(id);
            if i == 0 || p > best_p {
                best = i;
                best_p = p;
            }
        }
        Pick::Step(best)
    }

    fn note_step(&mut self, id: WarpId, touched: bool) {
        if !touched {
            return;
        }
        self.touches += 1;
        while self.next_change < self.change_points.len()
            && self.touches > self.change_points[self.next_change]
        {
            // Drop the running warp below everything: base priorities are
            // > depth, and successive changes assign depth-1, depth-2, …
            let low = (self.depth - 1 - self.next_change) as u64;
            self.priorities.insert(id, low);
            self.next_change += 1;
        }
    }
}

/// One recorded scheduling decision of a [`TraceScheduler`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// How many runnable warps there were to choose from.
    pub n_choices: usize,
    /// Index (into the round's runnable snapshot) actually taken.
    pub taken: usize,
    /// Index of the previously stepped warp if it was still runnable —
    /// taking anything else is a *preemption*.
    pub continuing: Option<usize>,
    /// Whether the step immediately before this decision performed a
    /// coordination touchpoint (always true for the first decision).
    /// Only branchable decisions are worth exploring: preempting between
    /// two slices that touch no coordination state commutes.
    pub branchable: bool,
}

/// Count the preemptions a decision sequence performed.
#[must_use]
pub fn preemption_count(decisions: &[Decision]) -> usize {
    decisions.iter().filter(|d| d.continuing.is_some_and(|c| c != d.taken)).count()
}

/// Replays an explicit decision trace (one entry per engine round: the
/// index of the warp to run) and records every decision. Past the end of
/// the trace it defaults to continuing the previously stepped warp when
/// still runnable, else the first runnable warp — the zero-preemption
/// baseline the explorer branches from.
#[derive(Debug)]
pub struct TraceScheduler {
    trace: Vec<usize>,
    decisions: Vec<Decision>,
    stepped_this_round: bool,
    last: Option<WarpId>,
    last_touched: bool,
}

impl TraceScheduler {
    /// A scheduler replaying `trace` (empty = pure default schedule).
    #[must_use]
    pub fn new(trace: &[usize]) -> Self {
        Self {
            trace: trace.to_vec(),
            decisions: Vec::new(),
            stepped_this_round: false,
            last: None,
            last_touched: false,
        }
    }

    /// The decisions recorded so far (one per engine round).
    #[must_use]
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Consume the scheduler, returning its decision record.
    #[must_use]
    pub fn into_decisions(self) -> Vec<Decision> {
        self.decisions
    }
}

impl Scheduler for TraceScheduler {
    fn name(&self) -> String {
        format!("trace(len={})", self.trace.len())
    }

    fn begin_round(&mut self, _runnable: &[WarpId]) {
        self.stepped_this_round = false;
    }

    fn pick(&mut self, pending: &[WarpId]) -> Pick {
        if self.stepped_this_round {
            return Pick::Skip(0);
        }
        self.stepped_this_round = true;
        let continuing = self.last.and_then(|id| pending.iter().position(|&p| p == id));
        let branchable = self.decisions.is_empty() || self.last_touched;
        let di = self.decisions.len();
        let taken = if di < self.trace.len() {
            self.trace[di].min(pending.len() - 1)
        } else {
            continuing.unwrap_or(0)
        };
        self.decisions.push(Decision { n_choices: pending.len(), taken, continuing, branchable });
        Pick::Step(taken)
    }

    fn note_step(&mut self, id: WarpId, touched: bool) {
        self.last = Some(id);
        self.last_touched = touched;
    }
}

/// Liveness watchdog thresholds for a launch.
///
/// The engine counts scheduling slices per warp and in total; crossing
/// either budget converts a livelocked / starved launch into a typed
/// [`LaunchError::Stalled`](crate::exec::LaunchError::Stalled) instead of
/// an unbounded loop. Budgets are in *slices*, not cycles, so they hold
/// under any scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Maximum scheduling slices any single warp may execute.
    pub max_steps_per_warp: u64,
    /// Maximum scheduling slices the whole launch may execute.
    pub max_total_steps: u64,
}

impl Watchdog {
    /// A watchdog bounding only per-warp progress.
    #[must_use]
    pub fn per_warp(max_steps: u64) -> Self {
        Self { max_steps_per_warp: max_steps.max(1), max_total_steps: u64::MAX }
    }

    /// A watchdog with both budgets set.
    #[must_use]
    pub fn new(max_steps_per_warp: u64, max_total_steps: u64) -> Self {
        Self {
            max_steps_per_warp: max_steps_per_warp.max(1),
            max_total_steps: max_total_steps.max(1),
        }
    }
}

/// Bounds for [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum preemptions per schedule (the classic context bound).
    pub preemption_budget: usize,
    /// Hard cap on executed schedules; hitting it sets
    /// [`ExploreOutcome::truncated`] — truncation is visible, never silent.
    pub max_schedules: usize,
    /// Stop collecting after this many distinct minimized failures.
    pub max_failures: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self { preemption_budget: 3, max_schedules: 4000, max_failures: 8 }
    }
}

/// One failing schedule, minimized by prefix shrinking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFailure {
    /// The minimized decision trace that still fails.
    pub trace: Vec<usize>,
    /// Preemptions the minimized trace performs.
    pub preemptions: usize,
    /// The verifier's description of what went wrong.
    pub detail: String,
}

/// What a bounded exploration found.
#[derive(Debug, Clone, Default)]
pub struct ExploreOutcome {
    /// Schedules actually executed (including minimization re-runs).
    pub explored: usize,
    /// True when `max_schedules` cut the frontier short.
    pub truncated: bool,
    /// Distinct minimized failing schedules.
    pub failures: Vec<ScheduleFailure>,
    /// Longest decision sequence observed (diagnostics).
    pub max_decisions: usize,
}

impl ExploreOutcome {
    /// Did every explored schedule pass?
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Bounded exhaustive exploration of warp interleavings.
///
/// `run` executes one schedule: given a decision trace it must perform a
/// fresh deterministic execution under a [`TraceScheduler`], verify the
/// result, and return the recorded decisions plus the verdict. Exploration
/// is breadth-first from the empty trace; at every branchable decision
/// (one following a coordination touchpoint — the sleep-set-style pruning)
/// each untaken choice within the preemption budget spawns a new schedule.
/// Failing traces are minimized by prefix shrinking and deduplicated.
pub fn explore<F>(cfg: &ExploreConfig, mut run: F) -> ExploreOutcome
where
    F: FnMut(&[usize]) -> (Vec<Decision>, Result<(), String>),
{
    let mut out = ExploreOutcome::default();
    let mut queue: VecDeque<Vec<usize>> = VecDeque::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    queue.push_back(Vec::new());
    seen.insert(Vec::new());

    while let Some(trace) = queue.pop_front() {
        if out.explored >= cfg.max_schedules {
            out.truncated = true;
            break;
        }
        let (decisions, verdict) = run(&trace);
        out.explored += 1;
        out.max_decisions = out.max_decisions.max(decisions.len());

        if let Err(detail) = verdict {
            if out.failures.len() < cfg.max_failures {
                let (min_trace, min_detail, runs) =
                    minimize(&trace, detail, cfg.max_schedules - out.explored, &mut run);
                out.explored += runs;
                let preemptions = trace_preemptions(&min_trace, &decisions);
                if !out.failures.iter().any(|f| f.trace == min_trace) {
                    out.failures.push(ScheduleFailure {
                        trace: min_trace,
                        preemptions,
                        detail: min_detail,
                    });
                }
            }
            // A failing run may have ended early or corrupted its state;
            // its suffix decisions are not a trustworthy frontier.
            continue;
        }

        // Branch: alternatives at branchable decisions past this trace's
        // own choices (shorter prefixes were expanded when they ran).
        for (i, d) in decisions.iter().enumerate().skip(trace.len()) {
            if !d.branchable || d.n_choices < 2 {
                continue;
            }
            let prefix_preempts = preemption_count(&decisions[..i]);
            for c in 0..d.n_choices {
                if c == d.taken {
                    continue;
                }
                let extra = usize::from(d.continuing.is_some_and(|k| k != c));
                if prefix_preempts + extra > cfg.preemption_budget {
                    continue;
                }
                let mut t: Vec<usize> = decisions[..i].iter().map(|d| d.taken).collect();
                t.push(c);
                if seen.insert(t.clone()) {
                    queue.push_back(t);
                }
            }
        }
    }
    out
}

/// Preemptions of `trace` given a decision record of a run that shares its
/// prefix (deterministic replay guarantees the prefix decisions match).
fn trace_preemptions(trace: &[usize], decisions: &[Decision]) -> usize {
    preemption_count(&decisions[..trace.len().min(decisions.len())])
}

/// Greedy prefix shrinking: drop trailing decisions while the failure
/// reproduces. Returns the minimized trace, its failure detail, and how
/// many extra runs were spent.
fn minimize<F>(
    trace: &[usize],
    mut detail: String,
    budget: usize,
    run: &mut F,
) -> (Vec<usize>, String, usize)
where
    F: FnMut(&[usize]) -> (Vec<Decision>, Result<(), String>),
{
    let mut best = trace.to_vec();
    let mut runs = 0usize;
    while !best.is_empty() && runs < budget {
        let shorter = &best[..best.len() - 1];
        let (_, verdict) = run(shorter);
        runs += 1;
        match verdict {
            Err(d) => {
                best.truncate(best.len() - 1);
                detail = d;
            }
            Ok(()) => break,
        }
    }
    (best, detail, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<WarpId> {
        (0..n).map(|w| WarpId { wg: 0, warp: w }).collect()
    }

    #[test]
    fn round_robin_always_steps_head() {
        let mut rr = RoundRobin;
        assert_eq!(rr.pick(&ids(3)), Pick::Step(0));
        assert_eq!(rr.pick(&ids(1)), Pick::Step(0));
    }

    #[test]
    fn pct_steps_exactly_one_warp_per_round_deterministically() {
        let run = |seed| {
            let mut s = PctScheduler::new(seed, 2);
            let mut picks = Vec::new();
            for _ in 0..4 {
                s.begin_round(&ids(3));
                let mut pending = ids(3);
                loop {
                    match s.pick(&pending) {
                        Pick::Step(i) => {
                            let id = pending.remove(i);
                            picks.push(id.warp);
                            s.note_step(id, true);
                        }
                        Pick::Skip(i) => {
                            pending.remove(i);
                        }
                    }
                    if pending.is_empty() {
                        break;
                    }
                }
            }
            picks
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_eq!(run(7).len(), 4, "one step per round");
    }

    #[test]
    fn pct_change_point_preempts_the_running_warp() {
        let mut s = PctScheduler::with_horizon(3, 3, 4);
        // Drive enough touches to cross every change point.
        let a = WarpId { wg: 0, warp: 0 };
        let all = ids(2);
        s.begin_round(&all);
        let Pick::Step(first) = s.pick(&all) else { panic!("must step") };
        for _ in 0..8 {
            s.note_step(all[first], true);
        }
        // The stepped warp's priority fell below the change-point band top.
        assert!(s.priorities.values().any(|&p| p < 3), "{:?}", s.priorities);
        let _ = a;
    }

    #[test]
    fn trace_scheduler_replays_and_records() {
        let mut s = TraceScheduler::new(&[1, 0]);
        s.begin_round(&ids(2));
        assert_eq!(s.pick(&ids(2)), Pick::Step(1));
        s.note_step(WarpId { wg: 0, warp: 1 }, true);
        assert_eq!(s.pick(&ids(2)), Pick::Skip(0));
        s.begin_round(&ids(2));
        assert_eq!(s.pick(&ids(2)), Pick::Step(0));
        s.note_step(WarpId { wg: 0, warp: 0 }, false);
        // Past the trace: default continues the last-stepped warp.
        s.begin_round(&ids(2));
        assert_eq!(s.pick(&ids(2)), Pick::Step(0));
        let d = s.into_decisions();
        assert_eq!(d.len(), 3);
        assert!(d[0].branchable, "first decision is always branchable");
        assert_eq!(d[1].continuing, Some(1));
        assert_eq!(preemption_count(&d), 1, "round 2 preempted warp 1");
        assert!(!d[2].branchable, "after an untouched step, no branch");
    }

    #[test]
    fn explore_finds_a_single_preemption_bug() {
        // Synthetic model: 2 warps, 4 rounds each; the "bug" fires iff
        // warp 1 runs at decision 1 (a specific preemption).
        let model = |trace: &[usize]| {
            let mut s = TraceScheduler::new(trace);
            let mut bug = false;
            for round in 0..8 {
                s.begin_round(&ids(2));
                let Pick::Step(i) = s.pick(&ids(2)) else { panic!() };
                if round == 1 && i == 1 {
                    bug = true;
                }
                s.note_step(WarpId { wg: 0, warp: i }, true);
            }
            let verdict = if bug { Err("double claim".to_string()) } else { Ok(()) };
            (s.into_decisions(), verdict)
        };
        let out = explore(&ExploreConfig::default(), model);
        assert!(!out.all_passed(), "explorer must catch the planted race");
        assert!(out.failures[0].detail.contains("double claim"));
        assert!(
            out.failures[0].trace.len() <= 2,
            "prefix shrinking should keep only the deviation: {:?}",
            out.failures[0].trace
        );
    }

    #[test]
    fn explore_clean_model_passes_and_respects_cap() {
        let model = |trace: &[usize]| {
            let mut s = TraceScheduler::new(trace);
            for _ in 0..6 {
                s.begin_round(&ids(3));
                let Pick::Step(i) = s.pick(&ids(3)) else { panic!() };
                s.note_step(WarpId { wg: 0, warp: i }, true);
            }
            (s.into_decisions(), Ok(()))
        };
        let out = explore(
            &ExploreConfig { preemption_budget: 2, max_schedules: 10, max_failures: 4 },
            model,
        );
        assert!(out.all_passed());
        assert!(out.truncated, "tiny cap must be reported as truncation");
        assert_eq!(out.explored, 10);
    }

    #[test]
    fn mix64_is_stable() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(2, 1));
    }
}
