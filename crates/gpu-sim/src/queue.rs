//! Command queues, copy/compute engines, and the discrete-event timeline
//! (§6 of the paper).
//!
//! OpenCL command queues (CUDA streams) are in-order sequences of commands;
//! commands from *different* queues may overlap when they use different
//! hardware engines. The modelled engines:
//!
//! * one **compute** engine (kernels serialise among themselves),
//! * one or two **copy** engines (`DeviceSpec::copy_engines`): with two,
//!   H2D and D2H transfers ride separate engines and can overlap each other
//!   as well as compute — the Tesla K20 configuration the paper exploits.
//!
//! Creating `Q` queues costs `Q × queue_create_overhead_s` up front, which
//! is why throughput degrades for large `Q` (§7.6).

use crate::device::DeviceSpec;
use crate::fault::FaultSource;
use serde::Serialize;
use std::sync::Arc;

/// One queued command.
///
/// Labels are `Arc<str>`: the DES hot loop stamps every scheduled [`Span`]
/// with its command's label, and serving streams replay thousands of cached
/// command lists — a reference-count bump per span instead of a heap copy.
#[derive(Debug, Clone)]
pub enum Cmd {
    /// Host-to-device copy of `bytes`.
    H2D {
        /// Transfer size in bytes.
        bytes: f64,
    },
    /// Device-to-host copy of `bytes`.
    D2H {
        /// Transfer size in bytes.
        bytes: f64,
    },
    /// Kernel execution of known simulated duration.
    Kernel {
        /// Simulated kernel time, seconds.
        time_s: f64,
        /// Label for the timeline (shared, cheap to clone per span).
        name: Arc<str>,
    },
}

impl Cmd {
    fn engine(&self, dev: &DeviceSpec) -> usize {
        match self {
            Cmd::H2D { .. } => 0,
            Cmd::D2H { .. } => {
                if dev.copy_engines >= 2 {
                    1
                } else {
                    0
                }
            }
            Cmd::Kernel { .. } => 2,
        }
    }

    fn duration(&self, dev: &DeviceSpec) -> f64 {
        match self {
            Cmd::H2D { bytes } | Cmd::D2H { bytes } => dev.pcie.transfer_time(*bytes),
            Cmd::Kernel { time_s, .. } => *time_s,
        }
    }

    fn label(&self) -> Arc<str> {
        match self {
            Cmd::H2D { bytes } => format!("H2D {:.1} MB", bytes / 1e6).into(),
            Cmd::D2H { bytes } => format!("D2H {:.1} MB", bytes / 1e6).into(),
            // Kernel labels are pre-shared: a span stamp is one refcount
            // bump, not an allocation.
            Cmd::Kernel { name, .. } => Arc::clone(name),
        }
    }
}

/// One scheduled span on the timeline.
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Queue the command came from.
    pub queue: usize,
    /// Index within that queue.
    pub index: usize,
    /// Engine it ran on (0 = H2D copy, 1 = D2H copy, 2 = compute).
    pub engine: usize,
    /// Start time, seconds.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
    /// Human-readable label (shared with the originating command).
    pub label: Arc<str>,
}

/// The simulated execution timeline.
#[derive(Debug, Clone, Serialize)]
pub struct Timeline {
    /// All spans in schedule order.
    pub spans: Vec<Span>,
    /// Makespan including queue-creation overhead.
    pub total_s: f64,
    /// The up-front queue-creation overhead included in `total_s`.
    pub setup_s: f64,
}

impl Timeline {
    /// Busy time of one engine (for overlap diagnostics).
    #[must_use]
    pub fn engine_busy(&self, engine: usize) -> f64 {
        self.spans.iter().filter(|s| s.engine == engine).map(|s| s.end_s - s.start_s).sum()
    }

    /// Start time of queue `q`'s first span, or `None` when the queue issued
    /// no commands. `start − arrival` is a request's queue wait under
    /// [`try_simulate_engines_at`].
    #[must_use]
    pub fn queue_start_s(&self, q: usize) -> Option<f64> {
        self.spans
            .iter()
            .filter(|s| s.queue == q)
            .map(|s| s.start_s)
            .min_by(|a, b| a.partial_cmp(b).expect("span times are finite"))
    }

    /// Replay the timeline onto a recorder: one queue-level span per
    /// scheduled command (shifted by `t0_s` onto the cumulative DES clock,
    /// one display track per engine) plus a per-engine busy-fraction gauge.
    /// `engine_names` label the gauges (missing names fall back to `e<N>`).
    pub fn record<R: ipt_obs::Recorder>(&self, rec: &R, t0_s: f64, engine_names: &[&str]) {
        if !rec.enabled() || self.spans.is_empty() {
            return;
        }
        use ipt_obs::Level;
        for s in &self.spans {
            rec.span(
                Level::Queue,
                &s.label,
                (t0_s + s.start_s) * 1e6,
                (s.end_s - s.start_s) * 1e6,
                Level::Queue.base_track() + s.engine as u32,
                &[("queue", s.queue as f64), ("index", s.index as f64)],
            );
        }
        let engines = self.spans.iter().map(|s| s.engine).max().unwrap_or(0) + 1;
        let active_s = (self.total_s - self.setup_s).max(f64::MIN_POSITIVE);
        for e in 0..engines {
            let fallback = format!("e{e}");
            let name = engine_names.get(e).copied().unwrap_or(&fallback);
            rec.gauge(
                &format!("queue:{name}"),
                "engine_busy_fraction",
                self.engine_busy(e) / active_s,
            );
        }
    }

    /// Render the timeline as an ASCII Gantt chart, one lane per engine,
    /// `width` character columns covering `[0, total_s]`. `engine_names`
    /// label the lanes (missing names fall back to `e<N>`).
    #[must_use]
    pub fn gantt(&self, width: usize, engine_names: &[&str]) -> String {
        let width = width.max(10);
        if self.total_s <= 0.0 || self.spans.is_empty() {
            return String::from("(empty timeline)\n");
        }
        let engines = self.spans.iter().map(|s| s.engine).max().unwrap_or(0) + 1;
        let name_w = engine_names
            .iter()
            .map(|n| n.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4);
        let scale = width as f64 / self.total_s;
        let mut out = String::new();
        for e in 0..engines {
            let name = engine_names.get(e).copied().unwrap_or("");
            let label = if name.is_empty() { format!("e{e}") } else { name.to_string() };
            let mut lane = vec![b'.'; width];
            for (si, s) in self.spans.iter().enumerate().filter(|(_, s)| s.engine == e) {
                let a = ((s.start_s * scale) as usize).min(width - 1);
                let b = (((s.end_s * scale).ceil()) as usize).clamp(a + 1, width);
                let ch = b"0123456789abcdefghijklmnopqrstuvwxyz"
                    [self.spans[si].queue % 36];
                lane[a..b].fill(ch);
            }
            out.push_str(&format!(
                "{label:>name_w$} |{}|\n",
                String::from_utf8_lossy(&lane)
            ));
        }
        out.push_str(&format!(
            "{:>name_w$}  0{:>w$.2} ms (digits = queue ids)\n",
            "",
            self.total_s * 1e3,
            w = width - 1
        ));
        out
    }
}

/// A command plus an optional OpenCL-event dependency: the command may not
/// start before command `(queue, index)` has completed (in addition to the
/// usual in-order constraint of its own queue).
#[derive(Debug, Clone)]
pub struct QCmd {
    /// The command.
    pub cmd: Cmd,
    /// Cross-queue event wait: `(queue, index)` of the prerequisite.
    pub wait: Option<(usize, usize)>,
}

impl QCmd {
    /// A command with no cross-queue dependency.
    #[must_use]
    pub fn plain(cmd: Cmd) -> Self {
        Self { cmd, wait: None }
    }

    /// A command waiting on event `(queue, index)`.
    #[must_use]
    pub fn after(cmd: Cmd, queue: usize, index: usize) -> Self {
        Self { cmd, wait: Some((queue, index)) }
    }
}

/// Greedy in-order list scheduling of `queues` on the device's engines.
///
/// Semantics: command `i` of queue `q` becomes *ready* when command `i−1` of
/// the same queue finished; each engine runs one command at a time; among
/// ready commands an engine picks the earliest-submitted (queue-major
/// round-robin, matching driver FIFO behaviour).
#[must_use]
pub fn simulate_queues(dev: &DeviceSpec, queues: &[Vec<Cmd>]) -> Timeline {
    let wrapped: Vec<Vec<QCmd>> = queues
        .iter()
        .map(|q| q.iter().cloned().map(QCmd::plain).collect())
        .collect();
    simulate_queues_dep(dev, &wrapped)
}

/// Why the DES could not complete a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// A command's event dependency points at a nonexistent command.
    BadDependency {
        /// Queue of the malformed command.
        queue: usize,
        /// Index of the malformed command within its queue.
        index: usize,
    },
    /// The dependency graph has a cycle: no head command is schedulable.
    Deadlock,
    /// An injected transient transfer fault killed a copy command. The
    /// schedule up to the failure is discarded; retrying the whole schedule
    /// succeeds for a single-shot plan (a sustained chaos campaign may fire
    /// again, so callers bound their retries).
    TransferFault {
        /// Queue of the failed transfer.
        queue: usize,
        /// Index of the failed transfer within its queue.
        index: usize,
        /// True for host-to-device, false for device-to-host.
        h2d: bool,
        /// Timeline label of the failed command.
        label: Arc<str>,
    },
    /// An engine died mid-schedule: the first command that would still be
    /// running on (or start after) the crash instant cannot complete, and
    /// neither can anything behind it. Spans that finished strictly before
    /// the crash are trustworthy — out-of-core streaming uses that boundary
    /// to decide which chunks were durably committed before the crash.
    EngineCrash {
        /// The engine that died (0 = H2D copy, 1 = D2H copy, 2 = compute).
        engine: usize,
        /// Simulated crash instant, seconds.
        at_s: f64,
    },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::BadDependency { queue, index } => {
                write!(f, "command ({queue}, {index}) waits on a nonexistent command")
            }
            QueueError::Deadlock => write!(f, "dependency deadlock in queue schedule"),
            QueueError::TransferFault { queue, index, h2d, label } => write!(
                f,
                "transient {} failure at command ({queue}, {index}): {label}",
                if *h2d { "H2D" } else { "D2H" }
            ),
            QueueError::EngineCrash { engine, at_s } => {
                write!(f, "engine {engine} crashed at t={:.6}s", at_s)
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// [`simulate_queues`] with cross-queue event dependencies.
///
/// # Panics
/// Panics if a dependency points at a nonexistent command (a malformed
/// schedule), or if dependencies deadlock (cycle). Fallible callers (and
/// fault-injection campaigns) use [`try_simulate_queues_dep`] instead.
#[must_use]
pub fn simulate_queues_dep(dev: &DeviceSpec, queues: &[Vec<QCmd>]) -> Timeline {
    match try_simulate_queues_dep(dev, queues, None) {
        Ok(tl) => tl,
        Err(e) => panic!("{e}"),
    }
}

/// [`simulate_queues_dep`] returning typed errors, with optional transfer
/// fault injection: when `fault` fires an H2D/D2H failure, the matching
/// transfer command errors out instead of completing, and the caller
/// decides how to retry (re-simulating a single-shot plan succeeds; a
/// chaos campaign keeps drawing, so callers bound their retries).
///
/// # Errors
/// [`QueueError::BadDependency`] / [`QueueError::Deadlock`] on malformed
/// schedules; [`QueueError::TransferFault`] when the fault source fires.
pub fn try_simulate_queues_dep(
    dev: &DeviceSpec,
    queues: &[Vec<QCmd>],
    fault: Option<&dyn FaultSource>,
) -> Result<Timeline, QueueError> {
    try_simulate_queues_crash(dev, queues, fault, None)
}

/// A scheduled mid-stream engine death for [`try_simulate_queues_crash`]:
/// `engine` stops executing at `at_s` (seconds on the DES clock, including
/// setup). Any command on that engine whose completion would land after
/// `at_s` fails the schedule with [`QueueError::EngineCrash`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineCrash {
    /// The engine that dies (0 = H2D copy, 1 = D2H copy, 2 = compute).
    pub engine: usize,
    /// Crash instant on the DES clock, seconds.
    pub at_s: f64,
}

/// [`try_simulate_queues_dep`] with an optional mid-stream engine crash.
///
/// The DES schedules greedily as usual; the moment it would complete a
/// command on the crashed engine past the crash instant, the whole schedule
/// errors out with [`QueueError::EngineCrash`]. Everything scheduled up to
/// that point was finished strictly before the crash and may be treated as
/// durable by a journaling caller (the out-of-core streaming executor
/// resumes from its last committed chunk rather than re-running the whole
/// schedule).
///
/// # Errors
/// The [`try_simulate_queues_dep`] errors, plus [`QueueError::EngineCrash`]
/// when the crash preempts a command.
pub fn try_simulate_queues_crash(
    dev: &DeviceSpec,
    queues: &[Vec<QCmd>],
    fault: Option<&dyn FaultSource>,
    crash: Option<EngineCrash>,
) -> Result<Timeline, QueueError> {
    let setup_s = dev.queue_create_overhead_s * queues.len() as f64;
    let mut engine_free = [setup_s; 3];
    let mut queue_ready: Vec<f64> = vec![setup_s; queues.len()];
    let mut next_idx: Vec<usize> = vec![0; queues.len()];
    let mut end_time: Vec<Vec<Option<f64>>> =
        queues.iter().map(|q| vec![None; q.len()]).collect();
    let mut spans = Vec::new();
    let total_cmds: usize = queues.iter().map(Vec::len).sum();

    for _ in 0..total_cmds {
        // Candidate head commands whose event dependency is satisfied.
        let mut best: Option<(f64, usize)> = None; // (start_time, queue)
        for (q, cmds) in queues.iter().enumerate() {
            let i = next_idx[q];
            if i >= cmds.len() {
                continue;
            }
            let dep_end = match cmds[i].wait {
                None => setup_s,
                Some((dq, di)) => {
                    if dq >= queues.len() || di >= queues[dq].len() {
                        return Err(QueueError::BadDependency { queue: q, index: i });
                    }
                    match end_time[dq][di] {
                        Some(t) => t,
                        None => continue, // prerequisite not yet scheduled
                    }
                }
            };
            let engine = cmds[i].cmd.engine(dev);
            let start = queue_ready[q].max(engine_free[engine]).max(dep_end);
            // Earliest start wins; tie → lowest queue id (submission order).
            if best.is_none_or(|(bs, bq)| start < bs || (start == bs && q < bq)) {
                best = Some((start, q));
            }
        }
        let (start, q) = best.ok_or(QueueError::Deadlock)?;
        let i = next_idx[q];
        let cmd = &queues[q][i].cmd;
        if let Some(f) = fault {
            let dir = match cmd {
                Cmd::H2D { .. } => Some(true),
                Cmd::D2H { .. } => Some(false),
                Cmd::Kernel { .. } => None,
            };
            if let Some(h2d) = dir {
                if f.on_transfer(h2d, q, i) {
                    return Err(QueueError::TransferFault {
                        queue: q,
                        index: i,
                        h2d,
                        label: cmd.label(),
                    });
                }
            }
        }
        let engine = cmd.engine(dev);
        let end = start + cmd.duration(dev);
        if let Some(c) = crash {
            if engine == c.engine && end > c.at_s {
                return Err(QueueError::EngineCrash { engine: c.engine, at_s: c.at_s });
            }
        }
        spans.push(Span { queue: q, index: i, engine, start_s: start, end_s: end, label: cmd.label() });
        engine_free[engine] = end;
        queue_ready[q] = end;
        end_time[q][i] = Some(end);
        next_idx[q] += 1;
    }

    let total_s = spans.iter().map(|s| s.end_s).fold(setup_s, f64::max);
    Ok(Timeline { spans, total_s, setup_s })
}

/// A fully generic scheduled command for [`simulate_engines`]: runs on an
/// explicit engine id for a given duration, optionally waiting on another
/// command (cross-queue event).
#[derive(Debug, Clone)]
pub struct ECmd {
    /// Engine id in `0..num_engines`.
    pub engine: usize,
    /// Duration, seconds.
    pub duration_s: f64,
    /// Label for the timeline (shared, cheap to clone per span).
    pub label: Arc<str>,
    /// Cross-queue event wait: `(queue, index)` of the prerequisite.
    pub wait: Option<(usize, usize)>,
}

/// Generic in-order list scheduling over an arbitrary engine set — the
/// multi-device generalisation of [`simulate_queues_dep`] (per-device
/// compute engines plus shared or private PCIe links).
///
/// # Panics
/// Panics on malformed dependencies (out of range or deadlocked) or an
/// engine id out of range. Use [`try_simulate_engines`] for a typed error
/// instead.
#[must_use]
pub fn simulate_engines(num_engines: usize, setup_s: f64, queues: &[Vec<ECmd>]) -> Timeline {
    match try_simulate_engines(num_engines, setup_s, queues) {
        Ok(tl) => tl,
        Err(e) => panic!("{e}"),
    }
}

/// [`simulate_engines`] with malformed inputs reported as a typed
/// [`QueueError`] instead of a panic.
///
/// # Errors
/// [`QueueError::BadDependency`] for an out-of-range wait target or
/// engine id; [`QueueError::Deadlock`] when no queue can make progress.
pub fn try_simulate_engines(
    num_engines: usize,
    setup_s: f64,
    queues: &[Vec<ECmd>],
) -> Result<Timeline, QueueError> {
    try_simulate_engines_at(num_engines, setup_s, queues, &[])
}

/// [`try_simulate_engines`] with per-queue **arrival times**: queue `q` may
/// not start before `arrivals[q]` (missing entries mean "available at
/// `setup_s`"). This is how the serving layer models admission: a request
/// that arrives while the engines are busy starts late, and the gap between
/// its arrival and its first span is its queue wait.
///
/// # Errors
/// Same as [`try_simulate_engines`].
pub fn try_simulate_engines_at(
    num_engines: usize,
    setup_s: f64,
    queues: &[Vec<ECmd>],
    arrivals: &[f64],
) -> Result<Timeline, QueueError> {
    let mut engine_free = vec![setup_s; num_engines];
    let mut queue_ready: Vec<f64> = (0..queues.len())
        .map(|q| setup_s.max(arrivals.get(q).copied().unwrap_or(setup_s)))
        .collect();
    let mut next_idx: Vec<usize> = vec![0; queues.len()];
    let mut end_time: Vec<Vec<Option<f64>>> =
        queues.iter().map(|q| vec![None; q.len()]).collect();
    let mut spans = Vec::new();
    let total_cmds: usize = queues.iter().map(Vec::len).sum();

    for _ in 0..total_cmds {
        let mut best: Option<(f64, usize)> = None;
        for (q, cmds) in queues.iter().enumerate() {
            let i = next_idx[q];
            if i >= cmds.len() {
                continue;
            }
            if cmds[i].engine >= num_engines {
                return Err(QueueError::BadDependency { queue: q, index: i });
            }
            let dep_end = match cmds[i].wait {
                None => setup_s,
                Some((dq, di)) => {
                    if dq >= queues.len() || di >= queues[dq].len() {
                        return Err(QueueError::BadDependency { queue: q, index: i });
                    }
                    match end_time[dq][di] {
                        Some(t) => t,
                        None => continue,
                    }
                }
            };
            let start = queue_ready[q].max(engine_free[cmds[i].engine]).max(dep_end);
            if best.is_none_or(|(bs, bq)| start < bs || (start == bs && q < bq)) {
                best = Some((start, q));
            }
        }
        let Some((start, q)) = best else {
            return Err(QueueError::Deadlock);
        };
        let i = next_idx[q];
        let cmd = &queues[q][i];
        let end = start + cmd.duration_s;
        spans.push(Span {
            queue: q,
            index: i,
            engine: cmd.engine,
            start_s: start,
            end_s: end,
            label: cmd.label.clone(),
        });
        engine_free[cmd.engine] = end;
        queue_ready[q] = end;
        end_time[q][i] = Some(end);
        next_idx[q] += 1;
    }

    let total_s = spans.iter().map(|s| s.end_s).fold(setup_s, f64::max);
    Ok(Timeline { spans, total_s, setup_s })
}

/// One shard's DES load for [`try_simulate_shards_at`]: its command queues
/// and per-queue arrival times (same conventions as
/// [`try_simulate_engines_at`]).
#[derive(Debug, Clone, Copy)]
pub struct ShardLoad<'a> {
    /// Command queues, one per batch.
    pub queues: &'a [Vec<ECmd>],
    /// Per-queue arrival times; missing entries mean "available at setup".
    pub arrivals: &'a [f64],
}

/// Timelines of a fleet round: one [`Timeline`] per shard plus the
/// fleet-wide makespan.
#[derive(Debug, Clone)]
pub struct FleetTimeline {
    /// Per-shard timelines, in [`try_simulate_shards_at`] input order.
    pub shards: Vec<Timeline>,
    /// Fleet makespan: the latest shard completion (`setup_s` when every
    /// shard is idle).
    pub makespan_s: f64,
}

/// Simulate several shards' rounds at once. Each shard owns an independent
/// block of `num_engines` engines — shards never contend with each other,
/// only their own queues do — so per-shard timelines are identical to
/// running [`try_simulate_engines_at`] per shard, and the fleet makespan is
/// their max.
///
/// # Errors
/// The first shard's [`QueueError`], in input order.
pub fn try_simulate_shards_at(
    num_engines: usize,
    setup_s: f64,
    shards: &[ShardLoad<'_>],
) -> Result<FleetTimeline, QueueError> {
    let mut timelines = Vec::with_capacity(shards.len());
    let mut makespan_s = setup_s;
    for shard in shards {
        let t = try_simulate_engines_at(num_engines, setup_s, shard.queues, shard.arrivals)?;
        makespan_s = makespan_s.max(t.total_s);
        timelines.push(t);
    }
    Ok(FleetTimeline { shards: timelines, makespan_s })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn kernel(t: f64) -> Cmd {
        Cmd::Kernel { time_s: t, name: "k".into() }
    }

    #[test]
    fn single_queue_serialises() {
        let dev = DeviceSpec::tesla_k20();
        let mb = 10.0 * 1e6;
        let tl = simulate_queues(&dev, &[vec![Cmd::H2D { bytes: mb }, kernel(0.004), Cmd::D2H { bytes: mb }]]);
        let t_copy = dev.pcie.transfer_time(mb);
        let expect = dev.queue_create_overhead_s + t_copy + 0.004 + t_copy;
        assert!((tl.total_s - expect).abs() < 1e-9, "{} vs {expect}", tl.total_s);
    }

    #[test]
    fn two_queues_overlap_compute_and_copy() {
        let dev = DeviceSpec::tesla_k20();
        // Queue 0: long kernel; queue 1: D2H copy — different engines, so
        // they overlap and the makespan is max, not sum.
        let t_copy = dev.pcie.transfer_time(50e6);
        let tl = simulate_queues(&dev, &[vec![kernel(0.02)], vec![Cmd::D2H { bytes: 50e6 }]]);
        let expect = tl.setup_s + 0.02f64.max(t_copy);
        assert!((tl.total_s - expect).abs() < 1e-9);
    }

    #[test]
    fn same_engine_commands_serialise_across_queues() {
        let dev = DeviceSpec::tesla_k20();
        let tl = simulate_queues(&dev, &[vec![kernel(0.01)], vec![kernel(0.01)]]);
        assert!((tl.total_s - (tl.setup_s + 0.02)).abs() < 1e-9);
    }

    #[test]
    fn h2d_d2h_overlap_only_with_two_copy_engines() {
        let k20 = DeviceSpec::tesla_k20(); // 2 copy engines
        let gtx = DeviceSpec::gtx580(); // 1 copy engine
        let queues = vec![vec![Cmd::H2D { bytes: 50e6 }], vec![Cmd::D2H { bytes: 50e6 }]];
        let t = k20.pcie.transfer_time(50e6);
        let tl_k20 = simulate_queues(&k20, &queues);
        assert!((tl_k20.total_s - (tl_k20.setup_s + t)).abs() < 1e-9, "overlapped");
        let t_gtx = gtx.pcie.transfer_time(50e6);
        let tl_gtx = simulate_queues(&gtx, &queues);
        assert!((tl_gtx.total_s - (tl_gtx.setup_s + 2.0 * t_gtx)).abs() < 1e-9, "serialised");
    }

    #[test]
    fn queue_creation_overhead_scales() {
        let dev = DeviceSpec::tesla_k20();
        let one = simulate_queues(&dev, &[vec![kernel(0.001)]]);
        let many = simulate_queues(&dev, &(0..16).map(|_| vec![kernel(0.001)]).collect::<Vec<_>>());
        assert!(many.setup_s > one.setup_s * 10.0);
    }

    #[test]
    fn in_order_within_queue() {
        let dev = DeviceSpec::tesla_k20();
        let tl = simulate_queues(&dev, &[vec![kernel(0.01), Cmd::D2H { bytes: 1e6 }]]);
        // D2H must start after the kernel even though engines differ.
        assert!(tl.spans[1].start_s >= tl.spans[0].end_s - 1e-12);
    }

    #[test]
    fn gantt_renders_lanes() {
        let dev = DeviceSpec::tesla_k20();
        let tl = simulate_queues(
            &dev,
            &[vec![Cmd::H2D { bytes: 10e6 }, kernel(0.004), Cmd::D2H { bytes: 10e6 }]],
        );
        let g = tl.gantt(40, &["H2D", "D2H", "GPU"]);
        assert_eq!(g.lines().count(), 4, "3 engine lanes + axis");
        assert!(g.contains("H2D |"));
        assert!(g.contains('0'), "queue id marks spans");
    }

    #[test]
    fn generic_engines_overlap_and_serialise() {
        // Two queues on distinct engines overlap; same engine serialises.
        let q = |e: usize| {
            vec![ECmd { engine: e, duration_s: 1.0, label: "x".into(), wait: None }]
        };
        let tl = simulate_engines(2, 0.0, &[q(0), q(1)]);
        assert!((tl.total_s - 1.0).abs() < 1e-12, "distinct engines overlap");
        let tl = simulate_engines(2, 0.0, &[q(0), q(0)]);
        assert!((tl.total_s - 2.0).abs() < 1e-12, "same engine serialises");
    }

    #[test]
    fn generic_engines_honour_dependencies() {
        let queues = vec![
            vec![ECmd { engine: 0, duration_s: 1.0, label: "a".into(), wait: None }],
            vec![ECmd { engine: 1, duration_s: 1.0, label: "b".into(), wait: Some((0, 0)) }],
        ];
        let tl = simulate_engines(2, 0.0, &queues);
        assert!((tl.total_s - 2.0).abs() < 1e-12, "b waits for a despite free engine");
    }

    #[test]
    fn arrivals_delay_queues_and_expose_waits() {
        let q = |e: usize| {
            vec![ECmd { engine: e, duration_s: 1.0, label: "x".into(), wait: None }]
        };
        // Same engine, second queue arrives at t=0.25: it still waits for
        // the engine (start 1.0), so its queue wait is 0.75.
        let tl = try_simulate_engines_at(1, 0.0, &[q(0), q(0)], &[0.0, 0.25]).unwrap();
        assert!((tl.total_s - 2.0).abs() < 1e-12);
        assert!((tl.queue_start_s(1).unwrap() - 1.0).abs() < 1e-12);
        // Distinct engines, late arrival dominates: starts exactly on arrival.
        let tl = try_simulate_engines_at(2, 0.0, &[q(0), q(1)], &[0.0, 0.5]).unwrap();
        assert!((tl.queue_start_s(1).unwrap() - 0.5).abs() < 1e-12);
        assert!((tl.total_s - 1.5).abs() < 1e-12);
        // No arrivals → identical to the plain variant.
        let a = try_simulate_engines(2, 0.1, &[q(0), q(1)]).unwrap();
        let b = try_simulate_engines_at(2, 0.1, &[q(0), q(1)], &[]).unwrap();
        assert_eq!(a.total_s, b.total_s);
        // An empty queue has no first span.
        assert_eq!(tl.queue_start_s(7), None);
    }

    #[test]
    fn pipelined_chunks_beat_sync() {
        // The §7.6 shape: splitting kernel+D2H into Q chunks over Q queues
        // shortens the makespan vs one queue, until overhead wins.
        let dev = DeviceSpec::tesla_k20();
        let total_kernel = 0.004;
        let total_bytes = 51.8e6;
        let sync = simulate_queues(
            &dev,
            &[vec![kernel(total_kernel), Cmd::D2H { bytes: total_bytes }]],
        );
        let q = 4;
        let chunks: Vec<Vec<Cmd>> = (0..q)
            .map(|_| {
                vec![
                    kernel(total_kernel / q as f64),
                    Cmd::D2H { bytes: total_bytes / q as f64 },
                ]
            })
            .collect();
        let asy = simulate_queues(&dev, &chunks);
        assert!(asy.total_s < sync.total_s, "async {} < sync {}", asy.total_s, sync.total_s);
    }

    #[test]
    fn engine_crash_preempts_inflight_command() {
        let dev = DeviceSpec::tesla_k20();
        let queues: Vec<Vec<QCmd>> = vec![vec![
            QCmd::plain(Cmd::H2D { bytes: 10e6 }),
            QCmd::plain(kernel(0.004)),
            QCmd::plain(Cmd::D2H { bytes: 10e6 }),
        ]];
        let healthy = try_simulate_queues_crash(&dev, &queues, None, None).unwrap();
        // Crash the D2H engine just before the final copy completes.
        let crash = EngineCrash { engine: 1, at_s: healthy.total_s - 1e-6 };
        let err = try_simulate_queues_crash(&dev, &queues, None, Some(crash)).unwrap_err();
        assert_eq!(err, QueueError::EngineCrash { engine: 1, at_s: crash.at_s });
        // A crash after the makespan never fires.
        let late = EngineCrash { engine: 1, at_s: healthy.total_s + 1.0 };
        let tl = try_simulate_queues_crash(&dev, &queues, None, Some(late)).unwrap();
        assert_eq!(tl.spans.len(), 3);
        // A crash on an unused engine never fires either.
        let other = EngineCrash { engine: 1, at_s: 0.0 };
        let compute_only: Vec<Vec<QCmd>> = vec![vec![QCmd::plain(kernel(0.01))]];
        assert!(try_simulate_queues_crash(&dev, &compute_only, None, Some(other)).is_ok());
    }

    #[test]
    fn crash_none_matches_plain_dep_simulation() {
        let dev = DeviceSpec::tesla_k20();
        let queues: Vec<Vec<QCmd>> = vec![
            vec![QCmd::plain(Cmd::H2D { bytes: 5e6 }), QCmd::plain(kernel(0.002))],
            vec![QCmd::after(kernel(0.003), 0, 1), QCmd::plain(Cmd::D2H { bytes: 5e6 })],
        ];
        let a = try_simulate_queues_dep(&dev, &queues, None).unwrap();
        let b = try_simulate_queues_crash(&dev, &queues, None, None).unwrap();
        assert_eq!(a.total_s, b.total_s);
        assert_eq!(a.spans.len(), b.spans.len());
    }

    #[test]
    fn shard_timelines_match_independent_runs() {
        let q = |e: usize, d: f64| {
            vec![ECmd { engine: e, duration_s: d, label: "x".into(), wait: None }]
        };
        let s0 = [q(0, 1.0), q(0, 2.0)];
        let a0 = [0.0, 0.5];
        let s1 = [q(1, 4.0)];
        let a1 = [0.25];
        let fleet = try_simulate_shards_at(
            2,
            0.1,
            &[
                ShardLoad { queues: &s0, arrivals: &a0 },
                ShardLoad { queues: &s1, arrivals: &a1 },
            ],
        )
        .unwrap();
        // Shards own independent engine blocks: each timeline equals the
        // single-shard simulation of its own load.
        let solo0 = try_simulate_engines_at(2, 0.1, &s0, &a0).unwrap();
        let solo1 = try_simulate_engines_at(2, 0.1, &s1, &a1).unwrap();
        assert_eq!(fleet.shards.len(), 2);
        assert_eq!(fleet.shards[0].total_s, solo0.total_s);
        assert_eq!(fleet.shards[1].total_s, solo1.total_s);
        assert_eq!(fleet.shards[0].spans.len(), solo0.spans.len());
        // Makespan is the max shard completion.
        assert_eq!(fleet.makespan_s, solo0.total_s.max(solo1.total_s));
    }

    #[test]
    fn idle_fleet_makespan_is_setup_and_errors_propagate() {
        let fleet = try_simulate_shards_at(1, 0.3, &[]).unwrap();
        assert!(fleet.shards.is_empty());
        assert_eq!(fleet.makespan_s, 0.3);
        // A bad engine index in any shard fails the whole call.
        let bad = [vec![ECmd { engine: 9, duration_s: 1.0, label: "x".into(), wait: None }]];
        let err = try_simulate_shards_at(
            1,
            0.0,
            &[ShardLoad { queues: &bad, arrivals: &[] }],
        )
        .unwrap_err();
        assert!(matches!(err, QueueError::BadDependency { queue: 0, index: 0 }));
    }
}
