//! CUDA-style occupancy calculation.
//!
//! Occupancy — the ratio of resident SIMD units to the hardware maximum —
//! controls how well memory latency is hidden and whether DRAM bandwidth can
//! be saturated. The paper leans on it repeatedly: Fig. 6's performance
//! drops at high spreading factors are occupancy losses from local-memory
//! pressure; §5.2's critique of work-group-per-super-element 100! is an
//! occupancy argument; §7.2 notes Fermi is register-limited at 22
//! regs/thread (→ 192 threads/block optimal).

use crate::device::DeviceSpec;
use serde::Serialize;

/// Static resources one kernel instance requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KernelResources {
    /// Work-items per work-group.
    pub wg_size: usize,
    /// Registers per work-item.
    pub regs_per_thread: usize,
    /// Local memory per work-group, bytes.
    pub local_mem_per_wg: usize,
}

/// What limited the resident-work-group count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Limiter {
    /// SIMD-unit (warp) slots per SM.
    WarpSlots,
    /// Work-group slots per SM.
    WgSlots,
    /// Register file capacity.
    Registers,
    /// Local (shared) memory capacity.
    LocalMem,
    /// The kernel cannot run at all (one work-group exceeds a hard limit).
    Infeasible,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Occupancy {
    /// Resident work-groups per SM.
    pub wgs_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// `warps_per_sm / device.max_warps_per_sm`, in `[0, 1]`.
    pub occupancy: f64,
    /// The binding constraint.
    pub limiter: Limiter,
}

impl Occupancy {
    /// An infeasible launch.
    #[must_use]
    pub fn infeasible() -> Self {
        Self { wgs_per_sm: 0, warps_per_sm: 0, occupancy: 0.0, limiter: Limiter::Infeasible }
    }

    /// Is the launch possible at all?
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.wgs_per_sm > 0
    }
}

/// Compute occupancy of `res` on `dev`.
#[must_use]
pub fn occupancy(dev: &DeviceSpec, res: &KernelResources) -> Occupancy {
    if res.wg_size == 0
        || res.wg_size > dev.max_threads_per_wg
        || res.local_mem_per_wg > dev.local_mem_per_wg
    {
        return Occupancy::infeasible();
    }
    let warps_per_wg = dev.warps_per_wg(res.wg_size);

    let by_warps = dev.max_warps_per_sm / warps_per_wg;
    let by_wgs = dev.max_wgs_per_sm;
    let regs_per_wg = res.regs_per_thread * res.wg_size;
    let by_regs = dev.regs_per_sm.checked_div(regs_per_wg).unwrap_or(usize::MAX);
    let by_smem =
        dev.local_mem_per_sm.checked_div(res.local_mem_per_wg).unwrap_or(usize::MAX);

    let (wgs, limiter) = [
        (by_warps, Limiter::WarpSlots),
        (by_wgs, Limiter::WgSlots),
        (by_regs, Limiter::Registers),
        (by_smem, Limiter::LocalMem),
    ]
    .into_iter()
    .min_by_key(|&(w, _)| w)
    .expect("non-empty");

    if wgs == 0 {
        return Occupancy::infeasible();
    }
    let warps = wgs * warps_per_wg;
    Occupancy {
        wgs_per_sm: wgs,
        warps_per_sm: warps,
        occupancy: warps as f64 / dev.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn fermi_192_threads_is_best_at_22_regs() {
        // §7.2: on Fermi the 100! kernel needs 22 registers/thread; the
        // highest occupancy is obtained at 192 threads/block.
        let dev = DeviceSpec::gtx580();
        let occ = |wg: usize| {
            occupancy(&dev, &KernelResources { wg_size: wg, regs_per_thread: 22, local_mem_per_wg: 0 })
        };
        let best = [64, 96, 128, 192, 256, 384, 512]
            .into_iter()
            .max_by(|&a, &b| occ(a).occupancy.total_cmp(&occ(b).occupancy))
            .unwrap();
        assert_eq!(best, 192, "paper: 192 threads/block maximises Fermi occupancy");
        assert_eq!(occ(192).limiter, Limiter::Registers);
    }

    #[test]
    fn kepler_not_register_limited_at_22_regs() {
        // §7.2: "On Kepler, such a limitation does not appear" — any
        // multiple of 128 reaches full occupancy.
        let dev = DeviceSpec::tesla_k20();
        for wg in [128, 256, 512] {
            let o = occupancy(&dev, &KernelResources { wg_size: wg, regs_per_thread: 22, local_mem_per_wg: 0 });
            assert!((o.occupancy - 1.0).abs() < 1e-9, "wg={wg} occ={}", o.occupancy);
        }
    }

    #[test]
    fn small_wg_limits_occupancy_via_wg_slots() {
        // §5.2: Sung's 100! launches m-thread work-groups; m = 32 on Fermi
        // gives 8 WGs × 1 warp = 8/48 ≈ 16 % occupancy.
        let dev = DeviceSpec::gtx580();
        let o = occupancy(&dev, &KernelResources { wg_size: 32, regs_per_thread: 16, local_mem_per_wg: 0 });
        assert_eq!(o.limiter, Limiter::WgSlots);
        assert!((o.occupancy - 8.0 / 48.0).abs() < 1e-9, "occ={}", o.occupancy);
    }

    #[test]
    fn local_mem_pressure_reduces_occupancy() {
        // Fig. 6: spreading factor 32 doubles the flag storage; occupancy
        // sinks below 50 % once local memory per WG grows enough.
        let dev = DeviceSpec::tesla_k20();
        let small = occupancy(&dev, &KernelResources { wg_size: 256, regs_per_thread: 16, local_mem_per_wg: 4 * 1024 });
        let large = occupancy(&dev, &KernelResources { wg_size: 256, regs_per_thread: 16, local_mem_per_wg: 24 * 1024 });
        assert!(large.occupancy < small.occupancy);
        assert_eq!(large.limiter, Limiter::LocalMem);
        assert!(large.occupancy < 0.5);
    }

    #[test]
    fn infeasible_cases() {
        let dev = DeviceSpec::hd7750();
        // AMD caps work-groups at 256 threads (§5.2 limitation 4).
        assert!(!occupancy(&dev, &KernelResources { wg_size: 512, regs_per_thread: 8, local_mem_per_wg: 0 }).feasible());
        assert!(!occupancy(&dev, &KernelResources { wg_size: 0, regs_per_thread: 8, local_mem_per_wg: 0 }).feasible());
        // Local memory over the per-WG cap.
        assert!(!occupancy(&dev, &KernelResources { wg_size: 64, regs_per_thread: 8, local_mem_per_wg: 33 * 1024 }).feasible());
    }

    #[test]
    fn full_occupancy_path() {
        let dev = DeviceSpec::tesla_k20();
        let o = occupancy(&dev, &KernelResources { wg_size: 256, regs_per_thread: 16, local_mem_per_wg: 0 });
        assert_eq!(o.warps_per_sm, 64);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
    }

    // ---- hand-computed pins for every paper device configuration ----
    // Each case works the arithmetic out in the comment; a change to the
    // calculator or a device preset that shifts any of these numbers is a
    // deliberate, reviewed event, not drift.

    #[test]
    fn pin_gtx580_register_limited() {
        // GTX 580, wg=192, 22 regs/thread, no smem (the §7.2 sweet spot):
        //   warps/wg   = 192/32 = 6
        //   by_warps   = 48/6   = 8
        //   by_wgs     = 8
        //   by_regs    = 32768 / (22×192 = 4224) = 7
        // → 7 WGs (registers), 42 warps, occupancy 42/48 = 0.875.
        let o = occupancy(
            &DeviceSpec::gtx580(),
            &KernelResources { wg_size: 192, regs_per_thread: 22, local_mem_per_wg: 0 },
        );
        assert_eq!(o.wgs_per_sm, 7);
        assert_eq!(o.warps_per_sm, 42);
        assert_eq!(o.limiter, Limiter::Registers);
        assert!((o.occupancy - 0.875).abs() < 1e-12, "occ={}", o.occupancy);
    }

    #[test]
    fn pin_k20_wg_slot_limited() {
        // Tesla K20, wg=64, 16 regs/thread:
        //   warps/wg = 2, by_warps = 64/2 = 32, by_wgs = 16,
        //   by_regs  = 65536 / (16×64 = 1024) = 64
        // → 16 WGs (WG slots), 32 warps, occupancy 32/64 = 0.5.
        let o = occupancy(
            &DeviceSpec::tesla_k20(),
            &KernelResources { wg_size: 64, regs_per_thread: 16, local_mem_per_wg: 0 },
        );
        assert_eq!(o.wgs_per_sm, 16);
        assert_eq!(o.warps_per_sm, 32);
        assert_eq!(o.limiter, Limiter::WgSlots);
        assert!((o.occupancy - 0.5).abs() < 1e-12, "occ={}", o.occupancy);
    }

    #[test]
    fn pin_hd7750_local_mem_limited() {
        // HD 7750, wg=256 (the AMD max), 16 regs/thread, 16 KB LDS/wg:
        //   wavefronts/wg = 256/64 = 4, by_warps = 40/4 = 10, by_wgs = 16,
        //   by_regs = 65536 / (16×256 = 4096) = 16,
        //   by_smem = 65536 / 16384 = 4
        // → 4 WGs (local memory), 16 wavefronts, occupancy 16/40 = 0.4.
        let o = occupancy(
            &DeviceSpec::hd7750(),
            &KernelResources { wg_size: 256, regs_per_thread: 16, local_mem_per_wg: 16 * 1024 },
        );
        assert_eq!(o.wgs_per_sm, 4);
        assert_eq!(o.warps_per_sm, 16);
        assert_eq!(o.limiter, Limiter::LocalMem);
        assert!((o.occupancy - 0.4).abs() < 1e-12, "occ={}", o.occupancy);
    }

    #[test]
    fn pin_xeon_phi_warp_slot_limited() {
        // Xeon Phi, wg=256, registers effectively unlimited:
        //   warps/wg = 256/16 = 16, by_warps = 32/16 = 2, by_wgs = 4
        // → 2 WGs (warp slots), 32 warps, occupancy 32/32 = 1.0.
        let o = occupancy(
            &DeviceSpec::xeon_phi(),
            &KernelResources { wg_size: 256, regs_per_thread: 16, local_mem_per_wg: 0 },
        );
        assert_eq!(o.wgs_per_sm, 2);
        assert_eq!(o.warps_per_sm, 32);
        assert_eq!(o.limiter, Limiter::WarpSlots);
        assert!((o.occupancy - 1.0).abs() < 1e-12, "occ={}", o.occupancy);
    }

    #[test]
    fn pin_gtx580_smem_vs_register_tiebreak() {
        // GTX 580, wg=256, 16 regs/thread, 12 KB smem/wg:
        //   warps/wg = 8, by_warps = 48/8 = 6, by_wgs = 8,
        //   by_regs  = 32768 / 4096 = 8,
        //   by_smem  = 49152 / 12288 = 4
        // → 4 WGs (local memory), 32 warps, occupancy 32/48 = 2/3.
        let o = occupancy(
            &DeviceSpec::gtx580(),
            &KernelResources { wg_size: 256, regs_per_thread: 16, local_mem_per_wg: 12 * 1024 },
        );
        assert_eq!(o.wgs_per_sm, 4);
        assert_eq!(o.warps_per_sm, 32);
        assert_eq!(o.limiter, Limiter::LocalMem);
        assert!((o.occupancy - 2.0 / 3.0).abs() < 1e-12, "occ={}", o.occupancy);
    }
}
