//! Kernel execution reports: what happened (functional counters) and the
//! derived simulated time — plus the bridge that replays a finished
//! report onto an [`ipt_obs::Recorder`] (kernel span, typed counters,
//! gauges).

use crate::occupancy::Occupancy;
use ipt_obs::{Counter, Level, Recorder};
use serde::Serialize;

/// The four candidate bounds of the time model; the simulated kernel time is
/// their maximum. Keeping all four visible makes every experiment's
/// mechanism inspectable ("this configuration is latency-bound").
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimeBounds {
    /// DRAM-bandwidth bound: traffic / (peak × occupancy saturation).
    pub bandwidth_s: f64,
    /// Latency bound: total dependent-chain cycles divided by the warps
    /// available to overlap them.
    pub latency_s: f64,
    /// Serial bound: the single longest warp chain (load imbalance shows up
    /// here — e.g. the dominant cycle of P-IPT).
    pub serial_s: f64,
    /// Local-memory port bound: shared-memory cycles per SM.
    pub local_port_s: f64,
}

impl TimeBounds {
    /// The binding component.
    #[must_use]
    pub fn limiting(&self) -> &'static str {
        let m = self.max();
        if m == self.bandwidth_s {
            "bandwidth"
        } else if m == self.latency_s {
            "latency"
        } else if m == self.serial_s {
            "serial"
        } else {
            "local-port"
        }
    }

    /// Maximum of the four bounds (the simulated time).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.bandwidth_s.max(self.latency_s).max(self.serial_s).max(self.local_port_s)
    }
}

/// Everything measured while simulating one kernel launch.
///
/// Derives `PartialEq` so the engine-equivalence proptests can assert the
/// parallel engine reproduces the serial report *bit for bit* (f64 fields
/// compare exactly — no epsilon).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Work-groups launched.
    pub num_wgs: usize,
    /// Work-items per work-group.
    pub wg_size: usize,
    /// Computed occupancy.
    pub occupancy: Occupancy,
    /// Simulated execution time in seconds.
    pub time_s: f64,
    /// Component bounds behind `time_s`.
    pub bounds: TimeBounds,

    /// DRAM bytes actually transferred (whole transactions).
    pub dram_bytes: f64,
    /// Bytes the kernel asked for (4 × active lanes); ratio to `dram_bytes`
    /// is the coalescing efficiency.
    pub useful_bytes: f64,
    /// Global load transactions.
    pub gld_transactions: u64,
    /// Global store transactions.
    pub gst_transactions: u64,
    /// Local (shared) memory accesses, lane granularity.
    pub local_accesses: u64,
    /// Local atomic operations, lane granularity.
    pub local_atomics: u64,
    /// Global atomic operations, lane granularity.
    pub global_atomics: u64,
    /// Intra-warp same-word atomic collisions (position conflicts,
    /// Gómez-Luna terminology, §5.1.1).
    pub position_conflicts: u64,
    /// Same-lock different-word collisions (§5.1.2).
    pub lock_conflicts: u64,
    /// Same-bank different-word collisions (§5.1.2).
    pub bank_conflicts: u64,
    /// Failed flag claims (a lane lost a cycle to another owner; PTTWAC
    /// claim protocol, §5.1).
    pub claim_retries: u64,
    /// Barriers executed (work-group granularity).
    pub barriers: u64,
    /// Total warp-steps executed (engine rounds × active warps).
    pub warp_steps: u64,
    /// Sum of all warps' dependent-chain cycles.
    pub total_chain_cycles: f64,
    /// Longest single warp chain, cycles.
    pub max_chain_cycles: f64,
}

impl KernelStats {
    /// Fraction of transferred bytes that were useful (1.0 = perfectly
    /// coalesced).
    #[must_use]
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.dram_bytes == 0.0 {
            1.0
        } else {
            (self.useful_bytes / self.dram_bytes).min(1.0)
        }
    }

    /// Paper-convention throughput for a kernel that moved `matrix_bytes`
    /// of payload: `2 × matrix_bytes / time` (§1: read once + write once).
    #[must_use]
    pub fn throughput_gbps(&self, matrix_bytes: f64) -> f64 {
        2.0 * matrix_bytes / self.time_s / 1e9
    }

    /// Replay every functional counter onto `rec` under this kernel's name.
    pub fn record_counters<R: Recorder>(&self, rec: &R) {
        if !rec.enabled() {
            return;
        }
        let s = self.name.as_str();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        {
            rec.add(s, Counter::DramBytes, self.dram_bytes.max(0.0).round() as u64);
            rec.add(s, Counter::UsefulBytes, self.useful_bytes.max(0.0).round() as u64);
        }
        rec.add(s, Counter::GldTransactions, self.gld_transactions);
        rec.add(s, Counter::GstTransactions, self.gst_transactions);
        rec.add(s, Counter::LocalAtomics, self.local_atomics);
        rec.add(s, Counter::GlobalAtomics, self.global_atomics);
        rec.add(s, Counter::PositionConflicts, self.position_conflicts);
        rec.add(s, Counter::LockConflicts, self.lock_conflicts);
        rec.add(s, Counter::BankConflicts, self.bank_conflicts);
        rec.add(s, Counter::ClaimRetries, self.claim_retries);
        rec.add(s, Counter::Barriers, self.barriers);
        rec.add(s, Counter::WarpSteps, self.warp_steps);
    }

    /// Replay the whole report onto `rec`: a kernel-level span starting at
    /// `t0_s` (cumulative DES seconds), every counter, and the occupancy /
    /// coalescing gauges.
    pub fn record<R: Recorder>(&self, rec: &R, t0_s: f64) {
        if !rec.enabled() {
            return;
        }
        rec.span(
            Level::Kernel,
            &self.name,
            t0_s * 1e6,
            self.time_s * 1e6,
            Level::Kernel.base_track(),
            &[
                ("num_wgs", self.num_wgs as f64),
                ("wg_size", self.wg_size as f64),
                ("occupancy", self.occupancy.occupancy),
                ("coalescing", self.coalescing_efficiency()),
                ("bandwidth_s", self.bounds.bandwidth_s),
                ("latency_s", self.bounds.latency_s),
                ("serial_s", self.bounds.serial_s),
                ("local_port_s", self.bounds.local_port_s),
            ],
        );
        self.record_counters(rec);
        rec.gauge(&self.name, "occupancy", self.occupancy.occupancy);
        rec.gauge(&self.name, "coalescing_efficiency", self.coalescing_efficiency());
    }
}

/// Aggregate of several sequentially executed kernels (a staged pipeline).
#[derive(Debug, Clone, Serialize, Default)]
pub struct PipelineStats {
    /// Per-stage reports, in execution order.
    pub stages: Vec<KernelStats>,
    /// Non-kernel overhead included in the total (flag-buffer memsets…).
    pub overhead_s: f64,
}

impl PipelineStats {
    /// Total simulated time.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.overhead_s + self.stages.iter().map(|s| s.time_s).sum::<f64>()
    }

    /// Paper-convention throughput over the whole pipeline.
    #[must_use]
    pub fn throughput_gbps(&self, matrix_bytes: f64) -> f64 {
        2.0 * matrix_bytes / self.time_s() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_bounds(b: f64, l: f64, s: f64, p: f64) -> TimeBounds {
        TimeBounds { bandwidth_s: b, latency_s: l, serial_s: s, local_port_s: p }
    }

    #[test]
    fn limiting_component() {
        assert_eq!(dummy_bounds(4.0, 1.0, 1.0, 1.0).limiting(), "bandwidth");
        assert_eq!(dummy_bounds(1.0, 4.0, 1.0, 1.0).limiting(), "latency");
        assert_eq!(dummy_bounds(1.0, 1.0, 4.0, 1.0).limiting(), "serial");
        assert_eq!(dummy_bounds(1.0, 1.0, 1.0, 4.0).limiting(), "local-port");
        assert_eq!(dummy_bounds(1.0, 2.0, 3.0, 4.0).max(), 4.0);
    }
}
