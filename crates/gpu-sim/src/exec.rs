//! The SIMT execution engine.
//!
//! Kernels are authored as **per-warp state machines** operated in
//! warp-vector style: [`Kernel::step`] advances one warp by one scheduling
//! slice, issuing whole-warp memory operations through [`WarpCtx`]. The
//! engine:
//!
//! 1. computes occupancy and admits as many work-groups as the device can
//!    hold resident (`wgs_per_sm × num_sms`),
//! 2. schedules resident warps one `step` (scheduling slice) at a time —
//!    by default the historic round-robin order (each live warp once per
//!    round, canonical work-group/warp order), or under any
//!    [`Scheduler`](crate::sched::Scheduler) via [`launch_configured`],
//!    which is what makes cross-work-group coordination (the global atomic
//!    claims of `100!`) behave like real concurrent hardware rather than
//!    like a serial loop — and what lets the schedule-exploration engine
//!    drive adversarial interleavings through the same code path,
//! 3. retires finished work-groups and admits pending ones,
//! 4. aggregates functional counters and dependent-chain cycles into a
//!    [`KernelStats`] with the four-bound time model (bandwidth, latency,
//!    serial, local-port).
//!
//! Execution is deterministic: a fixed schedule per scheduler + seed. A
//! launch may additionally request the **parallel work-group engine**
//! ([`EngineMode::Parallel`]): kernels that declare
//! [`Coordination::WgLocal`] — work-groups share no mutable global state —
//! execute their work-groups concurrently on a scoped host-thread pool and
//! merge per-WG results in canonical order, producing memory images, stats,
//! timings, and traces *bit-identical* to the serial round-robin path (see
//! DESIGN.md §12 for the determinism argument). Kernels that declare
//! [`Coordination::CrossWgClaims`] — cross-WG state limited to commutative
//! claim flags with schedule-dependence confined to claim outcomes — run
//! through a two-phase scheme: a cost-free serial **control replay** first
//! resolves every claim in canonical round-robin order, then the pooled
//! engine re-executes the work-groups concurrently against the recorded
//! outcome scripts, again bit-identical to serial (DESIGN.md §17).
//! [`Coordination::CrossWg`] kernels and any launch under a custom
//! scheduler, fault source, or watchdog always stay on the serial engine.
//! An optional
//! [`Watchdog`](crate::sched::Watchdog) bounds per-warp and total slices,
//! converting livelocks and lost-wakeup hangs into
//! [`LaunchError::Stalled`].

use crate::device::DeviceSpec;
use crate::fault::{AtomicTamper, FaultPlan, FaultSource, StepFault};
use crate::lanes::{LaneAddrs, LaneVals, LaneWrites, MAX_LANES};
use crate::mem::{Buffer, GlobalMem, LocalMem};
use crate::occupancy::{occupancy, KernelResources, Occupancy};
use crate::report::{KernelStats, TimeBounds};
use crate::sched::{Pick, Scheduler, Watchdog, WarpId};
use ipt_obs::{Counter, Level, NoopRecorder, Recorder};
use std::sync::Mutex;

/// Per-launch cap on recorded warp spans. Big grids retire millions of
/// warps; a trace keeps the first `WARP_SPAN_CAP` and counts the rest in
/// [`Counter::DroppedWarpSpans`] — truncation is visible, never silent.
/// Sized at 8 spans per display track: warp spans are a sample for the
/// viewer, and they dominate full-tracing's footprint under serving load
/// (every span carries a formatted name), so the cap is also what keeps
/// the telemetry overhead gate comfortably under its ceiling.
pub const WARP_SPAN_CAP: usize = 64;

/// Launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of work-groups.
    pub num_wgs: usize,
    /// Work-items per work-group.
    pub wg_size: usize,
}

/// What a warp reports after one scheduling slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// More work; schedule me again.
    Continue,
    /// Reached a work-group barrier; resume when all live warps of the
    /// work-group have reached it.
    Barrier,
    /// This warp has finished the kernel.
    Done,
}

/// How a kernel's work-groups coordinate with each other — the declaration
/// that decides whether the parallel work-group engine may run them on
/// concurrent host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Coordination {
    /// Work-groups are mutually independent: no work-group reads a global
    /// word another work-group of the same launch writes (disjoint tiles,
    /// grid-stride over disjoint rows, local-memory-only flags). Eligible
    /// for concurrent execution with bit-identical results.
    WgLocal,
    /// Work-groups coordinate through global memory in an arbitrary way.
    /// Always simulated serially so the cross-WG interleaving stays the
    /// canonical round-robin schedule.
    #[default]
    CrossWg,
    /// Deterministically mergeable cross-WG state: the only global words
    /// work-groups share are **claim-flag words** touched exclusively
    /// through [`WarpCtx::claim_check`] / [`WarpCtx::claim_acquire`]
    /// (monotone, commutative, idempotent `atom_or` bits), and the kernel
    /// upholds the replay contract:
    ///
    /// * every data position is written at most once per launch, only by
    ///   the unique winner of that position's claim;
    /// * every functional data read observes the pre-launch memory image
    ///   (claim flags guard chain starts, so a loser never reads a word a
    ///   winner rewrote);
    /// * control flow depends on global memory *only* through the boolean
    ///   outcomes of the claim ops;
    /// * [`Kernel::control_step`] is implemented as a cost-free twin of
    ///   [`Kernel::step`] taking the identical control path.
    ///
    /// Under [`EngineMode::Parallel`] such a kernel runs in two phases: a
    /// serial control replay resolves every claim in canonical round-robin
    /// order and records per-warp outcome scripts, then work-groups execute
    /// concurrently with outcomes (and functional data reads) replayed from
    /// the oracle — bit-identical to the serial engine (DESIGN.md §17).
    CrossWgClaims,
}

/// How the host executes one launch's work-groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The historic engine: one host thread, round-robin interleaving.
    #[default]
    Serial,
    /// Run eligible work-groups concurrently on a scoped host-thread pool —
    /// [`Coordination::WgLocal`] kernels directly, and
    /// [`Coordination::CrossWgClaims`] kernels via the two-phase control
    /// replay; results are bit-identical to [`EngineMode::Serial`].
    /// Ineligible launches (plain CrossWg kernels, custom scheduler, fault
    /// source, or watchdog) silently fall back to serial.
    Parallel {
        /// Worker threads; `0` = auto (`RAYON_NUM_THREADS`, else the
        /// machine's available parallelism).
        threads: usize,
    },
}

impl EngineMode {
    /// The auto-sized parallel engine.
    #[must_use]
    pub fn parallel_auto() -> Self {
        EngineMode::Parallel { threads: 0 }
    }

    /// Host threads this mode will actually use.
    #[must_use]
    pub fn resolved_threads(self) -> usize {
        match self {
            EngineMode::Serial => 1,
            EngineMode::Parallel { threads: 0 } => auto_threads(),
            EngineMode::Parallel { threads } => threads,
        }
    }

    /// Short label for provenance records ("serial" / "parallel").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Serial => "serial",
            EngineMode::Parallel { .. } => "parallel",
        }
    }
}

/// Worker-thread count when [`EngineMode::Parallel`] is asked to auto-size:
/// `RAYON_NUM_THREADS` (the conventional pin, honoured so CI wall-clock
/// tolerances are reproducible), else the machine's available parallelism.
/// Resolved once per process: `resolved_threads()` sits on the launch path,
/// and both the env lookup and `available_parallelism()` are syscalls — the
/// pin must be set before the first parallel launch to take effect.
fn auto_threads() -> usize {
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    })
}

/// A simulated kernel.
pub trait Kernel: Sync {
    /// Per-warp persistent state.
    type State;

    /// Display name (shows up in stats and harness output).
    fn name(&self) -> String;
    /// Launch geometry.
    fn grid(&self) -> Grid;
    /// How this kernel's work-groups coordinate. The conservative default
    /// keeps the serial engine; kernels whose work-groups are provably
    /// independent opt in to [`Coordination::WgLocal`].
    fn coordination(&self) -> Coordination {
        Coordination::CrossWg
    }
    /// Registers per thread (occupancy input); default typical.
    fn regs_per_thread(&self) -> usize {
        16
    }
    /// Local-memory words each work-group allocates (may depend on the
    /// device, e.g. staging buffers sized per resident SIMD unit).
    fn local_mem_words(&self, dev: &DeviceSpec) -> usize {
        let _ = dev;
        0
    }
    /// Build the initial state of warp `warp_id` of work-group `wg_id`.
    fn init(&self, wg_id: usize, warp_id: usize) -> Self::State;
    /// Advance the warp one scheduling slice.
    fn step(&self, state: &mut Self::State, ctx: &mut WarpCtx<'_>) -> Step;
    /// Cost-free control twin of [`Kernel::step`] for
    /// [`Coordination::CrossWgClaims`] kernels: must make the *same*
    /// control-flow decisions and the same claim-op sequence as `step`, but
    /// performs no data movement, no local-memory traffic, and no cost
    /// accounting. Driven by the serial control-replay phase of the parallel
    /// engine; the claim ops on [`ControlCtx`] resolve against live memory
    /// and record each boolean outcome for the concurrent replay phase.
    fn control_step(&self, state: &mut Self::State, ctx: &mut ControlCtx<'_>) -> Step {
        let _ = (state, ctx);
        unimplemented!("control_step is required for Coordination::CrossWgClaims kernels")
    }
}

/// Why a launch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Occupancy calculator found the kernel cannot run on this device.
    Infeasible {
        /// Offending resource description.
        why: String,
    },
    /// The kernel died mid-flight (injected watchdog/machine-check fault).
    /// Device memory may hold a partially transposed state; recovery must
    /// restore a snapshot before retrying.
    Aborted {
        /// Kernel display name.
        kernel: String,
        /// Warp steps completed before the abort.
        after_steps: u64,
    },
    /// A liveness watchdog tripped: one warp exceeded its scheduling-slice
    /// budget (or the launch exceeded its total budget) without finishing —
    /// a claim-loop livelock, a lost wakeup, or a starved schedule. Device
    /// memory may hold a partially transposed state, exactly like
    /// [`LaunchError::Aborted`].
    Stalled {
        /// Kernel display name.
        kernel: String,
        /// Global warp index of the offending warp
        /// (`wg_id × warps_per_wg + warp_id`).
        lane: usize,
        /// Scheduling slices that warp had executed when the watchdog fired.
        steps: u64,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Infeasible { why } => write!(f, "kernel launch infeasible: {why}"),
            LaunchError::Aborted { kernel, after_steps } => {
                write!(f, "kernel `{kernel}` aborted after {after_steps} warp steps")
            }
            LaunchError::Stalled { kernel, lane, steps } => {
                write!(
                    f,
                    "kernel `{kernel}` stalled: warp lane {lane} exceeded its watchdog \
                     budget after {steps} slices"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

#[derive(Default)]
struct Counters {
    dram_bytes: f64,
    useful_bytes: f64,
    gld_transactions: u64,
    gst_transactions: u64,
    local_accesses: u64,
    local_atomics: u64,
    global_atomics: u64,
    position_conflicts: u64,
    lock_conflicts: u64,
    bank_conflicts: u64,
    claim_retries: u64,
    barriers: u64,
    warp_steps: u64,
    local_port_cycles: f64,
}

impl Counters {
    /// Fold another work-group's subtotal in. The f64 fields only ever
    /// accumulate integer-valued increments (transaction × byte products,
    /// integer latency constants), so every partial sum below 2^53 is exact
    /// and the fold is order-independent — merging per-WG subtotals in
    /// canonical order is bit-identical to the serial engine's interleaved
    /// accumulation.
    fn merge(&mut self, o: &Counters) {
        self.dram_bytes += o.dram_bytes;
        self.useful_bytes += o.useful_bytes;
        self.gld_transactions += o.gld_transactions;
        self.gst_transactions += o.gst_transactions;
        self.local_accesses += o.local_accesses;
        self.local_atomics += o.local_atomics;
        self.global_atomics += o.global_atomics;
        self.position_conflicts += o.position_conflicts;
        self.lock_conflicts += o.lock_conflicts;
        self.bank_conflicts += o.bank_conflicts;
        self.claim_retries += o.claim_retries;
        self.barriers += o.barriers;
        self.warp_steps += o.warp_steps;
        self.local_port_cycles += o.local_port_cycles;
    }
}

/// Per-warp claim-outcome oracle handed into a replayed scheduling slice:
/// the warp's scripted claim outcomes from the serial control-replay phase,
/// its cursor into that script, and the pre-launch memory image functional
/// data reads must observe.
struct ClaimReplay<'a> {
    script: &'a [bool],
    cursor: &'a mut usize,
    snapshot: &'a [u32],
}

/// The serial control-replay phase's record of one launch: everything the
/// concurrent replay phase needs to reproduce the serial engine bit-exactly.
struct MergeableOracle {
    /// Exact global round count of the serial engine.
    rounds: u64,
    /// Exact swap-remove retirement order of the serial engine (wg ids).
    retire_order: Vec<usize>,
    /// Claim-op outcomes per warp, indexed `wg_id × warps_per_wg + warp_id`.
    scripts: Vec<Vec<bool>>,
    /// Total scheduling slices the serial engine executes — the replay must
    /// land on exactly this count or the twin diverged (checked, loudly).
    total_steps: u64,
}

/// Oracle plus the pre-launch global-memory image (taken before the control
/// replay mutates the claim-flag words).
struct MergeablePlan {
    oracle: MergeableOracle,
    snapshot: Vec<u32>,
}

/// One work-group's slice of a [`MergeablePlan`] handed to the isolated
/// runner.
struct WgReplay<'a> {
    snapshot: &'a [u32],
    /// This WG's outcome scripts, indexed by warp.
    scripts: &'a [Vec<bool>],
}

/// Context handed to [`Kernel::control_step`] during the serial
/// control-replay phase: launch geometry plus the claim ops, which resolve
/// against live memory (canonical round-robin order, exactly like the serial
/// engine) and append each boolean outcome to the warp's script.
pub struct ControlCtx<'a> {
    /// Work-group id.
    pub wg_id: usize,
    /// Warp index within the work-group.
    pub warp_id: usize,
    /// Active lanes in this warp (= SIMD width except a ragged tail warp).
    pub lanes: usize,
    /// Work-items per work-group (for grid-stride loops).
    pub wg_size: usize,
    /// Number of work-groups in the launch.
    pub num_wgs: usize,
    dev: &'a DeviceSpec,
    global: &'a GlobalMem,
    script: &'a mut Vec<bool>,
}

impl ControlCtx<'_> {
    /// The device being simulated.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        self.dev
    }

    /// Control twin of [`WarpCtx::claim_check`]: is flag `bit` set? Resolves
    /// against live memory and records the outcome.
    pub fn claim_check(&mut self, buf: Buffer, bit: usize) -> bool {
        let set = (self.global.read(buf.addr(bit / 32)) >> (bit % 32)) & 1 == 1;
        self.script.push(set);
        set
    }

    /// Control twin of [`WarpCtx::claim_acquire`]: `atom_or` flag `bit`, did
    /// this warp win it? Resolves against live memory and records the
    /// outcome.
    pub fn claim_acquire(&mut self, buf: Buffer, bit: usize) -> bool {
        let old = self.global.atomic_or(buf.addr(bit / 32), 1u32 << (bit % 32));
        let won = (old >> (bit % 32)) & 1 == 0;
        self.script.push(won);
        won
    }
}

/// Per-warp-instruction context handed to [`Kernel::step`]: functional
/// memory access plus cost accounting for one warp.
pub struct WarpCtx<'a> {
    /// Work-group id.
    pub wg_id: usize,
    /// Warp index within the work-group.
    pub warp_id: usize,
    /// Active lanes in this warp (= SIMD width except a ragged tail warp).
    pub lanes: usize,
    /// Work-items per work-group (for grid-stride loops).
    pub wg_size: usize,
    /// Number of work-groups in the launch.
    pub num_wgs: usize,
    dev: &'a DeviceSpec,
    global: &'a GlobalMem,
    local: &'a mut LocalMem,
    counters: &'a mut Counters,
    chain_cycles: &'a mut f64,
    fault: Option<&'a dyn FaultSource>,
    replay: Option<ClaimReplay<'a>>,
}

/// Scratch for distinct-count computations (≤ 64 entries, stack only).
#[inline]
fn distinct_sorted(buf: &mut [usize; MAX_LANES], n: usize) -> usize {
    let s = &mut buf[..n];
    s.sort_unstable();
    let mut distinct = 0usize;
    let mut prev = usize::MAX;
    for &a in s.iter() {
        if a != prev {
            distinct += 1;
            prev = a;
        }
    }
    distinct
}

impl WarpCtx<'_> {
    /// Global thread (work-item) id of `lane`.
    #[inline]
    #[must_use]
    pub fn thread_id(&self, lane: usize) -> usize {
        self.wg_id * self.wg_size + self.warp_id * self.dev.simd_width + lane
    }

    /// Local (within work-group) thread id of `lane`.
    #[inline]
    #[must_use]
    pub fn local_thread_id(&self, lane: usize) -> usize {
        self.warp_id * self.dev.simd_width + lane
    }

    /// Total threads in the launch.
    #[inline]
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.num_wgs * self.wg_size
    }

    /// Account pure-ALU work on the warp's dependent chain.
    pub fn alu(&mut self, cycles: f64) {
        *self.chain_cycles += cycles;
    }

    /// Note one failed flag claim: a lane raced for a cycle's start flag and
    /// lost (the PTTWAC claim protocol, §5.1), so it must fetch a new start.
    /// Pure bookkeeping — the atomic's cost was already accounted by the
    /// `atom_or` that lost.
    pub fn note_claim_retry(&mut self) {
        self.counters.claim_retries += 1;
    }

    /// Is claim flag `bit` (a bit index into `buf`'s packed flag words)
    /// already set? Costs exactly a one-lane [`WarpCtx::global_read`] of the
    /// flag word. [`Coordination::CrossWgClaims`] kernels **must** route
    /// every flag probe through this op: under the concurrent replay engine
    /// the outcome comes from the control-replay script (the flag word's
    /// live value is schedule-dependent there), while the cost accounting
    /// stays identical.
    pub fn claim_check(&mut self, buf: Buffer, bit: usize) -> bool {
        let addrs = LaneAddrs::from_fn(1, |_| Some(bit / 32));
        let old = self.global_read(buf, &addrs);
        if self.replay.is_some() {
            return self.next_scripted();
        }
        (old.get(0) >> (bit % 32)) & 1 == 1
    }

    /// `atom_or` claim flag `bit` in `buf`; `true` iff this warp set it
    /// first (won the claim). Costs exactly a one-lane
    /// [`WarpCtx::global_atomic_or`]. Under the concurrent replay engine the
    /// `atom_or` is still applied — it is commutative and idempotent, so the
    /// racing replay threads converge on the serial flag image — but the
    /// *outcome* comes from the control-replay script.
    pub fn claim_acquire(&mut self, buf: Buffer, bit: usize) -> bool {
        let claim = LaneWrites::from_fn(1, |_| Some((bit / 32, 1u32 << (bit % 32))));
        let old = self.global_atomic_or(buf, &claim);
        if self.replay.is_some() {
            return self.next_scripted();
        }
        (old.get(0) >> (bit % 32)) & 1 == 0
    }

    /// Pop the next scripted claim outcome. A script overrun means the
    /// kernel's `control_step` twin diverged from `step` — a contract bug
    /// that must never be absorbed silently.
    fn next_scripted(&mut self) -> bool {
        let wg = self.wg_id;
        let warp = self.warp_id;
        let r = self.replay.as_mut().expect("scripted claim outside replay");
        let i = *r.cursor;
        *r.cursor += 1;
        assert!(
            i < r.script.len(),
            "claim-outcome script overrun in wg {wg} warp {warp}: control_step diverged from step"
        );
        r.script[i]
    }

    /// Account the cost of an *intra-step* work-group barrier without
    /// yielding to the scheduler. Used by kernels that model a cooperative
    /// multi-warp operation inside one scheduling slice (e.g. the Sung
    /// work-group-per-super-element `100!` kernel, whose warps synchronise
    /// around every super-element move, §5.2 item 3).
    pub fn barrier_hint(&mut self) {
        self.counters.barriers += 1;
        *self.chain_cycles += self.dev.lat_barrier;
    }

    /// The device being simulated (kernels adapt to SIMD width, bank count…).
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        self.dev
    }

    /// Words of local memory this work-group allocated.
    #[must_use]
    pub fn local_capacity(&self) -> usize {
        self.local.len()
    }

    /// Batched vector loads with independent addresses (streaming a
    /// super-element): the warp keeps `mlp_transactions` in flight, so the
    /// dependent chain pays `lat_global × ceil(t / mlp)` rather than one
    /// full latency per instruction. Traffic accounting is identical to
    /// issuing each [`WarpCtx::global_read`] separately.
    pub fn global_read_batch(&mut self, buf: Buffer, batches: &[LaneAddrs]) -> Vec<LaneVals> {
        let mut total_t = 0usize;
        let mut out = Vec::with_capacity(batches.len());
        for addrs in batches {
            let abs = addrs.map(|a| a.map(|off| buf.addr(off)));
            let t = self.global_segments(&abs);
            if t > 0 {
                self.counters.gld_transactions += t as u64;
                self.counters.dram_bytes += (t * self.dev.transaction_bytes) as f64;
                self.counters.useful_bytes += (abs.active() * 4) as f64;
                total_t += t;
            }
            out.push(match &self.replay {
                // Replayed slice: functional data reads observe the
                // pre-launch image (see the note in `global_read`).
                Some(r) => abs.map(|a| a.map_or(0, |addr| r.snapshot[addr])),
                None => abs.map(|a| a.map_or(0, |addr| self.global.read(addr))),
            });
        }
        if total_t > 0 {
            let rounds = (total_t as f64 / self.dev.mlp_transactions).ceil();
            *self.chain_cycles +=
                self.dev.lat_global * rounds + (total_t as f64 - 1.0) * self.dev.lat_replay;
        }
        out
    }

    /// Batched vector stores (see [`WarpCtx::global_read_batch`]); stores
    /// are fire-and-forget, so the chain pays one store latency plus
    /// replays.
    pub fn global_write_batch(&mut self, buf: Buffer, batches: &[LaneWrites]) {
        let mut total_t = 0usize;
        for writes in batches {
            let abs: LaneAddrs = writes.map(|w| w.map(|(off, _)| buf.addr(off)));
            let t = self.global_segments(&abs);
            if t > 0 {
                self.counters.gst_transactions += t as u64;
                self.counters.dram_bytes += (t * self.dev.transaction_bytes) as f64;
                self.counters.useful_bytes += (abs.active() * 4) as f64;
                total_t += t;
            }
            for (_, w) in writes.iter() {
                if let Some((off, v)) = w {
                    self.global.write(buf.addr(off), v);
                }
            }
        }
        if total_t > 0 {
            *self.chain_cycles +=
                self.dev.lat_global_store + (total_t as f64 - 1.0) * self.dev.lat_replay;
        }
    }

    // ---- global memory ----

    fn global_segments(&mut self, addrs: &LaneAddrs) -> usize {
        let mut segs = [0usize; MAX_LANES];
        let mut n = 0;
        for (_, a) in addrs.iter() {
            if let Some(off) = a {
                segs[n] = off * 4 / self.dev.transaction_bytes;
                n += 1;
            }
        }
        if n == 0 {
            return 0;
        }
        distinct_sorted(&mut segs, n)
    }

    /// Coalescing-aware vector load: one value per active lane, `0` for
    /// inactive lanes. Addresses are word offsets into `buf`.
    pub fn global_read(&mut self, buf: Buffer, addrs: &LaneAddrs) -> LaneVals {
        let abs = addrs.map(|a| a.map(|off| buf.addr(off)));
        let t = self.global_segments(&abs);
        if t > 0 {
            self.counters.gld_transactions += t as u64;
            self.counters.dram_bytes += (t * self.dev.transaction_bytes) as f64;
            self.counters.useful_bytes += (abs.active() * 4) as f64;
            *self.chain_cycles += self.dev.lat_global + (t as f64 - 1.0) * self.dev.lat_replay;
        }
        // Replayed slice: functional data reads observe the pre-launch
        // image — the CrossWgClaims contract guarantees that is exactly
        // what the serial engine's read would have returned (every data
        // position is written at most once, by the claim winner, and
        // chain-start reads are flag-guarded; flag words are only probed
        // through the claim ops, never read functionally here).
        if let Some(r) = &self.replay {
            let snap = r.snapshot;
            return abs.map(|a| a.map_or(0, |addr| snap[addr]));
        }
        // Fully coalesced warps (every lane active, consecutive addresses —
        // the common case for tile row streaming) load as one slice
        // operation: a single bounds check instead of one per lane.
        if let Some(base) = abs.contiguous_base() {
            let mut run = [0u32; MAX_LANES];
            self.global.read_run(base, &mut run[..abs.len()]);
            return LaneVals::from_fn(abs.len(), |i| run[i]);
        }
        abs.map(|a| a.map_or(0, |addr| self.global.read(addr)))
    }

    /// Coalescing-aware vector store.
    pub fn global_write(&mut self, buf: Buffer, writes: &LaneWrites) {
        let abs: LaneAddrs = writes.map(|w| w.map(|(off, _)| buf.addr(off)));
        let t = self.global_segments(&abs);
        if t > 0 {
            self.counters.gst_transactions += t as u64;
            self.counters.dram_bytes += (t * self.dev.transaction_bytes) as f64;
            self.counters.useful_bytes += (abs.active() * 4) as f64;
            *self.chain_cycles += self.dev.lat_global_store + (t as f64 - 1.0) * self.dev.lat_replay;
        }
        // Slice-op fast path for fully coalesced stores (no same-address
        // collisions possible: addresses are distinct by construction).
        if let Some(base) = abs.contiguous_base() {
            let mut run = [0u32; MAX_LANES];
            let n = writes.len();
            for (i, (_, w)) in writes.iter().enumerate() {
                run[i] = w.map_or(0, |(_, v)| v);
            }
            self.global.write_run(base, &run[..n]);
            return;
        }
        for (_, w) in writes.iter() {
            if let Some((off, v)) = w {
                self.global.write(buf.addr(off), v);
            }
        }
    }

    /// Vector global `atom_or`; returns previous values (0 on inactive
    /// lanes). Collisions on the same word serialise (position-conflict
    /// model applied to global atomics).
    pub fn global_atomic_or(&mut self, buf: Buffer, ops: &LaneWrites) -> LaneVals {
        let mut words = [0usize; MAX_LANES];
        let mut n = 0;
        for (_, w) in ops.iter() {
            if let Some((off, _)) = w {
                words[n] = buf.addr(off);
                n += 1;
            }
        }
        if n > 0 {
            // Max same-word collision degree and distinct-word count.
            let s = &mut words[..n];
            s.sort_unstable();
            let mut max_deg = 1usize;
            let mut run = 1usize;
            let mut distinct = 1usize;
            for i in 1..n {
                if s[i] == s[i - 1] {
                    run += 1;
                    max_deg = max_deg.max(run);
                } else {
                    run = 1;
                    distinct += 1;
                }
            }
            self.counters.global_atomics += n as u64;
            self.counters.position_conflicts += (n - distinct) as u64;
            *self.chain_cycles += self.dev.lat_global_atomic * max_deg as f64;
        }
        // Functional execution in lane order (deterministic). An armed
        // fault plan may tamper with the first active lane's update.
        let mut tamper =
            self.fault.and_then(|f| f.on_global_atomic(self.wg_id, self.warp_id));
        ops.map(|w| {
            w.map_or(0, |(off, v)| match tamper.take() {
                None => self.global.atomic_or(buf.addr(off), v),
                Some(AtomicTamper::Drop) => self.global.read(buf.addr(off)),
                Some(AtomicTamper::Duplicate) => self.global.atomic_or(buf.addr(off), v) | v,
            })
        })
    }

    // ---- local memory ----

    fn local_conflict_degree(&self, addrs: &LaneAddrs) -> (usize, u64) {
        // Per bank: count distinct word addresses (same word = broadcast).
        // Returns (max degree over banks, total extra conflicts).
        let mut pairs = [(0usize, 0usize); MAX_LANES]; // (bank, addr)
        let mut n = 0;
        for (_, a) in addrs.iter() {
            if let Some(addr) = a {
                pairs[n] = (addr % self.dev.num_banks, addr);
                n += 1;
            }
        }
        if n == 0 {
            return (0, 0);
        }
        let s = &mut pairs[..n];
        s.sort_unstable();
        let mut max_deg = 1usize;
        let mut extra = 0u64;
        let mut bank_start = 0usize;
        let mut i = 0;
        while i <= n {
            if i == n || s[i].0 != s[bank_start].0 {
                // distinct addrs within bank run [bank_start, i)
                let mut distinct = 0usize;
                let mut prev = usize::MAX;
                for &(_, a) in &s[bank_start..i] {
                    if a != prev {
                        distinct += 1;
                        prev = a;
                    }
                }
                max_deg = max_deg.max(distinct);
                extra += distinct.saturating_sub(1) as u64;
                bank_start = i;
            }
            i += 1;
        }
        (max_deg, extra)
    }

    fn account_local(&mut self, addrs: &LaneAddrs) {
        let active = addrs.active();
        if active == 0 {
            return;
        }
        self.counters.local_accesses += active as u64;
        if self.dev.local_mem_onchip {
            let (deg, extra) = self.local_conflict_degree(addrs);
            self.counters.bank_conflicts += extra;
            self.counters.local_port_cycles += deg as f64;
            *self.chain_cycles += self.dev.lat_local + (deg as f64 - 1.0) * 4.0;
        } else {
            // Xeon Phi: local memory is emulated in DRAM (§7.7) — the
            // access costs a DRAM transaction stream like a global access.
            let t = addrs.active().div_ceil(self.dev.transaction_bytes / 4);
            self.counters.dram_bytes += (t * self.dev.transaction_bytes) as f64;
            self.counters.useful_bytes += (active * 4) as f64;
            *self.chain_cycles += self.dev.lat_local + (t as f64 - 1.0) * self.dev.lat_replay;
        }
    }

    /// Vector local load.
    pub fn local_read(&mut self, addrs: &LaneAddrs) -> LaneVals {
        self.account_local(addrs);
        addrs.map(|a| a.map_or(0, |addr| self.local.read(addr)))
    }

    /// Vector local store. Same-word collisions resolve in lane order
    /// (lowest lane last — deterministic; kernels should not rely on it).
    pub fn local_write(&mut self, writes: &LaneWrites) {
        let addrs: LaneAddrs = writes.map(|w| w.map(|(a, _)| a));
        self.account_local(&addrs);
        for (_, w) in writes.iter() {
            if let Some((addr, v)) = w {
                self.local.write(addr, v);
            }
        }
    }

    /// Vector local `atom_or`; returns previous values. This is the §5.1
    /// hot spot: the cost is `lat_local_atomic × conflict degree`, where the
    /// degree is the worst collision on one **lock** (same word ⇒ same lock,
    /// so position conflicts are included) or one **bank**.
    pub fn local_atomic_or(&mut self, ops: &LaneWrites) -> LaneVals {
        let mut n = 0usize;
        let mut words = [0usize; MAX_LANES];
        for (_, w) in ops.iter() {
            if let Some((addr, _)) = w {
                words[n] = addr;
                n += 1;
            }
        }
        if n > 0 {
            self.counters.local_atomics += n as u64;
            let s = &mut words[..n];
            s.sort_unstable();
            // Position conflicts: lanes sharing the exact word.
            let mut distinct_words = 0usize;
            let mut prev = usize::MAX;
            let mut word_run = 0usize;
            let mut max_word_deg = 0usize;
            for &a in s.iter() {
                if a != prev {
                    distinct_words += 1;
                    prev = a;
                    word_run = 1;
                } else {
                    word_run += 1;
                }
                max_word_deg = max_word_deg.max(word_run);
            }
            let position_extra = (n - distinct_words) as u64;

            // Lock conflicts: distinct words mapping to the same lock.
            let mut locks = [(0usize, 0usize); MAX_LANES]; // (lock, word)
            let mut ln = 0;
            prev = usize::MAX;
            for &a in s.iter() {
                if a != prev {
                    locks[ln] = (a % self.dev.num_locks, a);
                    ln += 1;
                    prev = a;
                }
            }
            let ls = &mut locks[..ln];
            ls.sort_unstable();
            let mut lock_extra = 0u64;
            let mut run = 1usize;
            let mut max_lock_words = 1usize;
            for i in 1..ln {
                if ls[i].0 == ls[i - 1].0 {
                    run += 1;
                    lock_extra += 1;
                    max_lock_words = max_lock_words.max(run);
                } else {
                    run = 1;
                }
            }

            // Bank degree (atomics flow through the banks too).
            let addrs: LaneAddrs = ops.map(|w| w.map(|(a, _)| a));
            let (bank_deg, bank_extra) = if self.dev.local_mem_onchip {
                self.local_conflict_degree(&addrs)
            } else {
                (1, 0)
            };

            self.counters.position_conflicts += position_extra;
            self.counters.lock_conflicts += lock_extra;
            self.counters.bank_conflicts += bank_extra;

            // Total serialisation degree: worst lock queue (which includes
            // every lane on the worst word plus other words on that lock)
            // or worst bank queue.
            let lock_deg = max_word_deg.max(max_lock_words + max_word_deg.saturating_sub(1));
            let degree = lock_deg.max(bank_deg) as f64;
            if self.dev.local_mem_onchip {
                // Atomics hold the bank/lock for a full read-modify-write:
                // conflicts cost pipeline *throughput*, not just latency.
                self.counters.local_port_cycles += degree * self.dev.lat_atomic_rmw;
                *self.chain_cycles += self.dev.lat_local_atomic * degree;
            } else {
                // Emulated local memory: atomic costs a DRAM round trip.
                self.counters.dram_bytes += self.dev.transaction_bytes as f64;
                *self.chain_cycles += self.dev.lat_local_atomic * degree;
            }
        }
        let mut tamper =
            self.fault.and_then(|f| f.on_local_atomic(self.wg_id, self.warp_id));
        ops.map(|w| {
            w.map_or(0, |(addr, v)| match tamper.take() {
                None => self.local.or(addr, v),
                Some(AtomicTamper::Drop) => self.local.read(addr),
                Some(AtomicTamper::Duplicate) => self.local.or(addr, v) | v,
            })
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpStatus {
    Running,
    AtBarrier,
    Done,
}

struct WarpRt<S> {
    state: S,
    status: WarpStatus,
    chain_cycles: f64,
    steps: u64,
}

struct WgRt<S> {
    wg_id: usize,
    warps: Vec<WarpRt<S>>,
    local: LocalMem,
}

/// Execute `kernel` on `dev` over `global` memory and return its stats.
///
/// # Errors
/// [`LaunchError::Infeasible`] when the kernel's resources cannot fit the
/// device at all.
pub fn launch<K: Kernel>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
) -> Result<KernelStats, LaunchError> {
    launch_with_faults(dev, global, kernel, None)
}

/// [`launch`] with an optional armed [`FaultPlan`]: atomic-flag tampering
/// and local-memory corruption are applied in flight; a planned abort
/// surfaces as [`LaunchError::Aborted`] with device memory left in whatever
/// partially transposed state the kernel reached.
///
/// # Errors
/// [`LaunchError::Infeasible`] for infeasible launches,
/// [`LaunchError::Aborted`] when the fault plan kills the kernel.
pub fn launch_with_faults<K: Kernel>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
    fault: Option<&FaultPlan>,
) -> Result<KernelStats, LaunchError> {
    launch_traced(dev, global, kernel, fault.map(|f| f as &dyn FaultSource), &NoopRecorder, 0.0)
}

/// [`launch_with_faults`] instrumented with a [`Recorder`].
///
/// `t0_s` is the launch's start on the cumulative DES clock (seconds); the
/// kernel span, sampled per-warp spans, and every typed counter land on the
/// recorder under the kernel's name. With [`NoopRecorder`] this
/// monomorphizes to exactly the uninstrumented engine — [`launch`] and
/// [`launch_with_faults`] are thin wrappers over this function.
///
/// Per-warp spans are a *sample*: the first [`WARP_SPAN_CAP`] retired warps
/// get a span (start `t0_s`, duration = that warp's dependent-chain cycles
/// at the device clock — warps run concurrently, so they share the start);
/// the remainder are counted in [`Counter::DroppedWarpSpans`].
///
/// # Errors
/// [`LaunchError::Infeasible`] for infeasible launches,
/// [`LaunchError::Aborted`] when the fault plan kills the kernel.
pub fn launch_traced<K: Kernel, R: Recorder>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
    fault: Option<&dyn FaultSource>,
    rec: &R,
    t0_s: f64,
) -> Result<KernelStats, LaunchError> {
    launch_configured(
        dev,
        global,
        kernel,
        LaunchConfig { fault, sched: None, watchdog: None, engine: EngineMode::Serial },
        rec,
        t0_s,
    )
}

/// Optional engine extensions for one launch.
///
/// The default configuration (all `None`) is exactly the historic engine:
/// round-robin schedule, no faults, no watchdog.
#[derive(Default)]
pub struct LaunchConfig<'a> {
    /// Fault source consulted at every injection site — a single-shot
    /// [`FaultPlan`] or a sustained [`ChaosPlan`](crate::fault::ChaosPlan).
    pub fault: Option<&'a dyn FaultSource>,
    /// Warp scheduler. `None` uses the built-in round-robin fast path,
    /// which is bit-identical to scheduling with
    /// [`RoundRobin`](crate::sched::RoundRobin).
    pub sched: Option<&'a mut dyn Scheduler>,
    /// Liveness watchdog converting hung launches into
    /// [`LaunchError::Stalled`].
    pub watchdog: Option<Watchdog>,
    /// Host execution engine. [`EngineMode::Parallel`] only takes effect for
    /// [`Coordination::WgLocal`] and [`Coordination::CrossWgClaims`] kernels
    /// launched with no custom scheduler, fault source, or watchdog;
    /// everything else falls back to serial.
    pub engine: EngineMode,
}

/// The fully configurable engine entry: [`launch_traced`] plus an optional
/// [`Scheduler`] controlling the warp interleaving and an optional
/// [`Watchdog`] bounding progress.
///
/// # Errors
/// [`LaunchError::Infeasible`] for infeasible launches,
/// [`LaunchError::Aborted`] when the fault source kills the kernel,
/// [`LaunchError::Stalled`] when the watchdog trips.
#[allow(clippy::too_many_lines)]
pub fn launch_configured<K: Kernel, R: Recorder>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
    mut cfg: LaunchConfig<'_>,
    rec: &R,
    t0_s: f64,
) -> Result<KernelStats, LaunchError> {
    let fault = cfg.fault;
    let watchdog = cfg.watchdog;
    if let Some(f) = fault {
        f.set_context(&kernel.name());
    }
    let grid = kernel.grid();
    assert!(grid.num_wgs > 0 && grid.wg_size > 0, "empty grid");
    let res = KernelResources {
        wg_size: grid.wg_size,
        regs_per_thread: kernel.regs_per_thread(),
        local_mem_per_wg: kernel.local_mem_words(dev) * 4,
    };
    let occ = occupancy(dev, &res);
    if !occ.feasible() {
        return Err(LaunchError::Infeasible {
            why: format!(
                "wg_size={} regs/thread={} local={}B on {}",
                res.wg_size, res.regs_per_thread, res.local_mem_per_wg, dev.name
            ),
        });
    }

    let warps_per_wg = dev.warps_per_wg(grid.wg_size);
    let resident_cap = (occ.wgs_per_sm * dev.num_sms).max(1);

    // Parallel work-group engine: only for kernels whose coordination class
    // admits deterministic merging, and only for plain launches (any
    // scheduler, fault source, or watchdog pins the launch to the serial
    // engine so the cross-WG interleaving those features observe stays
    // canonical).
    if matches!(cfg.engine, EngineMode::Parallel { .. })
        && cfg.sched.is_none()
        && fault.is_none()
        && watchdog.is_none()
    {
        let threads = cfg.engine.resolved_threads();
        match kernel.coordination() {
            // Independent work-groups: run them concurrently as-is.
            Coordination::WgLocal => {
                return Ok(launch_parallel(
                    dev,
                    global,
                    kernel,
                    grid,
                    occ,
                    warps_per_wg,
                    resident_cap,
                    threads,
                    rec,
                    t0_s,
                    None,
                ));
            }
            // Claim-coordinated work-groups: snapshot the pre-launch image,
            // resolve every claim serially (cost-free control replay), then
            // run the work-groups concurrently against the outcome scripts.
            Coordination::CrossWgClaims => {
                let snapshot = global.snapshot_words();
                let oracle = control_replay(dev, global, kernel, grid, warps_per_wg, resident_cap);
                let plan = MergeablePlan { oracle, snapshot };
                return Ok(launch_parallel(
                    dev,
                    global,
                    kernel,
                    grid,
                    occ,
                    warps_per_wg,
                    resident_cap,
                    threads,
                    rec,
                    t0_s,
                    Some(&plan),
                ));
            }
            // Arbitrary cross-WG coordination: serial engine below.
            Coordination::CrossWg => {}
        }
    }

    let mut counters = Counters::default();
    let mut max_chain: f64 = 0.0;
    let mut total_chain: f64 = 0.0;

    let make_wg = |wg_id: usize| -> WgRt<K::State> {
        WgRt {
            wg_id,
            warps: (0..warps_per_wg)
                .map(|w| WarpRt {
                    state: kernel.init(wg_id, w),
                    status: WarpStatus::Running,
                    chain_cycles: 0.0,
                    steps: 0,
                })
                .collect(),
            local: LocalMem::new(kernel.local_mem_words(dev)),
        }
    };

    let mut next_wg = 0usize;
    let mut active: Vec<WgRt<K::State>> = Vec::with_capacity(resident_cap.min(grid.num_wgs));
    while next_wg < grid.num_wgs && active.len() < resident_cap {
        active.push(make_wg(next_wg));
        next_wg += 1;
    }

    // Sampled per-warp spans: (wg_id, warp_id, chain_cycles) of the first
    // WARP_SPAN_CAP retired warps.
    let mut warp_samples: Vec<(usize, usize, f64)> = Vec::new();
    let mut dropped_warp_spans: u64 = 0;

    // One warp scheduling slice: warp-step accounting, watchdog, fault
    // hooks, the kernel step itself, and status bookkeeping. Returns
    // whether the slice performed a coordination touchpoint (atomic or
    // barrier) — the preemption points schedule exploration keys on.
    let step_one =
        |wg: &mut WgRt<K::State>, w: usize, counters: &mut Counters| -> Result<bool, LaunchError> {
            counters.warp_steps += 1;
            wg.warps[w].steps += 1;
            if let Some(wd) = watchdog {
                if wg.warps[w].steps > wd.max_steps_per_warp
                    || counters.warp_steps > wd.max_total_steps
                {
                    return Err(LaunchError::Stalled {
                        kernel: kernel.name(),
                        lane: wg.wg_id * warps_per_wg + w,
                        steps: wg.warps[w].steps,
                    });
                }
            }
            if let Some(f) = fault {
                match f.on_warp_step(wg.wg_id, w) {
                    StepFault::None => {}
                    StepFault::Abort => {
                        return Err(LaunchError::Aborted {
                            kernel: kernel.name(),
                            after_steps: counters.warp_steps,
                        })
                    }
                    StepFault::CorruptLocal(garbage) => {
                        let len = wg.local.len();
                        if len > 0 {
                            wg.local.write(f.corrupt_index(len), garbage);
                        }
                    }
                }
            }
            let touch_before = counters.local_atomics + counters.global_atomics + counters.barriers;
            let step = exec_slice(dev, global, kernel, grid, fault, wg, w, counters, None);
            let touched = step == Step::Barrier
                || counters.local_atomics + counters.global_atomics + counters.barriers
                    != touch_before;
            Ok(touched)
        };

    let mut rounds: u64 = 0;
    // Scheduled-path round snapshots, hoisted out of the loop so the hot
    // path reuses the allocations across rounds.
    let mut pending: Vec<(usize, usize)> = Vec::new();
    let mut ids: Vec<WarpId> = Vec::new();
    while !active.is_empty() {
        rounds += 1;
        match cfg.sched.as_deref_mut() {
            // Fast path: the historic schedule — each live warp steps once
            // per round, canonical (work-group slot, warp index) order.
            None => {
                for wg in active.iter_mut() {
                    for w in 0..wg.warps.len() {
                        if wg.warps[w].status != WarpStatus::Running {
                            continue;
                        }
                        step_one(wg, w, &mut counters)?;
                    }
                    release_wg(dev, wg, &mut counters);
                }
            }
            // Scheduled path: snapshot the round's runnable warps, then let
            // the scheduler step or defer each. A warp released from a
            // barrier mid-round is not in the snapshot and resumes next
            // round — the same semantics as the fast path. Every pending
            // warp stays Running until its own slice (releases only affect
            // AtBarrier warps), so the snapshot never goes stale.
            Some(sched) => {
                pending.clear();
                ids.clear();
                for (slot, wg) in active.iter().enumerate() {
                    for w in 0..wg.warps.len() {
                        if wg.warps[w].status == WarpStatus::Running {
                            pending.push((slot, w));
                            ids.push(WarpId { wg: wg.wg_id, warp: w });
                        }
                    }
                }
                sched.begin_round(&ids);
                let mut stepped_any = false;
                while !pending.is_empty() {
                    let (idx, do_step) = match sched.pick(&ids) {
                        Pick::Step(i) => (i.min(pending.len() - 1), true),
                        Pick::Skip(i) => (i.min(pending.len() - 1), false),
                    };
                    let (slot, w) = pending.remove(idx);
                    let id = ids.remove(idx);
                    if !do_step {
                        continue;
                    }
                    let touched = step_one(&mut active[slot], w, &mut counters)?;
                    stepped_any = true;
                    sched.note_step(id, touched);
                    release_wg(dev, &mut active[slot], &mut counters);
                }
                if !stepped_any {
                    // Forced progress: a scheduler that defers every warp
                    // cannot hang the launch — the first runnable warp in
                    // canonical order steps anyway.
                    let mut forced = None;
                    'find: for (slot, wg) in active.iter().enumerate() {
                        for w in 0..wg.warps.len() {
                            if wg.warps[w].status == WarpStatus::Running {
                                forced = Some((slot, w, wg.wg_id));
                                break 'find;
                            }
                        }
                    }
                    if let Some((slot, w, wg_id)) = forced {
                        let touched = step_one(&mut active[slot], w, &mut counters)?;
                        sched.note_step(WarpId { wg: wg_id, warp: w }, touched);
                        release_wg(dev, &mut active[slot], &mut counters);
                    }
                }
            }
        }
        // Retire finished WGs, admit pending ones.
        let mut i = 0;
        while i < active.len() {
            if active[i].warps.iter().all(|w| w.status == WarpStatus::Done) {
                let mut wg = active.swap_remove(i);
                for (wi, w) in wg.warps.iter().enumerate() {
                    total_chain += w.chain_cycles;
                    max_chain = max_chain.max(w.chain_cycles);
                    if rec.enabled() {
                        if warp_samples.len() < WARP_SPAN_CAP {
                            warp_samples.push((wg.wg_id, wi, w.chain_cycles));
                        } else {
                            dropped_warp_spans += 1;
                        }
                    }
                }
                if next_wg < grid.num_wgs {
                    // Reuse the retired WG's local memory *and* warp-state
                    // allocations (grids can have millions of small
                    // work-groups — re-admission must not reallocate).
                    reset_wg(kernel, dev, warps_per_wg, &mut wg, next_wg);
                    active.push(wg);
                    next_wg += 1;
                }
            } else {
                i += 1;
            }
        }
    }

    Ok(finish_launch(
        dev,
        kernel.name(),
        grid,
        occ,
        &counters,
        rounds,
        total_chain,
        max_chain,
        &warp_samples,
        dropped_warp_spans,
        rec,
        t0_s,
    ))
}

/// One warp scheduling slice's engine core — build the [`WarpCtx`], run
/// [`Kernel::step`], record the resulting status. Shared verbatim by the
/// serial engine (which wraps it with watchdog/fault handling) and the
/// parallel per-work-group runner, so both execute kernels through exactly
/// the same code.
#[allow(clippy::too_many_arguments)]
fn exec_slice<K: Kernel>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
    grid: Grid,
    fault: Option<&dyn FaultSource>,
    wg: &mut WgRt<K::State>,
    w: usize,
    counters: &mut Counters,
    replay: Option<ClaimReplay<'_>>,
) -> Step {
    let lanes = (grid.wg_size - w * dev.simd_width).min(dev.simd_width);
    let warp = &mut wg.warps[w];
    let mut ctx = WarpCtx {
        wg_id: wg.wg_id,
        warp_id: w,
        lanes,
        wg_size: grid.wg_size,
        num_wgs: grid.num_wgs,
        dev,
        global,
        local: &mut wg.local,
        counters,
        chain_cycles: &mut warp.chain_cycles,
        fault,
        replay,
    };
    let step = kernel.step(&mut warp.state, &mut ctx);
    match step {
        Step::Continue => {}
        Step::Barrier => warp.status = WarpStatus::AtBarrier,
        Step::Done => warp.status = WarpStatus::Done,
    }
    step
}

/// Barrier release: no warp of the group still running → all waiters
/// resume. Safe to check after every slice — it only fires once the
/// group's last running warp stops.
fn release_wg<S>(dev: &DeviceSpec, wg: &mut WgRt<S>, counters: &mut Counters) {
    if wg.warps.iter().all(|w| w.status != WarpStatus::Running) {
        let waiting = wg.warps.iter().filter(|w| w.status == WarpStatus::AtBarrier).count();
        if waiting > 0 {
            counters.barriers += 1;
            for w in wg.warps.iter_mut() {
                if w.status == WarpStatus::AtBarrier {
                    w.status = WarpStatus::Running;
                    w.chain_cycles += dev.lat_barrier;
                }
            }
        }
    }
}

/// Re-initialise a work-group runtime in place for `wg_id`, reusing its
/// warp-state and local-memory allocations.
fn reset_wg<K: Kernel>(
    kernel: &K,
    dev: &DeviceSpec,
    warps_per_wg: usize,
    wg: &mut WgRt<K::State>,
    wg_id: usize,
) {
    wg.wg_id = wg_id;
    wg.local.resize(kernel.local_mem_words(dev));
    wg.warps.clear();
    wg.warps.extend((0..warps_per_wg).map(|w| WarpRt {
        state: kernel.init(wg_id, w),
        status: WarpStatus::Running,
        chain_cycles: 0.0,
        steps: 0,
    }));
}

/// The serial **control replay** (phase one of the two-phase
/// [`Coordination::CrossWgClaims`] engine): replicate the serial fast path's
/// loop skeleton exactly — residency-capped admission, each live warp once
/// per round in canonical (work-group slot, warp index) order, per-WG
/// barrier release, swap-remove retirement — but drive
/// [`Kernel::control_step`] instead of [`Kernel::step`]: no data movement,
/// no local memory, no cost accounting. The claim ops resolve against live
/// memory in this canonical order, so the recorded per-warp outcome scripts
/// are exactly the outcomes the serial engine would have produced; the
/// claim-flag ORs it applies are re-applied idempotently by the replay
/// phase, so no memory restore is needed.
fn control_replay<K: Kernel>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
    grid: Grid,
    warps_per_wg: usize,
    resident_cap: usize,
) -> MergeableOracle {
    struct CtrlWarp<S> {
        state: S,
        status: WarpStatus,
    }
    struct CtrlWg<S> {
        wg_id: usize,
        warps: Vec<CtrlWarp<S>>,
    }
    let num_wgs = grid.num_wgs;
    let mut scripts: Vec<Vec<bool>> = Vec::new();
    scripts.resize_with(num_wgs * warps_per_wg, Vec::new);
    let make_wg = |wg_id: usize| CtrlWg {
        wg_id,
        warps: (0..warps_per_wg)
            .map(|w| CtrlWarp { state: kernel.init(wg_id, w), status: WarpStatus::Running })
            .collect(),
    };
    let mut next_wg = 0usize;
    let mut active: Vec<CtrlWg<K::State>> = Vec::with_capacity(resident_cap.min(num_wgs));
    while next_wg < num_wgs && active.len() < resident_cap {
        active.push(make_wg(next_wg));
        next_wg += 1;
    }
    let mut rounds = 0u64;
    let mut total_steps = 0u64;
    let mut retire_order: Vec<usize> = Vec::with_capacity(num_wgs);
    while !active.is_empty() {
        rounds += 1;
        for wg in active.iter_mut() {
            for w in 0..wg.warps.len() {
                if wg.warps[w].status != WarpStatus::Running {
                    continue;
                }
                total_steps += 1;
                let lanes = (grid.wg_size - w * dev.simd_width).min(dev.simd_width);
                let mut ctx = ControlCtx {
                    wg_id: wg.wg_id,
                    warp_id: w,
                    lanes,
                    wg_size: grid.wg_size,
                    num_wgs,
                    dev,
                    global,
                    script: &mut scripts[wg.wg_id * warps_per_wg + w],
                };
                match kernel.control_step(&mut wg.warps[w].state, &mut ctx) {
                    Step::Continue => {}
                    Step::Barrier => wg.warps[w].status = WarpStatus::AtBarrier,
                    Step::Done => wg.warps[w].status = WarpStatus::Done,
                }
            }
            // Cost-free barrier release, same condition as `release_wg`.
            if wg.warps.iter().all(|w| w.status != WarpStatus::Running) {
                for w in wg.warps.iter_mut() {
                    if w.status == WarpStatus::AtBarrier {
                        w.status = WarpStatus::Running;
                    }
                }
            }
        }
        // Retire finished WGs, admit pending ones — swap-remove plus
        // push-to-back, the exact serial retirement order.
        let mut i = 0;
        while i < active.len() {
            if active[i].warps.iter().all(|w| w.status == WarpStatus::Done) {
                let retired = active.swap_remove(i);
                retire_order.push(retired.wg_id);
                if next_wg < num_wgs {
                    active.push(make_wg(next_wg));
                    next_wg += 1;
                }
            } else {
                i += 1;
            }
        }
    }
    MergeableOracle { rounds, retire_order, scripts, total_steps }
}

/// What one isolated work-group run reports back to the merge step.
struct WgOut {
    /// Scheduling rounds this WG needed from admission to retirement (≥ 1).
    rounds: u64,
    /// This WG's share of every engine counter.
    counters: Counters,
    /// Final dependent-chain cycles per warp, in warp-index order.
    warp_chains: Vec<f64>,
}

/// Run one work-group to completion in isolation (no fault source, no
/// watchdog — the parallel-eligibility gate guarantees neither is armed).
///
/// For a [`Coordination::WgLocal`] kernel this is step-for-step identical to
/// what the work-group executes inside the serial round-robin engine: the
/// serial fast path steps each WG's live warps in warp order once per round
/// and releases its barriers per round, and nothing a *different* WG does in
/// between can be observed (no shared global words, private local memory,
/// and the global `warp_steps` count is invisible to kernels).
///
/// With `replay` (a [`Coordination::CrossWgClaims`] launch) the same
/// argument holds because the only cross-WG observables — claim outcomes
/// and functional data reads — are replayed from the oracle script and the
/// pre-launch snapshot; per-warp cursors are checked against the script
/// lengths on retirement, so a `control_step`/`step` divergence fails loud.
#[allow(clippy::too_many_arguments)]
fn run_wg_isolated<K: Kernel>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
    grid: Grid,
    warps_per_wg: usize,
    wg_id: usize,
    scratch: &mut WgRt<K::State>,
    replay: Option<&WgReplay<'_>>,
) -> WgOut {
    reset_wg(kernel, dev, warps_per_wg, scratch, wg_id);
    let mut counters = Counters::default();
    let mut cursors = vec![0usize; if replay.is_some() { warps_per_wg } else { 0 }];
    let mut rounds = 0u64;
    while scratch.warps.iter().any(|w| w.status != WarpStatus::Done) {
        rounds += 1;
        // Index loop: `cursors[w]` is borrowed mutably per-iteration next
        // to `scratch.warps[w]`, which an iterator chain cannot express.
        #[allow(clippy::needless_range_loop)]
        for w in 0..warps_per_wg {
            if scratch.warps[w].status != WarpStatus::Running {
                continue;
            }
            counters.warp_steps += 1;
            scratch.warps[w].steps += 1;
            let rep = replay.map(|r| ClaimReplay {
                script: &r.scripts[w],
                cursor: &mut cursors[w],
                snapshot: r.snapshot,
            });
            exec_slice(dev, global, kernel, grid, None, scratch, w, &mut counters, rep);
        }
        release_wg(dev, scratch, &mut counters);
    }
    if let Some(r) = replay {
        for (w, &cur) in cursors.iter().enumerate() {
            assert_eq!(
                cur,
                r.scripts[w].len(),
                "claim script underrun in wg {wg_id} warp {w}: control_step diverged from step"
            );
        }
    }
    WgOut {
        rounds,
        counters,
        warp_chains: scratch.warps.iter().map(|w| w.chain_cycles).collect(),
    }
}

/// Slot replay for [`Coordination::WgLocal`] launches: reconstruct the
/// serial engine's global round count and swap-remove retirement order from
/// the per-WG isolated round counts without re-executing anything.
fn slot_replay(outs: &[WgOut], resident_cap: usize, num_wgs: usize) -> (u64, Vec<usize>) {
    let initial = resident_cap.min(num_wgs);
    let mut slots: Vec<usize> = (0..initial).collect();
    let mut remaining: Vec<u64> = slots.iter().map(|&g| outs[g].rounds).collect();
    let mut next_wg = initial;
    let mut retire_order: Vec<usize> = Vec::with_capacity(num_wgs);
    let mut rounds: u64 = 0;
    while !slots.is_empty() {
        rounds += 1;
        for r in remaining.iter_mut() {
            *r -= 1;
        }
        let mut i = 0;
        while i < slots.len() {
            if remaining[i] == 0 {
                retire_order.push(slots[i]);
                slots.swap_remove(i);
                remaining.swap_remove(i);
                if next_wg < num_wgs {
                    slots.push(next_wg);
                    remaining.push(outs[next_wg].rounds);
                    next_wg += 1;
                }
            } else {
                i += 1;
            }
        }
    }
    (rounds, retire_order)
}

/// The parallel work-group engine: run every work-group in isolation on a
/// scoped host-thread pool, then deterministically reconstruct exactly what
/// the serial round-robin engine would have produced:
///
/// * **Memory image** — WgLocal work-groups write disjoint global words, so
///   execution order cannot change the final image. CrossWgClaims
///   work-groups write each data position at most once (claim winners are
///   fixed by the oracle) and their flag-word `atom_or`s are commutative
///   and idempotent, so again order cannot change the image.
/// * **Counters** — merged from per-WG subtotals in canonical wg order; all
///   f64 counter increments are integer-valued (see [`Counters::merge`]), so
///   the regrouped sums are bit-exact.
/// * **Round count and retirement order** — for WgLocal, replayed over
///   residency *slots*: each WG occupies a slot for its isolated round
///   count `R_g` (its per-round behaviour depends only on itself),
///   reproducing the serial engine's `rounds`, its swap-remove retire order
///   (which orders `total_chain_cycles` accumulation and warp-span
///   sampling), and its sequential admissions. For CrossWgClaims both come
///   straight from the control replay, which ran the serial skeleton.
#[allow(clippy::too_many_arguments)]
fn launch_parallel<K: Kernel, R: Recorder>(
    dev: &DeviceSpec,
    global: &GlobalMem,
    kernel: &K,
    grid: Grid,
    occ: Occupancy,
    warps_per_wg: usize,
    resident_cap: usize,
    threads: usize,
    rec: &R,
    t0_s: f64,
    mergeable: Option<&MergeablePlan>,
) -> KernelStats {
    let num_wgs = grid.num_wgs;
    let empty_scratch = || WgRt::<K::State> { wg_id: 0, warps: Vec::new(), local: LocalMem::new(0) };
    let wg_replay = |g: usize| {
        mergeable.map(|p| WgReplay {
            snapshot: &p.snapshot,
            scripts: &p.oracle.scripts[g * warps_per_wg..(g + 1) * warps_per_wg],
        })
    };
    let mut outs: Vec<Option<WgOut>> = Vec::new();
    outs.resize_with(num_wgs, || None);
    if threads <= 1 || num_wgs == 1 {
        let mut scratch = empty_scratch();
        for (g, slot) in outs.iter_mut().enumerate() {
            *slot = Some(run_wg_isolated(
                dev,
                global,
                kernel,
                grid,
                warps_per_wg,
                g,
                &mut scratch,
                wg_replay(g).as_ref(),
            ));
        }
    } else {
        // Engage atomic RMWs for the duration of multi-threaded stepping
        // (CrossWgClaims replays genuinely race on the flag words — the
        // re-applied `fetch_or`s are what keeps the final flag image
        // identical to serial).
        global.set_parallel(true);
        let chunk = num_wgs.div_ceil(threads * 8).max(1);
        let mut work: Vec<(usize, &mut [Option<WgOut>])> = Vec::new();
        for (ci, slice) in outs.chunks_mut(chunk).enumerate() {
            work.push((ci * chunk, slice));
        }
        work.reverse(); // workers pop from the back → grid order first
        let work = Mutex::new(work);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let mut scratch = empty_scratch();
                    loop {
                        let item = work.lock().expect("sim worker poisoned").pop();
                        let Some((start, slice)) = item else { break };
                        for (off, slot) in slice.iter_mut().enumerate() {
                            *slot = Some(run_wg_isolated(
                                dev,
                                global,
                                kernel,
                                grid,
                                warps_per_wg,
                                start + off,
                                &mut scratch,
                                wg_replay(start + off).as_ref(),
                            ));
                        }
                    }
                });
            }
        });
        global.set_parallel(false);
    }
    let outs: Vec<WgOut> = outs.into_iter().map(|o| o.expect("every WG ran")).collect();

    // Canonical-order counter merge.
    let mut counters = Counters::default();
    for o in &outs {
        debug_assert!(o.rounds >= 1);
        counters.merge(&o.counters);
    }

    let (rounds, retire_order) = match mergeable {
        // The control replay ran the exact serial loop skeleton, so its
        // round count and retirement order are the serial engine's; the
        // total-step cross-check catches any control/step divergence that
        // happened to keep every per-warp script length intact.
        Some(p) => {
            assert_eq!(
                counters.warp_steps, p.oracle.total_steps,
                "replayed warp steps diverged from the control replay"
            );
            (p.oracle.rounds, p.oracle.retire_order.clone())
        }
        None => slot_replay(&outs, resident_cap, num_wgs),
    };

    // Chain totals and span sampling in exact serial retirement order, so
    // even non-integer chain cycles accumulate bit-identically.
    let mut total_chain: f64 = 0.0;
    let mut max_chain: f64 = 0.0;
    let mut warp_samples: Vec<(usize, usize, f64)> = Vec::new();
    let mut dropped_warp_spans: u64 = 0;
    for &g in &retire_order {
        for (wi, &chain) in outs[g].warp_chains.iter().enumerate() {
            total_chain += chain;
            max_chain = max_chain.max(chain);
            if rec.enabled() {
                if warp_samples.len() < WARP_SPAN_CAP {
                    warp_samples.push((g, wi, chain));
                } else {
                    dropped_warp_spans += 1;
                }
            }
        }
    }

    finish_launch(
        dev,
        kernel.name(),
        grid,
        occ,
        &counters,
        rounds,
        total_chain,
        max_chain,
        &warp_samples,
        dropped_warp_spans,
        rec,
        t0_s,
    )
}

/// The launch epilogue shared bit-for-bit by the serial and parallel
/// engines: the four-bound time model, [`KernelStats`] assembly, and trace
/// recording.
#[allow(clippy::too_many_arguments)]
fn finish_launch<R: Recorder>(
    dev: &DeviceSpec,
    name: String,
    grid: Grid,
    occ: Occupancy,
    counters: &Counters,
    rounds: u64,
    total_chain: f64,
    max_chain: f64,
    warp_samples: &[(usize, usize, f64)],
    dropped_warp_spans: u64,
    rec: &R,
    t0_s: f64,
) -> KernelStats {
    // ---- time model ----
    let clock_hz = dev.clock_ghz * 1e9;
    // Concurrency actually sustained: average live warps per scheduling
    // round, never more than the device can hold resident. This discounts
    // idle helper warps (they stop stepping immediately) and short grids.
    let resident_warps = (occ.warps_per_sm * dev.num_sms) as f64;
    let avg_live = (counters.warp_steps as f64 / rounds.max(1) as f64).max(1.0);
    let overlap = avg_live.min(resident_warps).max(1.0);
    // Bandwidth saturation follows the *achieved* warp concurrency: a
    // launch that keeps only a sliver of the device busy cannot stream at
    // peak (the paper's "minimum recommended 50 % occupancy").
    let achieved_occ =
        (overlap / (dev.num_sms * dev.max_warps_per_sm) as f64).min(occ.occupancy);
    let bw_scale = (achieved_occ / dev.bw_saturation_occupancy).clamp(0.02, 1.0);
    let bandwidth_s =
        counters.dram_bytes / (dev.peak_gbps * 1e9 * dev.dram_efficiency * bw_scale);
    let latency_s = total_chain / overlap / clock_hz;
    let serial_s = max_chain / clock_hz;
    let local_port_s = counters.local_port_cycles / dev.num_sms as f64 / clock_hz;
    let bounds = TimeBounds { bandwidth_s, latency_s, serial_s, local_port_s };

    let stats = KernelStats {
        name,
        num_wgs: grid.num_wgs,
        wg_size: grid.wg_size,
        occupancy: occ,
        time_s: bounds.max(),
        bounds,
        dram_bytes: counters.dram_bytes,
        useful_bytes: counters.useful_bytes,
        gld_transactions: counters.gld_transactions,
        gst_transactions: counters.gst_transactions,
        local_accesses: counters.local_accesses,
        local_atomics: counters.local_atomics,
        global_atomics: counters.global_atomics,
        position_conflicts: counters.position_conflicts,
        lock_conflicts: counters.lock_conflicts,
        bank_conflicts: counters.bank_conflicts,
        claim_retries: counters.claim_retries,
        barriers: counters.barriers,
        warp_steps: counters.warp_steps,
        total_chain_cycles: total_chain,
        max_chain_cycles: max_chain,
    };

    if rec.enabled() {
        stats.record(rec, t0_s);
        let t0_us = t0_s * 1e6;
        for (i, &(wg_id, warp_id, chain)) in warp_samples.iter().enumerate() {
            // Warps run concurrently: all sampled spans share the launch
            // start; duration is the warp's own dependent chain. Spread
            // across 8 display tracks so overlaps stay readable.
            let track = Level::Warp.base_track() + (i % 8) as u32;
            rec.span(
                Level::Warp,
                &format!("wg{wg_id}.w{warp_id}"),
                t0_us,
                chain / clock_hz * 1e6,
                track,
                &[("chain_cycles", chain)],
            );
        }
        if dropped_warp_spans > 0 {
            rec.add(&stats.name, Counter::DroppedWarpSpans, dropped_warp_spans);
        }
    }

    stats
}
