//! Deterministic fault injection for the simulator.
//!
//! Two injection sources implement the [`FaultSource`] trait the engine
//! consults at every injection site:
//!
//! * [`FaultPlan`] — seeded, armed on a [`crate::Sim`] (or passed to the
//!   command-queue DES), fires **exactly one** fault when its event
//!   countdown reaches zero.
//! * [`ChaosPlan`] — a sustained chaos campaign: a rate-driven multi-fault
//!   stream that keeps injecting (up to a cap) for as long as the run
//!   lasts, designed to compose with adversarial schedules from
//!   [`crate::sched`].
//!
//! Every fault is tagged with a [`FaultRecord`] naming the site it fired
//! at, so tests can assert both *that* and *where* injection happened, and
//! campaigns are reproducible from the seed alone.
//!
//! Modelled fault classes (chosen to stress the transposition pipeline's
//! correctness mechanisms — the PTTWAC claim protocols, the barrier
//! schedule, and the PCIe transfer path):
//!
//! * **Dropped / duplicated atomic flag updates**, local ([`LocalMem::or`])
//!   and global ([`GlobalMem::atomic_or`]) — the coordination bits of
//!   `010!` / `100!` cycle following. A *drop* loses the claim (two warps
//!   may move the same element); a *duplicate* reports the bit as already
//!   set (the claiming warp skips its move).
//! * **Kernel abort** after K warp steps — a launch that dies mid-flight
//!   (watchdog timeout, ECC machine check), surfacing as
//!   [`LaunchError::Aborted`](crate::exec::LaunchError::Aborted).
//! * **Local-memory word corruption** — a transient bit flip in one
//!   work-group's scratchpad.
//! * **Transient H2D / D2H transfer failures** in the command-queue DES —
//!   a PCIe hiccup; retrying the transfer succeeds.
//!
//! All of it is deterministic: the same seed fires the same fault at the
//! same event index, independent of host threading (the simulator itself is
//! single-threaded per launch and the countdown is atomic).
//!
//! [`LocalMem::or`]: crate::mem::LocalMem::or
//! [`GlobalMem::atomic_or`]: crate::mem::GlobalMem::atomic_or

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Anything the engine can consult for fault injection: the single-shot
/// [`FaultPlan`] and the sustained [`ChaosPlan`] both implement it, so the
/// execution engine and the command-queue DES take `Option<&dyn
/// FaultSource>` and stay agnostic of the campaign style.
pub trait FaultSource: Sync {
    /// Name the execution context (kernel name, scheme) for subsequent
    /// records.
    fn set_context(&self, ctx: &str);
    /// Consult at a local atomic OR (one call per warp instruction).
    /// `Some` means: tamper with the first active lane.
    fn on_local_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper>;
    /// Consult at a global atomic OR (one call per warp instruction).
    fn on_global_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper>;
    /// Consult at a warp-step boundary.
    fn on_warp_step(&self, wg_id: usize, warp_id: usize) -> StepFault;
    /// Word index to corrupt inside a scratchpad of `len` words.
    fn corrupt_index(&self, len: usize) -> usize;
    /// Consult when the DES schedules an H2D (`h2d = true`) or D2H
    /// transfer; true means this transfer fails transiently.
    fn on_transfer(&self, h2d: bool, queue: usize, index: usize) -> bool;
    /// Records of every fired fault so far.
    fn records(&self) -> Vec<FaultRecord>;
}

/// The class of fault a plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A local-memory atomic OR is not applied (the claim is lost).
    DropLocalAtomic,
    /// A local-memory atomic OR reports its bits as already set (a spurious
    /// duplicate claim: the claiming lane believes it lost the race).
    DuplicateLocalAtomic,
    /// A global-memory atomic OR is not applied.
    DropGlobalAtomic,
    /// A global-memory atomic OR reports its bits as already set.
    DuplicateGlobalAtomic,
    /// The running kernel aborts after the countdown's worth of warp steps.
    AbortKernel,
    /// One word of a work-group's local memory is overwritten.
    CorruptLocalWord,
    /// The Nth host-to-device transfer in the DES fails transiently.
    FailH2D,
    /// The Nth device-to-host transfer in the DES fails transiently.
    FailD2H,
}

impl FaultKind {
    /// All injectable kinds, in the order the seed selects from.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::DropLocalAtomic,
        FaultKind::DuplicateLocalAtomic,
        FaultKind::DropGlobalAtomic,
        FaultKind::DuplicateGlobalAtomic,
        FaultKind::AbortKernel,
        FaultKind::CorruptLocalWord,
        FaultKind::FailH2D,
        FaultKind::FailD2H,
    ];
}

/// How a tampered atomic behaves at the firing site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicTamper {
    /// The OR is not applied; the true old value is returned (a lost
    /// update — other warps can still claim the same bit).
    Drop,
    /// The OR is applied, but the returned old value has the requested bits
    /// set (the claimant concludes someone else owns the element).
    Duplicate,
}

/// What the execution engine should do at a warp-step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepFault {
    /// Nothing fires here.
    None,
    /// Abort the launch now.
    Abort,
    /// Overwrite one local-memory word with the given value.
    CorruptLocal(u32),
}

/// One fired fault, for assertion and reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// What fired.
    pub kind: FaultKind,
    /// Where it fired (kernel or transfer site, e.g. `pttwac-010`,
    /// `DES H2D #0`).
    pub site: String,
    /// Free-form detail (event index, affected word, …).
    pub detail: String,
}

/// SplitMix64 — the same tiny deterministic generator the test shims use.
/// Public so downstream crates derive jitter and sub-seeds from one
/// top-level campaign seed.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, single-shot fault plan.
///
/// Interior-mutable so the simulator can consult it through shared
/// references on its hot paths; the countdown is a single atomic and the
/// record log is mutex-guarded (contended only at the one firing instant).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    kind: FaultKind,
    trigger: u64,
    payload: u64,
    remaining: AtomicI64,
    context: Mutex<String>,
    log: Mutex<Vec<FaultRecord>>,
}

impl FaultPlan {
    /// Derive a single fault (kind, trigger point, payload) from `seed`.
    ///
    /// Trigger ranges are deliberately small so that typical pipeline runs
    /// actually reach the firing point; a plan whose countdown is never
    /// exhausted simply never fires (the run is fault-free).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let kind = FaultKind::ALL[(splitmix(&mut s) % FaultKind::ALL.len() as u64) as usize];
        let trigger = match kind {
            // Atomic tampering: within the first few hundred flag updates.
            FaultKind::DropLocalAtomic
            | FaultKind::DuplicateLocalAtomic
            | FaultKind::DropGlobalAtomic
            | FaultKind::DuplicateGlobalAtomic => splitmix(&mut s) % 256,
            // Abort / corruption: within the first few thousand warp steps.
            FaultKind::AbortKernel | FaultKind::CorruptLocalWord => splitmix(&mut s) % 2048,
            // Transfers: one of the first few DES copies.
            FaultKind::FailH2D | FaultKind::FailD2H => splitmix(&mut s) % 3,
        };
        let payload = splitmix(&mut s);
        Self::exact(seed, kind, trigger, payload)
    }

    /// A plan firing `kind` at exactly the `trigger`-th matching event
    /// (0-based), with `payload` steering secondary choices (corruption
    /// value, etc.). For targeted tests.
    #[must_use]
    pub fn exact(seed: u64, kind: FaultKind, trigger: u64, payload: u64) -> Self {
        Self {
            seed,
            kind,
            trigger,
            payload,
            remaining: AtomicI64::new(trigger as i64),
            context: Mutex::new(String::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The seed this plan was derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault class this plan injects.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Has the fault fired yet?
    #[must_use]
    pub fn fired(&self) -> bool {
        !self.log.lock().map(|l| l.is_empty()).unwrap_or(true)
    }

    /// The records of every fired fault (a single-shot plan logs at most
    /// one).
    #[must_use]
    pub fn records(&self) -> Vec<FaultRecord> {
        self.log.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Name the execution context (kernel name, scheme) for subsequent
    /// records.
    pub fn set_context(&self, ctx: &str) {
        if let Ok(mut c) = self.context.lock() {
            c.clear();
            c.push_str(ctx);
        }
    }

    /// Re-arm the countdown (a fresh campaign pass with the same plan).
    pub fn rearm(&self) {
        self.remaining.store(self.trigger as i64, Ordering::SeqCst);
        if let Ok(mut l) = self.log.lock() {
            l.clear();
        }
    }

    /// Count one event of the plan's class; true exactly once, when the
    /// countdown crosses zero.
    fn tick(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::SeqCst) == 0
    }

    fn record(&self, detail: String) {
        let site = self.context.lock().map(|c| c.clone()).unwrap_or_default();
        if let Ok(mut l) = self.log.lock() {
            l.push(FaultRecord { kind: self.kind, site, detail });
        }
    }

    /// Consult the plan at a local atomic OR (one call per warp
    /// instruction). `Some` means: tamper with the first active lane.
    pub fn on_local_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper> {
        let tamper = match self.kind {
            FaultKind::DropLocalAtomic => AtomicTamper::Drop,
            FaultKind::DuplicateLocalAtomic => AtomicTamper::Duplicate,
            _ => return None,
        };
        if !self.tick() {
            return None;
        }
        self.record(format!(
            "local atomic #{} tampered ({tamper:?}) at wg={wg_id} warp={warp_id}",
            self.trigger
        ));
        Some(tamper)
    }

    /// Consult the plan at a global atomic OR (one call per warp
    /// instruction).
    pub fn on_global_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper> {
        let tamper = match self.kind {
            FaultKind::DropGlobalAtomic => AtomicTamper::Drop,
            FaultKind::DuplicateGlobalAtomic => AtomicTamper::Duplicate,
            _ => return None,
        };
        if !self.tick() {
            return None;
        }
        self.record(format!(
            "global atomic #{} tampered ({tamper:?}) at wg={wg_id} warp={warp_id}",
            self.trigger
        ));
        Some(tamper)
    }

    /// Consult the plan at a warp-step boundary.
    pub fn on_warp_step(&self, wg_id: usize, warp_id: usize) -> StepFault {
        match self.kind {
            FaultKind::AbortKernel => {
                if self.tick() {
                    self.record(format!(
                        "kernel aborted at warp step #{} (wg={wg_id} warp={warp_id})",
                        self.trigger
                    ));
                    StepFault::Abort
                } else {
                    StepFault::None
                }
            }
            FaultKind::CorruptLocalWord => {
                if self.tick() {
                    // Corruption value: never zero, so flag words are
                    // visibly disturbed.
                    let garbage = (self.payload as u32) | 1;
                    self.record(format!(
                        "local word corrupted to {garbage:#x} at warp step #{} \
                         (wg={wg_id} warp={warp_id})",
                        self.trigger
                    ));
                    StepFault::CorruptLocal(garbage)
                } else {
                    StepFault::None
                }
            }
            _ => StepFault::None,
        }
    }

    /// Word index to corrupt inside a scratchpad of `len` words.
    #[must_use]
    pub fn corrupt_index(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (self.payload % len as u64) as usize
        }
    }

    /// Consult the plan when the DES schedules an H2D (`h2d = true`) or
    /// D2H transfer; true means this transfer fails transiently.
    pub fn on_transfer(&self, h2d: bool, queue: usize, index: usize) -> bool {
        let matches = match self.kind {
            FaultKind::FailH2D => h2d,
            FaultKind::FailD2H => !h2d,
            _ => false,
        };
        if !matches || !self.tick() {
            return false;
        }
        let dir = if h2d { "H2D" } else { "D2H" };
        self.record(format!(
            "{dir} transfer #{} failed transiently (queue {queue}, command {index})",
            self.trigger
        ));
        true
    }
}

impl FaultSource for FaultPlan {
    fn set_context(&self, ctx: &str) {
        FaultPlan::set_context(self, ctx);
    }
    fn on_local_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper> {
        FaultPlan::on_local_atomic(self, wg_id, warp_id)
    }
    fn on_global_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper> {
        FaultPlan::on_global_atomic(self, wg_id, warp_id)
    }
    fn on_warp_step(&self, wg_id: usize, warp_id: usize) -> StepFault {
        FaultPlan::on_warp_step(self, wg_id, warp_id)
    }
    fn corrupt_index(&self, len: usize) -> usize {
        FaultPlan::corrupt_index(self, len)
    }
    fn on_transfer(&self, h2d: bool, queue: usize, index: usize) -> bool {
        FaultPlan::on_transfer(self, h2d, queue, index)
    }
    fn records(&self) -> Vec<FaultRecord> {
        FaultPlan::records(self)
    }
}

/// Per-site-class fault rates of a [`ChaosPlan`], probabilities per
/// consultation in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability a local atomic OR is tampered (drop/duplicate, seeded).
    pub local_atomic_rate: f64,
    /// Probability a global atomic OR is tampered.
    pub global_atomic_rate: f64,
    /// Probability a warp step corrupts one local-memory word.
    pub corrupt_rate: f64,
    /// Probability a warp step aborts the kernel. Keep tiny (or zero):
    /// every abort costs the recovery path a full retry.
    pub abort_rate: f64,
    /// Probability a DES transfer fails transiently.
    ///
    /// Applies to both directions unless the per-direction overrides below
    /// are set.
    pub transfer_rate: f64,
    /// Per-direction override: probability an **H2D** transfer (copy engine
    /// 0's queue) fails. `None` falls back to the shared
    /// [`transfer_rate`](Self::transfer_rate) stream; `Some` draws from an
    /// independent seeded stream keyed on the H2D consultation count, so
    /// D2H traffic cannot shift which H2D transfers fault.
    pub h2d_rate: Option<f64>,
    /// Per-direction override: probability a **D2H** transfer (copy engine
    /// 1's queue) fails. Same stream-independence contract as
    /// [`h2d_rate`](Self::h2d_rate).
    pub d2h_rate: Option<f64>,
    /// Hard cap on injected faults per arming (campaigns stay bounded).
    pub max_faults: usize,
}

impl ChaosConfig {
    /// A mild sustained campaign: frequent enough to exercise every retry
    /// path over a pipeline run, bounded enough that recovery converges.
    #[must_use]
    pub fn mild() -> Self {
        Self {
            local_atomic_rate: 0.002,
            global_atomic_rate: 0.002,
            corrupt_rate: 0.0005,
            abort_rate: 0.0,
            transfer_rate: 0.01,
            h2d_rate: None,
            d2h_rate: None,
            max_faults: 16,
        }
    }

    /// A harsh campaign: order-of-magnitude higher pressure plus rare
    /// aborts — the fallback chain's stress profile.
    #[must_use]
    pub fn harsh() -> Self {
        Self {
            local_atomic_rate: 0.02,
            global_atomic_rate: 0.02,
            corrupt_rate: 0.005,
            abort_rate: 0.0002,
            transfer_rate: 0.05,
            h2d_rate: None,
            d2h_rate: None,
            max_faults: 64,
        }
    }

    /// A transfer-only campaign with independent per-direction streams:
    /// H2D faults at `h2d`, D2H faults at `d2h`, no kernel-site chaos.
    /// Used by the out-of-core streaming fault campaign to target one copy
    /// engine's queue without perturbing the other's fault sequence.
    #[must_use]
    pub fn transfers(h2d: f64, d2h: f64, max_faults: usize) -> Self {
        Self {
            local_atomic_rate: 0.0,
            global_atomic_rate: 0.0,
            corrupt_rate: 0.0,
            abort_rate: 0.0,
            transfer_rate: 0.0,
            h2d_rate: Some(h2d),
            d2h_rate: Some(d2h),
            max_faults,
        }
    }
}

/// A seeded, sustained, rate-driven chaos campaign.
///
/// Unlike the single-shot [`FaultPlan`], a chaos plan keeps firing: every
/// consultation advances a global event counter, and a pure hash of
/// `(seed, event, site class)` decides whether that event is faulted — so
/// the exact same faults fire at the exact same events regardless of host
/// threading, and composing the campaign with any deterministic schedule
/// is itself deterministic. Injection stops at
/// [`ChaosConfig::max_faults`].
#[derive(Debug)]
pub struct ChaosPlan {
    seed: u64,
    cfg: ChaosConfig,
    events: AtomicU64,
    /// H2D consultations seen (drives the independent H2D stream when
    /// [`ChaosConfig::h2d_rate`] is set).
    h2d_events: AtomicU64,
    /// D2H consultations seen (independent D2H stream).
    d2h_events: AtomicU64,
    injected: AtomicU64,
    context: Mutex<String>,
    log: Mutex<Vec<FaultRecord>>,
}

/// Site classes hashed into the firing decision (distinct streams per
/// class so rates are independent).
#[derive(Debug, Clone, Copy)]
enum ChaosSite {
    LocalAtomic,
    GlobalAtomic,
    WarpStep,
    Transfer,
    /// Direction-targeted transfer streams: kept distinct from [`Transfer`]
    /// (and from each other) so enabling a per-direction override never
    /// replays the legacy shared stream's decisions.
    ///
    /// [`Transfer`]: Self::Transfer
    H2dTransfer,
    D2hTransfer,
}

impl ChaosPlan {
    /// A campaign with the given seed and rates.
    #[must_use]
    pub fn new(seed: u64, cfg: ChaosConfig) -> Self {
        Self {
            seed,
            cfg,
            events: AtomicU64::new(0),
            h2d_events: AtomicU64::new(0),
            d2h_events: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            context: Mutex::new(String::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The campaign seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The campaign's rate configuration.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// How many faults have been injected since the last (re)arming.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Reset counters and log for a fresh campaign pass with the same seed.
    pub fn rearm(&self) {
        self.events.store(0, Ordering::SeqCst);
        self.h2d_events.store(0, Ordering::SeqCst);
        self.d2h_events.store(0, Ordering::SeqCst);
        self.injected.store(0, Ordering::SeqCst);
        if let Ok(mut l) = self.log.lock() {
            l.clear();
        }
    }

    /// Deterministic draw for one event at one site class. Returns the raw
    /// hash when the event fires (for secondary choices), `None` otherwise.
    fn draw(&self, site: ChaosSite, rate: f64) -> Option<u64> {
        let event = self.events.fetch_add(1, Ordering::SeqCst);
        self.draw_at(site, event, rate)
    }

    /// The firing decision for `event` number `event` of `site`'s stream.
    /// Split out from [`draw`](Self::draw) so direction-targeted transfer
    /// streams can count their own events instead of the global counter.
    fn draw_at(&self, site: ChaosSite, event: u64, rate: f64) -> Option<u64> {
        if rate <= 0.0 || self.injected.load(Ordering::SeqCst) >= self.cfg.max_faults as u64 {
            return None;
        }
        let mut s = self
            .seed
            .wrapping_add((event + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ ((site as u64) << 56);
        let h = splitmix(&mut s);
        // 53-bit uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < rate {
            self.injected.fetch_add(1, Ordering::SeqCst);
            Some(splitmix(&mut s))
        } else {
            None
        }
    }

    fn record(&self, kind: FaultKind, detail: String) {
        let site = self.context.lock().map(|c| c.clone()).unwrap_or_default();
        if let Ok(mut l) = self.log.lock() {
            l.push(FaultRecord { kind, site, detail });
        }
    }
}

impl FaultSource for ChaosPlan {
    fn set_context(&self, ctx: &str) {
        if let Ok(mut c) = self.context.lock() {
            c.clear();
            c.push_str(ctx);
        }
    }

    fn on_local_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper> {
        let h = self.draw(ChaosSite::LocalAtomic, self.cfg.local_atomic_rate)?;
        let (tamper, kind) = if h & 1 == 0 {
            (AtomicTamper::Drop, FaultKind::DropLocalAtomic)
        } else {
            (AtomicTamper::Duplicate, FaultKind::DuplicateLocalAtomic)
        };
        self.record(kind, format!("chaos local atomic ({tamper:?}) at wg={wg_id} warp={warp_id}"));
        Some(tamper)
    }

    fn on_global_atomic(&self, wg_id: usize, warp_id: usize) -> Option<AtomicTamper> {
        let h = self.draw(ChaosSite::GlobalAtomic, self.cfg.global_atomic_rate)?;
        let (tamper, kind) = if h & 1 == 0 {
            (AtomicTamper::Drop, FaultKind::DropGlobalAtomic)
        } else {
            (AtomicTamper::Duplicate, FaultKind::DuplicateGlobalAtomic)
        };
        self.record(kind, format!("chaos global atomic ({tamper:?}) at wg={wg_id} warp={warp_id}"));
        Some(tamper)
    }

    fn on_warp_step(&self, wg_id: usize, warp_id: usize) -> StepFault {
        if let Some(_h) = self.draw(ChaosSite::WarpStep, self.cfg.abort_rate) {
            self.record(
                FaultKind::AbortKernel,
                format!("chaos abort at wg={wg_id} warp={warp_id}"),
            );
            return StepFault::Abort;
        }
        if let Some(h) = self.draw(ChaosSite::WarpStep, self.cfg.corrupt_rate) {
            let garbage = (h as u32) | 1;
            self.record(
                FaultKind::CorruptLocalWord,
                format!("chaos local corruption {garbage:#x} at wg={wg_id} warp={warp_id}"),
            );
            return StepFault::CorruptLocal(garbage);
        }
        StepFault::None
    }

    fn corrupt_index(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            // Keyed on the event counter so successive corruptions scatter.
            let mut s = self.seed ^ self.events.load(Ordering::SeqCst);
            (splitmix(&mut s) % len as u64) as usize
        }
    }

    fn on_transfer(&self, h2d: bool, queue: usize, index: usize) -> bool {
        // Direction-targeted streams: each direction counts only its own
        // consultations, so H2D and D2H fault sequences are independent.
        let override_rate = if h2d { self.cfg.h2d_rate } else { self.cfg.d2h_rate };
        let fired = if let Some(rate) = override_rate {
            let (site, ctr) = if h2d {
                (ChaosSite::H2dTransfer, &self.h2d_events)
            } else {
                (ChaosSite::D2hTransfer, &self.d2h_events)
            };
            let event = ctr.fetch_add(1, Ordering::SeqCst);
            self.draw_at(site, event, rate).is_some()
        } else {
            self.draw(ChaosSite::Transfer, self.cfg.transfer_rate).is_some()
        };
        if !fired {
            return false;
        }
        let (dir, kind) =
            if h2d { ("H2D", FaultKind::FailH2D) } else { ("D2H", FaultKind::FailD2H) };
        self.record(
            kind,
            format!("chaos {dir} transfer failure (queue {queue}, command {index})"),
        );
        true
    }

    fn records(&self) -> Vec<FaultRecord> {
        self.log.lock().map(|l| l.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.trigger, b.trigger);
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn seeds_cover_all_kinds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..256u64 {
            seen.insert(FaultPlan::from_seed(seed).kind());
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "{seen:?}");
    }

    #[test]
    fn fires_exactly_once_at_trigger() {
        let p = FaultPlan::exact(1, FaultKind::DropLocalAtomic, 3, 0);
        p.set_context("unit");
        assert_eq!(p.on_local_atomic(0, 0), None);
        assert_eq!(p.on_local_atomic(0, 0), None);
        assert_eq!(p.on_local_atomic(0, 0), None);
        assert_eq!(p.on_local_atomic(0, 1), Some(AtomicTamper::Drop));
        assert_eq!(p.on_local_atomic(0, 1), None, "single-shot");
        let recs = p.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, FaultKind::DropLocalAtomic);
        assert_eq!(recs[0].site, "unit");
        assert!(recs[0].detail.contains("warp=1"), "{}", recs[0].detail);
    }

    #[test]
    fn kinds_do_not_cross_talk() {
        let p = FaultPlan::exact(1, FaultKind::AbortKernel, 0, 0);
        assert_eq!(p.on_local_atomic(0, 0), None);
        assert_eq!(p.on_global_atomic(0, 0), None);
        assert!(!p.on_transfer(true, 0, 0));
        assert!(!p.fired(), "other sites must not consume the countdown");
        assert_eq!(p.on_warp_step(2, 0), StepFault::Abort);
        assert!(p.fired());
    }

    #[test]
    fn transfer_direction_respected() {
        let p = FaultPlan::exact(9, FaultKind::FailD2H, 1, 0);
        assert!(!p.on_transfer(true, 0, 0), "H2D does not count for FailD2H");
        assert!(!p.on_transfer(false, 0, 2), "first D2H is below trigger 1");
        assert!(p.on_transfer(false, 1, 2), "second D2H fires");
        assert!(!p.on_transfer(false, 1, 3), "transient: next one succeeds");
    }

    #[test]
    fn rearm_resets_countdown_and_log() {
        let p = FaultPlan::exact(4, FaultKind::DuplicateGlobalAtomic, 0, 0);
        assert_eq!(p.on_global_atomic(0, 0), Some(AtomicTamper::Duplicate));
        assert!(p.fired());
        p.rearm();
        assert!(!p.fired());
        assert_eq!(p.on_global_atomic(0, 0), Some(AtomicTamper::Duplicate));
    }

    #[test]
    fn corrupt_index_in_bounds() {
        let p = FaultPlan::exact(7, FaultKind::CorruptLocalWord, 0, u64::MAX - 3);
        assert!(p.corrupt_index(10) < 10);
        assert_eq!(p.corrupt_index(0), 0);
    }

    /// Drive a fixed consultation sequence against a chaos plan, returning
    /// the injected count and the record log.
    fn drive_chaos(plan: &ChaosPlan, rounds: usize) -> (u64, Vec<FaultRecord>) {
        for i in 0..rounds {
            let _ = plan.on_local_atomic(i % 3, i % 2);
            let _ = plan.on_global_atomic(i % 3, i % 2);
            let _ = plan.on_warp_step(i % 3, i % 2);
            let _ = plan.on_transfer(i % 2 == 0, 0, i);
        }
        (plan.injected(), plan.records())
    }

    #[test]
    fn chaos_same_seed_same_stream() {
        let a = ChaosPlan::new(42, ChaosConfig::harsh());
        let b = ChaosPlan::new(42, ChaosConfig::harsh());
        let (na, ra) = drive_chaos(&a, 500);
        let (nb, rb) = drive_chaos(&b, 500);
        assert!(na > 0, "harsh rates over 2000 consultations must fire");
        assert_eq!(na, nb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn chaos_different_seed_different_stream() {
        let a = ChaosPlan::new(1, ChaosConfig::harsh());
        let b = ChaosPlan::new(2, ChaosConfig::harsh());
        let (_, ra) = drive_chaos(&a, 500);
        let (_, rb) = drive_chaos(&b, 500);
        assert_ne!(ra, rb, "distinct seeds should produce distinct fault streams");
    }

    #[test]
    fn chaos_respects_max_faults_cap() {
        let cfg = ChaosConfig {
            local_atomic_rate: 1.0,
            global_atomic_rate: 1.0,
            corrupt_rate: 0.0,
            abort_rate: 0.0,
            transfer_rate: 1.0,
            h2d_rate: None,
            d2h_rate: None,
            max_faults: 5,
        };
        let p = ChaosPlan::new(3, cfg);
        let (n, recs) = drive_chaos(&p, 100);
        assert_eq!(n, 5);
        assert_eq!(recs.len(), 5);
    }

    #[test]
    fn chaos_rearm_resets_and_replays() {
        let p = ChaosPlan::new(77, ChaosConfig::harsh());
        let (n1, r1) = drive_chaos(&p, 200);
        p.rearm();
        assert_eq!(p.injected(), 0);
        assert!(p.records().is_empty());
        let (n2, r2) = drive_chaos(&p, 200);
        assert_eq!(n1, n2, "rearmed campaign replays identically");
        assert_eq!(r1, r2);
    }

    #[test]
    fn chaos_zero_rates_never_fire() {
        let cfg = ChaosConfig {
            local_atomic_rate: 0.0,
            global_atomic_rate: 0.0,
            corrupt_rate: 0.0,
            abort_rate: 0.0,
            transfer_rate: 0.0,
            h2d_rate: None,
            d2h_rate: None,
            max_faults: 100,
        };
        let p = ChaosPlan::new(9, cfg);
        let (n, recs) = drive_chaos(&p, 300);
        assert_eq!(n, 0);
        assert!(recs.is_empty());
        assert_eq!(p.on_warp_step(0, 0), StepFault::None);
    }

    /// Drive `n` transfer consultations in a fixed interleave (H2D on even
    /// steps, D2H on odd) and return the step indices that faulted, split
    /// by direction.
    fn drive_transfers(plan: &ChaosPlan, n: usize) -> (Vec<usize>, Vec<usize>) {
        let (mut h2d, mut d2h) = (Vec::new(), Vec::new());
        for i in 0..n {
            let is_h2d = i % 2 == 0;
            if plan.on_transfer(is_h2d, usize::from(!is_h2d), i / 2) {
                if is_h2d {
                    h2d.push(i);
                } else {
                    d2h.push(i);
                }
            }
        }
        (h2d, d2h)
    }

    #[test]
    fn per_direction_streams_pin_event_sequence() {
        // Regression pin: the exact deterministic fault sequence for seed 7
        // with independent per-direction streams. If the hash, the site
        // discriminants, or the per-direction counters change, this breaks.
        let p = ChaosPlan::new(7, ChaosConfig::transfers(0.10, 0.10, 64));
        let (h2d, d2h) = drive_transfers(&p, 200);
        assert_eq!(h2d, vec![32, 48, 66, 70, 86, 136, 142, 146, 178, 192], "H2D stream moved");
        assert_eq!(d2h, vec![9, 27, 49, 53, 125, 135, 137, 143, 151, 157], "D2H stream moved");
        // Replaying after rearm reproduces the identical sequence.
        p.rearm();
        let (h2, d2) = drive_transfers(&p, 200);
        assert_eq!(h2, h2d);
        assert_eq!(d2, d2h);
    }

    #[test]
    fn per_direction_streams_are_independent() {
        // The H2D fault pattern (as a function of H2D consultation number)
        // must not shift when extra D2H consultations are interleaved.
        let solo = ChaosPlan::new(13, ChaosConfig::transfers(0.15, 0.0, 64));
        let mut solo_fired = Vec::new();
        for i in 0..120 {
            if solo.on_transfer(true, 0, i) {
                solo_fired.push(i);
            }
        }
        let mixed = ChaosPlan::new(13, ChaosConfig::transfers(0.15, 0.9, 1024));
        let mut mixed_fired = Vec::new();
        for i in 0..120 {
            // Three D2H consultations between every pair of H2D ones.
            for j in 0..3 {
                let _ = mixed.on_transfer(false, 1, i * 3 + j);
            }
            if mixed.on_transfer(true, 0, i) {
                mixed_fired.push(i);
            }
        }
        assert!(!solo_fired.is_empty(), "rate 0.15 over 120 draws must fire");
        assert_eq!(solo_fired, mixed_fired, "D2H traffic leaked into the H2D stream");
    }

    #[test]
    fn direction_override_targets_one_queue_only() {
        let p = ChaosPlan::new(5, ChaosConfig::transfers(1.0, 0.0, 1024));
        let (h2d, d2h) = drive_transfers(&p, 60);
        assert_eq!(h2d.len(), 30, "every H2D consultation faults at rate 1.0");
        assert!(d2h.is_empty(), "D2H rate 0.0 must never fault");
        assert!(p.records().iter().all(|r| r.kind == FaultKind::FailH2D));
    }

    #[test]
    fn legacy_shared_stream_unchanged_when_no_override() {
        // With overrides unset, on_transfer must keep drawing from the
        // shared Transfer stream via the global event counter — pin the
        // sequence so the refactor to draw_at stays behaviour-preserving.
        let cfg = ChaosConfig { transfer_rate: 0.10, ..ChaosConfig::transfers(0.0, 0.0, 64) };
        let cfg = ChaosConfig { h2d_rate: None, d2h_rate: None, ..cfg };
        let p = ChaosPlan::new(7, cfg);
        let (h2d, d2h) = drive_transfers(&p, 200);
        let merged: Vec<usize> = {
            let mut m = [h2d.clone(), d2h.clone()].concat();
            m.sort_unstable();
            m
        };
        assert_eq!(
            merged,
            vec![
                0, 5, 18, 23, 28, 33, 43, 47, 49, 57, 63, 70, 76, 82, 89, 97, 102, 103, 111,
                115, 120, 130, 148, 157, 160, 170, 171, 184
            ]
        );
        // And the shared stream differs from the per-direction ones at the
        // same seed/rate — proof the site discriminants actually separate.
        let q = ChaosPlan::new(7, ChaosConfig::transfers(0.10, 0.10, 64));
        let (qh, qd) = drive_transfers(&q, 200);
        let qmerged: Vec<usize> = {
            let mut m = [qh, qd].concat();
            m.sort_unstable();
            m
        };
        assert_ne!(merged, qmerged);
    }

    #[test]
    fn chaos_context_lands_in_records() {
        let p = ChaosPlan::new(11, ChaosConfig::harsh());
        FaultSource::set_context(&p, "pttwac_100");
        let (_, recs) = drive_chaos(&p, 400);
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.site == "pttwac_100"));
    }
}
