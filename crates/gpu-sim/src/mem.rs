//! Device memories.
//!
//! * [`GlobalMem`] — the single global address space, word (u32) addressed,
//!   backed by `AtomicU32` so concurrently simulated work-groups (and real
//!   host threads, when the engine parallelises independent work-groups) are
//!   race-free. `f32` payloads travel as bit patterns. The memory is
//!   *dual-mode*: plain loads/stores and non-atomic read-modify-writes while
//!   the engine is single-threaded, real atomic RMWs only while the parallel
//!   work-group engine is engaged (see [`GlobalMem::set_parallel`]).
//! * [`Buffer`] — a handle to an allocated region (base + length), the unit
//!   kernels address relative to.
//! * [`LocalMem`] — one work-group's scratchpad, plain words (the engine
//!   serialises warps of a work-group, mirroring the hardware's private
//!   scratchpad semantics).
//! * [`MemTraffic`] — host↔device traffic accounting (upload / download /
//!   memset bytes), kept as atomics so [`crate::sim::Sim`]'s shared-ref
//!   upload/download API stays `Sync`.

use ipt_obs::{Counter, Recorder};
use serde::Serialize;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Word-addressed global memory.
pub struct GlobalMem {
    words: Vec<AtomicU32>,
    /// True while the parallel work-group engine is stepping kernels on
    /// multiple host threads. RMW primitives fall back to plain (cheaper)
    /// read-modify-write sequences whenever this is false.
    parallel: AtomicBool,
}

/// Reinterpret a zeroed `Vec<u32>` as `Vec<AtomicU32>` without touching the
/// elements. `vec![0u32; n]` lands on the allocator's zeroed-page path, so a
/// multi-GB simulated device does not pay a per-element constructor.
fn zeroed_atomic_words(words: usize) -> Vec<AtomicU32> {
    const _: () = assert!(std::mem::size_of::<AtomicU32>() == std::mem::size_of::<u32>());
    const _: () = assert!(std::mem::align_of::<AtomicU32>() == std::mem::align_of::<u32>());
    let mut v = ManuallyDrop::new(vec![0u32; words]);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: AtomicU32 has the same size, alignment, and (all-zero-valid)
    // representation as u32, asserted above; `v` is leaked via ManuallyDrop
    // so the allocation has exactly one owner.
    #[allow(unsafe_code)]
    unsafe {
        Vec::from_raw_parts(ptr.cast::<AtomicU32>(), len, cap)
    }
}

impl GlobalMem {
    /// Allocate a memory of `words` zeroed 32-bit words.
    #[must_use]
    pub fn new(words: usize) -> Self {
        Self { words: zeroed_atomic_words(words), parallel: AtomicBool::new(false) }
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when zero-sized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Switch between serial (plain RMW) and parallel (atomic RMW) modes.
    ///
    /// The parallel engine sets this for the duration of a multi-threaded
    /// launch and clears it before returning. Relaxed ordering everywhere is
    /// sufficient: `WgLocal` kernels never race on a word by contract,
    /// `CrossWgClaims` replays race only on claim-flag words through the
    /// commutative `fetch_or` below (outcomes come from the replay script,
    /// never from the racy return value), and `std::thread::scope`'s join
    /// edge publishes all worker writes.
    pub fn set_parallel(&self, on: bool) {
        self.parallel.store(on, Ordering::Release);
    }

    /// True while the parallel engine is stepping kernels.
    #[must_use]
    pub fn parallel_mode(&self) -> bool {
        self.parallel.load(Ordering::Acquire)
    }

    /// Read the word at `addr`.
    #[inline]
    #[must_use]
    pub fn read(&self, addr: usize) -> u32 {
        self.words[addr].load(Ordering::Relaxed)
    }

    /// Write the word at `addr`.
    #[inline]
    pub fn write(&self, addr: usize, v: u32) {
        self.words[addr].store(v, Ordering::Relaxed);
    }

    /// Copy `src` into the contiguous run starting at `base` (one bounds
    /// check for the whole warp instead of one per lane).
    ///
    /// # Panics
    /// Panics if `base + src.len()` exceeds capacity.
    pub fn write_run(&self, base: usize, src: &[u32]) {
        let cells = &self.words[base..base + src.len()];
        for (c, &v) in cells.iter().zip(src) {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Copy the contiguous run starting at `base` into `dst`.
    ///
    /// # Panics
    /// Panics if `base + dst.len()` exceeds capacity.
    pub fn read_run(&self, base: usize, dst: &mut [u32]) {
        let cells = &self.words[base..base + dst.len()];
        for (v, c) in dst.iter_mut().zip(cells) {
            *v = c.load(Ordering::Relaxed);
        }
    }

    /// Fill the contiguous run `base .. base + len` with `v` (device memset).
    ///
    /// # Panics
    /// Panics if the run exceeds capacity.
    pub fn fill_run(&self, base: usize, len: usize, v: u32) {
        for c in &self.words[base..base + len] {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Copy the entire memory image into a plain word vector — the
    /// pre-launch snapshot the parallel engine's claim-replay phase serves
    /// functional data reads from. Serial-mode only (the caller takes it
    /// before engaging the worker pool), so relaxed loads see every prior
    /// write.
    #[must_use]
    pub fn snapshot_words(&self) -> Vec<u32> {
        self.words.iter().map(|w| w.load(Ordering::Relaxed)).collect()
    }

    /// Atomic OR; returns the previous value (the GPU `atom_or` primitive
    /// used to simulate bit-addressable flags, §5.1).
    #[inline]
    pub fn atomic_or(&self, addr: usize, v: u32) -> u32 {
        if self.parallel.load(Ordering::Relaxed) {
            self.words[addr].fetch_or(v, Ordering::Relaxed)
        } else {
            let old = self.words[addr].load(Ordering::Relaxed);
            self.words[addr].store(old | v, Ordering::Relaxed);
            old
        }
    }

    /// Atomic compare-exchange; returns the previous value.
    #[inline]
    pub fn atomic_cas(&self, addr: usize, expect: u32, new: u32) -> u32 {
        if self.parallel.load(Ordering::Relaxed) {
            match self.words[addr].compare_exchange(expect, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(old) | Err(old) => old,
            }
        } else {
            let old = self.words[addr].load(Ordering::Relaxed);
            if old == expect {
                self.words[addr].store(new, Ordering::Relaxed);
            }
            old
        }
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn atomic_add(&self, addr: usize, v: u32) -> u32 {
        if self.parallel.load(Ordering::Relaxed) {
            self.words[addr].fetch_add(v, Ordering::Relaxed)
        } else {
            let old = self.words[addr].load(Ordering::Relaxed);
            self.words[addr].store(old.wrapping_add(v), Ordering::Relaxed);
            old
        }
    }
}

/// Handle to an allocated global-memory region (word granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// First word of the region in the global address space.
    pub base: usize,
    /// Length in words.
    pub len: usize,
}

impl Buffer {
    /// Absolute word address of relative offset `off`.
    ///
    /// # Panics
    /// Panics (debug) if out of bounds — simulated kernels must not stray.
    #[inline]
    #[must_use]
    pub fn addr(&self, off: usize) -> usize {
        debug_assert!(off < self.len, "buffer overflow: {off} >= {}", self.len);
        self.base + off
    }

    /// Sub-buffer covering `offset .. offset + len`.
    #[must_use]
    pub fn slice(&self, offset: usize, len: usize) -> Buffer {
        assert!(offset + len <= self.len, "sub-buffer out of range");
        Buffer { base: self.base + offset, len }
    }
}

/// One work-group's local (shared) memory, word addressed.
pub struct LocalMem {
    words: Vec<u32>,
}

impl LocalMem {
    /// Allocate `words` zeroed words.
    #[must_use]
    pub fn new(words: usize) -> Self {
        Self { words: vec![0; words] }
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the scratchpad has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read word.
    #[inline]
    #[must_use]
    pub fn read(&self, addr: usize) -> u32 {
        self.words[addr]
    }

    /// Write word.
    #[inline]
    pub fn write(&mut self, addr: usize, v: u32) {
        self.words[addr] = v;
    }

    /// OR returning previous value (warps of one WG are serialised by the
    /// engine, so a plain read-modify-write is exactly the hardware's atomic
    /// semantics).
    #[inline]
    pub fn or(&mut self, addr: usize, v: u32) -> u32 {
        let old = self.words[addr];
        self.words[addr] = old | v;
        old
    }

    /// Zero the whole scratchpad (between retiring and admitting WGs).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Resize (when a newly admitted work-group needs a different amount).
    pub fn resize(&mut self, words: usize) {
        self.words.clear();
        self.words.resize(words, 0);
    }
}

/// Host↔device traffic meters (bytes). Interior-mutable so the simulator's
/// `&self` upload/download methods can account without breaking `Sync`.
#[derive(Debug, Default)]
pub struct MemTraffic {
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    memset_bytes: AtomicU64,
}

/// A point-in-time copy of [`MemTraffic`], serializable into reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TrafficSnapshot {
    /// Host→device bytes uploaded.
    pub h2d_bytes: u64,
    /// Device→host bytes downloaded.
    pub d2h_bytes: u64,
    /// Device-side memset bytes (flag-buffer clears).
    pub memset_bytes: u64,
}

impl MemTraffic {
    /// Account a host→device upload.
    pub fn add_h2d(&self, bytes: u64) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account a device→host download.
    pub fn add_d2h(&self, bytes: u64) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account a device-side memset.
    pub fn add_memset(&self, bytes: u64) {
        self.memset_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current totals.
    #[must_use]
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            memset_bytes: self.memset_bytes.load(Ordering::Relaxed),
        }
    }

    /// Replay the current totals onto `rec` under `scope`.
    pub fn record<R: Recorder>(&self, rec: &R, scope: &str) {
        if !rec.enabled() {
            return;
        }
        let snap = self.snapshot();
        rec.add(scope, Counter::H2dBytes, snap.h2d_bytes);
        rec.add(scope, Counter::D2hBytes, snap.d2h_bytes);
        rec.add(scope, Counter::MemsetBytes, snap.memset_bytes);
    }
}

/// Reinterpret an f32 as the u32 bit pattern words travel as.
#[inline]
#[must_use]
pub fn f32_bits(v: f32) -> u32 {
    v.to_bits()
}

/// Reinterpret a u32 bit pattern as f32.
#[inline]
#[must_use]
pub fn bits_f32(v: u32) -> f32 {
    f32::from_bits(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_rw() {
        let m = GlobalMem::new(16);
        m.write(3, 42);
        assert_eq!(m.read(3), 42);
        assert_eq!(m.read(4), 0);
    }

    #[test]
    fn global_atomics() {
        let m = GlobalMem::new(4);
        assert_eq!(m.atomic_or(0, 0b01), 0);
        assert_eq!(m.atomic_or(0, 0b10), 0b01);
        assert_eq!(m.read(0), 0b11);
        assert_eq!(m.atomic_add(1, 5), 0);
        assert_eq!(m.atomic_add(1, 5), 5);
        assert_eq!(m.atomic_cas(2, 0, 9), 0);
        assert_eq!(m.atomic_cas(2, 0, 7), 9, "failed CAS returns current");
        assert_eq!(m.read(2), 9);
    }

    #[test]
    fn global_atomics_parallel_mode() {
        let m = GlobalMem::new(4);
        m.set_parallel(true);
        assert!(m.parallel_mode());
        assert_eq!(m.atomic_or(0, 0b01), 0);
        assert_eq!(m.atomic_or(0, 0b10), 0b01);
        assert_eq!(m.atomic_add(1, 5), 0);
        assert_eq!(m.atomic_cas(2, 0, 9), 0);
        assert_eq!(m.atomic_cas(2, 0, 7), 9);
        m.set_parallel(false);
        assert!(!m.parallel_mode());
        assert_eq!(m.read(0), 0b11);
    }

    #[test]
    fn run_ops_roundtrip() {
        let m = GlobalMem::new(16);
        m.write_run(4, &[1, 2, 3, 4]);
        let mut out = [0u32; 4];
        m.read_run(4, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        assert_eq!(m.read(3), 0);
        assert_eq!(m.read(8), 0);
        m.fill_run(4, 3, 7);
        m.read_run(4, &mut out);
        assert_eq!(out, [7, 7, 7, 4]);
    }

    #[test]
    #[should_panic]
    fn run_ops_bounds_checked() {
        let m = GlobalMem::new(4);
        m.write_run(2, &[1, 2, 3]);
    }

    #[test]
    fn bulk_zeroed_allocation_is_zero() {
        let m = GlobalMem::new(1 << 16);
        for a in [0usize, 1, 12345, (1 << 16) - 1] {
            assert_eq!(m.read(a), 0);
        }
    }

    #[test]
    fn buffer_addressing() {
        let b = Buffer { base: 100, len: 10 };
        assert_eq!(b.addr(0), 100);
        assert_eq!(b.addr(9), 109);
        let s = b.slice(4, 3);
        assert_eq!(s.addr(0), 104);
        assert_eq!(s.len, 3);
    }

    #[test]
    #[should_panic(expected = "sub-buffer out of range")]
    fn bad_slice_panics() {
        let b = Buffer { base: 0, len: 10 };
        let _ = b.slice(8, 3);
    }

    #[test]
    fn local_or_semantics() {
        let mut l = LocalMem::new(8);
        assert_eq!(l.or(1, 4), 0);
        assert_eq!(l.or(1, 3), 4);
        assert_eq!(l.read(1), 7);
        l.clear();
        assert_eq!(l.read(1), 0);
    }

    #[test]
    fn f32_roundtrip() {
        for v in [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE] {
            assert_eq!(bits_f32(f32_bits(v)), v);
        }
    }

    #[test]
    fn traffic_accumulates_and_records() {
        use ipt_obs::{Counter, TraceRecorder};
        let t = MemTraffic::default();
        t.add_h2d(100);
        t.add_h2d(28);
        t.add_d2h(64);
        t.add_memset(16);
        let snap = t.snapshot();
        assert_eq!(snap.h2d_bytes, 128);
        assert_eq!(snap.d2h_bytes, 64);
        assert_eq!(snap.memset_bytes, 16);
        let rec = TraceRecorder::new();
        t.record(&rec, "sim");
        assert_eq!(rec.counter("sim", Counter::H2dBytes), 128);
        assert_eq!(rec.counter("sim", Counter::D2hBytes), 64);
        assert_eq!(rec.counter("sim", Counter::MemsetBytes), 16);
    }
}
