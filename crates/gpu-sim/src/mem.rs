//! Device memories.
//!
//! * [`GlobalMem`] — the single global address space, word (u32) addressed,
//!   backed by `AtomicU32` so concurrently simulated work-groups (and real
//!   host threads, when the engine parallelises independent work-groups) are
//!   race-free. `f32` payloads travel as bit patterns.
//! * [`Buffer`] — a handle to an allocated region (base + length), the unit
//!   kernels address relative to.
//! * [`LocalMem`] — one work-group's scratchpad, plain words (the engine
//!   serialises warps of a work-group, mirroring the hardware's private
//!   scratchpad semantics).
//! * [`MemTraffic`] — host↔device traffic accounting (upload / download /
//!   memset bytes), kept as atomics so [`crate::sim::Sim`]'s shared-ref
//!   upload/download API stays `Sync`.

use ipt_obs::{Counter, Recorder};
use serde::Serialize;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Word-addressed global memory.
pub struct GlobalMem {
    words: Vec<AtomicU32>,
}

impl GlobalMem {
    /// Allocate a memory of `words` zeroed 32-bit words.
    #[must_use]
    pub fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU32::new(0));
        Self { words: v }
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when zero-sized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read the word at `addr`.
    #[inline]
    #[must_use]
    pub fn read(&self, addr: usize) -> u32 {
        self.words[addr].load(Ordering::Acquire)
    }

    /// Write the word at `addr`.
    #[inline]
    pub fn write(&self, addr: usize, v: u32) {
        self.words[addr].store(v, Ordering::Release);
    }

    /// Atomic OR; returns the previous value (the GPU `atom_or` primitive
    /// used to simulate bit-addressable flags, §5.1).
    #[inline]
    pub fn atomic_or(&self, addr: usize, v: u32) -> u32 {
        self.words[addr].fetch_or(v, Ordering::AcqRel)
    }

    /// Atomic compare-exchange; returns the previous value.
    #[inline]
    pub fn atomic_cas(&self, addr: usize, expect: u32, new: u32) -> u32 {
        match self.words[addr].compare_exchange(expect, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(old) | Err(old) => old,
        }
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn atomic_add(&self, addr: usize, v: u32) -> u32 {
        self.words[addr].fetch_add(v, Ordering::AcqRel)
    }
}

/// Handle to an allocated global-memory region (word granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// First word of the region in the global address space.
    pub base: usize,
    /// Length in words.
    pub len: usize,
}

impl Buffer {
    /// Absolute word address of relative offset `off`.
    ///
    /// # Panics
    /// Panics (debug) if out of bounds — simulated kernels must not stray.
    #[inline]
    #[must_use]
    pub fn addr(&self, off: usize) -> usize {
        debug_assert!(off < self.len, "buffer overflow: {off} >= {}", self.len);
        self.base + off
    }

    /// Sub-buffer covering `offset .. offset + len`.
    #[must_use]
    pub fn slice(&self, offset: usize, len: usize) -> Buffer {
        assert!(offset + len <= self.len, "sub-buffer out of range");
        Buffer { base: self.base + offset, len }
    }
}

/// One work-group's local (shared) memory, word addressed.
pub struct LocalMem {
    words: Vec<u32>,
}

impl LocalMem {
    /// Allocate `words` zeroed words.
    #[must_use]
    pub fn new(words: usize) -> Self {
        Self { words: vec![0; words] }
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the scratchpad has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read word.
    #[inline]
    #[must_use]
    pub fn read(&self, addr: usize) -> u32 {
        self.words[addr]
    }

    /// Write word.
    #[inline]
    pub fn write(&mut self, addr: usize, v: u32) {
        self.words[addr] = v;
    }

    /// OR returning previous value (warps of one WG are serialised by the
    /// engine, so a plain read-modify-write is exactly the hardware's atomic
    /// semantics).
    #[inline]
    pub fn or(&mut self, addr: usize, v: u32) -> u32 {
        let old = self.words[addr];
        self.words[addr] = old | v;
        old
    }

    /// Zero the whole scratchpad (between retiring and admitting WGs).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Resize (when a newly admitted work-group needs a different amount).
    pub fn resize(&mut self, words: usize) {
        self.words.clear();
        self.words.resize(words, 0);
    }
}

/// Host↔device traffic meters (bytes). Interior-mutable so the simulator's
/// `&self` upload/download methods can account without breaking `Sync`.
#[derive(Debug, Default)]
pub struct MemTraffic {
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    memset_bytes: AtomicU64,
}

/// A point-in-time copy of [`MemTraffic`], serializable into reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TrafficSnapshot {
    /// Host→device bytes uploaded.
    pub h2d_bytes: u64,
    /// Device→host bytes downloaded.
    pub d2h_bytes: u64,
    /// Device-side memset bytes (flag-buffer clears).
    pub memset_bytes: u64,
}

impl MemTraffic {
    /// Account a host→device upload.
    pub fn add_h2d(&self, bytes: u64) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account a device→host download.
    pub fn add_d2h(&self, bytes: u64) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account a device-side memset.
    pub fn add_memset(&self, bytes: u64) {
        self.memset_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current totals.
    #[must_use]
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            memset_bytes: self.memset_bytes.load(Ordering::Relaxed),
        }
    }

    /// Replay the current totals onto `rec` under `scope`.
    pub fn record<R: Recorder>(&self, rec: &R, scope: &str) {
        if !rec.enabled() {
            return;
        }
        let snap = self.snapshot();
        rec.add(scope, Counter::H2dBytes, snap.h2d_bytes);
        rec.add(scope, Counter::D2hBytes, snap.d2h_bytes);
        rec.add(scope, Counter::MemsetBytes, snap.memset_bytes);
    }
}

/// Reinterpret an f32 as the u32 bit pattern words travel as.
#[inline]
#[must_use]
pub fn f32_bits(v: f32) -> u32 {
    v.to_bits()
}

/// Reinterpret a u32 bit pattern as f32.
#[inline]
#[must_use]
pub fn bits_f32(v: u32) -> f32 {
    f32::from_bits(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_rw() {
        let m = GlobalMem::new(16);
        m.write(3, 42);
        assert_eq!(m.read(3), 42);
        assert_eq!(m.read(4), 0);
    }

    #[test]
    fn global_atomics() {
        let m = GlobalMem::new(4);
        assert_eq!(m.atomic_or(0, 0b01), 0);
        assert_eq!(m.atomic_or(0, 0b10), 0b01);
        assert_eq!(m.read(0), 0b11);
        assert_eq!(m.atomic_add(1, 5), 0);
        assert_eq!(m.atomic_add(1, 5), 5);
        assert_eq!(m.atomic_cas(2, 0, 9), 0);
        assert_eq!(m.atomic_cas(2, 0, 7), 9, "failed CAS returns current");
        assert_eq!(m.read(2), 9);
    }

    #[test]
    fn buffer_addressing() {
        let b = Buffer { base: 100, len: 10 };
        assert_eq!(b.addr(0), 100);
        assert_eq!(b.addr(9), 109);
        let s = b.slice(4, 3);
        assert_eq!(s.addr(0), 104);
        assert_eq!(s.len, 3);
    }

    #[test]
    #[should_panic(expected = "sub-buffer out of range")]
    fn bad_slice_panics() {
        let b = Buffer { base: 0, len: 10 };
        let _ = b.slice(8, 3);
    }

    #[test]
    fn local_or_semantics() {
        let mut l = LocalMem::new(8);
        assert_eq!(l.or(1, 4), 0);
        assert_eq!(l.or(1, 3), 4);
        assert_eq!(l.read(1), 7);
        l.clear();
        assert_eq!(l.read(1), 0);
    }

    #[test]
    fn f32_roundtrip() {
        for v in [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE] {
            assert_eq!(bits_f32(f32_bits(v)), v);
        }
    }

    #[test]
    fn traffic_accumulates_and_records() {
        use ipt_obs::{Counter, TraceRecorder};
        let t = MemTraffic::default();
        t.add_h2d(100);
        t.add_h2d(28);
        t.add_d2h(64);
        t.add_memset(16);
        let snap = t.snapshot();
        assert_eq!(snap.h2d_bytes, 128);
        assert_eq!(snap.d2h_bytes, 64);
        assert_eq!(snap.memset_bytes, 16);
        let rec = TraceRecorder::new();
        t.record(&rec, "sim");
        assert_eq!(rec.counter("sim", Counter::H2dBytes), 128);
        assert_eq!(rec.counter("sim", Counter::D2hBytes), 64);
        assert_eq!(rec.counter("sim", Counter::MemsetBytes), 16);
    }
}
