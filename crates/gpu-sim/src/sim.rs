//! The simulator facade: a device plus its global memory, with a bump
//! allocator, typed upload/download, and kernel launch.

use crate::device::DeviceSpec;
use crate::exec::{launch_traced, launch_with_faults, Kernel, LaunchError};
use crate::fault::{FaultPlan, FaultRecord};
use crate::mem::{Buffer, GlobalMem, MemTraffic, TrafficSnapshot};
use crate::report::KernelStats;
use ipt_obs::Recorder;

/// One simulated accelerator: device model + on-board memory.
pub struct Sim {
    device: DeviceSpec,
    mem: GlobalMem,
    cursor: usize,
    fault: Option<FaultPlan>,
    traffic: MemTraffic,
}

impl Sim {
    /// Create a simulator with `capacity_words` of on-board memory.
    #[must_use]
    pub fn new(device: DeviceSpec, capacity_words: usize) -> Self {
        Self {
            device,
            mem: GlobalMem::new(capacity_words),
            cursor: 0,
            fault: None,
            traffic: MemTraffic::default(),
        }
    }

    /// Convenience: memory sized to hold `words` plus `slack_words`.
    #[must_use]
    pub fn with_room_for(device: DeviceSpec, words: usize, slack_words: usize) -> Self {
        Self::new(device, words + slack_words)
    }

    /// The device model.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Raw global memory (kernels normally go through buffers).
    #[must_use]
    pub fn mem(&self) -> &GlobalMem {
        &self.mem
    }

    /// Words still allocatable.
    #[must_use]
    pub fn free_words(&self) -> usize {
        self.mem.len() - self.cursor
    }

    /// Arm a fault plan: subsequent launches inject its fault (once).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The armed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Disarm and return the fault plan.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Records of faults that fired on this simulator so far.
    #[must_use]
    pub fn fault_records(&self) -> Vec<FaultRecord> {
        self.fault.as_ref().map(FaultPlan::records).unwrap_or_default()
    }

    /// Allocate a buffer of `words` if they fit, without panicking — the
    /// graceful-degradation path (e.g. an out-of-place fallback that needs
    /// 2× memory and must *politely* discover it cannot have it).
    pub fn try_alloc(&mut self, words: usize) -> Option<Buffer> {
        if self.cursor + words > self.mem.len() {
            return None;
        }
        let b = Buffer { base: self.cursor, len: words };
        self.cursor += words;
        Some(b)
    }

    /// Allocate a buffer of `words` (bump allocator; no free).
    ///
    /// # Panics
    /// Panics when on-board memory is exhausted — mirroring a real
    /// out-of-memory, which is precisely the constraint that motivates
    /// in-place transposition.
    pub fn alloc(&mut self, words: usize) -> Buffer {
        assert!(
            self.cursor + words <= self.mem.len(),
            "device OOM: want {words} words, {} free (capacity {})",
            self.free_words(),
            self.mem.len()
        );
        let b = Buffer { base: self.cursor, len: words };
        self.cursor += words;
        b
    }

    /// Upload u32 data into `buf`.
    ///
    /// # Panics
    /// Panics if `data.len() > buf.len`.
    pub fn upload_u32(&self, buf: Buffer, data: &[u32]) {
        assert!(data.len() <= buf.len);
        self.traffic.add_h2d(data.len() as u64 * 4);
        for (i, &v) in data.iter().enumerate() {
            self.mem.write(buf.base + i, v);
        }
    }

    /// Upload f32 data (as bit patterns) into `buf`.
    pub fn upload_f32(&self, buf: Buffer, data: &[f32]) {
        assert!(data.len() <= buf.len);
        self.traffic.add_h2d(data.len() as u64 * 4);
        for (i, &v) in data.iter().enumerate() {
            self.mem.write(buf.base + i, v.to_bits());
        }
    }

    /// Download `buf` as u32.
    #[must_use]
    pub fn download_u32(&self, buf: Buffer) -> Vec<u32> {
        self.traffic.add_d2h(buf.len as u64 * 4);
        (0..buf.len).map(|i| self.mem.read(buf.base + i)).collect()
    }

    /// Download `buf` as f32.
    #[must_use]
    pub fn download_f32(&self, buf: Buffer) -> Vec<f32> {
        self.traffic.add_d2h(buf.len as u64 * 4);
        (0..buf.len).map(|i| f32::from_bits(self.mem.read(buf.base + i))).collect()
    }

    /// Zero a buffer (host-side initialisation of flag arrays).
    pub fn zero(&self, buf: Buffer) {
        self.traffic.add_memset(buf.len as u64 * 4);
        for i in 0..buf.len {
            self.mem.write(buf.base + i, 0);
        }
    }

    /// Host↔device traffic meters accumulated so far.
    #[must_use]
    pub fn traffic(&self) -> TrafficSnapshot {
        self.traffic.snapshot()
    }

    /// Replay the traffic meters onto a recorder under `scope`.
    pub fn record_traffic<R: Recorder>(&self, rec: &R, scope: &str) {
        self.traffic.record(rec, scope);
    }

    /// Launch a kernel. When a fault plan is armed, its fault is injected
    /// in flight.
    ///
    /// # Errors
    /// Propagates [`LaunchError`] for infeasible launches, or
    /// [`LaunchError::Aborted`] when an armed fault plan kills the kernel.
    pub fn launch<K: Kernel>(&self, kernel: &K) -> Result<KernelStats, LaunchError> {
        launch_with_faults(&self.device, &self.mem, kernel, self.fault.as_ref())
    }

    /// [`Sim::launch`] instrumented with a [`Recorder`]; `t0_s` is the
    /// launch's start on the cumulative DES clock.
    ///
    /// # Errors
    /// Same as [`Sim::launch`].
    pub fn launch_rec<K: Kernel, R: Recorder>(
        &self,
        kernel: &K,
        rec: &R,
        t0_s: f64,
    ) -> Result<KernelStats, LaunchError> {
        launch_traced(&self.device, &self.mem, kernel, self.fault.as_ref(), rec, t0_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Grid, Step, WarpCtx};
    use crate::lanes::{LaneAddrs, LaneWrites};

    /// Toy kernel: each thread increments its element (grid-stride).
    struct IncKernel {
        buf: Buffer,
        n: usize,
        wgs: usize,
        wg_size: usize,
    }

    struct IncState {
        next: usize,
    }

    impl Kernel for IncKernel {
        type State = IncState;

        fn name(&self) -> String {
            "inc".into()
        }

        fn grid(&self) -> Grid {
            Grid { num_wgs: self.wgs, wg_size: self.wg_size }
        }

        fn init(&self, wg_id: usize, warp_id: usize) -> IncState {
            let _ = warp_id;
            IncState { next: wg_id }
        }

        fn step(&self, st: &mut IncState, ctx: &mut WarpCtx<'_>) -> Step {
            // Each WG strides over chunks of wg_size; warps cover their slice.
            let base = st.next * ctx.wg_size + ctx.warp_id * 32;
            if base >= self.n && st.next >= ctx.num_wgs {
                return Step::Done;
            }
            let addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
                let idx = base + l;
                (idx < self.n).then_some(idx)
            });
            let vals = ctx.global_read(self.buf, &addrs);
            let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                addrs.get(l).map(|a| (a, vals.get(l) + 1))
            });
            ctx.global_write(self.buf, &writes);
            st.next += ctx.num_wgs;
            if st.next * ctx.wg_size + ctx.warp_id * 32 >= self.n {
                Step::Done
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn alloc_and_roundtrip() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 1024);
        let b = sim.alloc(100);
        let data: Vec<u32> = (0..100).collect();
        sim.upload_u32(b, &data);
        assert_eq!(sim.download_u32(b), data);
        assert_eq!(sim.free_words(), 924);
    }

    #[test]
    #[should_panic(expected = "device OOM")]
    fn oom_panics() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 10);
        let _ = sim.alloc(11);
    }

    #[test]
    fn f32_roundtrip() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 64);
        let b = sim.alloc(4);
        sim.upload_f32(b, &[1.5, -2.25, 0.0, 3.0e7]);
        assert_eq!(sim.download_f32(b), vec![1.5, -2.25, 0.0, 3.0e7]);
    }

    #[test]
    fn toy_kernel_increments_everything() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 4096);
        let n = 3000;
        let b = sim.alloc(n);
        let data: Vec<u32> = (0..n as u32).collect();
        sim.upload_u32(b, &data);
        let k = IncKernel { buf: b, n, wgs: 8, wg_size: 64 };
        let stats = sim.launch(&k).unwrap();
        let got = sim.download_u32(b);
        let want: Vec<u32> = data.iter().map(|v| v + 1).collect();
        assert_eq!(got, want);
        assert!(stats.time_s > 0.0);
        assert!(stats.dram_bytes >= (n * 8) as f64, "read+write traffic");
        // Contiguous access per warp → perfect-ish coalescing.
        assert!(stats.coalescing_efficiency() > 0.9, "{}", stats.coalescing_efficiency());
    }

    #[test]
    fn strided_access_wastes_bandwidth() {
        // Same kernel but with a stride access pattern via a modified index
        // map is covered in exec-level tests in ipt-gpu; here just assert
        // the stats plumbing exists.
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 512);
        let b = sim.alloc(256);
        let k = IncKernel { buf: b, n: 256, wgs: 2, wg_size: 64 };
        let stats = sim.launch(&k).unwrap();
        assert_eq!(stats.name, "inc");
        assert!(stats.gld_transactions > 0 && stats.gst_transactions > 0);
    }
}
