//! The simulator facade: a device plus its global memory, with a bump
//! allocator, typed upload/download, and kernel launch.
//!
//! Launch-time robustness knobs live here too: an armed fault source
//! (single-shot [`FaultPlan`] or sustained [`ChaosPlan`]), a warp
//! [`SchedPolicy`], and a liveness [`Watchdog`] — all consulted by every
//! subsequent launch so higher layers (pipelines, recovery) compose with
//! them without touching each kernel call site.

use crate::device::DeviceSpec;
use crate::exec::{launch_configured, EngineMode, Kernel, LaunchConfig, LaunchError};
use crate::fault::{ChaosPlan, FaultPlan, FaultRecord, FaultSource};
use crate::mem::{Buffer, GlobalMem, MemTraffic, TrafficSnapshot};
use crate::report::KernelStats;
use crate::sched::{mix64, PctScheduler, Scheduler, Watchdog};
use ipt_obs::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which warp scheduler a [`Sim`] uses for its launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// The historic deterministic round-robin interleaving (fast path).
    RoundRobin,
    /// Seeded PCT-style randomized priorities with `depth` priority-change
    /// points per launch. Each launch derives its own sub-seed from the
    /// policy seed and a per-sim launch counter, so a whole pipeline run
    /// is reproducible from one number.
    Pct {
        /// Campaign seed the per-launch schedules derive from.
        seed: u64,
        /// Priority-change points (preemption budget) per launch.
        depth: usize,
    },
}

impl SchedPolicy {
    /// Human/provenance label, e.g. `"round-robin"` or `"pct(seed=7,d=3)"`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SchedPolicy::RoundRobin => "round-robin".into(),
            SchedPolicy::Pct { seed, depth } => format!("pct(seed={seed},d={depth})"),
        }
    }
}

/// One simulated accelerator: device model + on-board memory.
pub struct Sim {
    device: DeviceSpec,
    mem: GlobalMem,
    cursor: usize,
    fault: Option<FaultPlan>,
    chaos: Option<ChaosPlan>,
    sched: SchedPolicy,
    watchdog: Option<Watchdog>,
    engine: EngineMode,
    launch_seq: AtomicU64,
    traffic: MemTraffic,
}

impl Sim {
    /// Create a simulator with `capacity_words` of on-board memory.
    #[must_use]
    pub fn new(device: DeviceSpec, capacity_words: usize) -> Self {
        Self {
            device,
            mem: GlobalMem::new(capacity_words),
            cursor: 0,
            fault: None,
            chaos: None,
            sched: SchedPolicy::RoundRobin,
            watchdog: None,
            engine: EngineMode::Serial,
            launch_seq: AtomicU64::new(0),
            traffic: MemTraffic::default(),
        }
    }

    /// Convenience: memory sized to hold `words` plus `slack_words`.
    #[must_use]
    pub fn with_room_for(device: DeviceSpec, words: usize, slack_words: usize) -> Self {
        Self::new(device, words + slack_words)
    }

    /// The device model.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Raw global memory (kernels normally go through buffers).
    #[must_use]
    pub fn mem(&self) -> &GlobalMem {
        &self.mem
    }

    /// Words still allocatable.
    #[must_use]
    pub fn free_words(&self) -> usize {
        self.mem.len() - self.cursor
    }

    /// Arm a fault plan: subsequent launches inject its fault (once).
    /// Disarms any chaos campaign — the two are mutually exclusive.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.chaos = None;
        self.fault = Some(plan);
    }

    /// The armed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Disarm and return the fault plan.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Arm a sustained chaos campaign: subsequent launches (and DES
    /// transfers routed through [`Sim::fault_source`]) draw from its seeded
    /// rate-driven fault stream. Disarms any single-shot fault plan.
    pub fn set_chaos_plan(&mut self, plan: ChaosPlan) {
        self.fault = None;
        self.chaos = Some(plan);
    }

    /// The armed chaos campaign, if any.
    #[must_use]
    pub fn chaos_plan(&self) -> Option<&ChaosPlan> {
        self.chaos.as_ref()
    }

    /// Disarm and return the chaos campaign.
    pub fn take_chaos_plan(&mut self) -> Option<ChaosPlan> {
        self.chaos.take()
    }

    /// The active fault source for launches and transfers: the chaos
    /// campaign when armed, else the single-shot plan, else `None`.
    #[must_use]
    pub fn fault_source(&self) -> Option<&dyn FaultSource> {
        match (&self.chaos, &self.fault) {
            (Some(c), _) => Some(c as &dyn FaultSource),
            (None, Some(f)) => Some(f as &dyn FaultSource),
            (None, None) => None,
        }
    }

    /// Select the warp-scheduling policy for subsequent launches.
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.sched = policy;
    }

    /// Select the host execution engine for subsequent launches. Parallel
    /// mode only engages for [`crate::exec::Coordination::WgLocal`] and
    /// [`crate::exec::Coordination::CrossWgClaims`] kernels launched
    /// round-robin with no fault source or watchdog; everything else falls
    /// back to serial, and results are bit-identical either way.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.engine = mode;
    }

    /// The current host execution engine.
    #[must_use]
    pub fn engine_mode(&self) -> EngineMode {
        self.engine
    }

    /// The current warp-scheduling policy.
    #[must_use]
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched
    }

    /// Arm (or, with `None`, disarm) a liveness watchdog for subsequent
    /// launches: hung kernels surface as [`LaunchError::Stalled`] instead
    /// of spinning forever.
    pub fn set_watchdog(&mut self, wd: Option<Watchdog>) {
        self.watchdog = wd;
    }

    /// The armed watchdog, if any.
    #[must_use]
    pub fn watchdog(&self) -> Option<Watchdog> {
        self.watchdog
    }

    /// Records of faults that fired on this simulator so far (from either
    /// the single-shot plan or the chaos campaign).
    #[must_use]
    pub fn fault_records(&self) -> Vec<FaultRecord> {
        let mut out = self.fault.as_ref().map(FaultPlan::records).unwrap_or_default();
        if let Some(c) = &self.chaos {
            out.extend(c.records());
        }
        out
    }

    /// Allocate a buffer of `words` if they fit, without panicking — the
    /// graceful-degradation path (e.g. an out-of-place fallback that needs
    /// 2× memory and must *politely* discover it cannot have it).
    pub fn try_alloc(&mut self, words: usize) -> Option<Buffer> {
        if self.cursor + words > self.mem.len() {
            return None;
        }
        let b = Buffer { base: self.cursor, len: words };
        self.cursor += words;
        Some(b)
    }

    /// Allocate a buffer of `words` (bump allocator; no free).
    ///
    /// # Panics
    /// Panics when on-board memory is exhausted — mirroring a real
    /// out-of-memory, which is precisely the constraint that motivates
    /// in-place transposition.
    pub fn alloc(&mut self, words: usize) -> Buffer {
        assert!(
            self.cursor + words <= self.mem.len(),
            "device OOM: want {words} words, {} free (capacity {})",
            self.free_words(),
            self.mem.len()
        );
        let b = Buffer { base: self.cursor, len: words };
        self.cursor += words;
        b
    }

    /// Upload u32 data into `buf`.
    ///
    /// # Panics
    /// Panics if `data.len() > buf.len`.
    pub fn upload_u32(&self, buf: Buffer, data: &[u32]) {
        assert!(data.len() <= buf.len);
        self.traffic.add_h2d(data.len() as u64 * 4);
        self.mem.write_run(buf.base, data);
    }

    /// Upload f32 data (as bit patterns) into `buf`.
    pub fn upload_f32(&self, buf: Buffer, data: &[f32]) {
        assert!(data.len() <= buf.len);
        self.traffic.add_h2d(data.len() as u64 * 4);
        let bits: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
        self.mem.write_run(buf.base, &bits);
    }

    /// Download `buf` as u32.
    #[must_use]
    pub fn download_u32(&self, buf: Buffer) -> Vec<u32> {
        self.traffic.add_d2h(buf.len as u64 * 4);
        let mut out = vec![0u32; buf.len];
        self.mem.read_run(buf.base, &mut out);
        out
    }

    /// Download `buf` as f32.
    #[must_use]
    pub fn download_f32(&self, buf: Buffer) -> Vec<f32> {
        self.traffic.add_d2h(buf.len as u64 * 4);
        let mut bits = vec![0u32; buf.len];
        self.mem.read_run(buf.base, &mut bits);
        bits.into_iter().map(f32::from_bits).collect()
    }

    /// Zero a buffer (host-side initialisation of flag arrays).
    pub fn zero(&self, buf: Buffer) {
        self.traffic.add_memset(buf.len as u64 * 4);
        self.mem.fill_run(buf.base, buf.len, 0);
    }

    /// Host↔device traffic meters accumulated so far.
    #[must_use]
    pub fn traffic(&self) -> TrafficSnapshot {
        self.traffic.snapshot()
    }

    /// Replay the traffic meters onto a recorder under `scope`.
    pub fn record_traffic<R: Recorder>(&self, rec: &R, scope: &str) {
        self.traffic.record(rec, scope);
    }

    /// Build the scheduler instance for the next launch under the current
    /// policy (`None` = round-robin fast path), bumping the launch counter
    /// so each PCT launch gets its own derived sub-seed.
    fn next_sched(&self) -> Option<Box<dyn Scheduler>> {
        let seq = self.launch_seq.fetch_add(1, Ordering::SeqCst);
        match self.sched {
            SchedPolicy::RoundRobin => None,
            SchedPolicy::Pct { seed, depth } => {
                Some(Box::new(PctScheduler::new(mix64(seed, seq), depth)))
            }
        }
    }

    /// Launch a kernel under the sim's scheduling policy, watchdog, and
    /// armed fault source (if any).
    ///
    /// # Errors
    /// Propagates [`LaunchError`] for infeasible launches,
    /// [`LaunchError::Aborted`] when an armed fault source kills the
    /// kernel, or [`LaunchError::Stalled`] when the watchdog trips.
    pub fn launch<K: Kernel>(&self, kernel: &K) -> Result<KernelStats, LaunchError> {
        self.launch_rec(kernel, &ipt_obs::NoopRecorder, 0.0)
    }

    /// [`Sim::launch`] instrumented with a [`Recorder`]; `t0_s` is the
    /// launch's start on the cumulative DES clock.
    ///
    /// # Errors
    /// Same as [`Sim::launch`].
    pub fn launch_rec<K: Kernel, R: Recorder>(
        &self,
        kernel: &K,
        rec: &R,
        t0_s: f64,
    ) -> Result<KernelStats, LaunchError> {
        let mut sched = self.next_sched();
        launch_configured(
            &self.device,
            &self.mem,
            kernel,
            LaunchConfig {
                fault: self.fault_source(),
                sched: sched.as_deref_mut().map(|s| s as &mut dyn Scheduler),
                watchdog: self.watchdog,
                engine: self.engine,
            },
            rec,
            t0_s,
        )
    }

    /// Launch a kernel under an explicit caller-owned [`Scheduler`] —
    /// the entry point schedule exploration drives with replay/trace
    /// schedulers. The sim's policy is bypassed (its watchdog and fault
    /// source still apply).
    ///
    /// # Errors
    /// Same as [`Sim::launch`].
    pub fn launch_sched<K: Kernel>(
        &self,
        kernel: &K,
        sched: &mut dyn Scheduler,
    ) -> Result<KernelStats, LaunchError> {
        launch_configured(
            &self.device,
            &self.mem,
            kernel,
            LaunchConfig {
                fault: self.fault_source(),
                sched: Some(sched),
                watchdog: self.watchdog,
                engine: EngineMode::Serial,
            },
            rec_noop(),
            0.0,
        )
    }
}

/// Shared `&NoopRecorder` for unrecorded configurable launches.
fn rec_noop() -> &'static ipt_obs::NoopRecorder {
    static NOOP: ipt_obs::NoopRecorder = ipt_obs::NoopRecorder;
    &NOOP
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Grid, Step, WarpCtx};
    use crate::lanes::{LaneAddrs, LaneWrites};

    /// Toy kernel: each thread increments its element (grid-stride).
    struct IncKernel {
        buf: Buffer,
        n: usize,
        wgs: usize,
        wg_size: usize,
    }

    struct IncState {
        next: usize,
    }

    impl Kernel for IncKernel {
        type State = IncState;

        fn name(&self) -> String {
            "inc".into()
        }

        fn grid(&self) -> Grid {
            Grid { num_wgs: self.wgs, wg_size: self.wg_size }
        }

        fn init(&self, wg_id: usize, warp_id: usize) -> IncState {
            let _ = warp_id;
            IncState { next: wg_id }
        }

        fn step(&self, st: &mut IncState, ctx: &mut WarpCtx<'_>) -> Step {
            // Each WG strides over chunks of wg_size; warps cover their slice.
            let base = st.next * ctx.wg_size + ctx.warp_id * 32;
            if base >= self.n && st.next >= ctx.num_wgs {
                return Step::Done;
            }
            let addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
                let idx = base + l;
                (idx < self.n).then_some(idx)
            });
            let vals = ctx.global_read(self.buf, &addrs);
            let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                addrs.get(l).map(|a| (a, vals.get(l) + 1))
            });
            ctx.global_write(self.buf, &writes);
            st.next += ctx.num_wgs;
            if st.next * ctx.wg_size + ctx.warp_id * 32 >= self.n {
                Step::Done
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn alloc_and_roundtrip() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 1024);
        let b = sim.alloc(100);
        let data: Vec<u32> = (0..100).collect();
        sim.upload_u32(b, &data);
        assert_eq!(sim.download_u32(b), data);
        assert_eq!(sim.free_words(), 924);
    }

    #[test]
    #[should_panic(expected = "device OOM")]
    fn oom_panics() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 10);
        let _ = sim.alloc(11);
    }

    #[test]
    fn f32_roundtrip() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 64);
        let b = sim.alloc(4);
        sim.upload_f32(b, &[1.5, -2.25, 0.0, 3.0e7]);
        assert_eq!(sim.download_f32(b), vec![1.5, -2.25, 0.0, 3.0e7]);
    }

    #[test]
    fn toy_kernel_increments_everything() {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 4096);
        let n = 3000;
        let b = sim.alloc(n);
        let data: Vec<u32> = (0..n as u32).collect();
        sim.upload_u32(b, &data);
        let k = IncKernel { buf: b, n, wgs: 8, wg_size: 64 };
        let stats = sim.launch(&k).unwrap();
        let got = sim.download_u32(b);
        let want: Vec<u32> = data.iter().map(|v| v + 1).collect();
        assert_eq!(got, want);
        assert!(stats.time_s > 0.0);
        assert!(stats.dram_bytes >= (n * 8) as f64, "read+write traffic");
        // Contiguous access per warp → perfect-ish coalescing.
        assert!(stats.coalescing_efficiency() > 0.9, "{}", stats.coalescing_efficiency());
    }

    #[test]
    fn strided_access_wastes_bandwidth() {
        // Same kernel but with a stride access pattern via a modified index
        // map is covered in exec-level tests in ipt-gpu; here just assert
        // the stats plumbing exists.
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 512);
        let b = sim.alloc(256);
        let k = IncKernel { buf: b, n: 256, wgs: 2, wg_size: 64 };
        let stats = sim.launch(&k).unwrap();
        assert_eq!(stats.name, "inc");
        assert!(stats.gld_transactions > 0 && stats.gst_transactions > 0);
    }
}
