//! Device models: the architectural parameters that drive both functional
//! limits (local-memory capacity, work-group sizes) and the cost model
//! (bandwidth, latencies, banks, locks).
//!
//! Presets correspond to the three GPUs and the Xeon Phi evaluated in the
//! paper. Microarchitectural constants (latencies) are calibrated, not
//! measured: they are chosen so that the simulated kernels land in the same
//! regime the paper reports (see EXPERIMENTS.md), while every *mechanism* —
//! coalescing, bank/lock/position conflicts, occupancy — is modelled
//! explicitly.

use serde::Serialize;

/// Vendor / architecture family, where behaviour differs qualitatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Arch {
    /// NVIDIA Fermi (GTX 580): 32-wide warps, 48 KB shared/SM, register-file
    /// pressure limits occupancy.
    Fermi,
    /// NVIDIA Kepler (Tesla K20): 32-wide warps, larger register file.
    Kepler,
    /// AMD GCN (Radeon HD 7750 "Cape Verde"): 64-wide wavefronts, 256-thread
    /// work-group limit.
    Gcn,
    /// Intel Xeon Phi (Knights Corner) running OpenCL: no on-chip scratchpad
    /// — local memory is emulated in DRAM.
    Mic,
}

/// PCIe link model: effective (not theoretical) bandwidth plus fixed latency.
/// Transfers above ~1 MB behave linearly (Boyer et al., cited in §7.6).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PcieSpec {
    /// Effective bandwidth in GB/s (PCIe 2.0 x16 pinned ≈ 3–6 GB/s; the
    /// paper's 51.8 MB matrices take ≈ 15 ms per direction → ≈ 3.5 GB/s).
    pub bandwidth_gbps: f64,
    /// Per-transfer fixed cost in seconds (driver + DMA setup).
    pub latency_s: f64,
}

impl PcieSpec {
    /// Time to move `bytes` across the link.
    #[must_use]
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / (self.bandwidth_gbps * 1e9)
    }
}

/// Full device description. All memory quantities are in bytes unless the
/// name says otherwise; "word" always means 4 bytes (the smallest atomic
/// unit on all modelled devices, §4 of the paper).
#[derive(Debug, Clone, Serialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Architecture family.
    pub arch: Arch,
    /// SIMD width (NVIDIA warp = 32, AMD wavefront = 64).
    pub simd_width: usize,
    /// Number of streaming multiprocessors / compute units.
    pub num_sms: usize,
    /// Maximum resident work-groups per SM.
    pub max_wgs_per_sm: usize,
    /// Maximum resident SIMD units (warps) per SM.
    pub max_warps_per_sm: usize,
    /// Maximum work-items per work-group.
    pub max_threads_per_wg: usize,
    /// Local (shared/LDS) memory per SM.
    pub local_mem_per_sm: usize,
    /// Maximum local memory one work-group may allocate.
    pub local_mem_per_wg: usize,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Local-memory banks (32 on all modelled GPUs).
    pub num_banks: usize,
    /// Hardware locks backing local-memory atomics (1024 on Fermi per
    /// Gómez-Luna et al.).
    pub num_locks: usize,
    /// Core clock in GHz (used to convert cycles to seconds).
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub peak_gbps: f64,
    /// Fraction of peak DRAM bandwidth actually attainable by a streaming
    /// kernel (ECC, refresh, command overhead — the Tesla K20 ships with
    /// ECC on, costing ≈ 20-25 %).
    pub dram_efficiency: f64,
    /// DRAM transaction granularity in bytes (coalescing segment).
    pub transaction_bytes: usize,
    /// Whether local memory is a true on-chip scratchpad. `false` for the
    /// Xeon Phi preset: local traffic then costs DRAM bandwidth and latency
    /// (§7.7).
    pub local_mem_onchip: bool,

    // ---- calibrated latency constants (cycles) ----
    /// Latency of a global load (to first use).
    pub lat_global: f64,
    /// Latency of a global store (fire-and-forget, smaller).
    pub lat_global_store: f64,
    /// Latency of a local-memory access.
    pub lat_local: f64,
    /// Base latency of a local atomic (uncontended).
    pub lat_local_atomic: f64,
    /// Latency of a global atomic (L2 round-trip).
    pub lat_global_atomic: f64,
    /// Cost of a work-group barrier per participating warp.
    pub lat_barrier: f64,
    /// Local-memory pipeline occupancy of one atomic read-modify-write
    /// (cycles the bank/lock stays busy per colliding access). This is the
    /// *throughput* cost of atomic conflicts — the Gómez-Luna et al.
    /// observation that latency grows with the position-conflict degree is
    /// modelled on the dependent chain via `lat_local_atomic`.
    pub lat_atomic_rmw: f64,
    /// Issue cost per extra DRAM transaction beyond the first in one warp
    /// instruction (serialization of replays).
    pub lat_replay: f64,
    /// Memory-level parallelism: DRAM transactions one warp can keep in
    /// flight. Batched independent accesses (e.g. streaming a super-element)
    /// pay `lat_global × ceil(transactions / mlp)` on the dependent chain
    /// instead of one full latency per instruction.
    pub mlp_transactions: f64,
    /// Occupancy at which the memory system saturates: achieved bandwidth
    /// scales as `min(1, occupancy / bw_saturation_occupancy)` (the paper's
    /// "minimum recommended 50 %").
    pub bw_saturation_occupancy: f64,

    /// PCIe link.
    pub pcie: PcieSpec,
    /// Number of DMA copy engines (K20: 2 → H2D and D2H overlap; consumer
    /// Fermi: 1).
    pub copy_engines: usize,
    /// Host-side cost of creating one command queue (§7.6: large Q hurts).
    pub queue_create_overhead_s: f64,
}

impl DeviceSpec {
    /// NVIDIA GeForce GTX 580 (Fermi GF110), peak 192.4 GB/s.
    #[must_use]
    pub fn gtx580() -> Self {
        Self {
            name: "GeForce GTX 580",
            arch: Arch::Fermi,
            simd_width: 32,
            num_sms: 16,
            max_wgs_per_sm: 8,
            max_warps_per_sm: 48,
            max_threads_per_wg: 1024,
            local_mem_per_sm: 48 * 1024,
            local_mem_per_wg: 48 * 1024,
            regs_per_sm: 32 * 1024,
            num_banks: 32,
            num_locks: 1024,
            clock_ghz: 1.544,
            peak_gbps: 192.4,
            dram_efficiency: 0.85,
            transaction_bytes: 32,
            local_mem_onchip: true,
            lat_global: 450.0,
            lat_global_store: 120.0,
            lat_local: 30.0,
            lat_local_atomic: 36.0,
            lat_global_atomic: 500.0,
            lat_barrier: 30.0,
            lat_atomic_rmw: 28.0,
            lat_replay: 12.0,
            mlp_transactions: 4.0,
            bw_saturation_occupancy: 0.5,
            pcie: PcieSpec { bandwidth_gbps: 3.45, latency_s: 15e-6 },
            copy_engines: 1,
            queue_create_overhead_s: 60e-6,
        }
    }

    /// NVIDIA Tesla K20 (Kepler GK110), peak 208 GB/s — the paper's primary
    /// evaluation device.
    #[must_use]
    pub fn tesla_k20() -> Self {
        Self {
            name: "Tesla K20",
            arch: Arch::Kepler,
            simd_width: 32,
            num_sms: 13,
            max_wgs_per_sm: 16,
            max_warps_per_sm: 64,
            max_threads_per_wg: 1024,
            local_mem_per_sm: 48 * 1024,
            local_mem_per_wg: 48 * 1024,
            regs_per_sm: 64 * 1024,
            num_banks: 32,
            num_locks: 1024,
            clock_ghz: 0.706,
            peak_gbps: 208.0,
            dram_efficiency: 0.78,
            transaction_bytes: 32,
            local_mem_onchip: true,
            lat_global: 230.0,
            lat_global_store: 60.0,
            lat_local: 28.0,
            lat_local_atomic: 32.0,
            lat_global_atomic: 260.0,
            lat_barrier: 25.0,
            lat_atomic_rmw: 24.0,
            lat_replay: 8.0,
            mlp_transactions: 4.0,
            bw_saturation_occupancy: 0.5,
            pcie: PcieSpec { bandwidth_gbps: 3.45, latency_s: 15e-6 },
            copy_engines: 2,
            queue_create_overhead_s: 60e-6,
        }
    }

    /// AMD Radeon HD 7750 "Cape Verde" (GCN), peak 72 GB/s.
    #[must_use]
    pub fn hd7750() -> Self {
        Self {
            name: "Radeon HD 7750",
            arch: Arch::Gcn,
            simd_width: 64,
            num_sms: 8,
            max_wgs_per_sm: 16,
            // AMD counts 40 wavefronts per CU (§7.2 of the paper).
            max_warps_per_sm: 40,
            max_threads_per_wg: 256,
            local_mem_per_sm: 64 * 1024,
            local_mem_per_wg: 32 * 1024,
            regs_per_sm: 64 * 1024,
            num_banks: 32,
            num_locks: 1024,
            clock_ghz: 0.8,
            peak_gbps: 72.0,
            dram_efficiency: 0.85,
            transaction_bytes: 64,
            local_mem_onchip: true,
            lat_global: 350.0,
            lat_global_store: 100.0,
            lat_local: 32.0,
            lat_local_atomic: 40.0,
            lat_global_atomic: 420.0,
            lat_barrier: 30.0,
            lat_atomic_rmw: 20.0,
            lat_replay: 10.0,
            mlp_transactions: 4.0,
            bw_saturation_occupancy: 0.5,
            pcie: PcieSpec { bandwidth_gbps: 3.0, latency_s: 18e-6 },
            copy_engines: 1,
            queue_create_overhead_s: 80e-6,
        }
    }

    /// Intel Xeon Phi (KNC) through OpenCL: 60 cores × 4 threads modelled as
    /// 60 "SMs" of 16-wide SIMD with **no on-chip local memory** — OpenCL
    /// local memory lives in GDDR (§7.7), which is what makes the staged
    /// kernels "not strictly in-place" there.
    #[must_use]
    pub fn xeon_phi() -> Self {
        Self {
            name: "Xeon Phi (KNC)",
            arch: Arch::Mic,
            simd_width: 16,
            num_sms: 60,
            max_wgs_per_sm: 4,
            max_warps_per_sm: 32,
            max_threads_per_wg: 1024,
            local_mem_per_sm: 32 * 1024,
            local_mem_per_wg: 32 * 1024,
            regs_per_sm: usize::MAX / 2, // registers never the limiter
            num_banks: 1,
            num_locks: 64,
            clock_ghz: 1.1,
            peak_gbps: 159.0,
            dram_efficiency: 0.70,
            transaction_bytes: 64,
            local_mem_onchip: false,
            lat_global: 300.0,
            lat_global_store: 150.0,
            // With no scratchpad these model the cache/DRAM path used to
            // emulate local memory.
            lat_local: 200.0,
            lat_local_atomic: 300.0,
            lat_global_atomic: 500.0,
            lat_barrier: 400.0,
            lat_atomic_rmw: 6.0,
            lat_replay: 10.0,
            mlp_transactions: 3.0,
            bw_saturation_occupancy: 0.9,
            pcie: PcieSpec { bandwidth_gbps: 3.2, latency_s: 20e-6 },
            copy_engines: 1,
            queue_create_overhead_s: 90e-6,
        }
    }

    /// Local-memory words (u32) available to one work-group.
    #[must_use]
    pub fn local_words_per_wg(&self) -> usize {
        self.local_mem_per_wg / 4
    }

    /// DRAM bytes per core-clock cycle at peak.
    #[must_use]
    pub fn bytes_per_cycle(&self) -> f64 {
        self.peak_gbps / self.clock_ghz
    }

    /// Warps (SIMD units) needed for a work-group of `wg_size` threads.
    #[must_use]
    pub fn warps_per_wg(&self, wg_size: usize) -> usize {
        wg_size.div_ceil(self.simd_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sane() {
        for dev in [
            DeviceSpec::gtx580(),
            DeviceSpec::tesla_k20(),
            DeviceSpec::hd7750(),
            DeviceSpec::xeon_phi(),
        ] {
            assert!(dev.simd_width.is_power_of_two(), "{}", dev.name);
            assert!(dev.num_sms > 0);
            assert!(dev.peak_gbps > 0.0);
            assert!(dev.clock_ghz > 0.0);
            assert!(dev.local_words_per_wg() > 0);
            assert!(dev.bytes_per_cycle() > 0.0);
        }
    }

    #[test]
    fn paper_bandwidths() {
        assert!((DeviceSpec::gtx580().peak_gbps - 192.4).abs() < 1e-9);
        assert!((DeviceSpec::tesla_k20().peak_gbps - 208.0).abs() < 1e-9);
        assert!((DeviceSpec::hd7750().peak_gbps - 72.0).abs() < 1e-9);
    }

    #[test]
    fn wavefront_widths() {
        assert_eq!(DeviceSpec::gtx580().simd_width, 32);
        assert_eq!(DeviceSpec::hd7750().simd_width, 64);
        assert_eq!(DeviceSpec::hd7750().max_threads_per_wg, 256);
    }

    #[test]
    fn pcie_matches_paper_transfer_times() {
        // §7.5: a 7200×1800 single-precision matrix (51.84 MB) takes ≈ 15 ms
        // per direction.
        let dev = DeviceSpec::tesla_k20();
        let bytes = 7200.0 * 1800.0 * 4.0;
        let t = dev.pcie.transfer_time(bytes);
        assert!((0.012..0.018).contains(&t), "transfer time {t}");
    }

    #[test]
    fn warps_per_wg_rounds_up() {
        let dev = DeviceSpec::tesla_k20();
        assert_eq!(dev.warps_per_wg(32), 1);
        assert_eq!(dev.warps_per_wg(33), 2);
        assert_eq!(dev.warps_per_wg(192), 6);
        let amd = DeviceSpec::hd7750();
        assert_eq!(amd.warps_per_wg(65), 2);
    }
}
