//! Engine-level scheduler integration: the scheduled path's round-robin
//! bit-identity with the fast path, PCT seed determinism, watchdog
//! liveness conversion, and chaos-campaign determinism through [`Sim`].

use gpu_sim::{
    Buffer, ChaosConfig, ChaosPlan, DeviceSpec, Grid, Kernel, LaneAddrs, LaneWrites, LaunchError,
    RoundRobin, SchedPolicy, Sim, Step, Watchdog, WarpCtx,
};

/// A contended toy kernel: every warp pushes `per_warp` increments into a
/// shared accumulator word with global atomics, then records its own
/// completion in a per-warp slot. The final memory image is schedule-
/// independent, but the *path* to it exercises atomics, reads, and writes
/// — the events schedulers key on.
struct AtomicAddKernel {
    acc: Buffer,
    done: Buffer,
    wgs: usize,
    wg_size: usize,
    per_warp: usize,
}

struct AddState {
    sent: usize,
}

impl Kernel for AtomicAddKernel {
    type State = AddState;

    fn name(&self) -> String {
        "atomic-add".into()
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: self.wgs, wg_size: self.wg_size }
    }

    fn init(&self, _wg_id: usize, _warp_id: usize) -> AddState {
        AddState { sent: 0 }
    }

    fn step(&self, st: &mut AddState, ctx: &mut WarpCtx<'_>) -> Step {
        if st.sent < self.per_warp {
            // atom_or on disjoint bits of a shared word models the claim
            // traffic of the real kernels (one touchpoint per slice).
            let bit = 1u32 << ((st.sent + ctx.wg_id + ctx.warp_id) % 32);
            let ops = LaneWrites::from_fn(1, |_| Some((0, bit)));
            let _ = ctx.global_atomic_or(self.acc, &ops);
            st.sent += 1;
            return Step::Continue;
        }
        let slot = ctx.wg_id * ctx.wg_size.div_ceil(ctx.device().simd_width) + ctx.warp_id;
        let w = LaneWrites::from_fn(1, |_| Some((slot, 1u32)));
        ctx.global_write(self.done, &w);
        Step::Done
    }
}

/// A kernel that never finishes: the watchdog's prey.
struct SpinKernel {
    buf: Buffer,
}

impl Kernel for SpinKernel {
    type State = ();

    fn name(&self) -> String {
        "spin-forever".into()
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: 1, wg_size: 64 }
    }

    fn init(&self, _wg_id: usize, _warp_id: usize) {}

    fn step(&self, _st: &mut (), ctx: &mut WarpCtx<'_>) -> Step {
        let addr = LaneAddrs::from_fn(1, |_| Some(0));
        let _ = ctx.global_read(self.buf, &addr);
        Step::Continue
    }
}

fn fresh(policy: SchedPolicy) -> (Sim, AtomicAddKernel) {
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), 256);
    sim.set_sched_policy(policy);
    let acc = sim.alloc(8);
    let done = sim.alloc(64);
    sim.zero(acc);
    sim.zero(done);
    (sim, AtomicAddKernel { acc, done, wgs: 4, wg_size: 64, per_warp: 9 })
}

#[test]
fn scheduled_round_robin_is_bit_identical_to_fast_path() {
    // Fast path: no scheduler object at all.
    let (fast_sim, fast_k) = fresh(SchedPolicy::RoundRobin);
    let fast_stats = fast_sim.launch(&fast_k).expect("fast path");
    let fast_mem = (fast_sim.download_u32(fast_k.acc), fast_sim.download_u32(fast_k.done));

    // Scheduled path: an explicit RoundRobin through the scheduler plumbing.
    let (sched_sim, sched_k) = fresh(SchedPolicy::RoundRobin);
    let mut rr = RoundRobin;
    let sched_stats = sched_sim.launch_sched(&sched_k, &mut rr).expect("scheduled path");
    let sched_mem = (sched_sim.download_u32(sched_k.acc), sched_sim.download_u32(sched_k.done));

    assert_eq!(fast_mem, sched_mem, "memory images must match bit for bit");
    assert!(
        (fast_stats.time_s - sched_stats.time_s).abs() < 1e-15,
        "simulated clocks diverged: fast {} vs scheduled {}",
        fast_stats.time_s,
        sched_stats.time_s
    );
    assert_eq!(fast_stats.gld_transactions, sched_stats.gld_transactions);
    assert_eq!(fast_stats.gst_transactions, sched_stats.gst_transactions);
}

#[test]
fn pct_policy_same_seed_same_execution() {
    let run = |seed| {
        let (sim, k) = fresh(SchedPolicy::Pct { seed, depth: 3 });
        let stats = sim.launch(&k).expect("pct launch");
        (sim.download_u32(k.acc), sim.download_u32(k.done), stats.time_s)
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must replay the same schedule");
    // A different seed still converges to the same (schedule-independent)
    // final memory — PCT perturbs the path, not the result.
    let c = run(8);
    assert_eq!(a.0, c.0);
    assert_eq!(a.1, c.1);
}

#[test]
fn pct_policy_label_carries_provenance() {
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), 64);
    assert_eq!(sim.sched_policy().label(), "round-robin");
    sim.set_sched_policy(SchedPolicy::Pct { seed: 11, depth: 4 });
    assert_eq!(sim.sched_policy().label(), "pct(seed=11,d=4)");
}

#[test]
fn watchdog_converts_livelock_into_typed_stall() {
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), 64);
    let buf = sim.alloc(8);
    sim.set_watchdog(Some(Watchdog::per_warp(40)));
    match sim.launch(&SpinKernel { buf }) {
        Err(LaunchError::Stalled { kernel, lane, steps }) => {
            assert_eq!(kernel, "spin-forever");
            assert!(lane < 2, "one WG of 2 warps; got lane {lane}");
            assert!(steps > 40, "budget was 40, trip at {steps}");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }

    // Total-step budget trips too, naming the busiest warp.
    sim.set_watchdog(Some(Watchdog::new(u64::MAX, 64)));
    assert!(matches!(
        sim.launch(&SpinKernel { buf }),
        Err(LaunchError::Stalled { .. })
    ));

    // Disarmed + finite kernel: unaffected.
    sim.set_watchdog(None);
    let (ok_sim, k) = fresh(SchedPolicy::RoundRobin);
    assert!(ok_sim.launch(&k).is_ok());
}

#[test]
fn chaos_campaign_is_deterministic_through_sim() {
    let run = |seed| {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 256);
        sim.set_chaos_plan(ChaosPlan::new(seed, ChaosConfig::harsh()));
        sim.set_sched_policy(SchedPolicy::Pct { seed, depth: 2 });
        let acc = sim.alloc(8);
        let done = sim.alloc(64);
        sim.zero(acc);
        sim.zero(done);
        let k = AtomicAddKernel { acc, done, wgs: 4, wg_size: 64, per_warp: 9 };
        let outcome = sim.launch(&k).map(|s| s.time_s).map_err(|e| e.to_string());
        (outcome, sim.fault_records(), sim.download_u32(acc))
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a.0, b.0, "same campaign seed, same outcome");
    assert_eq!(a.1, b.1, "same campaign seed, same fault stream");
    assert_eq!(a.2, b.2, "same campaign seed, same memory");
    let c = run(4);
    assert_ne!(a.1, c.1, "different seed should draw a different stream");
}
