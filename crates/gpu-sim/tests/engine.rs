//! Engine-level integration tests: crafted access patterns must produce
//! exactly the coalescing / conflict counts the cost model promises, and
//! execution must be deterministic.

use gpu_sim::{
    Buffer, DeviceSpec, Grid, Kernel, LaneAddrs, LaneWrites, Sim, Step, WarpCtx,
};

/// A one-warp kernel that performs a single caller-specified access pattern
/// (the pattern bodies address the backing buffer directly).
struct PatternKernel<F: Fn(&mut WarpCtx<'_>) + Sync> {
    local_words: usize,
    body: F,
}

impl<F: Fn(&mut WarpCtx<'_>) + Sync> Kernel for PatternKernel<F> {
    type State = bool;

    fn name(&self) -> String {
        "pattern".into()
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: 1, wg_size: 32 }
    }

    fn local_mem_words(&self, _dev: &DeviceSpec) -> usize {
        self.local_words
    }

    fn init(&self, _wg: usize, _warp: usize) -> bool {
        false
    }

    fn step(&self, done: &mut bool, ctx: &mut WarpCtx<'_>) -> Step {
        if *done {
            return Step::Done;
        }
        (self.body)(ctx);
        *done = true;
        Step::Done
    }
}

fn run_pattern<F: Fn(&mut WarpCtx<'_>) + Sync>(
    local_words: usize,
    body: F,
) -> gpu_sim::KernelStats {
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), 4096);
    let _buf = sim.alloc(2048);
    let k = PatternKernel { local_words, body };
    sim.launch(&k).unwrap()
}

#[test]
fn coalesced_load_is_minimal_transactions() {
    let stats = run_pattern(0, |ctx| {
        let buf = Buffer { base: 0, len: 2048 };
        let addrs = LaneAddrs::from_fn(32, Some);
        let _ = ctx.global_read(buf, &addrs);
    });
    // 32 consecutive words = 128 bytes = 4 transactions of 32 B.
    assert_eq!(stats.gld_transactions, 4);
    assert_eq!(stats.dram_bytes, 128.0);
    assert_eq!(stats.useful_bytes, 128.0);
    assert!((stats.coalescing_efficiency() - 1.0).abs() < 1e-12);
}

#[test]
fn strided_load_wastes_transactions() {
    let stats = run_pattern(0, |ctx| {
        let buf = Buffer { base: 0, len: 2048 };
        // Stride 32 words: every lane its own 32-byte segment.
        let addrs = LaneAddrs::from_fn(32, |l| Some(l * 32));
        let _ = ctx.global_read(buf, &addrs);
    });
    assert_eq!(stats.gld_transactions, 32);
    assert_eq!(stats.dram_bytes, 32.0 * 32.0);
    assert!((stats.coalescing_efficiency() - 0.125).abs() < 1e-12);
}

#[test]
fn same_word_atomics_count_position_conflicts() {
    let stats = run_pattern(64, |ctx| {
        // All 32 lanes OR into the same local word.
        let ops = LaneWrites::from_fn(32, |l| Some((0usize, 1u32 << l)));
        let _ = ctx.local_atomic_or(&ops);
    });
    assert_eq!(stats.local_atomics, 32);
    assert_eq!(stats.position_conflicts, 31);
    assert_eq!(stats.bank_conflicts, 0, "same word broadcasts within the bank");
}

#[test]
fn same_bank_different_words_count_bank_conflicts() {
    let stats = run_pattern(2048, |ctx| {
        // Stride 32 words: all in bank 0, all distinct.
        let ops = LaneWrites::from_fn(32, |l| Some((l * 32, 1u32)));
        let _ = ctx.local_atomic_or(&ops);
    });
    assert_eq!(stats.position_conflicts, 0);
    assert_eq!(stats.bank_conflicts, 31);
}

#[test]
fn same_lock_different_words_count_lock_conflicts() {
    let stats = run_pattern(3000, |ctx| {
        // Stride 1024 words: distinct words, same lock (1024 locks), and
        // bank 0 every time.
        let ops = LaneWrites::from_fn(2, |l| Some((l * 1024, 1u32)));
        let _ = ctx.local_atomic_or(&ops);
    });
    assert_eq!(stats.lock_conflicts, 1);
}

#[test]
fn batched_reads_cost_less_chain_than_sequential() {
    // Narrow (one-transaction) accesses: issuing them one instruction at a
    // time pays a full latency each; batching keeps `mlp_transactions` in
    // flight. (Full-width 4-transaction loads already fill the MLP window,
    // so batching those is neutral by design.)
    let seq = run_pattern(0, |ctx| {
        let buf = Buffer { base: 0, len: 2048 };
        for i in 0..8 {
            let addrs = LaneAddrs::from_fn(8, move |l| Some(i * 8 + l));
            let _ = ctx.global_read(buf, &addrs);
        }
    });
    let batched = run_pattern(0, |ctx| {
        let buf = Buffer { base: 0, len: 2048 };
        let batches: Vec<LaneAddrs> = (0..8)
            .map(|i| LaneAddrs::from_fn(8, move |l| Some(i * 8 + l)))
            .collect();
        let _ = ctx.global_read_batch(buf, &batches);
    });
    assert_eq!(seq.dram_bytes, batched.dram_bytes, "same traffic");
    assert!(
        batched.max_chain_cycles < seq.max_chain_cycles,
        "MLP pipelining must shorten the dependent chain: {} vs {}",
        batched.max_chain_cycles,
        seq.max_chain_cycles
    );
}

#[test]
fn execution_is_deterministic() {
    let run = || {
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 8192);
        let buf = sim.alloc(4096);
        let data: Vec<u32> = (0..4096).collect();
        sim.upload_u32(buf, &data);
        // A kernel with atomics and cross-warp interaction: reuse the
        // pattern kernel with a visible atomic storm.
        let k = PatternKernel {
            local_words: 128,
            body: |ctx: &mut WarpCtx<'_>| {
                let ops = LaneWrites::from_fn(32, |l| Some((l % 7, 1u32 << (l % 31))));
                let _ = ctx.local_atomic_or(&ops);
            },
        };
        let s = sim.launch(&k).unwrap();
        (s.time_s, s.position_conflicts, s.bank_conflicts, s.total_chain_cycles)
    };
    assert_eq!(run(), run());
}

#[test]
fn inactive_lanes_cost_nothing() {
    let stats = run_pattern(0, |ctx| {
        let buf = Buffer { base: 0, len: 2048 };
        let addrs = LaneAddrs::from_fn(32, |_| None);
        let _ = ctx.global_read(buf, &addrs);
    });
    assert_eq!(stats.gld_transactions, 0);
    assert_eq!(stats.dram_bytes, 0.0);
}

#[test]
fn barrier_synchronises_two_warps() {
    // Two warps: warp 0 writes local, barriers, warp 1 reads after the
    // barrier and must observe the write.
    struct TwoWarp {
        buf: Buffer,
    }
    impl Kernel for TwoWarp {
        type State = u8;
        fn name(&self) -> String {
            "two-warp".into()
        }
        fn grid(&self) -> Grid {
            Grid { num_wgs: 1, wg_size: 64 }
        }
        fn local_mem_words(&self, _d: &DeviceSpec) -> usize {
            64
        }
        fn init(&self, _wg: usize, _warp: usize) -> u8 {
            0
        }
        fn step(&self, phase: &mut u8, ctx: &mut WarpCtx<'_>) -> Step {
            match *phase {
                0 => {
                    if ctx.warp_id == 0 {
                        let w = LaneWrites::from_fn(32, |l| Some((l, 7_000_000 + l as u32)));
                        ctx.local_write(&w);
                    }
                    *phase = 1;
                    Step::Barrier
                }
                _ => {
                    if ctx.warp_id == 1 {
                        let a = LaneAddrs::from_fn(32, Some);
                        let vals = ctx.local_read(&a);
                        let w = LaneWrites::from_fn(32, |l| Some((l, vals.get(l))));
                        ctx.global_write(self.buf, &w);
                    }
                    Step::Done
                }
            }
        }
    }
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), 256);
    let buf = sim.alloc(64);
    let stats = sim.launch(&TwoWarp { buf }).unwrap();
    assert!(stats.barriers >= 1);
    let out = sim.download_u32(buf);
    for (l, item) in out.iter().enumerate().take(32) {
        assert_eq!(*item, 7_000_000 + l as u32, "lane {l} must see pre-barrier write");
    }
}

#[test]
fn occupancy_flows_into_stats() {
    // Huge local allocation → one WG per SM → low occupancy in the report.
    let stats = run_pattern(12_000, |ctx| {
        let ops = LaneWrites::from_fn(32, |l| Some((l, 1u32)));
        ctx.local_write(&ops);
    });
    assert!(stats.occupancy.occupancy < 0.2);
    assert_eq!(stats.occupancy.limiter, gpu_sim::Limiter::LocalMem);
}
