//! P-IPT on the CPU: one task per cycle, no splitting (Sung et al.'s [12]
//! baseline parallelisation, which the paper's optimised PTTWAC defeats).
//!
//! Thin, named wrapper over the cycle-parallel engine in `ipt-core` so the
//! experiment harness can refer to the comparator by its paper name.

use ipt_core::{Matrix, TransposePerm};

/// P-IPT in-place transposition: rayon task per cycle, longest first.
#[must_use]
pub fn transpose_in_place_pipt<T: Copy + Send + Sync>(matrix: Matrix<T>) -> Matrix<T> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let mut matrix = matrix;
    let perm = TransposePerm::new(rows, cols);
    ipt_core::elementary::parallel::cycle_shift_par(matrix.as_mut_slice(), &perm, 1);
    matrix.assume_transposed_shape()
}

/// Load-imbalance diagnostic: fraction of all moved elements that live on
/// the single longest cycle — the quantity that caps P-IPT's speedup
/// (§4 of the paper, citing Cate & Twigg).
#[must_use]
pub fn dominant_cycle_fraction(rows: usize, cols: usize) -> f64 {
    let perm = TransposePerm::new(rows, cols);
    let stats = perm.stats();
    if stats.moved == 0 {
        0.0
    } else {
        stats.max_len as f64 / stats.moved as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipt_correct() {
        for &(r, c) in &[(5, 3), (64, 48), (720, 180)] {
            let m = Matrix::iota(r, c);
            assert_eq!(transpose_in_place_pipt(m.clone()), m.transposed(), "{r}x{c}");
        }
    }

    #[test]
    fn dominant_cycle_is_large_for_rectangles() {
        // Rectangular matrices typically concentrate most elements on few
        // long cycles; squares have 2-cycles only.
        let rect = dominant_cycle_fraction(720, 180);
        let square = dominant_cycle_fraction(512, 512);
        assert!(rect > 0.05, "rect {rect}");
        assert!(square < 1e-3, "square {square}");
    }
}
