//! Gustavson/Karlsson/Kågström-style parallel in-place transposition for
//! multicore CPUs (TOMS 2012; the paper's main CPU comparator, 2.85 GB/s
//! on a 6-core Xeon).
//!
//! The 4-stage blocked algorithm (`0100! → 0010! → 1000! → 0100!`) with
//! their parallelisation strategy:
//!
//! * multi-instance stages parallelise over instances;
//! * the single-instance `1000!` stage parallelises over cycles with
//!   **greedy longest-first assignment** to threads and **a-priori
//!   splitting of long cycles** — each split segment jumps to its start in
//!   `O(log t)` via `dest_pow` (`succ^t(k) = k·Mᵗ mod (MN−1)`), shifts
//!   backwards, and a barrier-separated boundary pass stitches segments.

use ipt_core::elementary::parallel::find_cycle_leaders;
use ipt_core::elementary::IndexPerm;
use ipt_core::stages::{StageOp, StagePlan, TileConfig};
use ipt_core::tiles::TileHeuristic;
use ipt_core::{Matrix, TransposePerm};
use rayon::prelude::*;

/// One shifting task: a contiguous run of cycle positions.
///
/// Sources are cycle indices `[start_idx, end_idx)` (along the cycle from
/// its leader); the task writes destinations `(start_idx, end_idx]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Cycle leader (any fixed representative of the cycle).
    pub leader: usize,
    /// First source index along the cycle (inclusive).
    pub start_idx: u64,
    /// Last source index along the cycle (exclusive).
    pub end_idx: u64,
}

impl Segment {
    /// Number of moves this segment performs.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end_idx - self.start_idx
    }

    /// True for an empty segment (never produced by the planner).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Partition the cycles of `perm` into at most `threads` balanced buckets:
/// greedy longest-processing-time assignment, with any cycle longer than
/// `total/threads` split into segments first (the GKK strategy).
#[must_use]
pub fn plan_segments(perm: &TransposePerm, threads: usize) -> Vec<Vec<Segment>> {
    let threads = threads.max(1);
    let leaders = find_cycle_leaders(perm);
    let total: u64 = leaders.iter().map(|&(_, len)| len as u64).sum();
    if total == 0 {
        return vec![Vec::new(); threads];
    }
    let ideal = total.div_ceil(threads as u64).max(1);

    // Split long cycles a priori.
    let mut segments: Vec<Segment> = Vec::new();
    for (leader, len) in leaders {
        let len = len as u64;
        if len <= ideal {
            segments.push(Segment { leader, start_idx: 0, end_idx: len });
        } else {
            let parts = len.div_ceil(ideal);
            let per = len.div_ceil(parts);
            let mut b = 0;
            while b < len {
                let e = (b + per).min(len);
                segments.push(Segment { leader, start_idx: b, end_idx: e });
                b = e;
            }
        }
    }

    // Greedy LPT bin packing.
    segments.sort_unstable_by_key(|s| std::cmp::Reverse(s.len()));
    let mut buckets: Vec<(u64, Vec<Segment>)> = vec![(0, Vec::new()); threads];
    for seg in segments {
        let (load, bucket) = buckets.iter_mut().min_by_key(|(load, _)| *load).expect("non-empty");
        *load += seg.len();
        bucket.push(seg);
    }
    buckets.into_iter().map(|(_, v)| v).collect()
}

/// Unsafe shared-slice handle for disjoint segment shifting.
struct Shared<T> {
    ptr: *mut T,
    len: usize,
}
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    /// Raw pointer to word `w`. A method (rather than direct field access)
    /// so closures capture `&Shared<T>` — which is `Sync` — instead of the
    /// bare `*mut T` field.
    ///
    /// # Safety
    /// `w` must be in bounds; the caller guarantees disjoint access.
    unsafe fn at(&self, w: usize) -> *mut T {
        debug_assert!(w < self.len);
        unsafe { self.ptr.add(w) }
    }
}

/// Execute a planned segment shift over super-elements of `s` scalars.
///
/// Two phases with a barrier between them (rayon joins provide it):
/// 1. each segment saves its first source super-element (the boundary the
///    previous segment will overwrite),
/// 2. each segment shifts backwards and finally writes the saved boundary.
pub fn shift_segmented<T: Copy + Send + Sync>(
    data: &mut [T],
    perm: &TransposePerm,
    s: usize,
    buckets: &[Vec<Segment>],
) {
    assert_eq!(data.len(), IndexPerm::len(perm) * s);
    let shared = Shared { ptr: data.as_mut_ptr(), len: data.len() };

    // Phase 1: save boundary values.
    let saved: Vec<Vec<(Segment, Vec<T>)>> = buckets
        .par_iter()
        .map(|segs| {
            segs.iter()
                .map(|&seg| {
                    let k = perm.dest_pow(seg.leader, seg.start_idx);
                    let mut buf = Vec::with_capacity(s);
                    // SAFETY: phase 1 only reads.
                    unsafe {
                        buf.extend_from_slice(std::slice::from_raw_parts(shared.at(k * s), s));
                    }
                    (seg, buf)
                })
                .collect()
        })
        .collect();

    // Phase 2: backwards shifts; segments write disjoint destination sets.
    saved.par_iter().for_each(|segs| {
        for (seg, boundary) in segs {
            let perm = *perm;
            // Walk backwards from k_{end} to k_{start+1} using the inverse.
            let mut cur = perm.dest_pow(seg.leader, seg.end_idx);
            let mut idx = seg.end_idx;
            while idx > seg.start_idx + 1 {
                let prev = perm.src(cur);
                // SAFETY: destination indices (start, end] are unique across
                // all segments (cycles are disjoint; segment index ranges
                // partition each cycle); sources read here lie strictly
                // inside this segment's own range.
                unsafe {
                    std::ptr::copy_nonoverlapping(shared.at(prev * s), shared.at(cur * s), s);
                }
                cur = prev;
                idx -= 1;
            }
            // Final destination k_{start+1} receives the saved boundary.
            // SAFETY: as above; `cur` is now k_{start+1}.
            unsafe {
                std::ptr::copy_nonoverlapping(boundary.as_ptr(), shared.at(cur * s), s);
            }
        }
    });
}

/// GKK-parallel execution of one elementary stage.
fn run_stage<T: Copy + Send + Sync>(op: &StageOp, data: &mut [T], threads: usize) {
    match op {
        StageOp::Instanced(op) => {
            if op.instances > 1 {
                // Instance-level parallelism.
                op.apply_par(data);
            } else {
                // Cycle-level parallelism with splitting.
                let perm = op.perm();
                let buckets = plan_segments(&perm, threads);
                shift_segmented(data, &perm, op.super_size, &buckets);
            }
        }
        StageOp::Fused(f) => f.apply_par(data),
    }
}

/// The CPU tile heuristic: stage-2 tiles sized for cache (≈64 KB), smaller
/// preferred range than the GPU's.
#[must_use]
pub fn cpu_tile_heuristic() -> TileHeuristic {
    TileHeuristic { shared_capacity_words: 16 * 1024, preferred_lo: 16, preferred_hi: 128 }
}

/// Full GKK in-place transposition: 4-stage plan, all stages parallel,
/// long cycles split across `threads`.
#[must_use]
pub fn transpose_in_place_gkk<T: Copy + Send + Sync>(matrix: Matrix<T>, threads: usize) -> Matrix<T> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let mut matrix = matrix;
    let plan = match cpu_tile_heuristic().select(rows, cols) {
        Some(tile) => StagePlan::four_stage(rows, cols, tile)
            .expect("heuristic tile divides the matrix"),
        None => StagePlan::single_stage(rows, cols),
    };
    for stage in &plan.stages {
        run_stage(&stage.op, matrix.as_mut_slice(), threads);
    }
    matrix.assume_transposed_shape()
}

/// GKK-style parallel out-of-place transposition (their OOP comparator in
/// Table 3): per-thread blocked copy.
#[must_use]
pub fn transpose_oop_gkk<T: Copy + Send + Sync + Default>(matrix: &Matrix<T>) -> Matrix<T> {
    // Same structure as the MKL-like routine but with the GKK block size.
    crate::mkl_like::transpose_oop_par(matrix)
}

/// Explicit-tile variant for experiments.
#[must_use]
pub fn transpose_in_place_gkk_with_tile<T: Copy + Send + Sync>(
    matrix: Matrix<T>,
    tile: TileConfig,
    threads: usize,
) -> Matrix<T> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let mut matrix = matrix;
    let plan = StagePlan::four_stage(rows, cols, tile).expect("tile must divide the matrix");
    for stage in &plan.stages {
        run_stage(&stage.op, matrix.as_mut_slice(), threads);
    }
    matrix.assume_transposed_shape()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_cover_all_cycles_exactly_once() {
        for &(r, c) in &[(5, 3), (64, 48), (61, 7), (16, 16)] {
            let perm = TransposePerm::new(r, c);
            for threads in [1, 2, 4, 7] {
                let buckets = plan_segments(&perm, threads);
                assert_eq!(buckets.len(), threads.max(1));
                let mut covered: std::collections::HashMap<usize, Vec<(u64, u64)>> =
                    std::collections::HashMap::new();
                for seg in buckets.iter().flatten() {
                    covered.entry(seg.leader).or_default().push((seg.start_idx, seg.end_idx));
                }
                let leaders = find_cycle_leaders(&perm);
                assert_eq!(covered.len(), leaders.len(), "{r}x{c} t={threads}");
                for (leader, len) in leaders {
                    let mut ranges = covered.remove(&leader).unwrap();
                    ranges.sort_unstable();
                    let mut expect = 0u64;
                    for (b, e) in ranges {
                        assert_eq!(b, expect, "contiguous");
                        assert!(e > b);
                        expect = e;
                    }
                    assert_eq!(expect, len as u64, "full coverage");
                }
            }
        }
    }

    #[test]
    fn segment_loads_are_balanced() {
        // 720×180 has a dominant cycle; splitting must equalise loads.
        let perm = TransposePerm::new(720, 180);
        let buckets = plan_segments(&perm, 6);
        let loads: Vec<u64> =
            buckets.iter().map(|b| b.iter().map(Segment::len).sum()).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max <= min * 2 + 1, "loads {loads:?}");
    }

    #[test]
    fn segmented_shift_matches_reference() {
        for &(r, c, s) in &[(5, 3, 1), (16, 48, 2), (61, 7, 3), (720, 180, 1), (48, 16, 4)] {
            let perm = TransposePerm::new(r, c);
            let orig: Vec<u32> = (0..(r * c * s) as u32).collect();
            let mut expect = vec![0u32; orig.len()];
            ipt_core::elementary::cycle_shift_oop(&orig, &mut expect, &perm, s);
            for threads in [1, 3, 8] {
                let buckets = plan_segments(&perm, threads);
                let mut got = orig.clone();
                shift_segmented(&mut got, &perm, s, &buckets);
                assert_eq!(got, expect, "{r}x{c} s={s} t={threads}");
            }
        }
    }

    #[test]
    fn gkk_full_transposition_correct() {
        for &(r, c) in &[(6, 15), (64, 48), (720, 180), (100, 100), (37, 41)] {
            let m = Matrix::iota(r, c);
            let want = m.transposed();
            for threads in [1, 4] {
                assert_eq!(
                    transpose_in_place_gkk(m.clone(), threads),
                    want,
                    "{r}x{c} t={threads}"
                );
            }
        }
    }

    #[test]
    fn gkk_with_explicit_tile() {
        let m = Matrix::pattern_f32(96, 72);
        let got = transpose_in_place_gkk_with_tile(m.clone(), TileConfig::new(16, 12), 4);
        assert_eq!(got, m.transposed());
    }

    #[test]
    fn gkk_oop_correct() {
        let m = Matrix::iota(123, 77);
        assert_eq!(transpose_oop_gkk(&m), m.transposed());
    }
}
