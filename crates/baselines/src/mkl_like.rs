//! MKL-like parallel out-of-place transposition (`mkl_somatcopy`'s role in
//! Table 3): cache-blocked, rayon over destination row blocks.
//!
//! The paper's measurement: parallel OOP is the fastest CPU option
//! (12.07 GB/s on a 6-core Xeon, memory-bandwidth-limited beyond 4
//! threads) but carries 100 % memory overhead.

use ipt_core::Matrix;
use rayon::prelude::*;

/// Cache block edge (elements). 64×64×4 B = 16 KB — comfortably in L1/L2.
pub const BLOCK: usize = 64;

/// Parallel blocked out-of-place transposition.
#[must_use]
pub fn transpose_oop_par<T: Copy + Send + Sync + Default>(matrix: &Matrix<T>) -> Matrix<T> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let src = matrix.as_slice();
    let mut out = vec![T::default(); rows * cols];
    // Parallelise over destination row blocks (each output row j is column
    // j of the source).
    out.par_chunks_mut(BLOCK * rows)
        .enumerate()
        .for_each(|(jb, chunk)| {
            let j0 = jb * BLOCK;
            let jn = (j0 + BLOCK).min(cols);
            // Tile the source rows so both streams stay cache-resident.
            for i0 in (0..rows).step_by(BLOCK) {
                let i_end = (i0 + BLOCK).min(rows);
                for j in j0..jn {
                    let dst_row = &mut chunk[(j - j0) * rows..][..rows];
                    for i in i0..i_end {
                        dst_row[i] = src[i * cols + j];
                    }
                }
            }
        });
    Matrix::from_vec(cols, rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_par_matches_reference() {
        for &(r, c) in &[(5, 3), (64, 64), (100, 257), (301, 33), (1, 9), (128, 1)] {
            let m = Matrix::iota(r, c);
            assert_eq!(transpose_oop_par(&m), m.transposed(), "{r}x{c}");
        }
    }

    #[test]
    fn float_payload() {
        let m = Matrix::pattern_f32(150, 222);
        assert_eq!(transpose_oop_par(&m), m.transposed());
    }
}
