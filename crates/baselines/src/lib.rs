//! # ipt-baselines — CPU comparators for the Table 3 / Figure 9 study
//!
//! Real multi-threaded host implementations (measured wall-clock, not
//! simulated):
//!
//! * [`gkk`] — Gustavson/Karlsson parallel in-place 4-stage transposition
//!   with greedy cycle assignment and a-priori long-cycle splitting,
//! * [`mkl_like`] — parallel blocked out-of-place (the `mkl_somatcopy`
//!   role),
//! * [`seq`] — sequential in-place (the `mkl_simatcopy` role) and naive
//!   out-of-place,
//! * [`pipt`] — one-task-per-cycle P-IPT.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod gkk;
pub mod mkl_like;
pub mod pipt;
pub mod seq;

pub use gkk::{plan_segments, shift_segmented, transpose_in_place_gkk, transpose_oop_gkk, Segment};
pub use mkl_like::transpose_oop_par;
pub use pipt::transpose_in_place_pipt;
pub use seq::{transpose_in_place_seq, transpose_oop_seq};
