//! Sequential comparators.
//!
//! * [`transpose_in_place_seq`] — single-threaded whole-matrix cycle
//!   following: the role `mkl_simatcopy` plays in Table 3 (< 0.1 GB/s in
//!   the paper; in-place MKL is sequential).
//! * [`transpose_oop_seq`] — naive single-threaded out-of-place copy.

use ipt_core::{Matrix, TransposePerm};

/// Single-threaded in-place transposition by cycle following with
/// Windley-style leader recomputation (zero workspace, superlinear leader
/// walks) — faithfully slow, like `mkl_simatcopy`.
#[must_use]
pub fn transpose_in_place_seq<T: Copy>(matrix: Matrix<T>) -> Matrix<T> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let mut matrix = matrix;
    let perm = TransposePerm::new(rows, cols);
    ipt_core::elementary::cycle_shift_seq_minimal(matrix.as_mut_slice(), &perm, 1);
    matrix.assume_transposed_shape()
}

/// Naive sequential out-of-place transposition (row-major walk of the
/// destination).
#[must_use]
pub fn transpose_oop_seq<T: Copy>(matrix: &Matrix<T>) -> Matrix<T> {
    matrix.transposed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_in_place_correct() {
        for &(r, c) in &[(5, 3), (64, 48), (37, 113), (1, 7), (100, 100)] {
            let m = Matrix::iota(r, c);
            let want = m.transposed();
            assert_eq!(transpose_in_place_seq(m), want, "{r}x{c}");
        }
    }

    #[test]
    fn oop_matches() {
        let m = Matrix::pattern_f32(41, 29);
        assert_eq!(transpose_oop_seq(&m), m.transposed());
    }
}
