//! # ipt-gpu — the paper's GPU kernels on the `gpu-sim` substrate
//!
//! Every kernel from *"In-Place Transposition of Rectangular Matrices on
//! Accelerators"* (PPoPP 2014), functionally executing and verified:
//!
//! * [`bs`] — the Barrier-Sync on-chip tile transposition (Figure 1),
//! * [`pttwac010`] — `010!` cycle following with local-memory flags and the
//!   §5.1 spreading/padding optimisations,
//! * [`pttwac100`] — `100!`-family super-element shifting with global
//!   coordination bits, in Sung/work-group, warp/local-tile and
//!   warp/register-tile variants (§5.2), plus the fused stage of the
//!   4-stage(+fusion) algorithm,
//! * [`pipt`] — the cycle-per-thread P-IPT comparator,
//! * [`oop`] — the out-of-place tiled baseline (Ruetsch/Micikevicius),
//! * [`pipeline`] — plan execution with per-stage kernel selection,
//! * [`explore`] — schedule-exploration race harnesses for the claim
//!   protocols (bounded exhaustive + seeded PCT sweeps),
//! * [`host`] — the §6 virtual in-place transposition (synchronous and
//!   asynchronous with Q command queues),
//! * [`autotune`] — §7.4 exhaustive / pruned tile search,
//! * [`coprime`] — the general-dimension (prime-safe) decomposition the
//!   paper's footnote 6 points at,
//! * [`multi`] — the multi-GPU scheme of the paper's future-work section,
//! * [`serve`] — a batched, plan-cached serving layer over all of the
//!   above (deadline-ordered bounded admission, same-shape coalescing,
//!   multi-device sharding, graceful degradation, warm-start snapshots,
//!   recovery-chain execution),
//! * [`fleet`] — a sharded serving fleet with shape-affinity routing,
//!   failover, and crash/warm-restart support.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod autotune;
pub mod bs;
pub mod c2r;
pub mod coprime;
pub mod explore;
pub mod fleet;
pub mod host;
pub mod multi;
pub mod oop;
pub mod opts;
pub mod pipeline;
pub mod pipt;
pub mod pttwac010;
pub mod pttwac100;
pub mod recover;
pub mod serve;
pub mod stream;

pub use autotune::{
    choose_c2r_wg_rec, exhaustive_search, exhaustive_search_rec, measure_tile, pruned_search,
    pruned_search_rec, TileChoice, TilePoint, TuneLog,
};
pub use bs::BsKernel;
pub use c2r::{c2r_scratch_words, pass_layout, transpose_c2r_on_device, C2rLinePass, C2rPassKind};
pub use coprime::{transpose_coprime_on_device, CoprimeColShuffle, CoprimeRowScramble};
pub use explore::{
    explore_case, pct_sweep, run_race_case, tiny_device, BrokenPttwac010, RaceTarget,
    SweepFailure, SweepOutcome,
};
pub use host::{
    run_host_async, run_host_async_recovering, run_host_oop, run_host_sync,
    run_host_sync_recovering, run_host_sync_recovering_rec, HostReport,
};
pub use multi::{run_multi_gpu, LinkTopology, MultiReport};
pub use oop::OopTranspose;
pub use opts::{ClaimBackoff, FlagLayout, GpuOptions, Variant100};
pub use pipeline::{
    plan_flag_words, run_plan, run_plan_rec, run_stage, run_stage_rec, scale_plan_words,
    select_kernel, transpose_on_device, transpose_on_device_f64, transpose_on_device_rec,
    StageKernel, MAX_CYCLE_SCAN,
};
pub use recover::{
    host_transpose, host_transpose_elems, multiset_checksum, run_plan_validated,
    transpose_scheme_with_recovery, transpose_with_recovery, transpose_with_recovery_elems,
    verify_exact, verify_exact_elems, RecoveryPath, RecoveryPolicy, RecoveryReport,
    StageRetryInfo, TransposeError, VerifyError,
};
pub use fleet::{Fleet, FleetConfig, FleetRound};
pub use serve::{
    build_plan, CachedPlan, DegradeLevel, PlanCache, PlanKey, PreparedRound, PriorityClass,
    RoundReport, ServeConfig, ServeRequest, ServedResult, Server, SnapshotError,
    SNAPSHOT_VERSION,
};
pub use stream::{
    stream_transpose, stream_transpose_rec, ChunkJournal, ChunkRecord, ChunkState, StreamChaos,
    StreamConfig, StreamPath, StreamReport,
};
pub use pipt::PiptKernel;
pub use pttwac010::Pttwac010;
pub use pttwac100::Pttwac100;
