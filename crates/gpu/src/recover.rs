//! Typed errors and verified recovery for the transposition pipeline.
//!
//! In-place transposition is uniquely fragile: the matrix is its own
//! scratch space, so a fault that strikes mid-cycle (a lost coordination
//! bit, an aborted kernel, a corrupted local-memory word) leaves the array
//! in a state that is neither the input nor the output. This module turns
//! that fragility into a contract:
//!
//! * every failure surfaces as a [`TransposeError`] — never a panic,
//! * every successful return is **verified element-exact** against the
//!   definitional permutation,
//! * recovery is layered: per-stage snapshot + multiset-checksum
//!   validation with bounded retry ([`run_plan_validated`]), then a
//!   fallback chain ([`transpose_with_recovery`]) that degrades from the
//!   tuned in-place pipeline through conservative options and an
//!   out-of-place kernel down to a sequential host transposition, which
//!   cannot fail.
//!
//! The per-stage checksum is a *multiset* invariant (wrapping sum + xor of
//! all words): any transposition stage is a permutation, so the multiset
//! of values must be preserved. A dropped or duplicated cycle move
//! overwrites or clones a value and breaks the invariant; a pure
//! misplacement preserves it and is caught by the final exact verify
//! instead. Checksums are cheap relative to a stage (one linear scan) —
//! the price of trusting an unreliable device.

use crate::opts::GpuOptions;
use crate::pipeline::{plan_flag_words, run_stage_rec};
use gpu_sim::{
    Buffer, FaultRecord, LaunchError, PipelineStats, QueueError, Sim,
};
use ipt_obs::{NoopRecorder, Recorder};
use ipt_core::stages::{PlanError, StagePlan};
use ipt_core::TransposePerm;

/// A verification failure: the device's data does not match what the
/// stage (or the full transposition) should have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The stage being validated, or `None` for the final whole-matrix
    /// check.
    pub stage: Option<String>,
    /// Human-readable mismatch description.
    pub detail: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.stage {
            Some(s) => write!(f, "verification failed after stage `{s}`: {}", self.detail),
            None => write!(f, "final verification failed: {}", self.detail),
        }
    }
}

/// Everything that can go wrong across the transposition pipeline, from
/// planning through device execution, transfers and verification.
#[derive(Debug)]
pub enum TransposeError {
    /// A caller-supplied configuration is unusable (zero queues, size
    /// mismatch, wrong plan family, indivisible device count, …).
    InvalidConfig {
        /// What is wrong with the configuration.
        what: String,
    },
    /// The device cannot hold the working set.
    DeviceOom {
        /// Words requested.
        need: usize,
        /// Words available.
        free: usize,
    },
    /// A kernel launch failed (infeasible geometry, or an injected abort).
    Launch(LaunchError),
    /// A liveness watchdog tripped: the kernel stopped making progress
    /// (claim-loop livelock, deadlock, or a lost wakeup) and was killed
    /// instead of spinning forever. Device memory may be mid-transposition;
    /// recovery restores a snapshot before retrying.
    Stalled {
        /// Kernel display name.
        kernel: String,
        /// The lane (global warp index: `wg × warps_per_wg + warp`) that
        /// exceeded its progress budget, or the busiest one on a total-
        /// budget trip.
        lane: usize,
        /// Steps executed when the watchdog fired.
        steps: u64,
    },
    /// Plan construction failed (tile does not divide the matrix).
    Plan(PlanError),
    /// A command-queue transfer failed.
    Transfer(QueueError),
    /// Data validation failed (per-stage checksum or final exact check).
    Verify(VerifyError),
    /// Retries and fallbacks were exhausted without a verified result.
    RecoveryExhausted {
        /// Recovery attempts spent.
        attempts: usize,
        /// The last error observed.
        last: Box<TransposeError>,
    },
    /// The serving layer's bounded admission queue is full: the request was
    /// refused, not silently dropped — the caller should drain and resubmit
    /// no sooner than the hinted delay.
    Backpressure {
        /// Configured queue capacity that was hit.
        capacity: usize,
        /// Typed retry hint: simulated seconds until the server expects to
        /// have drained enough backlog to admit this request (an EWMA of
        /// observed per-request service time times the backlog depth).
        retry_after_s: f64,
    },
    /// The out-of-core chunk journal refused an illegal state transition —
    /// most importantly a second commit of an already-committed chunk,
    /// which would silently duplicate a transfer into the output. The
    /// journal makes that a loud, typed failure instead.
    Journal {
        /// Chunk index the transition was attempted on.
        chunk: usize,
        /// What was illegal about it.
        what: String,
    },
}

impl std::fmt::Display for TransposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransposeError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            TransposeError::DeviceOom { need, free } => {
                write!(f, "device OOM: need {need} words, {free} free")
            }
            TransposeError::Launch(e) => write!(f, "launch failed: {e}"),
            TransposeError::Stalled { kernel, lane, steps } => write!(
                f,
                "kernel `{kernel}` stalled: lane {lane} exceeded its progress budget \
                 after {steps} steps"
            ),
            TransposeError::Plan(e) => write!(f, "planning failed: {e}"),
            TransposeError::Transfer(e) => write!(f, "transfer failed: {e}"),
            TransposeError::Verify(e) => write!(f, "{e}"),
            TransposeError::RecoveryExhausted { attempts, last } => {
                write!(f, "recovery exhausted after {attempts} attempts; last error: {last}")
            }
            TransposeError::Backpressure { capacity, retry_after_s } => {
                write!(
                    f,
                    "admission queue full ({capacity} requests): backpressure, retry \
                     after {:.1} us",
                    retry_after_s * 1e6
                )
            }
            TransposeError::Journal { chunk, what } => {
                write!(f, "chunk journal violation at chunk {chunk}: {what}")
            }
        }
    }
}

impl std::error::Error for TransposeError {}

impl From<LaunchError> for TransposeError {
    fn from(e: LaunchError) -> Self {
        match e {
            LaunchError::Stalled { kernel, lane, steps } => {
                TransposeError::Stalled { kernel, lane, steps }
            }
            e => TransposeError::Launch(e),
        }
    }
}

impl From<PlanError> for TransposeError {
    fn from(e: PlanError) -> Self {
        TransposeError::Plan(e)
    }
}

impl From<QueueError> for TransposeError {
    fn from(e: QueueError) -> Self {
        TransposeError::Transfer(e)
    }
}

impl From<VerifyError> for TransposeError {
    fn from(e: VerifyError) -> Self {
        TransposeError::Verify(e)
    }
}

/// Knobs for the recovery machinery.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Retries per stage (and per whole-scheme attempt in the coarse
    /// asynchronous recovery) before escalating.
    pub max_stage_retries: usize,
    /// Base backoff charged per retry, doubled each attempt (seconds on
    /// the simulated timeline — models driver reset + resubmission).
    pub retry_backoff_s: f64,
    /// Allow degrading through the fallback chain when retries fail. When
    /// `false`, the first unrecovered error is returned as-is.
    pub allow_fallback: bool,
    /// Campaign seed for retry-backoff jitter. `0` (the default) keeps the
    /// historic pure-exponential backoff; any other value adds a
    /// deterministic jitter factor derived from `(seed, attempt)` so a
    /// whole chaos campaign's retry timing is reproducible from one
    /// top-level seed.
    pub seed: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { max_stage_retries: 2, retry_backoff_s: 1e-4, allow_fallback: true, seed: 0 }
    }
}

impl RecoveryPolicy {
    /// `self` with the retry-jitter seed set (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Backoff charged for retry number `attempt` (0-based): exponential,
    /// times a seeded jitter factor in `[1, 2)` when a seed is set.
    #[must_use]
    pub fn backoff_s(&self, attempt: usize) -> f64 {
        let base = self.retry_backoff_s * (1u64 << attempt.min(20)) as f64;
        if self.seed == 0 {
            return base;
        }
        let h = gpu_sim::sched::mix64(self.seed, attempt as u64);
        base * (1.0 + (h >> 11) as f64 / (1u64 << 53) as f64)
    }
}

/// Which execution path ultimately produced the verified result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPath {
    /// The requested pipeline with the requested options.
    Primary,
    /// The requested pipeline re-run with [`GpuOptions::baseline_for`]
    /// (packed flags, Sung work-group 100!) — slower, fewer moving parts.
    ConservativeOptions,
    /// The out-of-place device kernel (needs 2× device memory).
    OutOfPlace,
    /// A sequential transposition on the host — the path of last resort,
    /// which cannot fail.
    HostSequential,
}

impl std::fmt::Display for RecoveryPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RecoveryPath::Primary => "primary",
            RecoveryPath::ConservativeOptions => "conservative-options",
            RecoveryPath::OutOfPlace => "out-of-place",
            RecoveryPath::HostSequential => "host-sequential",
        };
        f.write_str(s)
    }
}

/// What the recovery machinery did to produce a verified result.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The path that produced the verified result.
    pub path: RecoveryPath,
    /// Stage-granular retries spent (snapshot restore + re-execution).
    pub stage_retries: usize,
    /// Transfer resubmissions in the command-queue timeline.
    pub transfer_retries: usize,
    /// Whole-scheme retries (the asynchronous host scheme recovers at
    /// this coarser granularity).
    pub scheme_retries: usize,
    /// Injected faults that fired, in order.
    pub faults: Vec<FaultRecord>,
    /// Extra simulated seconds charged to recovery (failed-attempt kernel
    /// time + backoff).
    pub penalty_s: f64,
    /// Why the primary path was abandoned, when it was.
    pub primary_error: Option<String>,
}

impl RecoveryReport {
    /// An empty report for `path` (no retries, no faults).
    #[must_use]
    pub fn new(path: RecoveryPath) -> Self {
        Self {
            path,
            stage_retries: 0,
            transfer_retries: 0,
            scheme_retries: 0,
            faults: Vec::new(),
            penalty_s: 0.0,
            primary_error: None,
        }
    }

    /// Did execution deviate from the fault-free happy path at all?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.path == RecoveryPath::Primary
            && self.stage_retries == 0
            && self.transfer_retries == 0
            && self.scheme_retries == 0
            && self.faults.is_empty()
    }

    /// Emit this report into a [`Recorder`](ipt_obs::Recorder): retry
    /// counters under the `recovery` scope, one instant event per injected
    /// fault that fired, and the penalty/path as gauges. `ts_us` places the
    /// fault events on the recorder's global clock.
    pub fn record<R: ipt_obs::Recorder>(&self, rec: &R, ts_us: f64) {
        if !rec.enabled() {
            return;
        }
        use ipt_obs::Counter;
        rec.add("recovery", Counter::FaultsInjected, self.faults.len() as u64);
        rec.add("recovery", Counter::StageRetries, self.stage_retries as u64);
        rec.add("recovery", Counter::TransferRetries, self.transfer_retries as u64);
        rec.add("recovery", Counter::SchemeRetries, self.scheme_retries as u64);
        rec.gauge("recovery", "penalty_s", self.penalty_s);
        for f in &self.faults {
            rec.event(ts_us, "fault", &format!("{:?} at {}: {}", f.kind, f.site, f.detail));
        }
        if let Some(e) = &self.primary_error {
            rec.event(ts_us, "primary_path_abandoned", e);
        }
    }

    /// [`RecoveryReport::record`] with causal provenance: every emitted
    /// event detail is prefixed with the request's trace id, so recovery
    /// incidents in a serving trace can be joined back to the request
    /// that suffered them.
    pub fn record_traced<R: ipt_obs::Recorder>(&self, rec: &R, ts_us: f64, trace_id: u64) {
        if !rec.enabled() {
            return;
        }
        use ipt_obs::Counter;
        rec.add("recovery", Counter::FaultsInjected, self.faults.len() as u64);
        rec.add("recovery", Counter::StageRetries, self.stage_retries as u64);
        rec.add("recovery", Counter::TransferRetries, self.transfer_retries as u64);
        rec.add("recovery", Counter::SchemeRetries, self.scheme_retries as u64);
        rec.gauge("recovery", "penalty_s", self.penalty_s);
        for f in &self.faults {
            rec.event(
                ts_us,
                "fault",
                &format!("trace {trace_id:016x}: {:?} at {}: {}", f.kind, f.site, f.detail),
            );
        }
        if let Some(e) = &self.primary_error {
            rec.event(
                ts_us,
                "primary_path_abandoned",
                &format!("trace {trace_id:016x}: {e}"),
            );
        }
    }
}

/// Order-independent multiset checksum: wrapping sum + xor of all words.
/// Invariant under any permutation (every transposition stage is one);
/// broken by overwrites, duplications and corruptions of values.
#[must_use]
pub fn multiset_checksum(words: &[u32]) -> (u64, u64) {
    let mut sum = 0u64;
    let mut xor = 0u64;
    for &w in words {
        sum = sum.wrapping_add(u64::from(w).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        xor ^= u64::from(w) ^ 0xa076_1d64_78bd_642f_u64.rotate_left(w % 63);
    }
    (sum, xor)
}

/// Exact element check of `result` against the transposition of `src`.
///
/// # Errors
/// [`VerifyError`] naming the first mismatching offset.
pub fn verify_exact(
    src: &[u32],
    result: &[u32],
    rows: usize,
    cols: usize,
) -> Result<(), VerifyError> {
    verify_exact_elems(src, result, rows, cols, 1)
}

/// [`verify_exact`] for super-elements of `elem_words` 32-bit words each
/// (e.g. 2 for `f64`): the permutation acts on element indices, each
/// element's words travel together.
///
/// # Errors
/// [`VerifyError`] naming the first mismatching element.
pub fn verify_exact_elems(
    src: &[u32],
    result: &[u32],
    rows: usize,
    cols: usize,
    elem_words: usize,
) -> Result<(), VerifyError> {
    let perm = TransposePerm::new(rows, cols);
    for (k, chunk) in src.chunks_exact(elem_words).enumerate() {
        let d = perm.dest(k);
        let got = &result[d * elem_words..(d + 1) * elem_words];
        if got != chunk {
            return Err(VerifyError {
                stage: None,
                detail: format!(
                    "source element {k} should land at {d} with words {chunk:?}, found {got:?}"
                ),
            });
        }
    }
    Ok(())
}

/// Sequential host transposition — the reference path of last resort.
#[must_use]
pub fn host_transpose(src: &[u32], rows: usize, cols: usize) -> Vec<u32> {
    host_transpose_elems(src, rows, cols, 1)
}

/// [`host_transpose`] for super-elements of `elem_words` words each.
#[must_use]
pub fn host_transpose_elems(
    src: &[u32],
    rows: usize,
    cols: usize,
    elem_words: usize,
) -> Vec<u32> {
    let perm = TransposePerm::new(rows, cols);
    let mut out = vec![0u32; src.len()];
    for (k, chunk) in src.chunks_exact(elem_words).enumerate() {
        let d = perm.dest(k);
        out[d * elem_words..(d + 1) * elem_words].copy_from_slice(chunk);
    }
    out
}

/// Outcome of the validated per-stage execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageRetryInfo {
    /// Retries spent across all stages.
    pub stage_retries: usize,
    /// Simulated seconds charged to failed attempts and backoff.
    pub penalty_s: f64,
}

/// Execute `plan` stage by stage with snapshot/validate/retry recovery.
///
/// Before each stage the data buffer is snapshotted to the host and its
/// multiset checksum recorded; after the stage the checksum must be
/// unchanged (a stage is a permutation). On a checksum break or an
/// injected kernel abort the snapshot is restored and the stage retried
/// (bounded by [`RecoveryPolicy::max_stage_retries`], with exponential
/// backoff charged to the penalty). Deterministic launch failures
/// (infeasible geometry) are returned immediately — re-running cannot
/// change them.
///
/// # Errors
/// [`TransposeError::RecoveryExhausted`] when retries run out;
/// [`TransposeError::Launch`] for deterministic launch failures.
pub fn run_plan_validated(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    plan: &StagePlan,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
) -> Result<(PipelineStats, StageRetryInfo), TransposeError> {
    run_plan_validated_rec(sim, data, flags, plan, opts, policy, &NoopRecorder, 0.0)
}

/// [`run_plan_validated`] instrumented with a [`Recorder`]: successful
/// stage attempts emit kernel-launch and stage spans on the cumulative
/// DES clock starting at `t0_s` (via
/// [`run_stage_rec`](crate::pipeline::run_stage_rec)), so a serving-layer
/// trace context pushed around this call captures genuine device-level
/// child spans. With [`NoopRecorder`] this is exactly
/// [`run_plan_validated`].
///
/// # Errors
/// Same contract as [`run_plan_validated`].
#[allow(clippy::too_many_arguments)]
pub fn run_plan_validated_rec<R: Recorder>(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    plan: &StagePlan,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
    rec: &R,
    t0_s: f64,
) -> Result<(PipelineStats, StageRetryInfo), TransposeError> {
    let mut out = PipelineStats::default();
    let mut info = StageRetryInfo::default();
    for stage in &plan.stages {
        let snapshot = sim.download_u32(data);
        let want = multiset_checksum(&snapshot);
        let mut attempt = 0usize;
        loop {
            let stages_before = out.stages.len();
            let overhead_before = out.overhead_s;
            let start_s = t0_s + out.time_s();
            let failure: TransposeError =
                match run_stage_rec(sim, data, flags, stage, opts, &mut out, rec, start_s) {
                Ok(()) => {
                    let after = sim.download_u32(data);
                    if multiset_checksum(&after) == want {
                        break; // stage verified; next stage
                    }
                    TransposeError::Verify(VerifyError {
                        stage: Some(stage.describe.clone()),
                        detail: "multiset checksum changed across a permutation stage \
                                 (value overwritten, duplicated or corrupted)"
                            .into(),
                    })
                }
                Err(e @ (LaunchError::Aborted { .. } | LaunchError::Stalled { .. })) => e.into(),
                // Deterministic launch failures: no retry can change them.
                Err(e) => return Err(e.into()),
            };
            // Roll back: drop the failed attempt's stats (charging its
            // time as penalty) and restore the pre-stage snapshot.
            info.penalty_s += out.stages[stages_before..].iter().map(|s| s.time_s).sum::<f64>()
                + (out.overhead_s - overhead_before);
            out.stages.truncate(stages_before);
            out.overhead_s = overhead_before;
            sim.upload_u32(data, &snapshot);
            if attempt >= policy.max_stage_retries {
                return Err(TransposeError::RecoveryExhausted {
                    attempts: attempt + 1,
                    last: Box::new(failure),
                });
            }
            info.penalty_s += policy.backoff_s(attempt);
            info.stage_retries += 1;
            attempt += 1;
        }
    }
    Ok((out, info))
}

/// Full in-place transposition with verification and a fallback chain.
///
/// The primary attempt runs [`run_plan_validated`] with the requested
/// options and finishes with an element-exact check against the
/// definitional permutation. If anything fails and the policy allows
/// fallback, execution degrades in order:
///
/// 1. **conservative options** — the same plan re-run from the restored
///    input with [`GpuOptions::baseline_for`],
/// 2. **out-of-place** — the OOP kernel, if 2× memory is available,
/// 3. **host sequential** — always correct.
///
/// On success `host_data` holds the (verified) transposed matrix and the
/// report says which path delivered it; the device data buffer holds the
/// same verified result on every path.
///
/// # Errors
/// [`TransposeError`] when fallback is disallowed or the configuration is
/// unusable. With fallback enabled the function only fails on config
/// errors — the host-sequential tail cannot fail.
pub fn transpose_with_recovery(
    sim: &mut Sim,
    host_data: &mut Vec<u32>,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
) -> Result<(PipelineStats, RecoveryReport), TransposeError> {
    transpose_with_recovery_elems(sim, host_data, rows, cols, 1, plan, opts, policy)
}

/// [`transpose_with_recovery`] for super-elements of `elem_words` 32-bit
/// words each (2 for `f64`): `plan` is element-granular and is scaled with
/// [`crate::pipeline::scale_plan_words`] before execution; validation and
/// verification act on whole elements. The out-of-place kernel fallback is
/// word-granular, so for `elem_words > 1` the chain skips straight from
/// conservative options to the host path.
///
/// # Errors
/// Same contract as [`transpose_with_recovery`].
#[allow(clippy::too_many_arguments)]
pub fn transpose_with_recovery_elems(
    sim: &mut Sim,
    host_data: &mut Vec<u32>,
    rows: usize,
    cols: usize,
    elem_words: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
) -> Result<(PipelineStats, RecoveryReport), TransposeError> {
    transpose_with_recovery_elems_rec(
        sim,
        host_data,
        rows,
        cols,
        elem_words,
        plan,
        opts,
        policy,
        &NoopRecorder,
        0.0,
    )
}

/// [`transpose_with_recovery_elems`] instrumented with a [`Recorder`]:
/// the validated primary and conservative attempts emit device-level
/// spans on the cumulative DES clock starting at `t0_s`. With
/// [`NoopRecorder`] this is exactly [`transpose_with_recovery_elems`].
///
/// # Errors
/// Same contract as [`transpose_with_recovery`].
#[allow(clippy::too_many_arguments)]
pub fn transpose_with_recovery_elems_rec<R: Recorder>(
    sim: &mut Sim,
    host_data: &mut Vec<u32>,
    rows: usize,
    cols: usize,
    elem_words: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
    rec: &R,
    t0_s: f64,
) -> Result<(PipelineStats, RecoveryReport), TransposeError> {
    if elem_words == 0 {
        return Err(TransposeError::InvalidConfig { what: "elem_words must be ≥ 1".into() });
    }
    let Some(words_total) = ipt_core::check::checked_bytes(rows, cols, elem_words)
        .and_then(|w| usize::try_from(w).ok())
    else {
        return Err(TransposeError::InvalidConfig {
            what: format!("{rows}×{cols}×{elem_words} words overflows the address space"),
        });
    };
    if host_data.len() != words_total {
        return Err(TransposeError::InvalidConfig {
            what: format!(
                "host data has {} words but the matrix is {rows}×{cols} elements of \
                 {elem_words} words = {words_total} words",
                host_data.len(),
            ),
        });
    }
    if plan.rows != rows || plan.cols != cols {
        return Err(TransposeError::InvalidConfig {
            what: format!(
                "plan `{}` was built for {}×{}, not {rows}×{cols}",
                plan.name, plan.rows, plan.cols
            ),
        });
    }
    let scaled;
    let plan = if elem_words == 1 {
        plan
    } else {
        scaled = crate::pipeline::scale_plan_words(plan, elem_words);
        &scaled
    };
    let words = words_total;
    let flag_words = plan_flag_words(plan).max(1);
    let data = sim.try_alloc(words).ok_or(TransposeError::DeviceOom {
        need: words,
        free: sim.free_words(),
    })?;
    let flags = sim.try_alloc(flag_words).ok_or(TransposeError::DeviceOom {
        need: flag_words,
        free: sim.free_words(),
    })?;
    let original = host_data.clone();
    sim.upload_u32(data, &original);

    let mut report = RecoveryReport::new(RecoveryPath::Primary);
    let mut record_outcome =
        |report: &mut RecoveryReport, sim: &Sim, stats: PipelineStats, result: Vec<u32>| {
            report.faults = sim.fault_records();
            *host_data = result;
            (stats, report.clone())
        };

    // Primary: requested options, per-stage validation, final exact check.
    let primary = run_plan_validated_rec(sim, data, flags, plan, opts, policy, rec, t0_s).and_then(
        |(stats, info)| {
            let result = sim.download_u32(data);
            verify_exact_elems(&original, &result, rows, cols, elem_words)?;
            Ok((stats, info, result))
        },
    );
    match primary {
        Ok((stats, info, result)) => {
            report.stage_retries = info.stage_retries;
            report.penalty_s = info.penalty_s;
            return Ok(record_outcome(&mut report, sim, stats, result));
        }
        Err(e) => {
            if !policy.allow_fallback {
                return Err(e);
            }
            report.primary_error = Some(e.to_string());
        }
    }

    // Fallback 1: conservative options from a restored input. The retry
    // budget resets — this is a fresh, simpler execution.
    sim.upload_u32(data, &original);
    report.path = RecoveryPath::ConservativeOptions;
    let conservative = GpuOptions::baseline_for(sim.device());
    if let Ok((stats, info, result)) =
        run_plan_validated_rec(sim, data, flags, plan, &conservative, policy, rec, t0_s)
            .and_then(|(stats, info)| {
            let result = sim.download_u32(data);
            verify_exact_elems(&original, &result, rows, cols, elem_words)?;
            Ok((stats, info, result))
        })
    {
        report.stage_retries += info.stage_retries;
        report.penalty_s += info.penalty_s;
        return Ok(record_outcome(&mut report, sim, stats, result));
    }

    // Fallback 2: out-of-place kernel, if the device can hold a second
    // copy. Allocation failure is not an error here — just the signal to
    // keep degrading. The kernel moves single words, so it only applies to
    // word-sized elements.
    sim.upload_u32(data, &original);
    report.path = RecoveryPath::OutOfPlace;
    if elem_words == 1 {
        if let Some(dst) = sim.try_alloc(words) {
            let oop = crate::oop::OopTranspose { src: data, dst, rows, cols };
            if let Ok(stats) = sim.launch(&oop) {
                let result = sim.download_u32(dst);
                if verify_exact(&original, &result, rows, cols).is_ok() {
                    sim.upload_u32(data, &result);
                    let pipeline = PipelineStats { stages: vec![stats], overhead_s: 0.0 };
                    return Ok(record_outcome(&mut report, sim, pipeline, result));
                }
            }
        }
    }

    // Fallback 3: sequential host transposition — cannot fail.
    report.path = RecoveryPath::HostSequential;
    let result = host_transpose_elems(&original, rows, cols, elem_words);
    sim.upload_u32(data, &result);
    Ok(record_outcome(&mut report, sim, PipelineStats::default(), result))
}

/// Execute a typed [`PlanDecision`](ipt_core::PlanDecision) with the full
/// recovery contract — the single entry point the serving layer uses, so
/// **every** scheme (including the degenerate and prime-shape
/// short-circuits) flows through verified recovery:
///
/// * [`Scheme::Identity`](ipt_core::Scheme): row/column vectors are their
///   own transpose in memory — the data is returned unchanged with a clean
///   report (nothing to verify, nothing can fail),
/// * [`Scheme::Coprime`](ipt_core::Scheme): the two-phase device kernels
///   with an element-exact check; on failure (e.g. a row/column too long
///   for local memory) the chain degrades to the out-of-place kernel and
///   then the host path,
/// * every staged scheme (`staged`, `gcd-tiled`, `square-tiled`,
///   `single-stage`): [`transpose_with_recovery_elems`] on the decision's
///   plan.
///
/// `elem_words` is the element size in 32-bit words (1 for `f32`/`u32`,
/// 2 for `f64`). Coprime device kernels are word-granular, so wide
/// elements on a coprime shape go straight to the (verified) host path.
///
/// # Errors
/// [`TransposeError`] on configuration errors, or any pipeline error when
/// `policy.allow_fallback` is off.
#[allow(clippy::too_many_arguments)]
pub fn transpose_scheme_with_recovery(
    sim: &mut Sim,
    host_data: &mut Vec<u32>,
    rows: usize,
    cols: usize,
    elem_words: usize,
    decision: &ipt_core::PlanDecision,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
) -> Result<(PipelineStats, RecoveryReport), TransposeError> {
    transpose_scheme_with_recovery_rec(
        sim,
        host_data,
        rows,
        cols,
        elem_words,
        decision,
        opts,
        policy,
        &NoopRecorder,
        0.0,
    )
}

/// [`transpose_scheme_with_recovery`] instrumented with a [`Recorder`]:
/// staged-family schemes thread the recorder through validated recovery,
/// so kernel-launch spans land inside any ambient trace context the
/// serving layer pushed (coprime/identity short-circuits stay
/// span-silent; their outcome is still visible in the returned report).
/// With [`NoopRecorder`] this is exactly
/// [`transpose_scheme_with_recovery`].
///
/// # Errors
/// Same contract as [`transpose_scheme_with_recovery`].
#[allow(clippy::too_many_arguments)]
pub fn transpose_scheme_with_recovery_rec<R: Recorder>(
    sim: &mut Sim,
    host_data: &mut Vec<u32>,
    rows: usize,
    cols: usize,
    elem_words: usize,
    decision: &ipt_core::PlanDecision,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
    rec: &R,
    t0_s: f64,
) -> Result<(PipelineStats, RecoveryReport), TransposeError> {
    use ipt_core::Scheme;
    if elem_words == 0 {
        return Err(TransposeError::InvalidConfig { what: "elem_words must be ≥ 1".into() });
    }
    let Some(words) = ipt_core::check::checked_bytes(rows, cols, elem_words)
        .and_then(|w| usize::try_from(w).ok())
    else {
        return Err(TransposeError::InvalidConfig {
            what: format!("{rows}×{cols}×{elem_words} words overflows the address space"),
        });
    };
    if host_data.len() != words {
        return Err(TransposeError::InvalidConfig {
            what: format!(
                "host data has {} words but the matrix needs {words} ({rows}×{cols} elements \
                 of {elem_words} words)",
                host_data.len(),
            ),
        });
    }

    match decision.scheme {
        // Degenerate short-circuit: a 1×n or m×1 matrix transposes to
        // itself in linear storage. No device work, no failure modes.
        Scheme::Identity => Ok((PipelineStats::default(), RecoveryReport::new(RecoveryPath::Primary))),

        Scheme::Coprime => {
            if !ipt_core::coprime::is_coprime_shape(rows, cols) {
                return Err(TransposeError::InvalidConfig {
                    what: format!(
                        "decision says coprime but gcd({rows}, {cols}) ≠ 1 — stale decision?"
                    ),
                });
            }
            let mut report = RecoveryReport::new(RecoveryPath::Primary);
            let original = host_data.clone();
            // Word-sized elements: the two-phase device kernels.
            if elem_words == 1 {
                let data = sim.try_alloc(words).ok_or(TransposeError::DeviceOom {
                    need: words,
                    free: sim.free_words(),
                })?;
                sim.upload_u32(data, &original);
                let attempt = crate::coprime::transpose_coprime_on_device(
                    sim,
                    data,
                    rows,
                    cols,
                    opts.wg_size,
                )
                .map_err(TransposeError::from)
                .and_then(|stats| {
                    let result = sim.download_u32(data);
                    verify_exact(&original, &result, rows, cols)?;
                    Ok((stats, result))
                });
                match attempt {
                    Ok((stats, result)) => {
                        report.faults = sim.fault_records();
                        *host_data = result;
                        return Ok((stats, report));
                    }
                    Err(e) => {
                        if !policy.allow_fallback {
                            return Err(e);
                        }
                        report.primary_error = Some(e.to_string());
                    }
                }
                // Out-of-place fallback, if a second copy fits.
                sim.upload_u32(data, &original);
                report.path = RecoveryPath::OutOfPlace;
                if let Some(dst) = sim.try_alloc(words) {
                    let oop = crate::oop::OopTranspose { src: data, dst, rows, cols };
                    if let Ok(stats) = sim.launch(&oop) {
                        let result = sim.download_u32(dst);
                        if verify_exact(&original, &result, rows, cols).is_ok() {
                            sim.upload_u32(data, &result);
                            report.faults = sim.fault_records();
                            *host_data = result;
                            return Ok((
                                PipelineStats { stages: vec![stats], overhead_s: 0.0 },
                                report,
                            ));
                        }
                    }
                }
            } else {
                if !policy.allow_fallback {
                    return Err(TransposeError::InvalidConfig {
                        what: format!(
                            "coprime device kernels are word-granular; {elem_words}-word \
                             elements need the host fallback, which the policy disallows"
                        ),
                    });
                }
                report.primary_error = Some(
                    "coprime device kernels are word-granular; wide elements served by the \
                     host path"
                        .into(),
                );
            }
            // Host tail — cannot fail.
            report.path = RecoveryPath::HostSequential;
            report.faults = sim.fault_records();
            *host_data = host_transpose_elems(&original, rows, cols, elem_words);
            Ok((PipelineStats::default(), report))
        }

        // C2R/R2C decomposition: total over every shape (no coprimality
        // guard to go stale), so the chain is device kernels → out-of-place
        // retry → host tail, same shape as the coprime arm it supersedes.
        Scheme::C2R => {
            let mut report = RecoveryReport::new(RecoveryPath::Primary);
            let original = host_data.clone();
            if elem_words == 1 {
                let data = sim.try_alloc(words).ok_or(TransposeError::DeviceOom {
                    need: words,
                    free: sim.free_words(),
                })?;
                sim.upload_u32(data, &original);
                let attempt =
                    crate::c2r::transpose_c2r_on_device(sim, data, rows, cols, opts.wg_size)
                        .map_err(TransposeError::from)
                        .and_then(|stats| {
                            let result = sim.download_u32(data);
                            verify_exact(&original, &result, rows, cols)?;
                            Ok((stats, result))
                        });
                match attempt {
                    Ok((stats, result)) => {
                        report.faults = sim.fault_records();
                        *host_data = result;
                        return Ok((stats, report));
                    }
                    Err(e) => {
                        if !policy.allow_fallback {
                            return Err(e);
                        }
                        report.primary_error = Some(e.to_string());
                    }
                }
                // Out-of-place fallback, if a second copy fits.
                sim.upload_u32(data, &original);
                report.path = RecoveryPath::OutOfPlace;
                if let Some(dst) = sim.try_alloc(words) {
                    let oop = crate::oop::OopTranspose { src: data, dst, rows, cols };
                    if let Ok(stats) = sim.launch(&oop) {
                        let result = sim.download_u32(dst);
                        if verify_exact(&original, &result, rows, cols).is_ok() {
                            sim.upload_u32(data, &result);
                            report.faults = sim.fault_records();
                            *host_data = result;
                            return Ok((
                                PipelineStats { stages: vec![stats], overhead_s: 0.0 },
                                report,
                            ));
                        }
                    }
                }
            } else {
                if !policy.allow_fallback {
                    return Err(TransposeError::InvalidConfig {
                        what: format!(
                            "c2r device kernels are word-granular; {elem_words}-word elements \
                             need the host fallback, which the policy disallows"
                        ),
                    });
                }
                report.primary_error = Some(
                    "c2r device kernels are word-granular; wide elements served by the host \
                     path"
                        .into(),
                );
            }
            // Host tail — cannot fail.
            report.path = RecoveryPath::HostSequential;
            report.faults = sim.fault_records();
            *host_data = host_transpose_elems(&original, rows, cols, elem_words);
            Ok((PipelineStats::default(), report))
        }

        // Staged family: square-tiled, heuristic staged, gcd-tiled and the
        // conservative single-stage all execute as (possibly degenerate)
        // stage plans under the standard validated-recovery chain.
        Scheme::SquareTiled | Scheme::Staged | Scheme::GcdTiled | Scheme::SingleStage => {
            let plan = decision
                .staged_plan(rows, cols)
                .expect("staged-family schemes always yield a plan");
            transpose_with_recovery_elems_rec(
                sim, host_data, rows, cols, elem_words, &plan, opts, policy, rec, t0_s,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, FaultKind, FaultPlan};
    use ipt_core::stages::TileConfig;
    use ipt_core::Matrix;

    fn plan_72x60() -> StagePlan {
        StagePlan::three_stage(72, 60, TileConfig::new(12, 10)).unwrap()
    }

    fn sim_for(plan: &StagePlan, extra: usize) -> Sim {
        Sim::new(
            DeviceSpec::tesla_k20(),
            plan.rows * plan.cols + plan_flag_words(plan).max(1) + extra,
        )
    }

    #[test]
    fn clean_run_takes_primary_path() {
        let plan = plan_72x60();
        let mut sim = sim_for(&plan, 64);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(72, 60).into_vec();
        let want = Matrix::iota(72, 60).transposed().into_vec();
        let (stats, report) = transpose_with_recovery(
            &mut sim,
            &mut data,
            72,
            60,
            &plan,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want);
        assert!(report.clean(), "{report:?}");
        assert_eq!(stats.stages.len(), 3);
    }

    #[test]
    fn size_mismatch_is_invalid_config() {
        let plan = plan_72x60();
        let mut sim = sim_for(&plan, 64);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = vec![0u32; 10];
        let err = transpose_with_recovery(
            &mut sim,
            &mut data,
            72,
            60,
            &plan,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransposeError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn wrong_plan_shape_is_invalid_config() {
        let plan = plan_72x60();
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 48 * 90 + 4096);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(48, 90).into_vec();
        let err = transpose_with_recovery(
            &mut sim,
            &mut data,
            48,
            90,
            &plan,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransposeError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn oom_is_typed() {
        let plan = plan_72x60();
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 16);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(72, 60).into_vec();
        let err = transpose_with_recovery(
            &mut sim,
            &mut data,
            72,
            60,
            &plan,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransposeError::DeviceOom { .. }), "{err}");
    }

    #[test]
    fn kernel_abort_recovers_by_stage_retry() {
        let plan = plan_72x60();
        let mut sim = sim_for(&plan, 64);
        // Abort the kernel early: the stage snapshot is restored and the
        // stage retried; the fault is single-shot so the retry is clean.
        sim.set_fault_plan(FaultPlan::exact(7, FaultKind::AbortKernel, 5, 0));
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(72, 60).into_vec();
        let want = Matrix::iota(72, 60).transposed().into_vec();
        let (_, report) = transpose_with_recovery(
            &mut sim,
            &mut data,
            72,
            60,
            &plan,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want);
        assert_eq!(report.path, RecoveryPath::Primary);
        assert!(report.stage_retries >= 1, "{report:?}");
        assert!(report.penalty_s > 0.0);
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].kind, FaultKind::AbortKernel);
    }

    #[test]
    fn dropped_global_atomic_recovers() {
        let plan = plan_72x60();
        let mut sim = sim_for(&plan, 64);
        sim.set_fault_plan(FaultPlan::exact(11, FaultKind::DropGlobalAtomic, 3, 0));
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(72, 60).into_vec();
        let want = Matrix::iota(72, 60).transposed().into_vec();
        let (_, report) = transpose_with_recovery(
            &mut sim,
            &mut data,
            72,
            60,
            &plan,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want);
        // A dropped claim corrupts data (caught by checksum → stage retry)
        // or goes unnoticed if the double-claim happened to be benign.
        assert!(report.faults.len() <= 1);
    }

    #[test]
    fn no_fallback_policy_surfaces_the_error() {
        let plan = plan_72x60();
        let mut sim = sim_for(&plan, 64);
        // Keep aborting: trigger 1 fires almost immediately; with retries
        // at 0 the primary path dies and fallback is disallowed.
        sim.set_fault_plan(FaultPlan::exact(3, FaultKind::AbortKernel, 1, 0));
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(72, 60).into_vec();
        let policy =
            RecoveryPolicy { max_stage_retries: 0, retry_backoff_s: 1e-4, allow_fallback: false, seed: 0 };
        let err =
            transpose_with_recovery(&mut sim, &mut data, 72, 60, &plan, &opts, &policy)
                .unwrap_err();
        assert!(matches!(err, TransposeError::RecoveryExhausted { .. }), "{err}");
    }

    #[test]
    fn exhausted_retries_fall_back_and_still_verify() {
        let plan = plan_72x60();
        let mut sim = sim_for(&plan, 64);
        sim.set_fault_plan(FaultPlan::exact(3, FaultKind::AbortKernel, 1, 0));
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(72, 60).into_vec();
        let want = Matrix::iota(72, 60).transposed().into_vec();
        // Zero retries: the abort exhausts the primary path instantly, but
        // the fault is consumed, so the conservative re-run succeeds.
        let policy =
            RecoveryPolicy { max_stage_retries: 0, retry_backoff_s: 1e-4, allow_fallback: true, seed: 0 };
        let (_, report) =
            transpose_with_recovery(&mut sim, &mut data, 72, 60, &plan, &opts, &policy)
                .unwrap();
        assert_eq!(data, want);
        assert_eq!(report.path, RecoveryPath::ConservativeOptions);
        assert!(report.primary_error.is_some());
    }

    #[test]
    fn multiset_checksum_properties() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [5u32, 4, 3, 2, 1]; // permutation → equal
        let c = [1u32, 2, 3, 4, 4]; // overwrite → different
        assert_eq!(multiset_checksum(&a), multiset_checksum(&b));
        assert_ne!(multiset_checksum(&a), multiset_checksum(&c));
        // A swap of two values is invisible to the multiset (by design —
        // that is the final exact check's job).
        let d = [2u32, 1, 3, 4, 5];
        assert_eq!(multiset_checksum(&a), multiset_checksum(&d));
    }

    #[test]
    fn seeded_backoff_is_jittered_and_reproducible() {
        let p0 = RecoveryPolicy::default();
        let p1 = RecoveryPolicy::default().with_seed(42);
        let p2 = RecoveryPolicy::default().with_seed(42);
        let p3 = RecoveryPolicy::default().with_seed(43);
        // Seed 0: historic pure exponential.
        assert_eq!(p0.backoff_s(0), 1e-4);
        assert_eq!(p0.backoff_s(3), 8e-4);
        for attempt in 0..8 {
            let base = p0.backoff_s(attempt);
            let j = p1.backoff_s(attempt);
            assert!(j >= base && j < 2.0 * base, "attempt {attempt}: {j} vs base {base}");
            assert_eq!(j, p2.backoff_s(attempt), "same seed must reproduce");
        }
        assert_ne!(p1.backoff_s(1), p3.backoff_s(1), "different seeds should differ");
    }

    #[test]
    fn host_transpose_is_exact() {
        let src = Matrix::iota(7, 13).into_vec();
        let out = host_transpose(&src, 7, 13);
        assert_eq!(out, Matrix::iota(7, 13).transposed().into_vec());
        verify_exact(&src, &out, 7, 13).unwrap();
    }

    #[test]
    fn elems_host_transpose_moves_whole_elements() {
        // 3×5 of 2-word elements: words [2k, 2k+1] must travel together.
        let src: Vec<u32> = (0..30).collect();
        let out = host_transpose_elems(&src, 3, 5, 2);
        let perm = TransposePerm::new(3, 5);
        for k in 0..15 {
            let d = perm.dest(k);
            assert_eq!(out[2 * d], src[2 * k]);
            assert_eq!(out[2 * d + 1], src[2 * k + 1]);
        }
        verify_exact_elems(&src, &out, 3, 5, 2).unwrap();
        // A torn element (words swapped) must fail element verification.
        let mut torn = out.clone();
        torn.swap(0, 1);
        assert!(verify_exact_elems(&src, &torn, 3, 5, 2).is_err());
    }

    fn decide(rows: usize, cols: usize) -> ipt_core::PlanDecision {
        ipt_core::decide_scheme(rows, cols, &ipt_core::TileHeuristic::default())
    }

    #[test]
    fn scheme_recovery_identity_short_circuits() {
        let d = decide(1, 513);
        assert_eq!(d.scheme, ipt_core::Scheme::Identity);
        // A deliberately tiny device: the identity path must not need it.
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 4);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(1, 513).into_vec();
        let want = data.clone();
        let (stats, report) = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            1,
            513,
            1,
            &d,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want, "1×n transposes to itself in storage");
        assert!(report.clean(), "{report:?}");
        assert!(stats.stages.is_empty(), "no kernels ran");
    }

    #[test]
    fn scheme_recovery_c2r_runs_on_device() {
        // The planner routes prime shapes to the C2R decomposition now.
        let (r, c) = (127, 61);
        let d = decide(r, c);
        assert_eq!(d.scheme, ipt_core::Scheme::C2R);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 2 * r * c + 64);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(r, c).into_vec();
        let want = Matrix::iota(r, c).transposed().into_vec();
        let (stats, report) = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            r,
            c,
            1,
            &d,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want);
        assert_eq!(report.path, RecoveryPath::Primary);
        assert_eq!(stats.stages.len(), 2, "gcd = 1: row shuffle + column shuffle");
    }

    #[test]
    fn scheme_recovery_c2r_handles_nontrivial_gcd_on_device() {
        // 122×183 has gcd 61, so the rotate pass is live: three stages.
        let (r, c) = (122, 183);
        let d = ipt_core::PlanDecision {
            scheme: ipt_core::Scheme::C2R,
            reason: ipt_core::FallbackReason::NoFeasibleTile { rows: r, cols: c },
            tile: None,
        };
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 2 * r * c + 64);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(r, c).into_vec();
        let want = Matrix::iota(r, c).transposed().into_vec();
        let (stats, report) = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            r,
            c,
            1,
            &d,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want);
        assert_eq!(report.path, RecoveryPath::Primary);
        assert_eq!(stats.stages.len(), 3, "gcd > 1: rotate + row shuffle + column shuffle");
    }

    #[test]
    fn scheme_recovery_explicit_coprime_still_runs() {
        // The planner no longer emits Coprime, but a hand-picked decision
        // stays a valid executable scheme.
        let (r, c) = (127, 61);
        let d = ipt_core::PlanDecision {
            scheme: ipt_core::Scheme::Coprime,
            reason: ipt_core::FallbackReason::NoFeasibleTile { rows: r, cols: c },
            tile: None,
        };
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 2 * r * c + 64);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(r, c).into_vec();
        let want = Matrix::iota(r, c).transposed().into_vec();
        let (stats, report) = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            r,
            c,
            1,
            &d,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want);
        assert_eq!(report.path, RecoveryPath::Primary);
        assert_eq!(stats.stages.len(), 2, "row scramble + column shuffle");
    }

    #[test]
    fn scheme_recovery_c2r_wide_elements_use_verified_host_path() {
        let (r, c) = (127, 61);
        let d = decide(r, c);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 2 * 2 * r * c + 64);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data: Vec<u32> = (0..2 * r * c).map(|x| x as u32) .collect();
        let original = data.clone();
        let (_, report) = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            r,
            c,
            2,
            &d,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, host_transpose_elems(&original, r, c, 2));
        assert_eq!(report.path, RecoveryPath::HostSequential);
        assert!(report.primary_error.is_some(), "fallback is recorded, never silent");
    }

    #[test]
    fn scheme_recovery_prime_square_degrades_to_single_stage_plan() {
        // 61 is prime and 61² exceeds the tile budget → square-tiled scheme
        // with no tile, executed as a verified single-stage plan.
        let d = decide(61, 61);
        assert_eq!(d.scheme, ipt_core::Scheme::SquareTiled);
        assert_eq!(d.tile, None);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 4 * 61 * 61 + 16_384);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(61, 61).into_vec();
        let want = Matrix::iota(61, 61).transposed().into_vec();
        let (_, report) = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            61,
            61,
            1,
            &d,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, want);
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn wide_element_staged_recovery_verifies() {
        let plan = plan_72x60();
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 4 * 72 * 60 + 32_768);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data: Vec<u32> = (0..2 * 72 * 60).map(|x| (x * 7 + 3) as u32).collect();
        let original = data.clone();
        let (_, report) = transpose_with_recovery_elems(
            &mut sim,
            &mut data,
            72,
            60,
            2,
            &plan,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(data, host_transpose_elems(&original, 72, 60, 2));
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn scheme_recovery_stale_coprime_decision_is_typed() {
        use ipt_core::{FallbackReason, PlanDecision, Scheme};
        // A hand-forged decision that lies about coprimality must be a
        // typed error, not a panic.
        let bogus = PlanDecision {
            scheme: Scheme::Coprime,
            reason: FallbackReason::NoFeasibleTile { rows: 64, cols: 48 },
            tile: None,
        };
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), 64 * 48 + 64);
        let opts = GpuOptions::tuned_for(sim.device());
        let mut data = Matrix::iota(64, 48).into_vec();
        let err = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            64,
            48,
            1,
            &bogus,
            &opts,
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransposeError::InvalidConfig { .. }), "{err}");
    }
}
