//! PTTWAC `100!` (SoA→ASTA) — super-element cycle following with global
//! coordination bits (§5.2 of the paper).
//!
//! The array is viewed as `instances × rows × cols × super_size`; within
//! each instance, contiguous super-elements of `super_size` words are
//! shifted along the cycles of Eq. (1). Coordination is one bit per
//! super-element in a *global* flags buffer (the ≈0.1 % memory overhead the
//! paper quotes), claimed with global `atom_or`.
//!
//! Three implementations:
//!
//! * [`Variant100::SungWorkGroup`] — the original: a work-group of exactly
//!   `m` work-items per chain. Small `m` → catastrophic occupancy (8 WGs ×
//!   m threads per SM); `m` above the SIMD width → a barrier around every
//!   move; `m > 256` is infeasible on AMD.
//! * [`Variant100::WarpLocalTile`] — §5.2.1: one SIMD unit per chain,
//!   carried/backup super-elements staged in local memory (2·m words per
//!   warp).
//! * [`Variant100::WarpRegTile`] — §5.2.1: carried data held in lane
//!   registers when `m` divides or is a multiple of the SIMD width
//!   (+16 %/+23 % over local tiling in the paper).
//!
//! With `fuse_tile = Some((ti, tj))` the kernel additionally transposes each
//! super-element internally while moving it — the fused stage-2+3 of the
//! 4-stage algorithm (Table 2's "+fusion" column). Outer fixed points are
//! then transposed in place.
//!
//! With `super_size == 1`, `instances == 1` this kernel degenerates into the
//! whole-matrix single-stage transposition (the ≈1.5 GB/s baseline of §4.1).

use crate::opts::{ClaimBackoff, Variant100};
use gpu_sim::{Buffer, ControlCtx, Coordination, Grid, Kernel, LaneAddrs, LaneWrites, Step, WarpCtx};
use ipt_core::TransposePerm;

/// PTTWAC 100!-family kernel.
#[derive(Debug, Clone)]
pub struct Pttwac100 {
    /// The array (all instances, contiguous).
    pub data: Buffer,
    /// Global flags: one bit per super-element over all instances
    /// (`ceil(instances·rows·cols / 32)` words, zeroed before launch).
    pub flags: Buffer,
    /// Independent instances.
    pub instances: usize,
    /// Super-element grid rows.
    pub rows: usize,
    /// Super-element grid cols.
    pub cols: usize,
    /// Words per super-element (`m` in the paper's §5.2 discussion).
    pub super_size: usize,
    /// Implementation variant (must already be resolved, not `Auto`).
    pub variant: Variant100,
    /// Work-group size for the warp-based variants.
    pub wg_size: usize,
    /// Transpose each super-element as a `(rows, cols)` tile while moving
    /// it (fused 0010!+1000!). Requires `ti · tj == super_size`.
    pub fuse_tile: Option<(usize, usize)>,
    /// Optional claim-retry backoff: after losing the atomic claim on a
    /// chain, the warp sits out a capped-exponential, seeded-jitter number
    /// of slices before acquiring new work. `None` = historic behaviour.
    pub backoff: Option<ClaimBackoff>,
}

impl Pttwac100 {
    /// Super-elements per instance.
    #[must_use]
    pub fn supers_per_instance(&self) -> usize {
        self.rows * self.cols
    }

    /// Total super-elements.
    #[must_use]
    pub fn total_supers(&self) -> usize {
        self.instances * self.supers_per_instance()
    }

    /// Flag words needed for this operation.
    #[must_use]
    pub fn flag_words(total_supers: usize) -> usize {
        total_supers.div_ceil(32)
    }

    fn effective_wg_size(&self) -> usize {
        match self.variant {
            Variant100::SungWorkGroup => self.super_size,
            _ => self.wg_size,
        }
    }

}

/// Per-warp state.
pub struct P100State {
    /// Next start super-element index (global over instances) to examine.
    next_start: usize,
    /// Stride between starts for this chain-driver.
    stride: usize,
    /// Currently carried super-element's position (global super index).
    pos: usize,
    /// Mid-chain?
    active: bool,
    /// Carried super-element payload (functional; cost modelled via memory
    /// ops). Sized `super_size`.
    carried: Vec<u32>,
    /// Scratch for the displaced super-element (reused across moves).
    backup: Vec<u32>,
    /// True for warps that only assist (Sung variant warps > 0).
    assist_only: bool,
    exhausted: bool,
    /// Consecutive lost atomic claims (backoff exponent).
    losses: u32,
    /// Scheduling slices left to sit out before acquiring again.
    cooldown: u32,
}

impl Kernel for Pttwac100 {
    type State = P100State;

    fn name(&self) -> String {
        format!(
            "PTTWAC100 {}x{}x{}x{} {:?}{}",
            self.instances,
            self.rows,
            self.cols,
            self.super_size,
            self.variant,
            if self.fuse_tile.is_some() { " fused" } else { "" }
        )
    }

    fn grid(&self) -> Grid {
        match self.variant {
            Variant100::SungWorkGroup => {
                // One work-group per potential chain start, like the
                // original: N×M′ work-groups of m work-items. Grid-strided
                // so huge launches stay bounded.
                let wgs = self.total_supers().clamp(1, 16 * 1024);
                Grid { num_wgs: wgs, wg_size: self.effective_wg_size() }
            }
            _ => {
                // One SIMD unit per chain start (grid-strided only past the
                // launch cap), like the real kernel's flat thread space.
                let warps_wanted = self.total_supers().max(1);
                let warps_per_wg = self.wg_size.div_ceil(32);
                let wgs = warps_wanted.div_ceil(warps_per_wg).clamp(1, 8192);
                Grid { num_wgs: wgs, wg_size: self.wg_size }
            }
        }
    }

    // Chains are claimed through `atom_or` flags in *global* memory — but
    // that is the *only* cross-work-group state: every super-element is
    // moved exactly once (by its unique claim winner), chain-start reads
    // are flag-guarded, and control flow depends on global memory only
    // through the claim outcomes. That is precisely the
    // deterministically-mergeable contract, so the parallel engine may run
    // this kernel through the two-phase control replay (`control_step`
    // below is the cost-free twin).
    fn coordination(&self) -> Coordination {
        Coordination::CrossWgClaims
    }

    fn regs_per_thread(&self) -> usize {
        match self.variant {
            Variant100::SungWorkGroup => 18,
            Variant100::WarpLocalTile => 22,
            // Register tiling buys speed with register pressure.
            Variant100::WarpRegTile => 22 + 2 * self.super_size.div_ceil(32).min(16),
            Variant100::Auto => 22,
        }
    }

    fn local_mem_words(&self, dev: &gpu_sim::DeviceSpec) -> usize {
        // Fusion always stages the tile transposition in local memory;
        // otherwise only the local-tile variant needs staging buffers
        // (2·super_size words per resident SIMD unit).
        if self.fuse_tile.is_some() || self.variant == Variant100::WarpLocalTile {
            2 * self.super_size * self.wg_size.div_ceil(dev.simd_width)
        } else {
            0
        }
    }

    fn init(&self, wg_id: usize, warp_id: usize) -> P100State {
        let (next_start, stride, assist_only) = match self.variant {
            Variant100::SungWorkGroup => {
                // WG per start; grid-strided by num_wgs; only warp 0 drives.
                (wg_id, self.grid().num_wgs, warp_id != 0)
            }
            // Warp variants: start/stride depend on the device's SIMD
            // width; computed lazily on the first step (stride == 0 marks
            // "not yet initialised").
            _ => (0, 0, false),
        };
        P100State {
            next_start,
            stride,
            pos: 0,
            active: false,
            carried: vec![0; self.super_size],
            backup: vec![0; self.super_size],
            assist_only,
            exhausted: false,
            losses: 0,
            cooldown: 0,
        }
    }

    fn step(&self, st: &mut P100State, ctx: &mut WarpCtx<'_>) -> Step {
        if st.assist_only {
            // Sung-variant helper warps: their data movement is modelled in
            // warp 0's accounting; they only consume occupancy.
            return Step::Done;
        }
        if st.stride == 0 {
            // Lazy start/stride for the warp variants: one SIMD unit per
            // start, strided by the engine's actual warp geometry.
            let warps_per_wg = ctx.wg_size.div_ceil(ctx.device().simd_width);
            st.next_start = ctx.wg_id * warps_per_wg + ctx.warp_id;
            st.stride = ctx.num_wgs * warps_per_wg;
        }
        let spi = self.supers_per_instance();
        let perm = TransposePerm::new(self.rows, self.cols);
        let multi_warp_wg =
            self.variant == Variant100::SungWorkGroup && self.effective_wg_size() > ctx.device().simd_width;

        if !st.active {
            if st.cooldown > 0 {
                // Backing off after a lost claim: sit this slice out.
                st.cooldown -= 1;
                return Step::Continue;
            }
            // Acquire a chain start.
            let Some(start) = next_nonfixed_start(st, &perm, spi, self.total_supers()) else {
                return if st.exhausted { Step::Done } else { Step::Continue };
            };
            // Check the start's flag (one-lane global read of the flag
            // word, routed through the claim op so the parallel engine can
            // replay the outcome).
            let taken = ctx.claim_check(self.flags, start);
            ctx.alu(4.0);
            if taken {
                ctx.note_claim_retry();
                return Step::Continue; // already moved by another chain
            }
            // Read the start super-element into the carried buffer.
            read_super(self, ctx, start, &mut st.carried, multi_warp_wg);
            st.pos = start;
            st.active = true;
            return Step::Continue;
        }

        // One chain iteration: claim dest(pos), swap payloads, advance.
        let inst = st.pos / spi;
        let within = st.pos % spi;
        let next = inst * spi + perm.dest(within);
        let won = ctx.claim_acquire(self.flags, next);
        ctx.alu(8.0); // Eq.(1) and flag addressing
        if !won {
            ctx.note_claim_retry();
            st.active = false; // chain owned elsewhere; grab a new start
            if let Some(b) = self.backoff {
                st.losses = st.losses.saturating_add(1);
                st.cooldown = b.cooldown(next, st.losses);
            }
            return Step::Continue;
        }
        st.losses = 0;
        // Swap carried with data[next] (scratch reused across moves).
        let mut backup = std::mem::take(&mut st.backup);
        read_super(self, ctx, next, &mut backup, multi_warp_wg);
        write_super(self, ctx, next, &st.carried, multi_warp_wg);
        st.backup = std::mem::replace(&mut st.carried, backup);
        st.pos = next;
        Step::Continue
    }

    // Cost-free control twin of `step`: the identical claim-op sequence and
    // state transitions, with all data movement, local staging, and cost
    // accounting elided. Any edit to `step`'s control flow must be mirrored
    // here — the engine cross-checks per-warp claim counts and the total
    // step count, so a divergence fails loudly, not silently.
    fn control_step(&self, st: &mut P100State, ctx: &mut ControlCtx<'_>) -> Step {
        if st.assist_only {
            return Step::Done;
        }
        if st.stride == 0 {
            let warps_per_wg = ctx.wg_size.div_ceil(ctx.device().simd_width);
            st.next_start = ctx.wg_id * warps_per_wg + ctx.warp_id;
            st.stride = ctx.num_wgs * warps_per_wg;
        }
        let spi = self.supers_per_instance();
        let perm = TransposePerm::new(self.rows, self.cols);

        if !st.active {
            if st.cooldown > 0 {
                st.cooldown -= 1;
                return Step::Continue;
            }
            let Some(start) = next_nonfixed_start(st, &perm, spi, self.total_supers()) else {
                return if st.exhausted { Step::Done } else { Step::Continue };
            };
            if ctx.claim_check(self.flags, start) {
                return Step::Continue;
            }
            st.pos = start;
            st.active = true;
            return Step::Continue;
        }

        let inst = st.pos / spi;
        let within = st.pos % spi;
        let next = inst * spi + perm.dest(within);
        if !ctx.claim_acquire(self.flags, next) {
            st.active = false;
            if let Some(b) = self.backoff {
                st.losses = st.losses.saturating_add(1);
                st.cooldown = b.cooldown(next, st.losses);
            }
            return Step::Continue;
        }
        st.losses = 0;
        st.pos = next;
        Step::Continue
    }
}

/// Advance `st.next_start` past fixed points; handle fused fixed tiles
/// (which still need internal transposition). Returns the start index or
/// `None` when exhausted / nothing acquired this step.
fn next_nonfixed_start(
    st: &mut P100State,
    perm: &TransposePerm,
    spi: usize,
    total: usize,
) -> Option<usize> {
    loop {
        if st.next_start >= total {
            st.exhausted = true;
            return None;
        }
        let cand = st.next_start;
        st.next_start += st.stride;
        let within = cand % spi;
        if perm.dest(within) != within {
            return Some(cand);
        }
        // Fixed-point super-element: no movement needed; fused internal
        // transposition of fixed tiles is handled by the pipeline via a
        // dedicated BS pass (see pipeline::run_fused_fixed_tiles).
    }
}

/// Read super-element `idx` (global super index) into `buf`, modelling the
/// variant's data path. The chunked loads have independent addresses, so
/// they issue as one MLP-limited batch.
fn read_super(k: &Pttwac100, ctx: &mut WarpCtx<'_>, idx: usize, buf: &mut [u32], multi_warp: bool) {
    let s = k.super_size;
    let base = idx * s;
    let simd = ctx.device().simd_width.min(gpu_sim::MAX_LANES);
    let chunks: Vec<LaneAddrs> = (0..s)
        .step_by(simd)
        .map(|o| {
            let chunk = (s - o).min(simd);
            LaneAddrs::from_fn(chunk, |l| Some(base + o + l))
        })
        .collect();
    let vals = ctx.global_read_batch(k.data, &chunks);
    let stage_local = k.variant == Variant100::WarpLocalTile || k.fuse_tile.is_some();
    for (ci, o) in (0..s).step_by(simd).enumerate() {
        let chunk = (s - o).min(simd);
        if stage_local {
            // Stage through local memory: one write now, one read at
            // write-out time (modelled in write_super).
            let lbase = ctx.warp_id * 2 * s;
            let cap = ctx_local_capacity(ctx);
            let writes =
                LaneWrites::from_fn(chunk, |l| Some(((lbase + o + l) % cap, vals[ci].get(l))));
            ctx.local_write(&writes);
        }
        for l in 0..chunk {
            buf[o + l] = vals[ci].get(l);
        }
        if multi_warp && o + chunk < s {
            // Sung variant with m > SIMD width: the cooperating SIMD units
            // synchronise around the move.
            ctx.barrier_hint();
        }
    }
}

/// Write `buf` into super-element `idx`, applying tile fusion if configured.
///
/// Fusion transposes the tile *in local memory* (scattered local writes,
/// which the bank model prices) so the global write stays coalesced — the
/// same structure as the BS kernel, as in Karlsson's fused stage. The
/// destination word at offset `d` of the transposed `tj × ti` tile comes
/// from source word `(d % ti)·tj + d / ti`.
fn write_super(k: &Pttwac100, ctx: &mut WarpCtx<'_>, idx: usize, buf: &[u32], multi_warp: bool) {
    let s = k.super_size;
    let base = idx * s;
    let simd = ctx.device().simd_width.min(gpu_sim::MAX_LANES);
    let stage_local = k.variant == Variant100::WarpLocalTile || k.fuse_tile.is_some();
    let mut batched: Vec<LaneWrites> = Vec::with_capacity(s.div_ceil(simd));
    let mut o = 0usize;
    while o < s {
        let chunk = (s - o).min(simd);
        if stage_local {
            // Read the carried data back out of the staging buffer; with
            // fusion the read is at the transposed (scattered) offsets.
            let lbase = ctx.warp_id * 2 * s + s;
            let cap = ctx_local_capacity(ctx);
            let addrs = LaneAddrs::from_fn(chunk, |l| {
                let src = match k.fuse_tile {
                    None => o + l,
                    Some((ti, tj)) => {
                        let d = o + l;
                        (d % ti) * tj + d / ti
                    }
                };
                Some((lbase + src) % cap)
            });
            let _ = ctx.local_read(&addrs);
        }
        batched.push(LaneWrites::from_fn(chunk, |l| {
            let d = o + l;
            let src = match k.fuse_tile {
                None => d,
                Some((ti, tj)) => (d % ti) * tj + d / ti,
            };
            Some((base + d, buf[src]))
        }));
        o += chunk;
        if multi_warp && o < s {
            ctx.barrier_hint();
        }
    }
    ctx.global_write_batch(k.data, &batched);
}

/// Local-memory capacity guard for staging-address cost modelling (the
/// functional payload travels in `buf`, so only the *pattern* matters).
fn ctx_local_capacity(ctx: &WarpCtx<'_>) -> usize {
    ctx.local_capacity().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Sim};
    use ipt_core::elementary::{FusedTileTranspose, IndexPerm};
    use ipt_core::InstancedTranspose;

    #[allow(clippy::too_many_arguments)]
    fn run(
        dev: DeviceSpec,
        instances: usize,
        rows: usize,
        cols: usize,
        super_size: usize,
        variant: Variant100,
        wg_size: usize,
        fuse: Option<(usize, usize)>,
    ) -> (Vec<u32>, gpu_sim::KernelStats) {
        let total = instances * rows * cols * super_size;
        let flag_words = Pttwac100::flag_words(instances * rows * cols);
        let mut sim = Sim::new(dev, total + flag_words + 8);
        let data = sim.alloc(total);
        let flags = sim.alloc(flag_words);
        let v: Vec<u32> = (0..total as u32).collect();
        sim.upload_u32(data, &v);
        sim.zero(flags);
        let k = Pttwac100 {
            data,
            flags,
            instances,
            rows,
            cols,
            super_size,
            variant: variant.resolve(super_size, sim.device().simd_width),
            wg_size,
            fuse_tile: fuse,
            backoff: None,
        };
        let stats = sim.launch(&k).expect("feasible");
        (sim.download_u32(data), stats)
    }

    fn expected(instances: usize, rows: usize, cols: usize, super_size: usize) -> Vec<u32> {
        let op = InstancedTranspose::new(instances, rows, cols, super_size);
        let mut want: Vec<u32> = (0..op.total_len() as u32).collect();
        op.apply_seq(&mut want);
        want
    }

    #[test]
    fn all_variants_transpose_correctly() {
        for variant in [
            Variant100::SungWorkGroup,
            Variant100::WarpLocalTile,
            Variant100::WarpRegTile,
        ] {
            for &(i, r, c, s) in &[
                (1usize, 5usize, 3usize, 4usize),
                (1, 16, 9, 32),
                (3, 7, 5, 16),
                (1, 48, 25, 8),
                (2, 10, 4, 64),
            ] {
                let (got, _) = run(DeviceSpec::tesla_k20(), i, r, c, s, variant, 256, None);
                assert_eq!(got, expected(i, r, c, s), "{variant:?} {i}x{r}x{c}x{s}");
            }
        }
    }

    #[test]
    fn backoff_keeps_results_correct() {
        let total = 3 * 7 * 5 * 16;
        let flag_words = Pttwac100::flag_words(3 * 7 * 5);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), total + flag_words + 8);
        let data = sim.alloc(total);
        let flags = sim.alloc(flag_words);
        let v: Vec<u32> = (0..total as u32).collect();
        sim.upload_u32(data, &v);
        sim.zero(flags);
        let k = Pttwac100 {
            data,
            flags,
            instances: 3,
            rows: 7,
            cols: 5,
            super_size: 16,
            variant: Variant100::WarpLocalTile,
            wg_size: 256,
            fuse_tile: None,
            backoff: Some(ClaimBackoff::mild(13)),
        };
        sim.launch(&k).expect("feasible");
        assert_eq!(sim.download_u32(data), expected(3, 7, 5, 16));
    }

    #[test]
    fn ragged_super_sizes_local_tile() {
        // m neither multiple nor divisor of 32 → local tiling path.
        for &(i, r, c, s) in &[(1usize, 12usize, 7usize, 23usize), (2, 6, 9, 72), (1, 8, 8, 33)] {
            let (got, _) =
                run(DeviceSpec::tesla_k20(), i, r, c, s, Variant100::WarpLocalTile, 256, None);
            assert_eq!(got, expected(i, r, c, s), "{i}x{r}x{c}x{s}");
        }
    }

    #[test]
    fn scalar_degenerate_is_single_stage_transpose() {
        // super=1, instances=1 → whole-matrix in-place transposition.
        let (got, _) =
            run(DeviceSpec::tesla_k20(), 1, 48, 31, 1, Variant100::WarpLocalTile, 256, None);
        assert_eq!(got, expected(1, 48, 31, 1));
    }

    #[test]
    fn works_on_amd() {
        let (got, _) = run(DeviceSpec::hd7750(), 1, 24, 11, 48, Variant100::WarpLocalTile, 256, None);
        assert_eq!(got, expected(1, 24, 11, 48));
    }

    #[test]
    fn sung_variant_occupancy_is_poor_for_small_m() {
        // §5.2 item 1: m = 32 → 8 WGs of 1 warp each on Fermi = 16 %.
        let (_, stats) = run(DeviceSpec::gtx580(), 1, 32, 25, 32, Variant100::SungWorkGroup, 0, None);
        assert!(stats.occupancy.occupancy < 0.2, "occ {}", stats.occupancy.occupancy);
        let (_, warp) = run(DeviceSpec::gtx580(), 1, 32, 25, 32, Variant100::WarpRegTile, 192, None);
        assert!(warp.occupancy.occupancy > 0.5, "occ {}", warp.occupancy.occupancy);
    }

    #[test]
    fn warp_variant_faster_than_sung() {
        // §7.2's headline: 2-4× speedup on NVIDIA.
        let (_, sung) = run(DeviceSpec::tesla_k20(), 1, 64, 25, 40, Variant100::SungWorkGroup, 0, None);
        let (_, warp) =
            run(DeviceSpec::tesla_k20(), 1, 64, 25, 40, Variant100::WarpLocalTile, 256, None);
        assert!(
            warp.time_s < sung.time_s,
            "warp {} vs sung {}",
            warp.time_s,
            sung.time_s
        );
    }

    #[test]
    fn register_tiling_beats_local_tiling_when_legal() {
        let (_, local) = run(DeviceSpec::tesla_k20(), 1, 64, 25, 64, Variant100::WarpLocalTile, 256, None);
        let (_, reg) = run(DeviceSpec::tesla_k20(), 1, 64, 25, 64, Variant100::WarpRegTile, 256, None);
        assert!(reg.time_s < local.time_s, "reg {} vs local {}", reg.time_s, local.time_s);
    }

    #[test]
    fn bigger_supers_yield_higher_throughput() {
        // §7.3: 100!-family throughput is dominated by tile size
        // (12.5 → 69 GB/s going 8 → 64 on K20).
        let mut prev = 0.0f64;
        for s in [8usize, 16, 32, 64] {
            let (rows, cols) = (64, 25);
            let bytes = (rows * cols * s * 4) as f64;
            let (_, stats) =
                run(DeviceSpec::tesla_k20(), 1, rows, cols, s, Variant100::Auto, 256, None);
            let gbps = stats.throughput_gbps(bytes);
            assert!(gbps > prev, "super={s}: {gbps} !> {prev}");
            prev = gbps;
        }
    }

    #[test]
    fn fused_move_transposes_tiles() {
        // fuse_tile on a 1000!-shaped op must equal the FusedTileTranspose
        // reference (0010! + 1000!) — note the kernel moves m·n-word supers
        // over the (M′,N′) grid while transposing each m×n tile.
        let (mp, np, m, n) = (5usize, 4usize, 3usize, 6usize);
        let fused_ref = FusedTileTranspose::new(mp, np, m, n);
        let mut want: Vec<u32> = (0..fused_ref.len() as u32).collect();
        fused_ref.apply_seq(&mut want);

        let (got, _) = run(
            DeviceSpec::tesla_k20(),
            1,
            mp,
            np,
            m * n,
            Variant100::WarpLocalTile,
            256,
            Some((m, n)),
        );
        // The kernel does not transpose outer fixed tiles (pipeline handles
        // them); patch them in the expectation for this unit test.
        let perm = TransposePerm::new(mp, np);
        let orig: Vec<u32> = (0..fused_ref.len() as u32).collect();
        let mut want_kernel = want.clone();
        for t in 0..mp * np {
            if perm.dest(t) == t {
                let base = t * m * n;
                want_kernel[base..base + m * n].copy_from_slice(&orig[base..base + m * n]);
            }
        }
        assert_eq!(got, want_kernel);
    }
}
