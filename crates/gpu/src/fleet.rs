//! Sharded serving fleet over [`crate::serve::Server`].
//!
//! A [`Fleet`] runs several shards — independent [`Server`]s over the same
//! simulated device model — and routes every request by **shape affinity**:
//! rendezvous (highest-random-weight) hashing of the request's plan-cache
//! shape key picks a stable preferred shard, so each shape's autotuned plan
//! is built (and cached) on exactly one shard instead of being re-tuned
//! everywhere. When the preferred shard is unhealthy the request fails over
//! to the highest-weight healthy shard (counted as `shard_failovers`);
//! rendezvous hashing guarantees only the crashed shard's shapes move.
//!
//! Rounds run fleet-wide: every healthy shard drains its backlog
//! ([`Server::prepare_round`]), the combined launches go through one
//! multi-shard DES call ([`gpu_sim::try_simulate_shards_at`] — shards own
//! independent engine blocks, so per-shard timing is unchanged), and the
//! fleet makespan is the latest shard completion.
//!
//! Crash and warm restart are first-class: [`Fleet::crash_shard`] hands
//! back the victim's warm-start snapshot and its undrained requests (the
//! caller resubmits them — they fail over automatically), and
//! [`Fleet::restart_shard`] brings the shard back from a snapshot, cold if
//! the snapshot is rejected. The shards configured by
//! [`FleetConfig::new`] enable the overload degradation ladder
//! (`degrade_at` 0.75, `shed_at` 0.9), so a fleet sheds service quality
//! before it sheds requests.

use crate::recover::TransposeError;
use crate::serve::{
    trace_id, DegradeLevel, RoundReport, ServeConfig, ServeRequest, Server, SnapshotError,
    ROOT_SPAN, ROUTE_SPAN,
};
use gpu_sim::sched::mix64;
use gpu_sim::{try_simulate_shards_at, DeviceSpec, ShardLoad, Timeline};
use ipt_obs::{
    Alert, Counter, Level, Recorder, SloClass, SpanCtx, Telemetry, TelemetryConfig,
};

/// Fleet configuration: shard count plus the per-shard serving config.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (independent servers).
    pub shards: usize,
    /// Per-shard serving configuration.
    pub serve: ServeConfig,
    /// SLO windowing and burn-rate alert rules.
    pub telemetry: TelemetryConfig,
    /// Per-priority-class error budgets (tolerated bad-outcome fraction),
    /// indexed by [`crate::serve::PriorityClass::index`]:
    /// `[interactive, batch, background]`.
    pub class_budgets: [f64; 3],
}

impl FleetConfig {
    /// Fleet defaults for `dev`: three shards with the overload ladder
    /// armed — degrade past 75% of admission capacity, shed past 90% —
    /// and burn-rate alerting over 250 µs SLO windows with budgets
    /// tightening with priority (0.1% interactive, 2% batch,
    /// 5% background).
    #[must_use]
    pub fn new(dev: &DeviceSpec) -> Self {
        let mut serve = ServeConfig::new(dev);
        serve.degrade_at = 0.75;
        serve.shed_at = 0.9;
        Self {
            shards: 3,
            serve,
            telemetry: TelemetryConfig::fleet_default(),
            class_budgets: [0.001, 0.02, 0.05],
        }
    }
}

/// One fleet round: every healthy shard's drained round plus the
/// fleet-wide makespan and any SLO alerts that fired.
#[derive(Debug)]
pub struct FleetRound {
    /// `(shard index, round report)` per processed shard.
    pub rounds: Vec<(usize, RoundReport)>,
    /// Latest shard completion this round, simulated seconds.
    pub makespan_s: f64,
    /// Burn-rate alerts that fired on this round's telemetry tick.
    pub alerts: Vec<Alert>,
}

impl FleetRound {
    /// Total results across all shards this round.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.iter().map(|(_, r)| r.results.len()).sum()
    }

    /// True when no shard served anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Shard {
    server: Server,
    healthy: bool,
}

/// A sharded serving fleet with shape-affinity routing, failover,
/// crash/warm-restart support, and fleet-wide SLO telemetry.
pub struct Fleet {
    dev: DeviceSpec,
    cfg: FleetConfig,
    shards: Vec<Shard>,
    /// Fleet clock: simulated seconds across processed rounds (advanced
    /// by the round makespan — shards run concurrently).
    clock_s: f64,
    /// Windowed per-class SLO tracking and burn-rate alerting.
    telemetry: Telemetry,
    /// Pre-built per-shard latency scopes (`"shard:0"`, ...), so the hot
    /// path never formats.
    shard_scopes: Vec<String>,
}

impl Fleet {
    /// New fleet of `cfg.shards` healthy shards over `dev`.
    ///
    /// # Panics
    /// When `cfg.shards` is zero.
    #[must_use]
    pub fn new(dev: DeviceSpec, cfg: FleetConfig) -> Self {
        assert!(cfg.shards > 0, "a fleet needs at least one shard");
        let shards: Vec<Shard> = (0..cfg.shards)
            .map(|_| Shard {
                server: Server::new(dev.clone(), cfg.serve.clone()),
                healthy: true,
            })
            .collect();
        let classes = vec![
            SloClass::new("interactive", cfg.class_budgets[0]),
            SloClass::new("batch", cfg.class_budgets[1]),
            SloClass::new("background", cfg.class_budgets[2]),
        ];
        let telemetry = Telemetry::new(cfg.telemetry.clone(), classes);
        let shard_scopes = (0..cfg.shards).map(|s| format!("shard:{s}")).collect();
        Self { dev, cfg, shards, clock_s: 0.0, telemetry, shard_scopes }
    }

    /// Fleet clock: simulated seconds of fleet-wide service so far.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// The fleet's SLO telemetry: per-class window series and the alerts
    /// fired so far.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Shard count.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Is shard `s` healthy (routable)?
    #[must_use]
    pub fn is_healthy(&self, s: usize) -> bool {
        self.shards[s].healthy
    }

    /// Borrow shard `s`'s server (cache and backlog inspection).
    #[must_use]
    pub fn shard(&self, s: usize) -> &Server {
        &self.shards[s].server
    }

    /// Total pending requests across shards.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.shards.iter().map(|s| s.server.backlog()).sum()
    }

    /// Aggregate plan-cache hit rate across shards, in `[0, 1]`.
    #[must_use]
    pub fn aggregate_hit_rate(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for s in &self.shards {
            h += s.server.cache().hits();
            m += s.server.cache().misses();
        }
        if h + m == 0 { 0.0 } else { h as f64 / (h + m) as f64 }
    }

    /// Rendezvous weight of shape `(rows, cols, elem_bytes)` on shard `s`.
    fn weight(rows: usize, cols: usize, elem_bytes: usize, s: usize) -> u64 {
        let shape = mix64(rows as u64, (cols as u64) ^ ((elem_bytes as u64) << 48));
        mix64(shape, 0x5EED ^ s as u64)
    }

    /// The shard a shape prefers, ignoring health. Stable under shard
    /// crashes: a shape's preference never depends on who is up.
    #[must_use]
    pub fn preferred_shard(&self, rows: usize, cols: usize, elem_bytes: usize) -> usize {
        (0..self.shards.len())
            .max_by_key(|&s| Self::weight(rows, cols, elem_bytes, s))
            .expect("fleet has at least one shard")
    }

    /// Route a shape: the preferred shard when healthy, else the
    /// highest-weight healthy shard (a failover), else `None`. The flag
    /// reports whether the pick was a failover.
    fn route<R: Recorder>(
        &self,
        rows: usize,
        cols: usize,
        elem_bytes: usize,
        rec: &R,
    ) -> Option<(usize, bool)> {
        let preferred = self.preferred_shard(rows, cols, elem_bytes);
        if self.shards[preferred].healthy {
            return Some((preferred, false));
        }
        let fallback = (0..self.shards.len())
            .filter(|&s| self.shards[s].healthy)
            .max_by_key(|&s| Self::weight(rows, cols, elem_bytes, s))?;
        rec.add("fleet", Counter::ShardFailovers, 1);
        Some((fallback, true))
    }

    /// Admit one request on its affinity shard, returning the shard index
    /// it landed on.
    ///
    /// # Errors
    ///
    /// [`TransposeError::Backpressure`] when no shard is healthy
    /// (`capacity: 0`) or the target shard's admission queue is full;
    /// [`TransposeError::InvalidConfig`] for malformed requests.
    pub fn submit<R: Recorder>(
        &mut self,
        req: ServeRequest,
        rec: &R,
    ) -> Result<usize, TransposeError> {
        let Some((s, failed_over)) = self.route(req.rows, req.cols, req.elem_bytes, rec) else {
            rec.add("fleet", Counter::AdmissionRejections, 1);
            return Err(TransposeError::Backpressure {
                capacity: 0,
                retry_after_s: self.dev.queue_create_overhead_s.max(1e-6),
            });
        };
        let id = req.id;
        let track = Level::Request.base_track() + req.priority.index() as u32;
        self.shards[s].server.submit(req, rec)?;
        if rec.enabled() {
            // Routing decision span: an instant child of the request's
            // (future) root span, stamped at the admitting shard's clock.
            let ctx = SpanCtx {
                trace_id: trace_id(id),
                span_id: ROUTE_SPAN,
                parent_span_id: ROOT_SPAN,
            };
            rec.span_ctx(
                ctx,
                Level::Request,
                "route",
                self.shards[s].server.clock_s() * 1e6,
                0.0,
                track,
                &[("shard", s as f64), ("failed_over", f64::from(failed_over))],
            );
        }
        Ok(s)
    }

    /// Run one fleet-wide round: drain every healthy shard, simulate all
    /// launches in one multi-shard DES call, and finish each shard's round
    /// with its own timeline.
    ///
    /// # Errors
    /// See [`Server::prepare_round`]; a malformed DES schedule propagates
    /// as [`TransposeError::Transfer`].
    pub fn process_rounds<R: Recorder>(
        &mut self,
        rec: &R,
    ) -> Result<FleetRound, TransposeError> {
        let num_engines = self.cfg.serve.link.num_engines(self.cfg.serve.devices);
        let setup_s = self.dev.queue_create_overhead_s;
        let mut prepared = Vec::new();
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if shard.healthy {
                prepared.push((s, shard.server.prepare_round(rec)?));
            }
        }
        let loads: Vec<ShardLoad<'_>> = prepared
            .iter()
            .map(|(_, p)| ShardLoad { queues: p.queues(), arrivals: p.arrivals() })
            .collect();
        let fleet_tl = try_simulate_shards_at(num_engines, setup_s, &loads)?;
        let makespan_s = if loads.iter().all(|l| l.queues.is_empty()) {
            0.0
        } else {
            fleet_tl.makespan_s
        };
        let mut rounds = Vec::with_capacity(prepared.len());
        for ((s, p), tl) in prepared.into_iter().zip(fleet_tl.shards) {
            let tl = if p.is_launchless() {
                Timeline { spans: Vec::new(), total_s: 0.0, setup_s: 0.0 }
            } else {
                tl
            };
            rounds.push((s, self.shards[s].server.finish_round(p, tl, rec)));
        }

        // Fleet SLO telemetry: every result is one good/bad outcome for
        // its priority class, placed on the fleet clock at completion. A
        // bad outcome is a shed request or an end-to-end latency past the
        // class's deadline budget. The tick lands at the clock of the
        // last recorded outcome (not the window boundary past it), so the
        // short burn window always sees the outcomes it gates on.
        let round_start = self.clock_s;
        let mut t_last = round_start;
        for (s, round) in &rounds {
            let scope = self.shard_scopes[*s].as_str();
            for res in &round.results {
                let e2e_s = res.queue_wait_s + res.service_s;
                let bad = res.degrade == DegradeLevel::HostShed
                    || e2e_s > res.priority.deadline_budget_s();
                let at_s = round_start + e2e_s;
                t_last = t_last.max(at_s);
                self.telemetry.record(res.priority.index(), at_s, !bad);
                if bad {
                    rec.add("fleet", Counter::SloViolations, 1);
                }
                rec.latency(scope, "e2e_us", e2e_s * 1e6, Some(trace_id(res.id)));
            }
        }
        self.clock_s += makespan_s;
        let alerts = self.telemetry.tick(t_last);
        if !alerts.is_empty() {
            rec.add("fleet", Counter::AlertsRaised, alerts.len() as u64);
            for a in &alerts {
                rec.event(
                    a.at_s * 1e6,
                    "slo_alert",
                    &format!(
                        "rule {} class {}: burn {:.2} long / {:.2} short",
                        a.rule, a.class, a.burn_long, a.burn_short
                    ),
                );
            }
        }
        Ok(FleetRound { rounds, makespan_s, alerts })
    }

    /// Crash shard `s`: mark it unhealthy and hand back its warm-start
    /// snapshot plus every request it had admitted but not served. The
    /// caller resubmits the unfinished requests — routing fails them over
    /// to healthy shards.
    pub fn crash_shard<R: Recorder>(
        &mut self,
        s: usize,
        rec: &R,
    ) -> (String, Vec<ServeRequest>) {
        let shard = &mut self.shards[s];
        shard.healthy = false;
        let snapshot = shard.server.snapshot_json();
        let unfinished = shard.server.drain_pending();
        rec.event(
            shard.server.clock_s() * 1e6,
            "shard_crash",
            &format!("shard {s} down, {} requests orphaned", unfinished.len()),
        );
        (snapshot, unfinished)
    }

    /// Restart shard `s` from a warm-start snapshot: a fresh server,
    /// warmed with the snapshot's plans, marked healthy. A rejected
    /// snapshot is discarded — the shard still restarts, cold — and the
    /// rejection is returned.
    ///
    /// # Errors
    /// [`SnapshotError`] when the snapshot was rejected (the shard is
    /// healthy but cold).
    pub fn restart_shard<R: Recorder>(
        &mut self,
        s: usize,
        snapshot: &str,
        rec: &R,
    ) -> Result<usize, SnapshotError> {
        let mut server = Server::new(self.dev.clone(), self.cfg.serve.clone());
        let restored = server.restore_snapshot(snapshot, rec);
        self.shards[s] = Shard { server, healthy: true };
        rec.event(
            0.0,
            "shard_restart",
            &format!(
                "shard {s} restarted ({})",
                match &restored {
                    Ok(n) => format!("{n} plans warm"),
                    Err(e) => format!("cold: {e}"),
                }
            ),
        );
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::PriorityClass;
    use ipt_obs::{NoopRecorder, TraceRecorder};

    fn req(id: u64, rows: usize, cols: usize) -> ServeRequest {
        let data: Vec<u32> = (0..(rows * cols) as u32).map(|x| x.wrapping_mul(2654435761)).collect();
        ServeRequest { id, rows, cols, elem_bytes: 4, priority: PriorityClass::Batch, data }
    }

    fn fleet() -> Fleet {
        let dev = DeviceSpec::tesla_k20();
        let cfg = FleetConfig::new(&dev);
        Fleet::new(dev, cfg)
    }

    #[test]
    fn routing_is_shape_stable_and_spreads() {
        let mut f = fleet();
        let rec = NoopRecorder;
        let shapes = [(72, 60), (96, 72), (60, 60), (47, 47), (127, 61), (251, 13)];
        let mut used = std::collections::HashSet::new();
        for (i, (r, c)) in shapes.iter().enumerate() {
            let first = f.submit(req(i as u64, *r, *c), &rec).unwrap();
            let second = f.submit(req(100 + i as u64, *r, *c), &rec).unwrap();
            assert_eq!(first, second, "same shape must route to the same shard");
            assert_eq!(first, f.preferred_shard(*r, *c, 4));
            used.insert(first);
        }
        assert!(used.len() >= 2, "six shapes should spread past one shard: {used:?}");
        let round = f.process_rounds(&rec).unwrap();
        assert_eq!(round.len(), 2 * shapes.len());
        assert!(round.makespan_s > 0.0);
        // Makespan is the max of per-shard round times.
        let max_shard = round
            .rounds
            .iter()
            .map(|(_, r)| r.sim_total_s)
            .fold(0.0f64, f64::max);
        assert!((round.makespan_s - max_shard).abs() < 1e-12);
    }

    #[test]
    fn unhealthy_shard_fails_over_and_counts() {
        let mut f = fleet();
        let rec = TraceRecorder::new();
        let (r, c) = (72, 60);
        let home = f.preferred_shard(r, c, 4);
        f.crash_shard(home, &rec);
        let rerouted = f.submit(req(0, r, c), &rec).unwrap();
        assert_ne!(rerouted, home, "crashed shard must not receive traffic");
        assert!(f.is_healthy(rerouted));
        assert_eq!(rec.counter("fleet", Counter::ShardFailovers), 1);
        // Shapes whose home shard survives do not move.
        let mut survivor_shape = None;
        for (rr, cc) in [(96usize, 72usize), (60, 60), (127, 61), (251, 13)] {
            if f.preferred_shard(rr, cc, 4) != home {
                survivor_shape = Some((rr, cc));
                break;
            }
        }
        let (sr, sc) = survivor_shape.expect("some shape prefers a surviving shard");
        assert_eq!(f.submit(req(1, sr, sc), &rec).unwrap(), f.preferred_shard(sr, sc, 4));
        assert_eq!(rec.counter("fleet", Counter::ShardFailovers), 1, "no failover for it");
    }

    #[test]
    fn fleet_with_no_healthy_shard_backpressures() {
        let mut f = fleet();
        let rec = TraceRecorder::new();
        for s in 0..f.num_shards() {
            f.crash_shard(s, &rec);
        }
        match f.submit(req(0, 72, 60), &rec).unwrap_err() {
            TransposeError::Backpressure { capacity, retry_after_s } => {
                assert_eq!(capacity, 0, "no healthy shard means zero capacity");
                assert!(retry_after_s > 0.0);
            }
            other => panic!("want Backpressure, got {other}"),
        }
        assert_eq!(rec.counter("fleet", Counter::AdmissionRejections), 1);
    }

    #[test]
    fn crash_hands_back_pending_and_restart_restores_warm_cache() {
        let mut f = fleet();
        let rec = TraceRecorder::new();
        let (r, c) = (72, 60);
        let home = f.preferred_shard(r, c, 4);
        // Warm the home shard's cache, then leave one request pending.
        f.submit(req(0, r, c), &rec).unwrap();
        f.process_rounds(&rec).unwrap();
        f.submit(req(1, r, c), &rec).unwrap();
        let (snapshot, unfinished) = f.crash_shard(home, &rec);
        assert_eq!(unfinished.len(), 1);
        assert_eq!(unfinished[0].id, 1);
        assert_eq!(f.shard(home).backlog(), 0);
        // Orphans resubmit and fail over.
        for orphan in unfinished {
            let s = f.submit(orphan, &rec).unwrap();
            assert_ne!(s, home);
        }
        let round = f.process_rounds(&rec).unwrap();
        assert_eq!(round.len(), 1, "failed-over request still gets served");
        // Warm restart: the restored shard hits on first sight of the shape.
        let restored = f.restart_shard(home, &snapshot, &rec).unwrap();
        assert_eq!(restored, 1);
        assert!(f.is_healthy(home));
        f.submit(req(2, r, c), &rec).unwrap();
        let round = f.process_rounds(&rec).unwrap();
        let served: Vec<_> = round.rounds.iter().flat_map(|(_, r)| &r.results).collect();
        assert_eq!(served.len(), 1);
        assert!(served[0].cache_hit, "restored plan must hit immediately");
        // A garbage snapshot still restarts the shard, cold.
        assert!(f.restart_shard(home, "garbage", &rec).is_err());
        assert!(f.is_healthy(home));
        assert_eq!(f.shard(home).cache().len(), 0);
    }
}
