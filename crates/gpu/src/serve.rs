//! Batched, plan-cached transposition serving layer.
//!
//! A long-lived [`Server`] accepts a stream of transpose requests
//! ([`ServeRequest`]), memoizes planning + autotuning work in a concurrent
//! [`PlanCache`] keyed by `(rows, cols, elem_bytes, device, scheme)`, and
//! coalesces same-shape requests into batched launches sharded across the
//! multi-device DES machinery of [`crate::multi`]. Several servers compose
//! into the sharded fleet of [`crate::fleet`].
//!
//! ## Admission: bounded, deadline-ordered
//!
//! Every request carries a [`PriorityClass`]; at submit time the class's
//! SLO budget becomes an absolute deadline on the server's simulated clock,
//! and rounds drain the backlog in earliest-deadline-first (EDF) order
//! rather than FIFO. Admission stays bounded: past `queue_capacity` pending
//! requests, [`Server::submit`] refuses with
//! [`TransposeError::Backpressure`], whose `retry_after_s` hint is an EWMA
//! of observed per-request service time scaled by the backlog depth.
//!
//! ## Graceful degradation
//!
//! When a round drains a backlog past the configured overload fractions,
//! the latest-deadline requests degrade instead of failing: first to the
//! conservative kernel options of the recovery chain's
//! `ConservativeOptions` rung ([`DegradeLevel::Conservative`], counted as
//! `plans_degraded`), then to a host-computed result that never launches on
//! a device ([`DegradeLevel::HostShed`], counted as `requests_shed`).
//! Degradation changes service quality, never correctness: every path
//! returns the exact transposition.
//!
//! ## Warm-start persistence
//!
//! [`Server::snapshot_json`] serializes the plan cache as a versioned
//! snapshot ([`SNAPSHOT_VERSION`]); [`Server::restore_snapshot`] rebuilds
//! the cached decisions on a fresh server (counted as `snapshot_restores`).
//! Corrupt, stale-version, or wrong-device snapshots are rejected with a
//! typed [`SnapshotError`] and the server starts cold — a bad snapshot can
//! never poison serving. Restored plans are bit-identical to freshly built
//! ones because planning is deterministic and the snapshot stores the
//! *decision* (scheme, reason, tile), not the search.
//!
//! ## Timing-only replay for soak scale
//!
//! Simulated kernel timing depends on the plan and shape, never on element
//! values, so a million-request soak does not need a million full warp-level
//! simulations. With [`ServeConfig::profile_replay`] on, the first execution
//! of each `(plan key, degrade level)` records a service profile; repeats
//! reuse the profiled timing for the DES batch composition and compute the
//! payload on the host, while every `full_exec_every`-th repeat still runs
//! the full verified device path as a bit-exactness sample.
//!
//! Every full-path request still flows through the verified recovery chain
//! ([`crate::recover::transpose_scheme_with_recovery`]) — the cache
//! memoizes *plans*, never results — and the whole layer is traced through
//! [`ipt_obs`].

use crate::autotune::{choose_tile_rec, TuneLog};
use crate::multi::LinkTopology;
use crate::opts::GpuOptions;
use crate::pipeline::plan_flag_words;
use crate::recover::{
    host_transpose_elems, transpose_scheme_with_recovery_rec, RecoveryPath, RecoveryPolicy,
    RecoveryReport, TransposeError,
};
use gpu_sim::sched::mix64;
use gpu_sim::{try_simulate_engines_at, DeviceSpec, ECmd, EngineMode, Sim, Timeline};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::tiles::TileHeuristic;
use ipt_core::{decide_scheme, FallbackReason, PlanDecision, Scheme};
use ipt_obs::{Counter, Level, Recorder, SpanCtx};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Salt mixed into every request trace id, so trace ids cannot collide
/// with raw request ids in log output.
const TRACE_SALT: u64 = 0x7261_6365_5f69_6474; // "race_idt"

/// Span id of a request's root span within its trace.
pub const ROOT_SPAN: u64 = 1;
/// Span id of the fleet routing span (rendezvous pick + failover).
pub const ROUTE_SPAN: u64 = 2;
/// Span id of the admission-queue wait span.
pub const QUEUE_SPAN: u64 = 3;
/// Span id of the execution span (device batch or host shed).
pub const EXEC_SPAN: u64 = 4;

/// Deterministic trace id for a request id: a SplitMix64 hash, so ids are
/// well-spread in hex output yet reproducible across runs and engines.
#[must_use]
pub fn trace_id(req_id: u64) -> u64 {
    mix64(req_id, TRACE_SALT)
}

/// Plan-cache key: everything a cached plan depends on. Two requests with
/// equal keys are guaranteed to plan identically (planning is
/// deterministic), so sharing the cached plan cannot change results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// Element width in bytes (4 or 8).
    pub elem_bytes: usize,
    /// Simulated device name the tune ran on.
    pub device: &'static str,
    /// Scheme the planner selected (part of the key so a heuristic change
    /// that re-routes a shape can never alias a stale entry).
    pub scheme: Scheme,
}

/// One memoized planning outcome: the scheme decision, the autotune log
/// that produced the tile (when the scheme is tiled), and the staged plan
/// ready to execute.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The (possibly tuned) scheme decision.
    pub decision: PlanDecision,
    /// What the autotune search did — `TuneLog::default()` for schemes
    /// that need no tuning (identity, coprime) and for snapshot-restored
    /// plans (the snapshot archives the decision, not the search).
    pub tune: TuneLog,
    /// The executable plan, `None` for identity / coprime / c2r schemes.
    pub plan: Option<StagePlan>,
    /// Tuned work-group size — `Some` only for [`Scheme::C2R`] plans,
    /// where the wg sweep replaces the tile search; execution overrides
    /// [`GpuOptions::wg_size`] with it.
    pub wg_size: Option<usize>,
}

/// Concurrent memoization of [`CachedPlan`]s with hit/miss accounting.
///
/// Thread-safe by construction (`Mutex` map + atomic counters) so a future
/// multi-threaded front-end can share one cache; the current [`Server`]
/// drives it single-threaded.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<CachedPlan>>>,
    pub(crate) misses: AtomicU64,
    hits: AtomicU64,
}

impl PlanCache {
    /// Fresh empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `key`, building and inserting via `build` on a miss.
    /// Returns the plan and whether this was a hit.
    pub fn get_or_build(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> CachedPlan,
    ) -> (Arc<CachedPlan>, bool) {
        if let Some(hit) = self.map.lock().expect("plan cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        // Build outside the lock: autotuning is seconds of work and the
        // planner is deterministic, so a racing duplicate build is merely
        // redundant, never wrong.
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("plan cache poisoned");
        let entry = map.entry(key.clone()).or_insert_with(|| Arc::clone(&built));
        (Arc::clone(entry), false)
    }

    /// Insert a prebuilt plan (snapshot restore). Counts as neither hit nor
    /// miss: the work happened in a previous process lifetime.
    pub fn insert(&self, key: PlanKey, plan: CachedPlan) {
        self.map.lock().expect("plan cache poisoned").insert(key, Arc::new(plan));
    }

    /// All cached entries, unordered.
    #[must_use]
    pub fn entries(&self) -> Vec<(PlanKey, Arc<CachedPlan>)> {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Distinct cached keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("plan cache poisoned").len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= distinct keys built) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]` (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 { 0.0 } else { h / (h + m) }
    }
}

/// Build the plan for one key: scheme decision, then — for the staged
/// scheme — the §7.4 pruned autotune search (the expensive part the cache
/// amortizes). Deterministic and total: every shape gets a plan decision,
/// prime shapes route to coprime/host fallbacks instead of panicking.
#[must_use]
pub fn build_plan<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    heuristic: &TileHeuristic,
    opts: &GpuOptions,
    rec: &R,
) -> CachedPlan {
    let mut decision = decide_scheme(rows, cols, heuristic);
    let mut tune = TuneLog::default();
    let mut wg_size = None;
    if decision.scheme == Scheme::Staged {
        let (tile, log) = choose_tile_rec(dev, rows, cols, heuristic, opts, rec);
        tune = log;
        if tile.is_some() {
            decision.tile = tile;
        }
    } else if decision.scheme == Scheme::C2R {
        // C2R has no tile to tune; its knob is the work-group size.
        let (wg, log) = crate::autotune::choose_c2r_wg_rec(dev, rows, cols, rec);
        tune = log;
        wg_size = Some(wg);
    }
    let plan = decision.staged_plan(rows, cols);
    CachedPlan { decision, tune, plan, wg_size }
}

/// Per-request service class. The class's SLO budget becomes an absolute
/// deadline at submit time; rounds drain earliest-deadline-first, and under
/// overload the latest deadlines degrade first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Latency-sensitive traffic: tightest deadline, degraded last.
    Interactive,
    /// Normal traffic — the default class.
    Batch,
    /// Deadline-tolerant backfill: first to degrade or shed.
    Background,
}

impl PriorityClass {
    /// SLO budget, simulated seconds from admission to completion. Added to
    /// the server clock at submit time to form the EDF deadline.
    #[must_use]
    pub fn deadline_budget_s(self) -> f64 {
        match self {
            PriorityClass::Interactive => 1e-3,
            PriorityClass::Batch => 1e-2,
            PriorityClass::Background => 1e-1,
        }
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Batch => "batch",
            PriorityClass::Background => "background",
        }
    }

    /// Dense index (0..3) for per-class telemetry arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Batch => 1,
            PriorityClass::Background => 2,
        }
    }

    /// Latency-histogram scope for this class.
    #[must_use]
    pub fn scope(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "class:interactive",
            PriorityClass::Batch => "class:batch",
            PriorityClass::Background => "class:background",
        }
    }
}

/// How much service quality one request gave up under overload. Ordered:
/// later variants are deeper degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Full service: the tuned plan with tuned kernel options.
    Tuned,
    /// The same plan under [`GpuOptions::baseline_for`] — the recovery
    /// chain's conservative rung, taken pre-emptively under overload.
    Conservative,
    /// Served on the host without a device launch: correct, but sheds all
    /// device throughput for this request.
    HostShed,
}

impl DegradeLevel {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::Tuned => "tuned",
            DegradeLevel::Conservative => "conservative",
            DegradeLevel::HostShed => "host-shed",
        }
    }
}

/// One transposition request.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen request id, echoed in the result.
    pub id: u64,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// Element width in bytes: 4 (f32/u32) or 8 (f64 as two words).
    pub elem_bytes: usize,
    /// Service class (EDF deadline and degradation order).
    pub priority: PriorityClass,
    /// Row-major payload, packed as 32-bit words
    /// (`rows * cols * elem_bytes / 4` of them).
    pub data: Vec<u32>,
}

/// One served result.
#[derive(Debug, Clone)]
pub struct ServedResult {
    /// Echo of [`ServeRequest::id`].
    pub id: u64,
    /// Transposed payload (same packing as the request).
    pub data: Vec<u32>,
    /// Scheme the plan used.
    pub scheme: Scheme,
    /// Whether planning was served from cache.
    pub cache_hit: bool,
    /// Device index the batch ran on (0 for host-shed requests, which
    /// never launch).
    pub device: usize,
    /// Echo of [`ServeRequest::priority`].
    pub priority: PriorityClass,
    /// Service quality this request actually received.
    pub degrade: DegradeLevel,
    /// Recovery report from the execution chain.
    pub recovery: RecoveryReport,
    /// Simulated seconds this request's batch waited for its engines.
    pub queue_wait_s: f64,
    /// Simulated device-side seconds this request's kernels took
    /// (0 for the identity short-circuit and host-shed requests).
    pub service_s: f64,
    /// Execution provenance: `"serial"` / `"parallel"` for full simulated
    /// runs, `"profiled"` for timing-replay, `"host"` for shed requests.
    pub engine: &'static str,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: pending requests past this refuse with
    /// [`TransposeError::Backpressure`].
    pub queue_capacity: usize,
    /// Max same-shape requests coalesced into one batched launch.
    pub max_batch: usize,
    /// Simulated device count the batches shard across.
    pub devices: usize,
    /// PCIe topology of the device set.
    pub link: LinkTopology,
    /// Tile heuristic driving scheme decisions and the pruned search.
    pub heuristic: TileHeuristic,
    /// Kernel options (claim protocol, work-group sizes).
    pub opts: GpuOptions,
    /// Recovery policy every request executes under.
    pub policy: RecoveryPolicy,
    /// `false` disables memoization: every request replans (and re-tunes)
    /// from scratch — the honest per-request baseline `repro serve`
    /// compares against.
    pub cache_plans: bool,
    /// Backlog fraction of `queue_capacity` past which drained requests
    /// (latest deadlines first) run with conservative options. `1.0`
    /// disables the rung (single-server default; the fleet enables it).
    pub degrade_at: f64,
    /// Backlog fraction past which drained requests are shed to the host
    /// path. `1.0` disables the rung. Must be ≥ `degrade_at`.
    pub shed_at: f64,
    /// Memoize per-`(plan key, degrade level)` service profiles and replay
    /// timing for repeats (host-computed payload, DES time from the
    /// profile). Off by default: every request runs the full device path.
    pub profile_replay: bool,
    /// With `profile_replay`: run the full verified device path anyway on
    /// every N-th profile-eligible request, as a continuous bit-exactness
    /// sample. `0` never resamples.
    pub full_exec_every: usize,
    /// Payloads larger than this many resident words never batch: they
    /// route to the out-of-core streaming executor
    /// ([`crate::stream::stream_transpose_rec`]) with this value as the
    /// device-memory budget, before the degradation ladder ever sees
    /// them. `None` (default) disables the rung and oversized requests
    /// take the ordinary batched path.
    pub stream_over_words: Option<usize>,
}

impl ServeConfig {
    /// Sensible defaults for `dev`: 64-deep admission queue, batches of 8,
    /// two devices behind a shared link, caching on, degradation rungs and
    /// profile replay off.
    #[must_use]
    pub fn new(dev: &DeviceSpec) -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 8,
            devices: 2,
            link: LinkTopology::Shared,
            heuristic: TileHeuristic { preferred_lo: 10, ..TileHeuristic::default() },
            opts: GpuOptions::tuned_for(dev),
            policy: RecoveryPolicy::default(),
            cache_plans: true,
            degrade_at: 1.0,
            shed_at: 1.0,
            profile_replay: false,
            full_exec_every: 0,
            stream_over_words: None,
        }
    }
}

/// Summary of one [`Server::process_round`] call.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Results, shed requests first, then completion order (batch DES
    /// order).
    pub results: Vec<ServedResult>,
    /// Batched launches this round (identity and shed requests never
    /// launch).
    pub batches: usize,
    /// Mean requests per launched batch (0.0 when nothing launched).
    pub mean_occupancy: f64,
    /// Simulated end-to-end seconds of the round's DES timeline.
    pub sim_total_s: f64,
    /// DES timeline of the round's launches.
    pub timeline: Timeline,
}

/// A drained, executed round awaiting its DES timing: the half-open state
/// between [`Server::prepare_round`] and [`Server::finish_round`]. The
/// fleet uses the split to batch every shard's launches into one
/// multi-shard DES call; single servers use [`Server::process_round`].
pub struct PreparedRound {
    results: Vec<ServedResult>,
    /// Absolute admission time of each result, parallel to `results` —
    /// the root of each request's trace span starts here.
    result_arrivals_s: Vec<f64>,
    queues: Vec<Vec<ECmd>>,
    arrivals: Vec<f64>,
    /// (DES queue index, result indices) per launched batch.
    launched: Vec<(usize, Vec<usize>)>,
    batched_requests: u64,
}

impl PreparedRound {
    /// The round's DES command queues, one per launched batch.
    #[must_use]
    pub fn queues(&self) -> &[Vec<ECmd>] {
        &self.queues
    }

    /// Per-queue arrival times (seconds relative to the round start).
    #[must_use]
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// True when the round launched nothing (empty, identity-only, or
    /// fully shed).
    #[must_use]
    pub fn is_launchless(&self) -> bool {
        self.queues.is_empty()
    }
}

/// Plan-cache snapshot format version. Bump on breaking layout changes;
/// [`Server::restore_snapshot`] refuses other versions. v2 added the
/// `c2r` scheme and its per-entry `wg_size` — v1 snapshots predate the
/// scheme and are refused as stale rather than restored into plans that
/// would silently miss the tuned launch configuration.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Why a snapshot was rejected. A rejected snapshot is discarded and the
/// server stays cold — never poisoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload is not a well-formed snapshot (bad JSON, missing or
    /// out-of-range fields, unknown scheme/reason names).
    Malformed {
        /// What failed to parse.
        what: String,
    },
    /// The snapshot's format version is not [`SNAPSHOT_VERSION`].
    StaleVersion {
        /// The version found, `None` when absent.
        found: Option<u64>,
    },
    /// The snapshot was taken on a different simulated device; its tuned
    /// plans do not transfer.
    DeviceMismatch {
        /// Device named by the snapshot.
        found: String,
        /// Device this server simulates.
        want: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapshotError::StaleVersion { found } => write!(
                f,
                "snapshot version {found:?} is not the supported {SNAPSHOT_VERSION}"
            ),
            SnapshotError::DeviceMismatch { found, want } => {
                write!(f, "snapshot was taken on {found:?}, this server simulates {want:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One archived plan-cache entry. The snapshot stores the planning
/// *decision* — scheme, reason discriminant, tile — not the autotune
/// search; planning is deterministic, so the decision alone reproduces
/// bit-identical serving.
#[derive(Debug, Clone, Serialize)]
struct SnapshotEntry {
    rows: usize,
    cols: usize,
    elem_bytes: usize,
    scheme: &'static str,
    reason: &'static str,
    tile_m: Option<usize>,
    tile_n: Option<usize>,
    wg_size: Option<usize>,
}

#[derive(Debug, Clone, Serialize)]
struct Snapshot {
    snapshot_version: u64,
    device: String,
    entries: Vec<SnapshotEntry>,
}

fn reason_name(reason: &FallbackReason) -> &'static str {
    match reason {
        FallbackReason::Preferred => "preferred",
        FallbackReason::TrivialMatrix => "trivial-matrix",
        FallbackReason::DegenerateRow => "degenerate-row",
        FallbackReason::DegenerateCol => "degenerate-col",
        FallbackReason::SquareShape => "square-shape",
        FallbackReason::NoFeasibleTile { .. } => "no-feasible-tile",
    }
}

fn reason_by_name(name: &str, rows: usize, cols: usize) -> Option<FallbackReason> {
    match name {
        "preferred" => Some(FallbackReason::Preferred),
        "trivial-matrix" => Some(FallbackReason::TrivialMatrix),
        "degenerate-row" => Some(FallbackReason::DegenerateRow),
        "degenerate-col" => Some(FallbackReason::DegenerateCol),
        "square-shape" => Some(FallbackReason::SquareShape),
        "no-feasible-tile" => Some(FallbackReason::NoFeasibleTile { rows, cols }),
        _ => None,
    }
}

/// One admitted, not yet drained request.
struct Pending {
    req: ServeRequest,
    arrival_s: f64,
    deadline_s: f64,
}

/// The batched, plan-cached transposition service.
///
/// Single-threaded driver over a thread-safe [`PlanCache`]; requests are
/// admitted with [`Server::submit`] (bounded, EDF-ordered) and executed in
/// rounds with [`Server::process_round`], which batches same-shape requests
/// and shards the batches round-robin across the configured simulated
/// devices.
pub struct Server {
    dev: DeviceSpec,
    cfg: ServeConfig,
    cache: PlanCache,
    pending: Vec<Pending>,
    clock_s: f64,
    next_device: usize,
    /// EWMA of simulated service seconds per drained request, feeding the
    /// backpressure `retry_after_s` hint. 0 until the first round.
    ewma_service_s: f64,
    /// Memoized simulated kernel seconds per `(plan key, degrade level)`.
    profiles: HashMap<(PlanKey, DegradeLevel), f64>,
    replays_since_full: usize,
    full_execs: u64,
    profiled_replays: u64,
}

impl Server {
    /// New server over `devices` simulated copies of `dev`.
    #[must_use]
    pub fn new(dev: DeviceSpec, cfg: ServeConfig) -> Self {
        Self {
            dev,
            cfg,
            cache: PlanCache::new(),
            pending: Vec::new(),
            clock_s: 0.0,
            next_device: 0,
            ewma_service_s: 0.0,
            profiles: HashMap::new(),
            replays_since_full: 0,
            full_execs: 0,
            profiled_replays: 0,
        }
    }

    /// The plan cache (hit/miss inspection).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The serving configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The simulated device this server runs on.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.dev
    }

    /// Server clock: simulated seconds of service so far.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Pending (admitted, not yet processed) request count.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// DES engine count of this server's device group.
    #[must_use]
    pub fn num_engines(&self) -> usize {
        self.cfg.link.num_engines(self.cfg.devices)
    }

    /// Full verified device executions so far (profile replay diagnostics).
    #[must_use]
    pub fn full_execs(&self) -> u64 {
        self.full_execs
    }

    /// Timing-replayed requests so far (profile replay diagnostics).
    #[must_use]
    pub fn profiled_replays(&self) -> u64 {
        self.profiled_replays
    }

    /// Remove and return every pending request (crash handover: the fleet
    /// resubmits them to surviving shards).
    pub fn drain_pending(&mut self) -> Vec<ServeRequest> {
        self.pending.drain(..).map(|p| p.req).collect()
    }

    /// Admit one request, stamping its EDF deadline from the priority
    /// class's SLO budget.
    ///
    /// # Errors
    ///
    /// [`TransposeError::Backpressure`] when the admission queue is full —
    /// the caller should `process_round` (or drop load) and retry after
    /// the hinted delay. [`TransposeError::InvalidConfig`] for unsupported
    /// element widths or a payload that disagrees with the declared shape.
    pub fn submit<R: Recorder>(
        &mut self,
        req: ServeRequest,
        rec: &R,
    ) -> Result<(), TransposeError> {
        if self.pending.len() >= self.cfg.queue_capacity {
            rec.add("serve", Counter::AdmissionRejections, 1);
            return Err(TransposeError::Backpressure {
                capacity: self.cfg.queue_capacity,
                retry_after_s: self.retry_after_s(),
            });
        }
        if req.elem_bytes != 4 && req.elem_bytes != 8 {
            return Err(TransposeError::InvalidConfig {
                what: format!("unsupported elem_bytes {} (want 4 or 8)", req.elem_bytes),
            });
        }
        let words = ipt_core::check::checked_bytes(req.rows, req.cols, req.elem_bytes)
            .map(|b| b / 4)
            .and_then(|w| usize::try_from(w).ok())
            .ok_or_else(|| TransposeError::InvalidConfig {
                what: format!("{}x{} overflows the address space", req.rows, req.cols),
            })?;
        if req.data.len() != words {
            return Err(TransposeError::InvalidConfig {
                what: format!(
                    "payload is {} words, shape {}x{} elem {} needs {words}",
                    req.data.len(),
                    req.rows,
                    req.cols,
                    req.elem_bytes
                ),
            });
        }
        let deadline_s = self.clock_s + req.priority.deadline_budget_s();
        self.pending.push(Pending { req, arrival_s: self.clock_s, deadline_s });
        Ok(())
    }

    /// The backpressure retry hint: EWMA per-request service time scaled by
    /// the backlog depth, floored at the queue-creation overhead so the
    /// hint is positive even before the first round calibrates the EWMA.
    fn retry_after_s(&self) -> f64 {
        let per_req = if self.ewma_service_s > 0.0 {
            self.ewma_service_s
        } else {
            self.dev.queue_create_overhead_s.max(1e-6)
        };
        per_req * self.pending.len().max(1) as f64
    }

    /// Serialize the plan cache as a versioned warm-start snapshot.
    /// Entries are sorted, so equal caches produce byte-identical
    /// snapshots.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let mut entries: Vec<SnapshotEntry> = self
            .cache
            .entries()
            .into_iter()
            .map(|(key, plan)| SnapshotEntry {
                rows: key.rows,
                cols: key.cols,
                elem_bytes: key.elem_bytes,
                scheme: key.scheme.name(),
                reason: reason_name(&plan.decision.reason),
                tile_m: plan.decision.tile.map(|t| t.m),
                tile_n: plan.decision.tile.map(|t| t.n),
                wg_size: plan.wg_size,
            })
            .collect();
        entries.sort_by(|a, b| {
            (a.rows, a.cols, a.elem_bytes, a.scheme).cmp(&(b.rows, b.cols, b.elem_bytes, b.scheme))
        });
        let snap = Snapshot {
            snapshot_version: SNAPSHOT_VERSION,
            device: self.dev.name.to_string(),
            entries,
        };
        serde_json::to_string_pretty(&snap).expect("snapshot serialization is infallible")
    }

    /// Restore a warm-start snapshot into the plan cache, returning the
    /// number of entries restored and counting one `snapshot_restores`.
    /// All-or-nothing: a rejected snapshot restores nothing.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the payload is corrupt, has a different
    /// format version, or was taken on a different simulated device. The
    /// cache is untouched on error — the server simply starts cold.
    pub fn restore_snapshot<R: Recorder>(
        &mut self,
        json: &str,
        rec: &R,
    ) -> Result<usize, SnapshotError> {
        let malformed = |what: &str| SnapshotError::Malformed { what: what.to_string() };
        let value = serde_json::from_str(json)
            .map_err(|e| SnapshotError::Malformed { what: format!("{e:?}") })?;
        let version = value.get("snapshot_version").and_then(serde::Value::as_u64);
        if version != Some(SNAPSHOT_VERSION) {
            return Err(SnapshotError::StaleVersion { found: version });
        }
        let device = value
            .get("device")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| malformed("missing device"))?;
        if device != self.dev.name {
            return Err(SnapshotError::DeviceMismatch {
                found: device.to_string(),
                want: self.dev.name.to_string(),
            });
        }
        let entries = value
            .get("entries")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| malformed("missing entries array"))?;

        // Parse and validate everything before touching the cache.
        let mut restored: Vec<(PlanKey, CachedPlan)> = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let field = |name: &str| {
                e.get(name)
                    .and_then(serde::Value::as_u64)
                    .and_then(|v| usize::try_from(v).ok())
                    .ok_or_else(|| malformed(&format!("entry {i}: bad {name}")))
            };
            let rows = field("rows")?;
            let cols = field("cols")?;
            let elem_bytes = field("elem_bytes")?;
            if rows == 0 || cols == 0 || !(elem_bytes == 4 || elem_bytes == 8) {
                return Err(malformed(&format!(
                    "entry {i}: out-of-range shape {rows}x{cols} elem {elem_bytes}"
                )));
            }
            let scheme = e
                .get("scheme")
                .and_then(serde::Value::as_str)
                .and_then(Scheme::by_name)
                .ok_or_else(|| malformed(&format!("entry {i}: unknown scheme")))?;
            let reason = e
                .get("reason")
                .and_then(serde::Value::as_str)
                .and_then(|r| reason_by_name(r, rows, cols))
                .ok_or_else(|| malformed(&format!("entry {i}: unknown reason")))?;
            let tile_m = e.get("tile_m").and_then(serde::Value::as_u64);
            let tile_n = e.get("tile_n").and_then(serde::Value::as_u64);
            let tile = match (tile_m, tile_n) {
                (Some(m), Some(n)) if m > 0 && n > 0 => {
                    Some(TileConfig::new(m as usize, n as usize))
                }
                (None, None) => None,
                _ => return Err(malformed(&format!("entry {i}: inconsistent tile"))),
            };
            let wg_size = e
                .get("wg_size")
                .and_then(serde::Value::as_u64)
                .and_then(|v| usize::try_from(v).ok());
            if wg_size == Some(0) {
                return Err(malformed(&format!("entry {i}: zero wg_size")));
            }
            let decision = PlanDecision { scheme, reason, tile };
            let plan = decision.staged_plan(rows, cols);
            let key = PlanKey { rows, cols, elem_bytes, device: self.dev.name, scheme };
            restored.push((key, CachedPlan { decision, tune: TuneLog::default(), plan, wg_size }));
        }
        let n = restored.len();
        for (key, plan) in restored {
            self.cache.insert(key, plan);
        }
        rec.add("serve", Counter::SnapshotRestores, 1);
        rec.event(self.clock_s * 1e6, "snapshot_restore", &format!("{n} plans restored"));
        Ok(n)
    }

    /// Drain the backlog in EDF order, apply the degradation ladder, batch
    /// same-shape requests, shard batches across devices, and execute every
    /// request — returning the prepared round for external DES timing (the
    /// fleet path). Most callers want [`Server::process_round`].
    ///
    /// # Errors
    ///
    /// Only unrecoverable per-request failures propagate (e.g. an invalid
    /// plan the recovery chain rejects); recoverable faults are absorbed
    /// and reported per result.
    #[allow(clippy::too_many_lines)]
    pub fn prepare_round<R: Recorder>(
        &mut self,
        rec: &R,
    ) -> Result<PreparedRound, TransposeError> {
        let round_start = self.clock_s;
        let mut drained: Vec<Pending> = self.pending.drain(..).collect();
        // EDF: earliest deadline first; ties by arrival, then id, so the
        // order is total and deterministic.
        drained.sort_by(|a, b| {
            a.deadline_s
                .partial_cmp(&b.deadline_s)
                .expect("deadlines are finite")
                .then(
                    a.arrival_s
                        .partial_cmp(&b.arrival_s)
                        .expect("arrivals are finite"),
                )
                .then(a.req.id.cmp(&b.req.id))
        });

        // Degradation ladder: positions past the overload fractions (of
        // the admission capacity) degrade, latest deadlines first.
        let cap = self.cfg.queue_capacity as f64;
        let degrade_start = (self.cfg.degrade_at * cap).ceil() as usize;
        let shed_start = (self.cfg.shed_at * cap).ceil() as usize;

        let mut results: Vec<ServedResult> = Vec::new();
        let mut result_arrivals_s: Vec<f64> = Vec::new();
        // Coalesce same-shape requests, preserving EDF order within a
        // shape class. Shed requests never enter a batch.
        type Group = (PlanKey, Vec<(ServeRequest, f64, DegradeLevel)>);
        let mut groups: Vec<Group> = Vec::new();
        for (pos, p) in drained.into_iter().enumerate() {
            // Oversized payloads route to the streaming executor before the
            // ladder classifies them: they can never reside on the device
            // whole, so neither batching nor shedding applies.
            if let Some(budget) = self.cfg.stream_over_words {
                if p.req.data.len() > budget {
                    rec.add("serve", Counter::OversizedRouted, 1);
                    rec.event(
                        round_start * 1e6,
                        "oversized_routed",
                        &format!(
                            "req {} ({}x{}, {} words) exceeds {budget} resident words: \
                             streaming out-of-core",
                            p.req.id,
                            p.req.rows,
                            p.req.cols,
                            p.req.data.len()
                        ),
                    );
                    results.push(self.stream_oversized(&p.req, budget, rec)?);
                    result_arrivals_s.push(p.arrival_s);
                    continue;
                }
            }
            let level = if pos >= shed_start {
                DegradeLevel::HostShed
            } else if pos >= degrade_start {
                DegradeLevel::Conservative
            } else {
                DegradeLevel::Tuned
            };
            if level == DegradeLevel::HostShed {
                rec.add("serve", Counter::RequestsShed, 1);
                rec.event(
                    round_start * 1e6,
                    "request_shed",
                    &format!("req {} ({}x{}) shed to host", p.req.id, p.req.rows, p.req.cols),
                );
                results.push(self.host_shed(&p.req));
                result_arrivals_s.push(p.arrival_s);
                continue;
            }
            if level == DegradeLevel::Conservative {
                rec.add("serve", Counter::PlansDegraded, 1);
                rec.event(
                    round_start * 1e6,
                    "plan_degraded",
                    &format!("req {} degraded to conservative options", p.req.id),
                );
            }
            let decision = decide_scheme(p.req.rows, p.req.cols, &self.cfg.heuristic);
            let key = PlanKey {
                rows: p.req.rows,
                cols: p.req.cols,
                elem_bytes: p.req.elem_bytes,
                device: self.dev.name,
                scheme: decision.scheme,
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push((p.req, p.arrival_s, level)),
                None => groups.push((key, vec![(p.req, p.arrival_s, level)])),
            }
        }

        // One DES queue per launched batch: [H2D, compute, D2H].
        let mut queues: Vec<Vec<ECmd>> = Vec::new();
        let mut arrivals: Vec<f64> = Vec::new();
        let mut launched: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut batched_requests = 0u64;

        for (key, members) in groups {
            // With caching on, one lookup serves the whole group; the
            // baseline mode replans per request — that is exactly the
            // per-request autotuning cost the cache exists to amortize.
            let group_plan =
                if self.cfg.cache_plans { Some(self.lookup_plan(&key, rec)) } else { None };
            for batch in members.chunks(self.cfg.max_batch) {
                let device = self.next_device;
                self.next_device = (self.next_device + 1) % self.cfg.devices;
                let mut kernel_s = 0.0;
                let mut batch_bytes = 0.0;
                let mut idxs = Vec::with_capacity(batch.len());
                let mut arrival = f64::INFINITY;
                for (req, at, level) in batch {
                    arrival = arrival.min(at - round_start);
                    let (plan, hit) = match &group_plan {
                        Some((p, h)) => (Arc::clone(p), *h),
                        None => self.lookup_plan(&key, rec),
                    };
                    // Execution-layer spans (kernel launches, recovery
                    // retries) tag themselves as children of this
                    // request's exec span via the ambient ctx stack.
                    let ctx = SpanCtx {
                        trace_id: trace_id(req.id),
                        span_id: EXEC_SPAN,
                        parent_span_id: ROOT_SPAN,
                    };
                    let (res, service_s) = self
                        .serve_one(req, &key, &plan, hit, device, *level, round_start, ctx, rec)?;
                    kernel_s += service_s;
                    batch_bytes +=
                        ipt_core::check::bytes_f64(req.rows, req.cols, req.elem_bytes);
                    idxs.push(results.len());
                    results.push(res);
                    result_arrivals_s.push(*at);
                }
                if key.scheme == Scheme::Identity {
                    // Identity requests complete in-memory; no launch.
                    continue;
                }
                let q = queues.len();
                let (h2d_e, d2h_e) = self.cfg.link.link_engines(self.cfg.devices, device);
                let xfer = self.dev.pcie.transfer_time(batch_bytes);
                queues.push(vec![
                    ECmd {
                        engine: h2d_e,
                        duration_s: xfer,
                        label: format!("H2D batch {q}").into(),
                        wait: None,
                    },
                    ECmd {
                        engine: device,
                        duration_s: kernel_s,
                        label: format!("{} batch {q}", key.scheme.name()).into(),
                        wait: None,
                    },
                    ECmd {
                        engine: d2h_e,
                        duration_s: xfer,
                        label: format!("D2H batch {q}").into(),
                        wait: None,
                    },
                ]);
                arrivals.push(arrival.max(0.0));
                launched.push((q, idxs));
                batched_requests += batch.len() as u64;
            }
        }

        Ok(PreparedRound {
            results,
            result_arrivals_s,
            queues,
            arrivals,
            launched,
            batched_requests,
        })
    }

    /// Apply a simulated timeline to a prepared round: back-fill queue
    /// waits, advance the server clock, emit counters and spans. The
    /// timeline must come from simulating exactly `prepared.queues()` with
    /// `prepared.arrivals()`.
    pub fn finish_round<R: Recorder>(
        &mut self,
        prepared: PreparedRound,
        timeline: Timeline,
        rec: &R,
    ) -> RoundReport {
        let PreparedRound {
            mut results,
            result_arrivals_s,
            arrivals,
            launched,
            batched_requests,
            ..
        } = prepared;
        let mut total_wait_us = 0.0;
        for (q, idxs) in &launched {
            let start = timeline.queue_start_s(*q).unwrap_or(arrivals[*q]);
            let wait = (start - arrivals[*q]).max(0.0);
            total_wait_us += wait * 1e6 * idxs.len() as f64;
            for &i in idxs {
                results[i].queue_wait_s = wait;
            }
        }
        self.clock_s += timeline.total_s;

        // Per-request telemetry: latency histograms for every result
        // (they self-gate on the recorder's aggregate switch, so the
        // bounded counters-only mode still collects quantiles), plus —
        // when streams are on — the causal span tree: root "request"
        // covering admission→completion, a queue child, and an exec
        // child the kernel-launch spans hang off.
        {
            for (i, res) in results.iter().enumerate() {
                let tid = trace_id(res.id);
                let arrival_us = result_arrivals_s[i] * 1e6;
                let wait_us = res.queue_wait_s * 1e6;
                let service_us = res.service_s * 1e6;
                let e2e_us = wait_us + service_us;
                let scope = res.priority.scope();
                rec.latency(scope, "queue_wait_us", wait_us, Some(tid));
                rec.latency(scope, "service_us", service_us, Some(tid));
                rec.latency(scope, "e2e_us", e2e_us, Some(tid));
                if !rec.enabled() {
                    continue;
                }
                let root = SpanCtx { trace_id: tid, span_id: ROOT_SPAN, parent_span_id: 0 };
                let track = Level::Request.base_track() + res.priority.index() as u32;
                rec.span_ctx(
                    root,
                    Level::Request,
                    "request",
                    arrival_us,
                    e2e_us,
                    track,
                    &[
                        ("id", res.id as f64),
                        ("wait_us", wait_us),
                        ("cache_hit", f64::from(res.cache_hit)),
                    ],
                );
                rec.span_ctx(
                    root.child(QUEUE_SPAN),
                    Level::Request,
                    "queue",
                    arrival_us,
                    wait_us,
                    track,
                    &[],
                );
                rec.span_ctx(
                    root.child(EXEC_SPAN),
                    Level::Kernel,
                    if res.degrade == DegradeLevel::HostShed { "host-shed" } else { "exec" },
                    arrival_us + wait_us,
                    service_us,
                    Level::Kernel.base_track() + res.device as u32,
                    &[("device", res.device as f64)],
                );
                if !res.recovery.clean() {
                    res.recovery.record_traced(rec, arrival_us + e2e_us, tid);
                }
            }
        }

        // Calibrate the backpressure hint from observed service time.
        if !results.is_empty() && timeline.total_s > 0.0 {
            let per_req = timeline.total_s / results.len() as f64;
            self.ewma_service_s = if self.ewma_service_s > 0.0 {
                0.8 * self.ewma_service_s + 0.2 * per_req
            } else {
                per_req
            };
        }

        let batches = launched.len();
        rec.add("serve", Counter::BatchesLaunched, batches as u64);
        rec.add("serve", Counter::BatchedRequests, batched_requests);
        rec.add("serve", Counter::QueueWaitUs, total_wait_us as u64);
        let mean_occupancy =
            if batches == 0 { 0.0 } else { batched_requests as f64 / batches as f64 };
        if rec.enabled() {
            rec.gauge("serve", "batch_occupancy", mean_occupancy);
        }
        RoundReport {
            results,
            batches,
            mean_occupancy,
            sim_total_s: timeline.total_s,
            timeline,
        }
    }

    /// Drain the backlog, simulate the round's launches, and return the
    /// completed round: [`Server::prepare_round`] + DES +
    /// [`Server::finish_round`] in one call.
    ///
    /// # Errors
    ///
    /// See [`Server::prepare_round`]; additionally a malformed DES schedule
    /// propagates as [`TransposeError::Transfer`].
    pub fn process_round<R: Recorder>(
        &mut self,
        rec: &R,
    ) -> Result<RoundReport, TransposeError> {
        let prepared = self.prepare_round(rec)?;
        let timeline = if prepared.is_launchless() {
            Timeline { spans: Vec::new(), total_s: 0.0, setup_s: 0.0 }
        } else {
            try_simulate_engines_at(
                self.num_engines(),
                self.dev.queue_create_overhead_s,
                &prepared.queues,
                &prepared.arrivals,
            )?
        };
        Ok(self.finish_round(prepared, timeline, rec))
    }

    /// Plan lookup honoring `cache_plans`; records hit/miss counters.
    fn lookup_plan<R: Recorder>(&self, key: &PlanKey, rec: &R) -> (Arc<CachedPlan>, bool) {
        let build = || {
            build_plan(&self.dev, key.rows, key.cols, &self.cfg.heuristic, &self.cfg.opts, rec)
        };
        let (plan, hit) = if self.cfg.cache_plans {
            self.cache.get_or_build(key, build)
        } else {
            // Baseline mode: replan every time, keeping miss accounting.
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
            (Arc::new(build()), false)
        };
        rec.add(
            "serve",
            if hit { Counter::PlanCacheHits } else { Counter::PlanCacheMisses },
            1,
        );
        (plan, hit)
    }

    /// Serve one request at `level`: full device execution, or — with
    /// profile replay on and a recorded profile — a timing-replay with a
    /// periodic full-execution bit-exactness sample. Returns the result
    /// and the device-side service seconds it contributes to its batch.
    #[allow(clippy::too_many_arguments)]
    fn serve_one<R: Recorder>(
        &mut self,
        req: &ServeRequest,
        key: &PlanKey,
        plan: &CachedPlan,
        cache_hit: bool,
        device: usize,
        level: DegradeLevel,
        t0_s: f64,
        ctx: SpanCtx,
        rec: &R,
    ) -> Result<(ServedResult, f64), TransposeError> {
        if self.cfg.profile_replay {
            let pkey = (key.clone(), level);
            if let Some(service_s) = self.profiles.get(&pkey).copied() {
                let resample = self.cfg.full_exec_every > 0
                    && self.replays_since_full + 1 >= self.cfg.full_exec_every;
                if !resample {
                    self.replays_since_full += 1;
                    self.profiled_replays += 1;
                    let res = self.replay(req, plan, cache_hit, device, level, service_s);
                    return Ok((res, service_s));
                }
            }
            let (res, stats) = self.execute(req, plan, cache_hit, device, level, t0_s, ctx, rec)?;
            let service_s = stats.as_ref().map_or(0.0, gpu_sim::PipelineStats::time_s);
            self.profiles.insert(pkey, service_s);
            self.replays_since_full = 0;
            self.full_execs += 1;
            return Ok((res, service_s));
        }
        let (res, stats) = self.execute(req, plan, cache_hit, device, level, t0_s, ctx, rec)?;
        self.full_execs += 1;
        let service_s = stats.as_ref().map_or(0.0, gpu_sim::PipelineStats::time_s);
        Ok((res, service_s))
    }

    /// Execute one request through the recovery chain on a fresh simulator
    /// for `device`. Returns the result and the device-side stats (`None`
    /// for identity short-circuits).
    #[allow(clippy::too_many_arguments)]
    fn execute<R: Recorder>(
        &self,
        req: &ServeRequest,
        plan: &CachedPlan,
        cache_hit: bool,
        device: usize,
        level: DegradeLevel,
        t0_s: f64,
        ctx: SpanCtx,
        rec: &R,
    ) -> Result<(ServedResult, Option<gpu_sim::PipelineStats>), TransposeError> {
        let elem_words = req.elem_bytes / 4;
        let flag_words = plan.plan.as_ref().map_or(0, plan_flag_words);
        // C2R long-line shapes stage through global scratch; budget for it
        // so the device path is not spuriously OOMed into the host tail.
        let scratch_words = if plan.decision.scheme == Scheme::C2R && elem_words == 1 {
            let wg = plan.wg_size.unwrap_or(self.cfg.opts.wg_size);
            crate::c2r::c2r_scratch_words(&self.dev, req.rows, req.cols, wg)
        } else {
            0
        };
        // 2× data for the out-of-place recovery fallback, plus flag slack.
        let capacity = 2 * req.data.len() + elem_words * flag_words + scratch_words + 256;
        let mut sim = Sim::new(self.dev.clone(), capacity);
        // Cache-hit batches re-execute a plan that already ran once, so the
        // wall-clock win of the pooled engine is pure profit. WG-local and
        // cross-WG-claims kernels (the whole 100! family) genuinely ride
        // the pool, bit-identically to serial; only generic cross-WG
        // launches (and custom scheduler/fault/watchdog runs) pin serial.
        if cache_hit {
            sim.set_engine_mode(EngineMode::parallel_auto());
        }
        let engine = sim.engine_mode().label();
        // Conservative degradation pre-empts the recovery chain's own
        // second rung: same plan, baseline options.
        let conservative;
        let opts = if level == DegradeLevel::Conservative {
            conservative = GpuOptions::baseline_for(&self.dev);
            &conservative
        } else {
            &self.cfg.opts
        };
        // A tuned C2R work-group size overrides the session default (but
        // not a conservative-degrade baseline, which deliberately resets
        // every knob).
        let tuned;
        let opts = match plan.wg_size {
            Some(wg) if level != DegradeLevel::Conservative => {
                tuned = GpuOptions { wg_size: wg, ..*opts };
                &tuned
            }
            _ => opts,
        };
        let mut data = req.data.clone();
        // Kernel-launch spans emitted inside the recovery chain tag
        // themselves as children of this request's exec span.
        rec.push_ctx(ctx);
        let run = transpose_scheme_with_recovery_rec(
            &mut sim,
            &mut data,
            req.rows,
            req.cols,
            elem_words,
            &plan.decision,
            opts,
            &self.cfg.policy,
            rec,
            t0_s,
        );
        rec.pop_ctx();
        let (stats, recovery) = run?;
        let stats =
            if plan.decision.scheme == Scheme::Identity { None } else { Some(stats) };
        Ok((
            ServedResult {
                id: req.id,
                data,
                scheme: plan.decision.scheme,
                cache_hit,
                device,
                priority: req.priority,
                degrade: level,
                recovery,
                queue_wait_s: 0.0,
                service_s: stats.as_ref().map_or(0.0, gpu_sim::PipelineStats::time_s),
                engine,
            },
            stats,
        ))
    }

    /// Timing-replay of a profiled request: host-computed payload, the
    /// profiled service seconds for DES composition. The periodic full
    /// executions assert this path stays bit-identical to the device path.
    fn replay(
        &self,
        req: &ServeRequest,
        plan: &CachedPlan,
        cache_hit: bool,
        device: usize,
        level: DegradeLevel,
        service_s: f64,
    ) -> ServedResult {
        let data = if req.rows <= 1 || req.cols <= 1 {
            req.data.clone()
        } else {
            host_transpose_elems(&req.data, req.rows, req.cols, req.elem_bytes / 4)
        };
        ServedResult {
            id: req.id,
            data,
            scheme: plan.decision.scheme,
            cache_hit,
            device,
            priority: req.priority,
            degrade: level,
            recovery: RecoveryReport::new(RecoveryPath::Primary),
            queue_wait_s: 0.0,
            service_s,
            engine: "profiled",
        }
    }

    /// Execute one oversized request through the out-of-core streaming
    /// executor with `budget` words of simulated device memory. The
    /// streamed timeline's total becomes the result's `service_s`; the
    /// chunk journal guarantees the result is exact or the round errors —
    /// never a torn payload.
    fn stream_oversized<R: Recorder>(
        &self,
        req: &ServeRequest,
        budget: usize,
        rec: &R,
    ) -> Result<ServedResult, TransposeError> {
        let cfg = crate::stream::StreamConfig {
            budget_words: budget as u64,
            opts: self.cfg.opts,
            policy: self.cfg.policy,
            heuristic: self.cfg.heuristic,
        };
        let (data, report) = crate::stream::stream_transpose_rec(
            &self.dev,
            &req.data,
            req.rows,
            req.cols,
            req.elem_bytes / 4,
            &cfg,
            &crate::stream::StreamChaos::None,
            rec,
        )?;
        let decision = decide_scheme(req.rows, req.cols, &self.cfg.heuristic);
        Ok(ServedResult {
            id: req.id,
            data,
            scheme: decision.scheme,
            cache_hit: false,
            device: 0,
            priority: req.priority,
            degrade: DegradeLevel::Tuned,
            recovery: RecoveryReport::new(RecoveryPath::Primary),
            queue_wait_s: 0.0,
            service_s: report.total_s,
            engine: "stream",
        })
    }

    /// Shed one request to the host path: exact result, no device launch,
    /// no queue wait — the degradation ladder's last rung before
    /// rejection.
    fn host_shed(&self, req: &ServeRequest) -> ServedResult {
        let data = if req.rows <= 1 || req.cols <= 1 {
            req.data.clone()
        } else {
            host_transpose_elems(&req.data, req.rows, req.cols, req.elem_bytes / 4)
        };
        let decision = decide_scheme(req.rows, req.cols, &self.cfg.heuristic);
        ServedResult {
            id: req.id,
            data,
            scheme: decision.scheme,
            cache_hit: false,
            device: 0,
            priority: req.priority,
            degrade: DegradeLevel::HostShed,
            recovery: RecoveryReport::new(RecoveryPath::HostSequential),
            queue_wait_s: 0.0,
            service_s: 0.0,
            engine: "host",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::host_transpose_elems;
    use ipt_obs::{NoopRecorder, TraceRecorder};

    fn req(id: u64, rows: usize, cols: usize, elem_bytes: usize) -> ServeRequest {
        req_prio(id, rows, cols, elem_bytes, PriorityClass::Batch)
    }

    fn req_prio(
        id: u64,
        rows: usize,
        cols: usize,
        elem_bytes: usize,
        priority: PriorityClass,
    ) -> ServeRequest {
        let words = rows * cols * (elem_bytes / 4);
        let data: Vec<u32> = (0..words as u32).map(|x| x.wrapping_mul(2654435761)).collect();
        ServeRequest { id, rows, cols, elem_bytes, priority, data }
    }

    fn check_round_trip(r: &ServedResult, original: &ServeRequest) {
        if original.rows <= 1 || original.cols <= 1 {
            assert_eq!(r.data, original.data, "identity must not move storage");
            return;
        }
        let want = host_transpose_elems(
            &original.data,
            original.rows,
            original.cols,
            original.elem_bytes / 4,
        );
        assert_eq!(r.data, want, "request {} ({}x{})", r.id, original.rows, original.cols);
    }

    #[test]
    fn mixed_shapes_round_trip_through_one_round() {
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let mut srv = Server::new(dev, cfg);
        let rec = TraceRecorder::new();
        // Staged, square, identity, coprime, wide-element staged.
        let reqs = vec![
            req(0, 72, 60, 4),
            req(1, 60, 60, 4),
            req(2, 1, 512, 4),
            req(3, 127, 61, 4),
            req(4, 72, 60, 8),
            req(5, 72, 60, 4),
        ];
        for r in &reqs {
            srv.submit(r.clone(), &rec).unwrap();
        }
        let round = srv.process_round(&rec).unwrap();
        assert_eq!(round.results.len(), reqs.len());
        for res in &round.results {
            let original = reqs.iter().find(|r| r.id == res.id).unwrap();
            check_round_trip(res, original);
            assert_eq!(res.degrade, DegradeLevel::Tuned, "no overload, no degradation");
        }
        // Two same-shape 72x60x4 requests coalesced into one batch.
        let staged: Vec<_> = round
            .results
            .iter()
            .filter(|r| {
                let o = reqs.iter().find(|q| q.id == r.id).unwrap();
                (o.rows, o.cols, o.elem_bytes) == (72, 60, 4)
            })
            .collect();
        assert_eq!(staged.len(), 2);
        assert_eq!(staged[0].device, staged[1].device, "same batch, same device");
        // Identity ran without a launch: batches < shape classes.
        assert!(round.batches >= 3 && round.mean_occupancy >= 1.0);
        assert!(round.sim_total_s > 0.0);
        assert!(srv.clock_s() > 0.0);
        // Tracing: spans for launched requests, hit/miss counters add up.
        let hits = rec.counter("serve", Counter::PlanCacheHits);
        let misses = rec.counter("serve", Counter::PlanCacheMisses);
        assert_eq!(hits + misses, 5, "one lookup per shape class");
        assert_eq!(misses, 5, "first round is all cold");
    }

    #[test]
    fn cache_hits_on_repeat_rounds_and_plans_are_reused() {
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let mut srv = Server::new(dev, cfg);
        let rec = NoopRecorder;
        for round in 0..3 {
            for i in 0..4u64 {
                srv.submit(req(round * 10 + i, 72, 60, 4), &rec).unwrap();
            }
            let out = srv.process_round(&rec).unwrap();
            assert!(out.results.iter().all(|r| (r.cache_hit) == (round > 0)));
        }
        assert_eq!(srv.cache().misses(), 1);
        assert_eq!(srv.cache().hits(), 2);
        assert!(srv.cache().hit_rate() > 0.6);
    }

    #[test]
    fn admission_is_bounded_with_typed_backpressure() {
        let dev = DeviceSpec::tesla_k20();
        let mut cfg = ServeConfig::new(&dev);
        cfg.queue_capacity = 3;
        let mut srv = Server::new(dev, cfg);
        let rec = TraceRecorder::new();
        for i in 0..3 {
            srv.submit(req(i, 60, 60, 4), &rec).unwrap();
        }
        let err = srv.submit(req(99, 60, 60, 4), &rec).unwrap_err();
        match err {
            TransposeError::Backpressure { capacity, retry_after_s } => {
                assert_eq!(capacity, 3);
                assert!(retry_after_s > 0.0, "hint must be positive pre-calibration");
            }
            other => panic!("want Backpressure, got {other}"),
        }
        assert_eq!(rec.counter("serve", Counter::AdmissionRejections), 1);
        // Draining frees capacity — and calibrates the EWMA, so the next
        // rejection's hint reflects measured service time.
        srv.process_round(&rec).unwrap();
        for i in 0..3 {
            srv.submit(req(100 + i, 60, 60, 4), &rec).unwrap();
        }
        match srv.submit(req(199, 60, 60, 4), &rec).unwrap_err() {
            TransposeError::Backpressure { retry_after_s, .. } => {
                assert!(retry_after_s > 0.0, "calibrated hint must stay positive");
            }
            other => panic!("want Backpressure, got {other}"),
        }
    }

    #[test]
    fn malformed_requests_are_refused_with_typed_errors() {
        let dev = DeviceSpec::tesla_k20();
        let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
        let rec = NoopRecorder;
        let mut bad = req(0, 60, 60, 4);
        bad.elem_bytes = 3;
        assert!(matches!(
            srv.submit(bad, &rec).unwrap_err(),
            TransposeError::InvalidConfig { .. }
        ));
        let mut short = req(1, 60, 60, 4);
        short.data.pop();
        assert!(matches!(
            srv.submit(short, &rec).unwrap_err(),
            TransposeError::InvalidConfig { .. }
        ));
        assert_eq!(srv.backlog(), 0);
    }

    #[test]
    fn batches_shard_across_devices_and_split_at_max_batch() {
        let dev = DeviceSpec::tesla_k20();
        let mut cfg = ServeConfig::new(&dev);
        cfg.max_batch = 2;
        cfg.devices = 2;
        let mut srv = Server::new(dev, cfg);
        let rec = NoopRecorder;
        for i in 0..6 {
            srv.submit(req(i, 60, 60, 4), &rec).unwrap();
        }
        let round = srv.process_round(&rec).unwrap();
        assert_eq!(round.batches, 3, "6 same-shape requests at max_batch=2");
        let devices: std::collections::HashSet<usize> =
            round.results.iter().map(|r| r.device).collect();
        assert_eq!(devices.len(), 2, "round-robin must use both devices");
        assert!((round.mean_occupancy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cached_plan_equals_fresh_plan_and_results_are_bit_identical() {
        // Plan-cache determinism: the cached plan is the plan a fresh
        // pruned search would produce, and outputs are bit-identical.
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let rec = NoopRecorder;
        let fresh = build_plan(&dev, 72, 60, &cfg.heuristic, &cfg.opts, &rec);

        let mut srv = Server::new(dev.clone(), cfg.clone());
        let r = req(7, 72, 60, 4);
        srv.submit(r.clone(), &rec).unwrap();
        let first = srv.process_round(&rec).unwrap().results.remove(0);
        srv.submit(r.clone(), &rec).unwrap();
        let second = srv.process_round(&rec).unwrap().results.remove(0);

        assert!(!first.cache_hit && second.cache_hit);
        assert_eq!(first.data, second.data, "cached plan must not change results");
        let key = PlanKey {
            rows: 72,
            cols: 60,
            elem_bytes: 4,
            device: dev.name,
            scheme: Scheme::Staged,
        };
        let (cached, hit) = srv.cache().get_or_build(&key, || unreachable!("must be cached"));
        assert!(hit);
        assert_eq!(cached.decision, fresh.decision, "cached ≡ fresh pruned_search plan");
    }

    #[test]
    fn edf_admission_orders_by_deadline_not_arrival() {
        let dev = DeviceSpec::tesla_k20();
        let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
        let rec = NoopRecorder;
        // FIFO would serve 0, 1, 2; EDF must serve the interactive request
        // first and the background one last.
        srv.submit(req_prio(0, 60, 60, 4, PriorityClass::Background), &rec).unwrap();
        srv.submit(req_prio(1, 60, 60, 4, PriorityClass::Batch), &rec).unwrap();
        srv.submit(req_prio(2, 60, 60, 4, PriorityClass::Interactive), &rec).unwrap();
        let round = srv.process_round(&rec).unwrap();
        let order: Vec<u64> = round.results.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![2, 1, 0], "EDF order, not submission order");
        // Same class ties fall back to id order (deterministic total order).
        srv.submit(req(11, 60, 60, 4), &rec).unwrap();
        srv.submit(req(10, 60, 60, 4), &rec).unwrap();
        let round = srv.process_round(&rec).unwrap();
        let order: Vec<u64> = round.results.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![10, 11]);
    }

    #[test]
    fn overload_degrades_then_sheds_before_rejecting() {
        let dev = DeviceSpec::tesla_k20();
        let mut cfg = ServeConfig::new(&dev);
        cfg.queue_capacity = 8;
        cfg.degrade_at = 0.5; // positions 4..6 degrade
        cfg.shed_at = 0.75; // positions 6..8 shed
        let mut srv = Server::new(dev, cfg);
        let rec = TraceRecorder::new();
        let reqs: Vec<ServeRequest> = (0..8)
            .map(|i| {
                // Interactive head, background tail, so the ladder's order
                // is also the priority order.
                let prio = if i < 4 {
                    PriorityClass::Interactive
                } else if i < 6 {
                    PriorityClass::Batch
                } else {
                    PriorityClass::Background
                };
                req_prio(i, 60, 60, 4, prio)
            })
            .collect();
        for r in &reqs {
            srv.submit(r.clone(), &rec).unwrap();
        }
        let round = srv.process_round(&rec).unwrap();
        assert_eq!(round.results.len(), 8, "degradation must not drop requests");
        let mut tuned = 0;
        let mut conservative = 0;
        let mut shed = 0;
        for res in &round.results {
            let original = reqs.iter().find(|r| r.id == res.id).unwrap();
            check_round_trip(res, original);
            match res.degrade {
                DegradeLevel::Tuned => tuned += 1,
                DegradeLevel::Conservative => conservative += 1,
                DegradeLevel::HostShed => {
                    shed += 1;
                    assert_eq!(res.engine, "host");
                    assert_eq!(res.recovery.path, RecoveryPath::HostSequential);
                    assert_eq!(res.priority, PriorityClass::Background, "shed latest deadlines");
                    assert_eq!(res.service_s, 0.0, "shed requests never launch");
                }
            }
        }
        assert_eq!((tuned, conservative, shed), (4, 2, 2));
        assert_eq!(rec.counter("serve", Counter::PlansDegraded), 2);
        assert_eq!(rec.counter("serve", Counter::RequestsShed), 2);
    }

    #[test]
    fn oversized_requests_route_to_streaming_executor() {
        let dev = DeviceSpec::tesla_k20();
        let mut cfg = ServeConfig::new(&dev);
        // Anything above 2000 resident words streams; the big request's
        // 96x40 payload (3840 words) forces multiple chunks.
        cfg.stream_over_words = Some(2000);
        let mut srv = Server::new(dev, cfg);
        let rec = TraceRecorder::new();
        let big = req(1, 96, 40, 4);
        let small = req(2, 24, 10, 4);
        srv.submit(big.clone(), &rec).unwrap();
        srv.submit(small.clone(), &rec).unwrap();
        let round = srv.process_round(&rec).unwrap();
        assert_eq!(round.results.len(), 2);
        for res in &round.results {
            let original = if res.id == 1 { &big } else { &small };
            check_round_trip(res, original);
            if res.id == 1 {
                assert_eq!(res.engine, "stream", "oversized payload must stream");
                assert!(res.service_s > 0.0, "streamed service time comes from the DES");
                assert_eq!(res.degrade, DegradeLevel::Tuned, "streaming is not degradation");
            } else {
                assert_ne!(res.engine, "stream", "small payloads take the batched path");
            }
        }
        assert_eq!(rec.counter("serve", Counter::OversizedRouted), 1);
    }

    #[test]
    fn snapshot_round_trip_restores_warm_cache() {
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let rec = TraceRecorder::new();
        // Warm a server over four scheme families.
        let mut warm = Server::new(dev.clone(), cfg.clone());
        let shapes = [(72usize, 60usize), (60, 60), (127, 61), (1, 64)];
        for (i, (r, c)) in shapes.iter().enumerate() {
            warm.submit(req(i as u64, *r, *c, 4), &rec).unwrap();
        }
        warm.process_round(&rec).unwrap();
        let snapshot = warm.snapshot_json();
        assert_eq!(warm.snapshot_json(), snapshot, "snapshot is deterministic");

        // Restore into a fresh server: all lookups hit, results match a
        // cold server bit for bit.
        let mut restored = Server::new(dev.clone(), cfg.clone());
        let n = restored.restore_snapshot(&snapshot, &rec).unwrap();
        assert_eq!(n, shapes.len());
        assert_eq!(restored.cache().len(), shapes.len());
        assert_eq!(rec.counter("serve", Counter::SnapshotRestores), 1);

        let mut cold = Server::new(dev, cfg);
        for (i, (r, c)) in shapes.iter().enumerate() {
            restored.submit(req(100 + i as u64, *r, *c, 4), &rec).unwrap();
            cold.submit(req(100 + i as u64, *r, *c, 4), &rec).unwrap();
        }
        // The prime shape restores as a c2r plan with its tuned wg intact.
        let c2r: Vec<_> = restored
            .cache()
            .entries()
            .into_iter()
            .filter(|(k, _)| k.scheme == Scheme::C2R)
            .collect();
        assert_eq!(c2r.len(), 1, "127×61 must cache as c2r");
        assert!(c2r[0].1.wg_size.is_some(), "tuned wg size survives the snapshot");

        let warm_round = restored.process_round(&rec).unwrap();
        let cold_round = cold.process_round(&rec).unwrap();
        assert!(
            warm_round.results.iter().all(|r| r.cache_hit),
            "every restored shape must hit on first sight"
        );
        for (w, c) in warm_round.results.iter().zip(&cold_round.results) {
            assert_eq!(w.id, c.id);
            assert_eq!(w.data, c.data, "restored plans serve bit-identically");
            assert_eq!(w.scheme, c.scheme);
        }
    }

    #[test]
    fn pre_c2r_snapshot_is_stale_not_misrestored() {
        // A v1 snapshot predates the c2r scheme (and the per-entry wg
        // size). Even when every entry parses cleanly, it must be refused
        // as StaleVersion — never deserialized into plans that silently
        // miss the tuned launch configuration.
        let dev = DeviceSpec::tesla_k20();
        let rec = TraceRecorder::new();
        let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
        let v1 = format!(
            "{{\"snapshot_version\": 1, \"device\": \"{}\", \"entries\": \
             [{{\"rows\": 127, \"cols\": 61, \"elem_bytes\": 4, \"scheme\": \"coprime\", \
             \"reason\": \"no-feasible-tile\", \"tile_m\": null, \"tile_n\": null}}]}}",
            dev.name
        );
        assert!(matches!(
            srv.restore_snapshot(&v1, &rec).unwrap_err(),
            SnapshotError::StaleVersion { found: Some(1) }
        ));
        assert_eq!(srv.cache().len(), 0, "stale snapshots restore nothing");
    }

    #[test]
    fn corrupt_and_stale_snapshots_are_discarded() {
        let dev = DeviceSpec::tesla_k20();
        let rec = TraceRecorder::new();
        let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
        // Corrupt JSON.
        assert!(matches!(
            srv.restore_snapshot("{not json", &rec).unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
        // Stale version.
        let stale = format!(
            "{{\"snapshot_version\": {}, \"device\": \"{}\", \"entries\": []}}",
            SNAPSHOT_VERSION + 1,
            dev.name
        );
        assert!(matches!(
            srv.restore_snapshot(&stale, &rec).unwrap_err(),
            SnapshotError::StaleVersion { found: Some(v) } if v == SNAPSHOT_VERSION + 1
        ));
        // Wrong device.
        let other = Server::new(DeviceSpec::gtx580(), ServeConfig::new(&DeviceSpec::gtx580()));
        let foreign = other.snapshot_json();
        assert!(matches!(
            srv.restore_snapshot(&foreign, &rec).unwrap_err(),
            SnapshotError::DeviceMismatch { .. }
        ));
        // Malformed entry (unknown scheme) — all-or-nothing, nothing kept.
        let bad_entry = format!(
            "{{\"snapshot_version\": {SNAPSHOT_VERSION}, \"device\": \"{}\", \"entries\": \
             [{{\"rows\": 4, \"cols\": 4, \"elem_bytes\": 4, \"scheme\": \"alien\", \
             \"reason\": \"preferred\", \"tile_m\": null, \"tile_n\": null}}]}}",
            dev.name
        );
        assert!(matches!(
            srv.restore_snapshot(&bad_entry, &rec).unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
        assert_eq!(srv.cache().len(), 0, "rejected snapshots restore nothing");
        assert_eq!(
            rec.counter("serve", Counter::SnapshotRestores),
            0,
            "failed restores are not counted"
        );
        // The cold server still serves.
        srv.submit(req(0, 60, 60, 4), &rec).unwrap();
        assert_eq!(srv.process_round(&rec).unwrap().results.len(), 1);
    }

    #[test]
    fn profile_replay_is_timing_identical_and_bit_exact() {
        let dev = DeviceSpec::tesla_k20();
        let mut replay_cfg = ServeConfig::new(&dev);
        replay_cfg.profile_replay = true;
        replay_cfg.full_exec_every = 3;
        let mut fast = Server::new(dev.clone(), replay_cfg);
        let mut slow = Server::new(dev.clone(), ServeConfig::new(&dev));
        let rec = NoopRecorder;
        // Same stream through both servers, round by round: identical DES
        // timing and identical bits, with the fast server replaying most
        // repeats.
        for round in 0..4u64 {
            for i in 0..4u64 {
                let r = req(round * 10 + i, 72, 60, 4);
                fast.submit(r.clone(), &rec).unwrap();
                slow.submit(r, &rec).unwrap();
            }
            let f = fast.process_round(&rec).unwrap();
            let s = slow.process_round(&rec).unwrap();
            assert!(
                (f.sim_total_s - s.sim_total_s).abs() < 1e-12,
                "round {round}: replayed timing {} != full timing {}",
                f.sim_total_s,
                s.sim_total_s
            );
            for (a, b) in f.results.iter().zip(&s.results) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.data, b.data, "replay must be bit-identical");
                assert!(
                    (a.service_s - b.service_s).abs() < 1e-15,
                    "profiled service time must equal measured"
                );
            }
        }
        assert!(fast.profiled_replays() > 0, "repeats must replay");
        assert!(
            fast.full_execs() > fast.profiled_replays() / 3,
            "every third eligible repeat re-runs the device path \
             (full {} replays {})",
            fast.full_execs(),
            fast.profiled_replays()
        );
        assert!(slow.profiled_replays() == 0 && slow.full_execs() == 16);
    }
}
