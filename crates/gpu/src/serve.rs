//! Batched, plan-cached transposition serving layer.
//!
//! A long-lived [`Server`] accepts a stream of transpose requests
//! ([`ServeRequest`]), memoizes planning + autotuning work in a concurrent
//! [`PlanCache`] keyed by `(rows, cols, elem_bytes, device, scheme)`, and
//! coalesces same-shape requests into batched launches sharded across the
//! multi-device DES machinery of [`crate::multi`]. Admission is bounded:
//! past `queue_capacity` pending requests, [`Server::submit`] refuses with
//! [`TransposeError::Backpressure`] instead of growing without bound.
//!
//! Every request still flows through the verified recovery chain
//! ([`crate::recover::transpose_scheme_with_recovery`]) — the cache
//! memoizes *plans*, never results — and the whole layer is traced through
//! [`ipt_obs`]: plan-cache hit/miss counters, batch occupancy, per-batch
//! queue-wait, and one `Algorithm`-level span per request.
//!
//! The point of the cache is amortization: a serving workload repeats a
//! small set of shapes, so the §7.4 pruned autotune search runs once per
//! distinct shape instead of once per request. `repro serve` measures the
//! resulting throughput against the per-request-autotune baseline
//! (`cache_plans = false`).

use crate::autotune::{choose_tile_rec, TuneLog};
use crate::multi::LinkTopology;
use crate::opts::GpuOptions;
use crate::pipeline::plan_flag_words;
use crate::recover::{
    transpose_scheme_with_recovery, RecoveryPolicy, RecoveryReport, TransposeError,
};
use gpu_sim::{try_simulate_engines_at, DeviceSpec, ECmd, EngineMode, Sim, Timeline};
use ipt_core::stages::StagePlan;
use ipt_core::tiles::TileHeuristic;
use ipt_core::{decide_scheme, PlanDecision, Scheme};
use ipt_obs::{Counter, Level, Recorder};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Plan-cache key: everything a cached plan depends on. Two requests with
/// equal keys are guaranteed to plan identically (planning is
/// deterministic), so sharing the cached plan cannot change results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// Element width in bytes (4 or 8).
    pub elem_bytes: usize,
    /// Simulated device name the tune ran on.
    pub device: &'static str,
    /// Scheme the planner selected (part of the key so a heuristic change
    /// that re-routes a shape can never alias a stale entry).
    pub scheme: Scheme,
}

/// One memoized planning outcome: the scheme decision, the autotune log
/// that produced the tile (when the scheme is tiled), and the staged plan
/// ready to execute.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The (possibly tuned) scheme decision.
    pub decision: PlanDecision,
    /// What the autotune search did — `TuneLog::default()` for schemes
    /// that need no tuning (identity, coprime).
    pub tune: TuneLog,
    /// The executable plan, `None` for identity / coprime schemes.
    pub plan: Option<StagePlan>,
}

/// Concurrent memoization of [`CachedPlan`]s with hit/miss accounting.
///
/// Thread-safe by construction (`Mutex` map + atomic counters) so a future
/// multi-threaded front-end can share one cache; the current [`Server`]
/// drives it single-threaded.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<CachedPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Fresh empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `key`, building and inserting via `build` on a miss.
    /// Returns the plan and whether this was a hit.
    pub fn get_or_build(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> CachedPlan,
    ) -> (Arc<CachedPlan>, bool) {
        if let Some(hit) = self.map.lock().expect("plan cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        // Build outside the lock: autotuning is seconds of work and the
        // planner is deterministic, so a racing duplicate build is merely
        // redundant, never wrong.
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("plan cache poisoned");
        let entry = map.entry(key.clone()).or_insert_with(|| Arc::clone(&built));
        (Arc::clone(entry), false)
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= distinct keys built) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]` (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 { 0.0 } else { h / (h + m) }
    }
}

/// Build the plan for one key: scheme decision, then — for the staged
/// scheme — the §7.4 pruned autotune search (the expensive part the cache
/// amortizes). Deterministic and total: every shape gets a plan decision,
/// prime shapes route to coprime/host fallbacks instead of panicking.
#[must_use]
pub fn build_plan<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    heuristic: &TileHeuristic,
    opts: &GpuOptions,
    rec: &R,
) -> CachedPlan {
    let mut decision = decide_scheme(rows, cols, heuristic);
    let mut tune = TuneLog::default();
    if decision.scheme == Scheme::Staged {
        let (tile, log) = choose_tile_rec(dev, rows, cols, heuristic, opts, rec);
        tune = log;
        if tile.is_some() {
            decision.tile = tile;
        }
    }
    let plan = decision.staged_plan(rows, cols);
    CachedPlan { decision, tune, plan }
}

/// One transposition request.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen request id, echoed in the result.
    pub id: u64,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// Element width in bytes: 4 (f32/u32) or 8 (f64 as two words).
    pub elem_bytes: usize,
    /// Row-major payload, packed as 32-bit words
    /// (`rows * cols * elem_bytes / 4` of them).
    pub data: Vec<u32>,
}

/// One served result.
#[derive(Debug, Clone)]
pub struct ServedResult {
    /// Echo of [`ServeRequest::id`].
    pub id: u64,
    /// Transposed payload (same packing as the request).
    pub data: Vec<u32>,
    /// Scheme the plan used.
    pub scheme: Scheme,
    /// Whether planning was served from cache.
    pub cache_hit: bool,
    /// Device index the batch ran on.
    pub device: usize,
    /// Recovery report from the execution chain.
    pub recovery: RecoveryReport,
    /// Simulated seconds this request's batch waited for its engines.
    pub queue_wait_s: f64,
    /// Simulated device-side seconds this request's kernels took
    /// (0 for the identity short-circuit).
    pub service_s: f64,
    /// Simulation engine the request executed on (`"serial"` or
    /// `"parallel"`) — per-request provenance for the wall-clock numbers.
    pub engine: &'static str,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: pending requests past this refuse with
    /// [`TransposeError::Backpressure`].
    pub queue_capacity: usize,
    /// Max same-shape requests coalesced into one batched launch.
    pub max_batch: usize,
    /// Simulated device count the batches shard across.
    pub devices: usize,
    /// PCIe topology of the device set.
    pub link: LinkTopology,
    /// Tile heuristic driving scheme decisions and the pruned search.
    pub heuristic: TileHeuristic,
    /// Kernel options (claim protocol, work-group sizes).
    pub opts: GpuOptions,
    /// Recovery policy every request executes under.
    pub policy: RecoveryPolicy,
    /// `false` disables memoization: every request replans (and re-tunes)
    /// from scratch — the honest per-request baseline `repro serve`
    /// compares against.
    pub cache_plans: bool,
}

impl ServeConfig {
    /// Sensible defaults for `dev`: 64-deep admission queue, batches of 8,
    /// two devices behind a shared link, caching on.
    #[must_use]
    pub fn new(dev: &DeviceSpec) -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 8,
            devices: 2,
            link: LinkTopology::Shared,
            heuristic: TileHeuristic { preferred_lo: 10, ..TileHeuristic::default() },
            opts: GpuOptions::tuned_for(dev),
            policy: RecoveryPolicy::default(),
            cache_plans: true,
        }
    }
}

/// Summary of one [`Server::process_round`] call.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Results, in completion order (batch DES order).
    pub results: Vec<ServedResult>,
    /// Batched launches this round (identity requests never launch).
    pub batches: usize,
    /// Mean requests per launched batch (0.0 when nothing launched).
    pub mean_occupancy: f64,
    /// Simulated end-to-end seconds of the round's DES timeline.
    pub sim_total_s: f64,
    /// DES timeline of the round's launches.
    pub timeline: Timeline,
}

/// The batched, plan-cached transposition service.
///
/// Single-threaded driver over a thread-safe [`PlanCache`]; requests are
/// admitted with [`Server::submit`] (bounded) and executed in rounds with
/// [`Server::process_round`], which batches same-shape requests and shards
/// the batches round-robin across the configured simulated devices.
pub struct Server {
    dev: DeviceSpec,
    cfg: ServeConfig,
    cache: PlanCache,
    pending: VecDeque<(ServeRequest, f64)>,
    clock_s: f64,
    next_device: usize,
}

impl Server {
    /// New server over `devices` simulated copies of `dev`.
    #[must_use]
    pub fn new(dev: DeviceSpec, cfg: ServeConfig) -> Self {
        Self { dev, cfg, cache: PlanCache::new(), pending: VecDeque::new(), clock_s: 0.0, next_device: 0 }
    }

    /// The plan cache (hit/miss inspection).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Server clock: simulated seconds of service so far.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Pending (admitted, not yet processed) request count.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Admit one request.
    ///
    /// # Errors
    ///
    /// [`TransposeError::Backpressure`] when the admission queue is full —
    /// the caller should `process_round` (or drop load) and retry.
    /// [`TransposeError::InvalidConfig`] for unsupported element widths or
    /// a payload that disagrees with the declared shape.
    pub fn submit<R: Recorder>(
        &mut self,
        req: ServeRequest,
        rec: &R,
    ) -> Result<(), TransposeError> {
        if self.pending.len() >= self.cfg.queue_capacity {
            rec.add("serve", Counter::AdmissionRejections, 1);
            return Err(TransposeError::Backpressure { capacity: self.cfg.queue_capacity });
        }
        if req.elem_bytes != 4 && req.elem_bytes != 8 {
            return Err(TransposeError::InvalidConfig {
                what: format!("unsupported elem_bytes {} (want 4 or 8)", req.elem_bytes),
            });
        }
        let words = ipt_core::check::checked_bytes(req.rows, req.cols, req.elem_bytes / 4)
            .and_then(|w| usize::try_from(w).ok())
            .ok_or_else(|| TransposeError::InvalidConfig {
                what: format!("{}x{} overflows the address space", req.rows, req.cols),
            })?;
        if req.data.len() != words {
            return Err(TransposeError::InvalidConfig {
                what: format!(
                    "payload is {} words, shape {}x{} elem {} needs {words}",
                    req.data.len(),
                    req.rows,
                    req.cols,
                    req.elem_bytes
                ),
            });
        }
        self.pending.push_back((req, self.clock_s));
        Ok(())
    }

    /// Drain the backlog: batch same-shape requests, shard batches across
    /// devices, execute every request through the recovery chain, and
    /// advance the server clock by the round's DES timeline.
    ///
    /// # Errors
    ///
    /// Only unrecoverable per-request failures propagate (e.g. an invalid
    /// plan the recovery chain rejects); recoverable faults are absorbed
    /// and reported per result.
    pub fn process_round<R: Recorder>(
        &mut self,
        rec: &R,
    ) -> Result<RoundReport, TransposeError> {
        let round_start = self.clock_s;
        let drained: Vec<(ServeRequest, f64)> = self.pending.drain(..).collect();

        // Coalesce same-shape requests, preserving arrival order within a
        // shape class.
        let mut groups: Vec<(PlanKey, Vec<(ServeRequest, f64)>)> = Vec::new();
        for (req, at) in drained {
            let decision = decide_scheme(req.rows, req.cols, &self.cfg.heuristic);
            let key = PlanKey {
                rows: req.rows,
                cols: req.cols,
                elem_bytes: req.elem_bytes,
                device: self.dev.name,
                scheme: decision.scheme,
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push((req, at)),
                None => groups.push((key, vec![(req, at)])),
            }
        }

        let mut results: Vec<ServedResult> = Vec::new();
        // One DES queue per launched batch: [H2D, compute, D2H].
        let mut queues: Vec<Vec<ECmd>> = Vec::new();
        let mut arrivals: Vec<f64> = Vec::new();
        // (batch DES queue index, device, result indices) for wait back-fill.
        let mut launched: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut batched_requests = 0u64;

        for (key, members) in groups {
            // With caching on, one lookup serves the whole group; the
            // baseline mode replans per request — that is exactly the
            // per-request autotuning cost the cache exists to amortize.
            let group_plan =
                if self.cfg.cache_plans { Some(self.lookup_plan(&key, rec)) } else { None };
            for batch in members.chunks(self.cfg.max_batch) {
                let device = self.next_device;
                self.next_device = (self.next_device + 1) % self.cfg.devices;
                let mut kernel_s = 0.0;
                let mut batch_bytes = 0.0;
                let mut idxs = Vec::with_capacity(batch.len());
                let mut arrival = f64::INFINITY;
                for (req, at) in batch {
                    arrival = arrival.min(at - round_start);
                    let (plan, hit) = match &group_plan {
                        Some((p, h)) => (Arc::clone(p), *h),
                        None => self.lookup_plan(&key, rec),
                    };
                    let (res, stats) = self.execute(req, &plan, hit, device, rec)?;
                    kernel_s += stats.map_or(0.0, |s| s.time_s());
                    batch_bytes +=
                        ipt_core::check::bytes_f64(req.rows, req.cols, req.elem_bytes);
                    idxs.push(results.len());
                    results.push(res);
                }
                if key.scheme == Scheme::Identity {
                    // Identity requests complete in-memory; no launch.
                    continue;
                }
                let q = queues.len();
                let (h2d_e, d2h_e) = self.cfg.link.link_engines(self.cfg.devices, device);
                let xfer = self.dev.pcie.transfer_time(batch_bytes);
                queues.push(vec![
                    ECmd {
                        engine: h2d_e,
                        duration_s: xfer,
                        label: format!("H2D batch {q}").into(),
                        wait: None,
                    },
                    ECmd {
                        engine: device,
                        duration_s: kernel_s,
                        label: format!("{} batch {q}", key.scheme.name()).into(),
                        wait: None,
                    },
                    ECmd {
                        engine: d2h_e,
                        duration_s: xfer,
                        label: format!("D2H batch {q}").into(),
                        wait: None,
                    },
                ]);
                arrivals.push(arrival.max(0.0));
                launched.push((q, idxs));
                batched_requests += batch.len() as u64;
            }
        }

        let setup = self.dev.queue_create_overhead_s;
        let timeline = if queues.is_empty() {
            Timeline { spans: Vec::new(), total_s: 0.0, setup_s: 0.0 }
        } else {
            try_simulate_engines_at(
                self.cfg.link.num_engines(self.cfg.devices),
                setup,
                &queues,
                &arrivals,
            )?
        };

        // Back-fill per-request queue waits and emit per-request spans.
        let mut total_wait_us = 0.0;
        for (q, idxs) in &launched {
            let start = timeline.queue_start_s(*q).unwrap_or(arrivals[*q]);
            let wait = (start - arrivals[*q]).max(0.0);
            total_wait_us += wait * 1e6 * idxs.len() as f64;
            for &i in idxs {
                results[i].queue_wait_s = wait;
                if rec.enabled() {
                    let t0 = (round_start + start) * 1e6;
                    rec.span(
                        Level::Algorithm,
                        &format!("serve req {}", results[i].id),
                        t0,
                        (timeline.total_s - start).max(0.0) * 1e6,
                        results[i].device as u32,
                        &[("wait_us", wait * 1e6), ("cache_hit", f64::from(results[i].cache_hit))],
                    );
                }
            }
        }
        self.clock_s += timeline.total_s;

        let batches = launched.len();
        rec.add("serve", Counter::BatchesLaunched, batches as u64);
        rec.add("serve", Counter::BatchedRequests, batched_requests);
        rec.add("serve", Counter::QueueWaitUs, total_wait_us as u64);
        let mean_occupancy =
            if batches == 0 { 0.0 } else { batched_requests as f64 / batches as f64 };
        if rec.enabled() {
            rec.gauge("serve", "batch_occupancy", mean_occupancy);
        }
        Ok(RoundReport {
            results,
            batches,
            mean_occupancy,
            sim_total_s: timeline.total_s,
            timeline,
        })
    }

    /// Plan lookup honoring `cache_plans`; records hit/miss counters.
    fn lookup_plan<R: Recorder>(&self, key: &PlanKey, rec: &R) -> (Arc<CachedPlan>, bool) {
        let build = || {
            build_plan(&self.dev, key.rows, key.cols, &self.cfg.heuristic, &self.cfg.opts, rec)
        };
        let (plan, hit) = if self.cfg.cache_plans {
            self.cache.get_or_build(key, build)
        } else {
            // Baseline mode: replan every time, keeping miss accounting.
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
            (Arc::new(build()), false)
        };
        rec.add(
            "serve",
            if hit { Counter::PlanCacheHits } else { Counter::PlanCacheMisses },
            1,
        );
        (plan, hit)
    }

    /// Execute one request through the recovery chain on a fresh simulator
    /// for `device`. Returns the result and the device-side stats (`None`
    /// for identity short-circuits).
    fn execute<R: Recorder>(
        &self,
        req: &ServeRequest,
        plan: &CachedPlan,
        cache_hit: bool,
        device: usize,
        _rec: &R,
    ) -> Result<(ServedResult, Option<gpu_sim::PipelineStats>), TransposeError> {
        let elem_words = req.elem_bytes / 4;
        let flag_words = plan.plan.as_ref().map_or(0, plan_flag_words);
        // 2× data for the out-of-place recovery fallback, plus flag slack.
        let capacity = 2 * req.data.len() + elem_words * flag_words + 256;
        let mut sim = Sim::new(self.dev.clone(), capacity);
        // Cache-hit batches re-execute a plan that already ran once, so the
        // wall-clock win of the pooled engine is pure profit; the launch
        // gate still falls back to serial for cross-work-group kernels.
        if cache_hit {
            sim.set_engine_mode(EngineMode::parallel_auto());
        }
        let engine = sim.engine_mode().label();
        let mut data = req.data.clone();
        let (stats, recovery) = transpose_scheme_with_recovery(
            &mut sim,
            &mut data,
            req.rows,
            req.cols,
            elem_words,
            &plan.decision,
            &self.cfg.opts,
            &self.cfg.policy,
        )?;
        let stats =
            if plan.decision.scheme == Scheme::Identity { None } else { Some(stats) };
        Ok((
            ServedResult {
                id: req.id,
                data,
                scheme: plan.decision.scheme,
                cache_hit,
                device,
                recovery,
                queue_wait_s: 0.0,
                service_s: stats.as_ref().map_or(0.0, gpu_sim::PipelineStats::time_s),
                engine,
            },
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::host_transpose_elems;
    use ipt_obs::{NoopRecorder, TraceRecorder};

    fn req(id: u64, rows: usize, cols: usize, elem_bytes: usize) -> ServeRequest {
        let words = rows * cols * (elem_bytes / 4);
        let data: Vec<u32> = (0..words as u32).map(|x| x.wrapping_mul(2654435761)).collect();
        ServeRequest { id, rows, cols, elem_bytes, data }
    }

    fn check_round_trip(r: &ServedResult, original: &ServeRequest) {
        if original.rows <= 1 || original.cols <= 1 {
            assert_eq!(r.data, original.data, "identity must not move storage");
            return;
        }
        let want = host_transpose_elems(
            &original.data,
            original.rows,
            original.cols,
            original.elem_bytes / 4,
        );
        assert_eq!(r.data, want, "request {} ({}x{})", r.id, original.rows, original.cols);
    }

    #[test]
    fn mixed_shapes_round_trip_through_one_round() {
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let mut srv = Server::new(dev, cfg);
        let rec = TraceRecorder::new();
        // Staged, square, identity, coprime, wide-element staged.
        let reqs = vec![
            req(0, 72, 60, 4),
            req(1, 60, 60, 4),
            req(2, 1, 512, 4),
            req(3, 127, 61, 4),
            req(4, 72, 60, 8),
            req(5, 72, 60, 4),
        ];
        for r in &reqs {
            srv.submit(r.clone(), &rec).unwrap();
        }
        let round = srv.process_round(&rec).unwrap();
        assert_eq!(round.results.len(), reqs.len());
        for res in &round.results {
            let original = reqs.iter().find(|r| r.id == res.id).unwrap();
            check_round_trip(res, original);
        }
        // Two same-shape 72x60x4 requests coalesced into one batch.
        let staged: Vec<_> = round
            .results
            .iter()
            .filter(|r| {
                let o = reqs.iter().find(|q| q.id == r.id).unwrap();
                (o.rows, o.cols, o.elem_bytes) == (72, 60, 4)
            })
            .collect();
        assert_eq!(staged.len(), 2);
        assert_eq!(staged[0].device, staged[1].device, "same batch, same device");
        // Identity ran without a launch: batches < shape classes.
        assert!(round.batches >= 3 && round.mean_occupancy >= 1.0);
        assert!(round.sim_total_s > 0.0);
        assert!(srv.clock_s() > 0.0);
        // Tracing: spans for launched requests, hit/miss counters add up.
        let hits = rec.counter("serve", Counter::PlanCacheHits);
        let misses = rec.counter("serve", Counter::PlanCacheMisses);
        assert_eq!(hits + misses, 5, "one lookup per shape class");
        assert_eq!(misses, 5, "first round is all cold");
    }

    #[test]
    fn cache_hits_on_repeat_rounds_and_plans_are_reused() {
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let mut srv = Server::new(dev, cfg);
        let rec = NoopRecorder;
        for round in 0..3 {
            for i in 0..4u64 {
                srv.submit(req(round * 10 + i, 72, 60, 4), &rec).unwrap();
            }
            let out = srv.process_round(&rec).unwrap();
            assert!(out.results.iter().all(|r| (r.cache_hit) == (round > 0)));
        }
        assert_eq!(srv.cache().misses(), 1);
        assert_eq!(srv.cache().hits(), 2);
        assert!(srv.cache().hit_rate() > 0.6);
    }

    #[test]
    fn admission_is_bounded_with_typed_backpressure() {
        let dev = DeviceSpec::tesla_k20();
        let mut cfg = ServeConfig::new(&dev);
        cfg.queue_capacity = 3;
        let mut srv = Server::new(dev, cfg);
        let rec = TraceRecorder::new();
        for i in 0..3 {
            srv.submit(req(i, 60, 60, 4), &rec).unwrap();
        }
        let err = srv.submit(req(99, 60, 60, 4), &rec).unwrap_err();
        assert!(
            matches!(err, TransposeError::Backpressure { capacity: 3 }),
            "{err}"
        );
        assert_eq!(rec.counter("serve", Counter::AdmissionRejections), 1);
        // Draining frees capacity.
        srv.process_round(&rec).unwrap();
        srv.submit(req(99, 60, 60, 4), &rec).unwrap();
    }

    #[test]
    fn malformed_requests_are_refused_with_typed_errors() {
        let dev = DeviceSpec::tesla_k20();
        let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
        let rec = NoopRecorder;
        let mut bad = req(0, 60, 60, 4);
        bad.elem_bytes = 3;
        assert!(matches!(
            srv.submit(bad, &rec).unwrap_err(),
            TransposeError::InvalidConfig { .. }
        ));
        let mut short = req(1, 60, 60, 4);
        short.data.pop();
        assert!(matches!(
            srv.submit(short, &rec).unwrap_err(),
            TransposeError::InvalidConfig { .. }
        ));
        assert_eq!(srv.backlog(), 0);
    }

    #[test]
    fn batches_shard_across_devices_and_split_at_max_batch() {
        let dev = DeviceSpec::tesla_k20();
        let mut cfg = ServeConfig::new(&dev);
        cfg.max_batch = 2;
        cfg.devices = 2;
        let mut srv = Server::new(dev, cfg);
        let rec = NoopRecorder;
        for i in 0..6 {
            srv.submit(req(i, 60, 60, 4), &rec).unwrap();
        }
        let round = srv.process_round(&rec).unwrap();
        assert_eq!(round.batches, 3, "6 same-shape requests at max_batch=2");
        let devices: std::collections::HashSet<usize> =
            round.results.iter().map(|r| r.device).collect();
        assert_eq!(devices.len(), 2, "round-robin must use both devices");
        assert!((round.mean_occupancy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cached_plan_equals_fresh_plan_and_results_are_bit_identical() {
        // Plan-cache determinism: the cached plan is the plan a fresh
        // pruned search would produce, and outputs are bit-identical.
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let rec = NoopRecorder;
        let fresh = build_plan(&dev, 72, 60, &cfg.heuristic, &cfg.opts, &rec);

        let mut srv = Server::new(dev.clone(), cfg.clone());
        let r = req(7, 72, 60, 4);
        srv.submit(r.clone(), &rec).unwrap();
        let first = srv.process_round(&rec).unwrap().results.remove(0);
        srv.submit(r.clone(), &rec).unwrap();
        let second = srv.process_round(&rec).unwrap().results.remove(0);

        assert!(!first.cache_hit && second.cache_hit);
        assert_eq!(first.data, second.data, "cached plan must not change results");
        let key = PlanKey {
            rows: 72,
            cols: 60,
            elem_bytes: 4,
            device: dev.name,
            scheme: Scheme::Staged,
        };
        let (cached, hit) = srv.cache().get_or_build(&key, || unreachable!("must be cached"));
        assert!(hit);
        assert_eq!(cached.decision, fresh.decision, "cached ≡ fresh pruned_search plan");
    }
}
