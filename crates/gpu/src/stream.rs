//! Out-of-core streaming transposition with checkpointed chunk recovery.
//!
//! The paper's schemes assume the whole matrix is resident in device global
//! memory. This module lifts that assumption: a matrix exceeding the
//! device-memory budget is cut into row-band ASTA panels by
//! [`ipt_core::outofcore::plan_chunks`] and pipelined
//! H2D → transpose kernels → D2H across the Tesla K20's two copy engines
//! (the §6 DES machinery in [`gpu_sim::queue`]), double-buffered so chunk
//! `i+1` uploads while chunk `i` computes and chunk `i−1` downloads.
//!
//! The pipeline is **crash-consistent**: a [`ChunkJournal`] tracks every
//! chunk through `Pending → Staged → Transposed → Committed` with a
//! permutation-invariant multiset checksum per chunk. Any transient H2D/D2H
//! fault, kernel abort, or mid-stream engine crash is recovered by
//!
//! 1. capped-exponential retry with seeded jitter (the PR 1
//!    [`RecoveryPolicy`] backoff),
//! 2. chunk-granular rollback to the last `Committed` boundary (a chunk
//!    redoes its own upload/kernel/download; committed chunks are never
//!    re-transferred),
//! 3. a degradation ladder `Overlapped → SingleEngine → HostChunk` whose
//!    last rung transposes the chunk on the host — the PR 1
//!    sequential-host guarantee, which cannot fail.
//!
//! Never a torn matrix (the output is only assembled from committed
//! chunks), never a silent re-commit (a second `commit` of the same chunk
//! is a typed [`TransposeError::Journal`] error).
//!
//! The performance contract follows the FPGA transposition roofline
//! (SNIPPETS.md snippet 3): with full overlap, throughput is bounded by the
//! busiest engine — `roofline_s = max(Σ H2D, Σ D2H, Σ kernel)` — and the
//! `repro outofcore` experiment gates achieved throughput at ≥ 70% of that
//! bound.

use crate::host::record_transfer_fault;
use crate::opts::GpuOptions;
use crate::recover::{
    host_transpose_elems, multiset_checksum, transpose_scheme_with_recovery_rec, RecoveryPolicy,
    TransposeError,
};
use gpu_sim::fault::{FaultKind, FaultPlan, FaultSource};
use gpu_sim::queue::{
    try_simulate_queues_crash, try_simulate_queues_dep, Cmd, EngineCrash, QCmd, QueueError,
    Timeline,
};
use gpu_sim::{ChaosPlan, DeviceSpec, Sim};
use ipt_core::check;
use ipt_core::outofcore::{plan_chunks, ChunkPlan};
use ipt_core::{decide_scheme, TileHeuristic};
use ipt_obs::{Counter, Level, Recorder};
use serde::Serialize;

/// Modelled host-fallback bandwidth for the ladder's last rung, GB/s.
/// Deliberately far below any device path: landing on `HostChunk` must be
/// visible in the throughput numbers, not hidden.
const HOST_FALLBACK_GBPS: f64 = 1.0;

/// Configuration of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Usable device global memory, in u32 words. The planner splits this
    /// across two ping-pong chunk buffers.
    pub budget_words: u64,
    /// Kernel options for the per-chunk device transposition.
    pub opts: GpuOptions,
    /// Retry/backoff/fallback policy (chunk retries reuse the PR 1 shape:
    /// capped exponential backoff with seeded jitter).
    pub policy: RecoveryPolicy,
    /// Tile heuristic for per-chunk scheme decisions.
    pub heuristic: TileHeuristic,
}

impl StreamConfig {
    /// Defaults tuned for `dev` with the given memory budget.
    #[must_use]
    pub fn new(dev: &DeviceSpec, budget_words: u64) -> Self {
        Self {
            budget_words,
            opts: GpuOptions::tuned_for(dev),
            policy: RecoveryPolicy::default(),
            heuristic: TileHeuristic::default(),
        }
    }
}

/// Lifecycle of one chunk in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ChunkState {
    /// Not yet uploaded (or rolled back after a fault).
    Pending,
    /// H2D transfer completed; chunk resident on the device.
    Staged,
    /// Kernel pipeline completed and checksum-verified on the device.
    Transposed,
    /// D2H transfer completed and scattered into the output — durable.
    Committed,
}

/// One chunk's journal entry.
#[derive(Debug, Clone, Serialize)]
pub struct ChunkRecord {
    /// Chunk index in plan order.
    pub index: usize,
    /// First row of the band.
    pub row0: usize,
    /// Rows in the band.
    pub rows: usize,
    /// Current lifecycle state.
    pub state: ChunkState,
    /// Multiset checksum of the band's words (permutation-invariant, so it
    /// holds across the transpose).
    pub checksum: (u64, u64),
    /// Upload/kernel/download attempts spent on this chunk (1 = clean).
    pub attempts: usize,
    /// Ladder rung that finally committed the chunk.
    pub path: StreamPath,
}

/// The degradation ladder, in order. Global and monotonic: once a rung is
/// abandoned the stream never climbs back within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum StreamPath {
    /// Double-buffered across both copy engines (the contract path).
    Overlapped,
    /// Serialized on one queue: no overlap, same transfers.
    SingleEngine,
    /// Chunk transposed on the host — no device transfers at all. The PR 1
    /// sequential-host guarantee: cannot fail.
    HostChunk,
}

impl std::fmt::Display for StreamPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StreamPath::Overlapped => "overlapped",
            StreamPath::SingleEngine => "single-engine",
            StreamPath::HostChunk => "host-chunk",
        })
    }
}

/// Crash-consistency journal: per-chunk state machine with enforced
/// transitions. Illegal transitions — above all a second commit of a
/// committed chunk, which would duplicate a transfer into the output —
/// are typed [`TransposeError::Journal`] errors, never silent.
#[derive(Debug, Clone, Serialize)]
pub struct ChunkJournal {
    /// Entries, one per chunk, in plan order.
    pub chunks: Vec<ChunkRecord>,
}

impl ChunkJournal {
    /// Fresh journal for a plan: every chunk `Pending`.
    #[must_use]
    pub fn new(plan: &ChunkPlan) -> Self {
        let chunks = (0..plan.num_chunks)
            .map(|i| {
                let (row0, rows) = plan.chunk_range(i);
                ChunkRecord {
                    index: i,
                    row0,
                    rows,
                    state: ChunkState::Pending,
                    checksum: (0, 0),
                    attempts: 0,
                    path: StreamPath::Overlapped,
                }
            })
            .collect();
        Self { chunks }
    }

    fn transition(
        &mut self,
        i: usize,
        from: ChunkState,
        to: ChunkState,
    ) -> Result<(), TransposeError> {
        let cur = self.chunks[i].state;
        if cur != from {
            return Err(TransposeError::Journal {
                chunk: i,
                what: format!("cannot move {cur:?} → {to:?} (requires {from:?})"),
            });
        }
        self.chunks[i].state = to;
        Ok(())
    }

    /// `Pending → Staged`: the band's H2D completed. Records the band
    /// checksum and charges one attempt.
    ///
    /// # Errors
    /// [`TransposeError::Journal`] unless the chunk is `Pending`.
    pub fn stage(&mut self, i: usize, checksum: (u64, u64)) -> Result<(), TransposeError> {
        self.transition(i, ChunkState::Pending, ChunkState::Staged)?;
        self.chunks[i].checksum = checksum;
        self.chunks[i].attempts += 1;
        Ok(())
    }

    /// `Staged → Transposed`: kernels done, device-side checksum matches.
    ///
    /// # Errors
    /// [`TransposeError::Journal`] unless the chunk is `Staged`.
    pub fn transposed(&mut self, i: usize) -> Result<(), TransposeError> {
        self.transition(i, ChunkState::Staged, ChunkState::Transposed)
    }

    /// `Transposed → Committed`: D2H completed, band scattered into the
    /// output. Committing a committed chunk is the one transition the
    /// journal exists to forbid.
    ///
    /// # Errors
    /// [`TransposeError::Journal`] unless the chunk is `Transposed`.
    pub fn commit(&mut self, i: usize, path: StreamPath) -> Result<(), TransposeError> {
        if self.chunks[i].state == ChunkState::Committed {
            return Err(TransposeError::Journal {
                chunk: i,
                what: "already committed: refusing duplicate commit".into(),
            });
        }
        self.transition(i, ChunkState::Transposed, ChunkState::Committed)?;
        self.chunks[i].path = path;
        Ok(())
    }

    /// Roll an in-flight chunk back to `Pending` (fault recovery). A
    /// committed chunk cannot be rolled back — it is durable.
    ///
    /// # Errors
    /// [`TransposeError::Journal`] when the chunk is `Committed`.
    pub fn rollback(&mut self, i: usize) -> Result<(), TransposeError> {
        if self.chunks[i].state == ChunkState::Committed {
            return Err(TransposeError::Journal {
                chunk: i,
                what: "committed chunks are durable: refusing rollback".into(),
            });
        }
        self.chunks[i].state = ChunkState::Pending;
        Ok(())
    }

    /// Index of the first chunk not yet committed — the resume point after
    /// a crash. `None` when everything is durable.
    #[must_use]
    pub fn first_uncommitted(&self) -> Option<usize> {
        self.chunks.iter().position(|c| c.state != ChunkState::Committed)
    }

    /// All chunks durable?
    #[must_use]
    pub fn all_committed(&self) -> bool {
        self.first_uncommitted().is_none()
    }

    /// Serialize the journal (crash-recovery artifact for the campaign).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

/// Fault campaign modes for one streaming run.
#[derive(Debug)]
pub enum StreamChaos {
    /// Fault-free reference run.
    None,
    /// A single-shot transfer fault (seeded [`FaultPlan`] with a
    /// `FailH2D`/`FailD2H` kind).
    TransferOnce(FaultPlan),
    /// Sustained per-queue transfer chaos (seeded [`ChaosPlan`], normally
    /// built with [`gpu_sim::fault::ChaosConfig::transfers`]).
    TransferChaos(ChaosPlan),
    /// Abort the kernel pipeline of one chunk (recovered in place by the
    /// PR 1 stage-retry chain).
    KernelAbort {
        /// Target chunk index.
        chunk: usize,
        /// Seed for the abort trigger point.
        seed: u64,
    },
    /// Kill one engine at `frac` of committed progress: chunks committed
    /// before the crash stay durable, the stream resumes from the journal's
    /// first uncommitted chunk in a fresh session.
    EngineCrashAt {
        /// Engine that dies (0 = H2D copy, 1 = D2H copy, 2 = compute).
        engine: usize,
        /// Progress fraction in `[0, 1)` at which it dies.
        frac: f64,
    },
}

/// Everything a streaming run reports.
#[derive(Debug, Clone, Serialize)]
pub struct StreamReport {
    /// Final (lowest) ladder rung any chunk needed.
    pub path: StreamPath,
    /// Chunks in the plan.
    pub num_chunks: usize,
    /// Rows per band.
    pub chunk_rows: usize,
    /// End-to-end simulated seconds (DES makespan + retry penalties +
    /// crash-resume session costs).
    pub total_s: f64,
    /// Bandwidth-bound roofline seconds: `max(Σ H2D, Σ D2H, Σ kernel)`.
    pub roofline_s: f64,
    /// Paper-convention achieved throughput, GB/s (`2·bytes / total_s`).
    pub effective_gbps: f64,
    /// Roofline throughput, GB/s.
    pub roofline_gbps: f64,
    /// `roofline_s / total_s` — 1.0 means perfect overlap, the
    /// `repro outofcore` gate demands ≥ 0.70 fault-free.
    pub overlap_efficiency: f64,
    /// Chunk-granular redo count (transfer faults + kernel aborts).
    pub chunk_retries: usize,
    /// Transient transfer faults observed (and retried).
    pub transfer_faults: usize,
    /// Kernel-pipeline faults recovered inside a chunk.
    pub kernel_faults: usize,
    /// Mid-stream crash resume sessions.
    pub crash_resumes: usize,
    /// Degradation-ladder steps taken.
    pub degradations: usize,
    /// Simulated seconds charged to backoff + wasted transfers.
    pub penalty_s: f64,
    /// The full per-chunk journal (campaign artifact).
    pub journal: ChunkJournal,
}

/// Out-of-core streaming transpose with a [`ipt_obs::NoopRecorder`].
///
/// # Errors
/// See [`stream_transpose_rec`].
pub fn stream_transpose(
    dev: &DeviceSpec,
    data: &[u32],
    rows: usize,
    cols: usize,
    elem_words: usize,
    cfg: &StreamConfig,
    chaos: &StreamChaos,
) -> Result<(Vec<u32>, StreamReport), TransposeError> {
    stream_transpose_rec(dev, data, rows, cols, elem_words, cfg, chaos, &ipt_obs::NoopRecorder)
}

/// Transpose a `rows × cols` matrix of `elem_words`-word elements that does
/// not fit in `cfg.budget_words` of device memory, streaming row-band
/// chunks through the device. Returns the transposed matrix (assembled
/// exclusively from committed chunks) and the run report.
///
/// # Errors
/// Typed configuration/planning errors up front; [`TransposeError`] when
/// even the ladder's host rung cannot produce a verified result (which it
/// always can — so in practice only configuration errors and journal
/// violations escape).
#[allow(clippy::too_many_arguments)]
#[allow(clippy::too_many_lines)]
pub fn stream_transpose_rec<R: Recorder>(
    dev: &DeviceSpec,
    data: &[u32],
    rows: usize,
    cols: usize,
    elem_words: usize,
    cfg: &StreamConfig,
    chaos: &StreamChaos,
    rec: &R,
) -> Result<(Vec<u32>, StreamReport), TransposeError> {
    let total_words = check::checked_words(rows, cols)
        .and_then(|w| w.checked_mul(elem_words as u64))
        .ok_or_else(|| TransposeError::InvalidConfig {
            what: format!("{rows}x{cols}x{elem_words} overflows u64 words"),
        })?;
    if data.len() as u64 != total_words {
        return Err(TransposeError::InvalidConfig {
            what: format!("data has {} words, shape needs {total_words}", data.len()),
        });
    }
    let plan = plan_chunks(rows, cols, elem_words, cfg.budget_words, 2)
        .map_err(|e| TransposeError::InvalidConfig { what: e.to_string() })?;
    let mut journal = ChunkJournal::new(&plan);
    let mut out = vec![0u32; data.len()];
    let row_words = cols * elem_words;
    let total_bytes = check::bytes_f64(rows, cols, 4 * elem_words);

    let fault: Option<&dyn FaultSource> = match chaos {
        StreamChaos::TransferOnce(p) => Some(p),
        StreamChaos::TransferChaos(p) => Some(p),
        _ => None,
    };
    if let Some(f) = fault {
        f.set_context("stream");
    }

    let mut path = StreamPath::Overlapped;
    let mut st = Tally::default();
    let mut kernel_s = vec![0.0f64; plan.num_chunks];

    // Mid-stream crash: everything before the boundary chunk commits in
    // session 1, the engine dies, and session 2 resumes from the journal.
    let crash_boundary = match chaos {
        StreamChaos::EngineCrashAt { frac, .. } => {
            let k = ((plan.num_chunks as f64) * frac.clamp(0.0, 0.99)) as usize;
            Some(k.min(plan.num_chunks.saturating_sub(1)))
        }
        _ => None,
    };

    process_chunks(
        dev,
        data,
        &mut out,
        &plan,
        cfg,
        chaos,
        fault,
        rec,
        &mut journal,
        &mut path,
        &mut st,
        &mut kernel_s,
        0,
        crash_boundary.unwrap_or(plan.num_chunks),
        row_words,
        rows,
        elem_words,
    )?;

    let mut total_s;
    if let (Some(boundary), StreamChaos::EngineCrashAt { engine, .. }) = (crash_boundary, chaos) {
        // Session 1 ends when its last committed D2H completes; the engine
        // dies at that instant. Validate the DES event against the full
        // planned schedule (unprocessed chunks estimated at the mean kernel
        // time seen so far) — the crash must actually preempt it.
        let pre_tl = simulate_stream(dev, &plan, &kernel_s, path, 0, boundary)?;
        let at_s = pre_tl.total_s;
        let mean_k = if boundary == 0 {
            1e-4
        } else {
            kernel_s[..boundary].iter().sum::<f64>() / boundary as f64
        };
        let mut est = kernel_s.clone();
        for k in est.iter_mut().skip(boundary) {
            *k = mean_k;
        }
        let full_queues = stream_queues(&plan, &est, path, 0, plan.num_chunks);
        match try_simulate_queues_crash(
            dev,
            &full_queues,
            None,
            Some(EngineCrash { engine: *engine, at_s }),
        ) {
            Err(QueueError::EngineCrash { .. }) => {}
            Ok(_) => {
                // Degenerate schedule (e.g. crash boundary at the very end):
                // nothing left for the crash to preempt. Still a resume.
            }
            Err(e) => return Err(e.into()),
        }
        st.crash_resumes += 1;
        rec.add("stream", Counter::StreamCrashResumes, 1);
        if rec.enabled() {
            rec.event(
                at_s * 1e6,
                "engine_crash",
                &format!(
                    "engine {engine} died at {:.3} ms; resuming from chunk {}",
                    at_s * 1e3,
                    journal.first_uncommitted().map_or(plan.num_chunks, |i| i)
                ),
            );
        }
        // Session 2: resume from the first uncommitted chunk. Committed
        // chunks are never re-transferred — the resume queues only carry
        // the remainder.
        let resume_from = journal.first_uncommitted().unwrap_or(plan.num_chunks);
        process_chunks(
            dev,
            data,
            &mut out,
            &plan,
            cfg,
            chaos,
            fault,
            rec,
            &mut journal,
            &mut path,
            &mut st,
            &mut kernel_s,
            resume_from,
            plan.num_chunks,
            row_words,
            rows,
            elem_words,
        )?;
        let resume_tl =
            simulate_stream(dev, &plan, &kernel_s, path, resume_from, plan.num_chunks)?;
        total_s = at_s + resume_tl.total_s; // fresh session pays setup again
        resume_tl.record(rec, at_s, &["H2D", "D2H", "GPU"]);
    } else {
        let tl = simulate_stream(dev, &plan, &kernel_s, path, 0, plan.num_chunks)?;
        total_s = tl.total_s;
        tl.record(rec, 0.0, &["H2D", "D2H", "GPU"]);
    }
    total_s += st.penalty_s;

    if !journal.all_committed() {
        return Err(TransposeError::Journal {
            chunk: journal.first_uncommitted().unwrap_or(0),
            what: "stream finished with uncommitted chunks".into(),
        });
    }

    // Snippet-3 roofline: with full overlap the busiest engine bounds the
    // pipeline — per-direction transfer sums vs total kernel time.
    let dir_s: f64 = (0..plan.num_chunks)
        .map(|i| dev.pcie.transfer_time(4.0 * plan.chunk_words(i) as f64))
        .sum();
    let kern_s: f64 = kernel_s.iter().sum();
    let roofline_s = dir_s.max(kern_s).max(f64::MIN_POSITIVE);
    let effective_gbps = 2.0 * total_bytes / total_s / 1e9;
    let roofline_gbps = 2.0 * total_bytes / roofline_s / 1e9;
    let overlap_efficiency = roofline_s / total_s;

    rec.gauge("stream", "achieved_gbps", effective_gbps);
    rec.gauge("stream", "roofline_gbps", roofline_gbps);
    rec.gauge("stream", "overlap_efficiency", overlap_efficiency);
    rec.gauge("stream", "bytes_in_flight", 2.0 * 4.0 * plan.chunk_words(0) as f64);
    if rec.enabled() {
        rec.span(
            Level::Algorithm,
            "stream-transpose",
            0.0,
            total_s * 1e6,
            Level::Algorithm.base_track(),
            &[
                ("chunks", plan.num_chunks as f64),
                ("gbps", effective_gbps),
                ("efficiency", overlap_efficiency),
            ],
        );
    }

    let report = StreamReport {
        path,
        num_chunks: plan.num_chunks,
        chunk_rows: plan.chunk_rows,
        total_s,
        roofline_s,
        effective_gbps,
        roofline_gbps,
        overlap_efficiency,
        chunk_retries: st.chunk_retries,
        transfer_faults: st.transfer_faults,
        kernel_faults: st.kernel_faults,
        crash_resumes: st.crash_resumes,
        degradations: st.degradations,
        penalty_s: st.penalty_s,
        journal,
    };
    Ok((out, report))
}

/// Mutable run counters threaded through the chunk loop.
#[derive(Debug, Default)]
struct Tally {
    chunk_retries: usize,
    transfer_faults: usize,
    kernel_faults: usize,
    crash_resumes: usize,
    degradations: usize,
    penalty_s: f64,
}

/// Process chunks `[from, to)`: upload (fault-checked), transpose
/// (recovering), checksum, download (fault-checked), scatter, commit.
/// Transfer faults retry with backoff; exhausted retries step down the
/// ladder. The `HostChunk` rung performs no transfers and cannot fail.
#[allow(clippy::too_many_arguments)]
// `i` indexes the plan, the input bands and `kernel_s` alike; an
// enumerate over one of them would obscure that.
#[allow(clippy::needless_range_loop)]
fn process_chunks<R: Recorder>(
    dev: &DeviceSpec,
    data: &[u32],
    out: &mut [u32],
    plan: &ChunkPlan,
    cfg: &StreamConfig,
    chaos: &StreamChaos,
    fault: Option<&dyn FaultSource>,
    rec: &R,
    journal: &mut ChunkJournal,
    path: &mut StreamPath,
    st: &mut Tally,
    kernel_s: &mut [f64],
    from: usize,
    to: usize,
    row_words: usize,
    rows: usize,
    elem_words: usize,
) -> Result<(), TransposeError> {
    let mut h2d_seq = 0usize;
    let mut d2h_seq = 0usize;
    for i in from..to {
        let (r0, nrows) = plan.chunk_range(i);
        let band = &data[r0 * row_words..(r0 + nrows) * row_words];
        let chunk_bytes = 4.0 * band.len() as f64;
        let mut attempt = 0usize;
        loop {
            let queue = match *path {
                StreamPath::Overlapped => i % 2,
                _ => 0,
            };
            match run_chunk_once(
                dev, band, plan, cfg, chaos, fault, rec, journal, *path, i, nrows, queue,
                elem_words, &mut h2d_seq, &mut d2h_seq,
            ) {
                Ok((chunk_out, k_s, kernel_faults)) => {
                    st.kernel_faults += kernel_faults;
                    kernel_s[i] = k_s;
                    scatter(out, &chunk_out, r0, nrows, rows, plan.cols, elem_words);
                    journal.commit(i, *path)?;
                    rec.add("stream", Counter::StreamChunksCommitted, 1);
                    break;
                }
                Err(e @ TransposeError::Transfer(_)) => {
                    if let TransposeError::Transfer(qe) = &e {
                        record_transfer_fault(rec, "stream", qe);
                    }
                    st.transfer_faults += 1;
                    journal.rollback(i)?;
                    // Retry with capped-exponential seeded backoff; the
                    // wasted wire time of the failed transfer is charged too.
                    st.penalty_s += cfg.policy.backoff_s(attempt)
                        + dev.pcie.transfer_time(chunk_bytes);
                    if attempt < cfg.policy.max_stage_retries {
                        attempt += 1;
                        st.chunk_retries += 1;
                        rec.add("stream", Counter::StreamChunkRetries, 1);
                        continue;
                    }
                    // Retry budget spent on this rung: step down the ladder.
                    let next = match *path {
                        StreamPath::Overlapped => StreamPath::SingleEngine,
                        StreamPath::SingleEngine => StreamPath::HostChunk,
                        StreamPath::HostChunk => {
                            // Unreachable: the host rung never sees transfers.
                            return Err(e);
                        }
                    };
                    if !cfg.policy.allow_fallback {
                        return Err(e);
                    }
                    *path = next;
                    st.degradations += 1;
                    rec.add("stream", Counter::StreamDegradations, 1);
                    if rec.enabled() {
                        rec.event(0.0, "stream_degrade", &format!("chunk {i} → {next}"));
                    }
                    attempt = 0;
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

/// One attempt at one chunk on one ladder rung. Returns the transposed
/// band, its kernel seconds, and how many kernel faults were recovered.
#[allow(clippy::too_many_arguments)]
fn run_chunk_once<R: Recorder>(
    dev: &DeviceSpec,
    band: &[u32],
    plan: &ChunkPlan,
    cfg: &StreamConfig,
    chaos: &StreamChaos,
    fault: Option<&dyn FaultSource>,
    rec: &R,
    journal: &mut ChunkJournal,
    path: StreamPath,
    i: usize,
    nrows: usize,
    queue: usize,
    elem_words: usize,
    h2d_seq: &mut usize,
    d2h_seq: &mut usize,
) -> Result<(Vec<u32>, f64, usize), TransposeError> {
    let pre_sum = multiset_checksum(band);
    if path == StreamPath::HostChunk {
        // Host rung: no transfers, no device — cannot fail.
        journal.stage(i, pre_sum)?;
        let out = host_transpose_elems(band, nrows, plan.cols, elem_words);
        journal.transposed(i)?;
        let k_s = 2.0 * 4.0 * band.len() as f64 / (HOST_FALLBACK_GBPS * 1e9);
        return Ok((out, k_s, 0));
    }

    // H2D: consult the fault source the same way the DES does.
    if let Some(f) = fault {
        let seq = *h2d_seq;
        *h2d_seq += 1;
        if f.on_transfer(true, queue, seq) {
            return Err(QueueError::TransferFault {
                queue,
                index: seq,
                h2d: true,
                label: format!("H2D chunk {i}").into(),
            }
            .into());
        }
    }
    journal.stage(i, pre_sum)?;

    // Device transpose of the band through the PR 1 recovery chain. The
    // sim's capacity is the plan's per-buffer budget paired with scratch —
    // 2× the band for the out-of-place fallback plus flag headroom.
    let mut chunk = band.to_vec();
    let mut sim = Sim::new(dev.clone(), 2 * chunk.len() + chunk.len() / 4 + 4096);
    if let StreamChaos::KernelAbort { chunk: target, seed } = chaos {
        if *target == i && journal.chunks[i].attempts == 1 {
            sim.set_fault_plan(FaultPlan::exact(*seed, FaultKind::AbortKernel, seed % 64, *seed));
        }
    }
    let decision = decide_scheme(nrows, plan.cols, &cfg.heuristic);
    let (stats, rep) = transpose_scheme_with_recovery_rec(
        &mut sim,
        &mut chunk,
        nrows,
        plan.cols,
        elem_words,
        &decision,
        &cfg.opts,
        &cfg.policy,
        rec,
        0.0,
    )?;
    let kernel_faults = rep.faults.len();
    if multiset_checksum(&chunk) != pre_sum {
        return Err(TransposeError::Journal {
            chunk: i,
            what: "post-kernel multiset checksum mismatch".into(),
        });
    }
    journal.transposed(i)?;

    // D2H: same consultation contract.
    if let Some(f) = fault {
        let seq = *d2h_seq;
        *d2h_seq += 1;
        let dq = if path == StreamPath::Overlapped { queue } else { 0 };
        if f.on_transfer(false, dq, seq) {
            return Err(QueueError::TransferFault {
                queue: dq,
                index: seq,
                h2d: false,
                label: format!("D2H chunk {i}").into(),
            }
            .into());
        }
    }
    Ok((chunk, stats.time_s() + rep.penalty_s, kernel_faults))
}

/// Scatter a transposed band (`cols × nrows`) into the output at column
/// offset `r0`. Bands never overlap in the destination.
fn scatter(
    out: &mut [u32],
    chunk: &[u32],
    r0: usize,
    nrows: usize,
    rows: usize,
    cols: usize,
    elem_words: usize,
) {
    for c in 0..cols {
        let src = &chunk[c * nrows * elem_words..(c + 1) * nrows * elem_words];
        let dst0 = (c * rows + r0) * elem_words;
        out[dst0..dst0 + src.len()].copy_from_slice(src);
    }
}

/// Build the DES queues for chunks `[from, to)` on the given rung:
/// `Overlapped` ping-pongs chunks across two queues (both copy engines
/// live), `SingleEngine`/`HostChunk` serialize on one.
fn stream_queues(
    plan: &ChunkPlan,
    kernel_s: &[f64],
    path: StreamPath,
    from: usize,
    to: usize,
) -> Vec<Vec<QCmd>> {
    let nq = if path == StreamPath::Overlapped { 2 } else { 1 };
    let mut queues: Vec<Vec<QCmd>> = vec![Vec::new(); nq];
    for i in from..to {
        let bytes = 4.0 * plan.chunk_words(i) as f64;
        let q = &mut queues[(i - from) % nq];
        q.push(QCmd::plain(Cmd::H2D { bytes }));
        q.push(QCmd::plain(Cmd::Kernel {
            time_s: kernel_s[i],
            name: format!("chunk {i}").into(),
        }));
        q.push(QCmd::plain(Cmd::D2H { bytes }));
    }
    queues
}

/// Simulate the stream's DES timeline for chunks `[from, to)`.
fn simulate_stream(
    dev: &DeviceSpec,
    plan: &ChunkPlan,
    kernel_s: &[f64],
    path: StreamPath,
    from: usize,
    to: usize,
) -> Result<Timeline, TransposeError> {
    let queues = stream_queues(plan, kernel_s, path, from, to);
    Ok(try_simulate_queues_dep(dev, &queues, None)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::fault::ChaosConfig;

    const ROWS: usize = 96;
    const COLS: usize = 40;

    fn iota(rows: usize, cols: usize, elem_words: usize) -> Vec<u32> {
        (0..rows * cols * elem_words).map(|x| x as u32).collect()
    }

    fn reference(data: &[u32], rows: usize, cols: usize, elem_words: usize) -> Vec<u32> {
        host_transpose_elems(data, rows, cols, elem_words)
    }

    fn small_cfg(dev: &DeviceSpec, rows: usize, cols: usize, div: u64) -> StreamConfig {
        let total = (rows * cols) as u64;
        StreamConfig::new(dev, (total / div).max(2 * cols as u64))
    }

    #[test]
    fn fault_free_stream_round_trips() {
        let dev = DeviceSpec::tesla_k20();
        let data = iota(ROWS, COLS, 1);
        let cfg = small_cfg(&dev, ROWS, COLS, 3);
        let (out, rep) =
            stream_transpose(&dev, &data, ROWS, COLS, 1, &cfg, &StreamChaos::None).unwrap();
        assert_eq!(out, reference(&data, ROWS, COLS, 1));
        assert!(rep.num_chunks > 1, "must actually stream");
        assert_eq!(rep.path, StreamPath::Overlapped);
        assert_eq!(rep.chunk_retries, 0);
        assert!(rep.journal.all_committed());
        assert!(rep.overlap_efficiency > 0.0 && rep.overlap_efficiency <= 1.0 + 1e-9);
        assert!(rep.effective_gbps > 0.0);
    }

    #[test]
    fn single_transfer_fault_recovers_bit_exact() {
        let dev = DeviceSpec::tesla_k20();
        let data = iota(ROWS, COLS, 1);
        let cfg = small_cfg(&dev, ROWS, COLS, 3);
        for (kind, trig) in
            [(FaultKind::FailH2D, 1), (FaultKind::FailD2H, 0), (FaultKind::FailH2D, 3)]
        {
            let chaos =
                StreamChaos::TransferOnce(FaultPlan::exact(11, kind, trig, 0));
            let (out, rep) =
                stream_transpose(&dev, &data, ROWS, COLS, 1, &cfg, &chaos).unwrap();
            assert_eq!(out, reference(&data, ROWS, COLS, 1), "{kind:?}@{trig}");
            assert_eq!(rep.transfer_faults, 1);
            assert_eq!(rep.chunk_retries, 1);
            assert_eq!(rep.path, StreamPath::Overlapped, "one fault must not degrade");
            assert!(rep.penalty_s > 0.0, "retry must cost simulated time");
            assert!(rep.journal.all_committed());
        }
    }

    #[test]
    fn sustained_chaos_degrades_but_never_tears() {
        let dev = DeviceSpec::tesla_k20();
        let data = iota(ROWS, COLS, 1);
        let cfg = small_cfg(&dev, ROWS, COLS, 3);
        // Every transfer faults: the ladder must walk to the host rung and
        // still produce the exact result.
        let chaos = StreamChaos::TransferChaos(ChaosPlan::new(
            3,
            ChaosConfig::transfers(1.0, 1.0, usize::MAX),
        ));
        let (out, rep) = stream_transpose(&dev, &data, ROWS, COLS, 1, &cfg, &chaos).unwrap();
        assert_eq!(out, reference(&data, ROWS, COLS, 1));
        assert_eq!(rep.path, StreamPath::HostChunk);
        assert_eq!(rep.degradations, 2, "both ladder steps taken");
        assert!(rep.transfer_faults > 0);
        assert!(rep.journal.all_committed());
        assert!(
            rep.journal.chunks.iter().any(|c| c.path == StreamPath::HostChunk),
            "host rung must have committed chunks"
        );
    }

    #[test]
    fn kernel_abort_recovered_within_chunk() {
        let dev = DeviceSpec::tesla_k20();
        let data = iota(ROWS, COLS, 1);
        let cfg = small_cfg(&dev, ROWS, COLS, 3);
        let chaos = StreamChaos::KernelAbort { chunk: 1, seed: 5 };
        let (out, rep) = stream_transpose(&dev, &data, ROWS, COLS, 1, &cfg, &chaos).unwrap();
        assert_eq!(out, reference(&data, ROWS, COLS, 1));
        assert!(rep.kernel_faults > 0, "the abort must actually fire");
        assert_eq!(rep.path, StreamPath::Overlapped, "recovered in place");
        assert!(rep.journal.all_committed());
    }

    #[test]
    fn engine_crash_resumes_from_journal() {
        let dev = DeviceSpec::tesla_k20();
        let data = iota(ROWS, COLS, 1);
        let cfg = small_cfg(&dev, ROWS, COLS, 4);
        let chaos = StreamChaos::EngineCrashAt { engine: 1, frac: 0.4 };
        let (out, rep) = stream_transpose(&dev, &data, ROWS, COLS, 1, &cfg, &chaos).unwrap();
        assert_eq!(out, reference(&data, ROWS, COLS, 1));
        assert_eq!(rep.crash_resumes, 1);
        assert!(rep.journal.all_committed());
        // Every chunk committed exactly once (attempts charged once, no
        // duplicate transfers of durable chunks).
        assert!(rep.journal.chunks.iter().all(|c| c.attempts == 1));
    }

    #[test]
    fn journal_refuses_duplicate_commit_and_rollback_of_committed() {
        let plan = plan_chunks(16, 4, 1, 16, 2).unwrap();
        let mut j = ChunkJournal::new(&plan);
        j.stage(0, (1, 2)).unwrap();
        j.transposed(0).unwrap();
        j.commit(0, StreamPath::Overlapped).unwrap();
        let err = j.commit(0, StreamPath::Overlapped).unwrap_err();
        assert!(matches!(err, TransposeError::Journal { chunk: 0, .. }), "{err}");
        assert!(format!("{err}").contains("duplicate"));
        assert!(j.rollback(0).is_err(), "committed chunks are durable");
        // And out-of-order transitions are refused too.
        assert!(j.transposed(1).is_err(), "cannot transpose an unstaged chunk");
        assert!(j.commit(1, StreamPath::Overlapped).is_err());
    }

    #[test]
    fn elem_words_two_streams_f64_elements() {
        let dev = DeviceSpec::tesla_k20();
        let data = iota(60, 24, 2);
        let cfg = small_cfg(&dev, 60, 24 * 2, 3);
        let (out, rep) = stream_transpose(&dev, &data, 60, 24, 2, &cfg, &StreamChaos::None)
            .unwrap();
        assert_eq!(out, reference(&data, 60, 24, 2));
        assert!(rep.num_chunks > 1);
        assert!(rep.journal.all_committed());
    }

    #[test]
    fn size_mismatch_is_typed() {
        let dev = DeviceSpec::tesla_k20();
        let cfg = StreamConfig::new(&dev, 1024);
        let err =
            stream_transpose(&dev, &[0u32; 7], 4, 4, 1, &cfg, &StreamChaos::None).unwrap_err();
        assert!(matches!(err, TransposeError::InvalidConfig { .. }));
    }
}
