//! Device kernels for the coprime (general-dimension) decomposition —
//! the extension the paper's footnote 6 points at (Catanzaro et al.,
//! PPoPP 2014 [25]); see `ipt_core::coprime` for the mathematics.
//!
//! * [`CoprimeRowScramble`] — phase 1: one work-group per matrix row; the
//!   row is staged through local memory, permuted by
//!   `q ↦ (q·M + r) mod N`, and written back. Global traffic fully
//!   coalesced; the local gather pays bank conflicts.
//! * [`CoprimeColShuffle`] — phase 2: one work-group per matrix column;
//!   the column is staged through local memory and permuted by the gather
//!   `J ↦ (J·N + c) mod M`. The stride-N global accesses are inherently
//!   uncoalesced — the honest cost of arbitrary dimensions, and still far
//!   better than the single-stage whole-matrix chase (see the `primes`
//!   experiment).

use gpu_sim::{Buffer, Coordination, Grid, Kernel, LaneAddrs, LaneWrites, Step, WarpCtx};
use ipt_core::coprime::{minv_for, phase1_src_col, phase2_src_row};

/// Phase-1 kernel: row scramble.
#[derive(Debug, Clone)]
pub struct CoprimeRowScramble {
    /// The matrix buffer (`rows × cols` row-major words).
    pub data: Buffer,
    /// Matrix rows (M).
    pub rows: usize,
    /// Matrix cols (N).
    pub cols: usize,
    /// Work-items per work-group.
    pub wg_size: usize,
    /// `M⁻¹ mod N`, precomputed once at construction — the single
    /// `ipt_core::coprime::minv_for` call for the whole launch (a real
    /// kernel receives it as a launch parameter, not per-thread work).
    minv: usize,
}

impl CoprimeRowScramble {
    /// Build the kernel, precomputing the modular inverse from
    /// `ipt_core::coprime` — the one source of truth for the mathematics.
    ///
    /// # Panics
    /// Panics if `rows` and `cols` are not coprime.
    #[must_use]
    pub fn new(data: Buffer, rows: usize, cols: usize, wg_size: usize) -> Self {
        Self { data, rows, cols, wg_size, minv: minv_for(rows, cols) }
    }
}

/// Per-warp state: which row (grid-stride), phase, and word cursor.
pub struct RowState {
    row: usize,
    phase: u8,
    iter: usize,
}

impl Kernel for CoprimeRowScramble {
    type State = RowState;

    fn name(&self) -> String {
        format!("coprime-rows {}x{}", self.rows, self.cols)
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: self.rows.min(4096), wg_size: self.wg_size }
    }

    // Grid-stride over whole rows (`st.row += num_wgs`): each work-group
    // touches only rows ≡ wg_id (mod num_wgs) — disjoint footprints.
    fn coordination(&self) -> Coordination {
        Coordination::WgLocal
    }

    fn regs_per_thread(&self) -> usize {
        16
    }

    fn local_mem_words(&self, _dev: &gpu_sim::DeviceSpec) -> usize {
        self.cols
    }

    fn init(&self, wg_id: usize, _warp: usize) -> RowState {
        RowState { row: wg_id, phase: 0, iter: 0 }
    }

    fn step(&self, st: &mut RowState, ctx: &mut WarpCtx<'_>) -> Step {
        if st.row >= self.rows {
            return Step::Done;
        }
        let n = self.cols;
        let base = st.row * n;
        let warp_off = ctx.warp_id * ctx.device().simd_width;
        let w0 = st.iter * ctx.wg_size + warp_off;
        match st.phase {
            0 => {
                // Stage the row into local memory (coalesced read).
                if w0 < n {
                    let addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
                        let q = w0 + l;
                        (q < n).then_some(base + q)
                    });
                    let vals = ctx.global_read(self.data, &addrs);
                    let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                        let q = w0 + l;
                        (q < n).then_some((q, vals.get(l)))
                    });
                    ctx.local_write(&writes);
                }
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= n {
                    st.phase = 1;
                    st.iter = 0;
                    Step::Barrier
                } else {
                    Step::Continue
                }
            }
            _ => {
                // Permuted write-back (local gather, coalesced global write).
                if w0 < n {
                    let addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
                        let q_out = w0 + l;
                        (q_out < n).then(|| phase1_src_col(st.row, q_out, self.rows, n, self.minv))
                    });
                    let vals = ctx.local_read(&addrs);
                    ctx.alu(6.0); // modular index arithmetic
                    let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                        let q_out = w0 + l;
                        (q_out < n).then_some((base + q_out, vals.get(l)))
                    });
                    ctx.global_write(self.data, &writes);
                }
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= n {
                    // Next row for this work-group (grid stride).
                    st.row += ctx.num_wgs;
                    st.phase = 0;
                    st.iter = 0;
                    if st.row >= self.rows {
                        Step::Done
                    } else {
                        Step::Barrier
                    }
                } else {
                    Step::Continue
                }
            }
        }
    }
}

/// Phase-2 kernel: column shuffle.
#[derive(Debug, Clone)]
pub struct CoprimeColShuffle {
    /// The matrix buffer.
    pub data: Buffer,
    /// Matrix rows (M).
    pub rows: usize,
    /// Matrix cols (N).
    pub cols: usize,
    /// Work-items per work-group.
    pub wg_size: usize,
}

/// Per-warp state for the column kernel.
pub struct ColState {
    col: usize,
    phase: u8,
    iter: usize,
}

impl Kernel for CoprimeColShuffle {
    type State = ColState;

    fn name(&self) -> String {
        format!("coprime-cols {}x{}", self.rows, self.cols)
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: self.cols.min(4096), wg_size: self.wg_size }
    }

    // Grid-stride over whole columns: each work-group permutes only columns
    // ≡ wg_id (mod num_wgs), so global footprints never overlap.
    fn coordination(&self) -> Coordination {
        Coordination::WgLocal
    }

    fn regs_per_thread(&self) -> usize {
        16
    }

    fn local_mem_words(&self, _dev: &gpu_sim::DeviceSpec) -> usize {
        self.rows
    }

    fn init(&self, wg_id: usize, _warp: usize) -> ColState {
        ColState { col: wg_id, phase: 0, iter: 0 }
    }

    fn step(&self, st: &mut ColState, ctx: &mut WarpCtx<'_>) -> Step {
        if st.col >= self.cols {
            return Step::Done;
        }
        let (m, n) = (self.rows, self.cols);
        let warp_off = ctx.warp_id * ctx.device().simd_width;
        let r0 = st.iter * ctx.wg_size + warp_off;
        match st.phase {
            0 => {
                // Stage the column (stride-N reads: uncoalesced, costed).
                if r0 < m {
                    let addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
                        let r = r0 + l;
                        (r < m).then_some(r * n + st.col)
                    });
                    let vals = ctx.global_read(self.data, &addrs);
                    let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                        let r = r0 + l;
                        (r < m).then_some((r, vals.get(l)))
                    });
                    ctx.local_write(&writes);
                }
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= m {
                    st.phase = 1;
                    st.iter = 0;
                    Step::Barrier
                } else {
                    Step::Continue
                }
            }
            _ => {
                if r0 < m {
                    let addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
                        let j_out = r0 + l;
                        (j_out < m).then(|| phase2_src_row(j_out, st.col, m, n))
                    });
                    let vals = ctx.local_read(&addrs);
                    ctx.alu(4.0);
                    let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                        let j_out = r0 + l;
                        (j_out < m).then_some((j_out * n + st.col, vals.get(l)))
                    });
                    ctx.global_write(self.data, &writes);
                }
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= m {
                    st.col += ctx.num_wgs;
                    st.phase = 0;
                    st.iter = 0;
                    if st.col >= self.cols {
                        Step::Done
                    } else {
                        Step::Barrier
                    }
                } else {
                    Step::Continue
                }
            }
        }
    }
}

/// Run the two-phase coprime transposition on the device and return the
/// per-phase stats. `data` is reinterpreted as row-major `cols × rows`
/// afterwards.
///
/// # Errors
/// Propagates infeasible launches (a row or column must fit local memory).
pub fn transpose_coprime_on_device(
    sim: &gpu_sim::Sim,
    data: Buffer,
    rows: usize,
    cols: usize,
    wg_size: usize,
) -> Result<gpu_sim::PipelineStats, gpu_sim::LaunchError> {
    assert!(ipt_core::coprime::is_coprime_shape(rows, cols), "coprime dimensions required");
    let s1 = sim.launch(&CoprimeRowScramble::new(data, rows, cols, wg_size))?;
    let s2 = sim.launch(&CoprimeColShuffle { data, rows, cols, wg_size })?;
    Ok(gpu_sim::PipelineStats { stages: vec![s1, s2], overhead_s: 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Sim};
    use ipt_core::Matrix;

    fn run(dev: DeviceSpec, rows: usize, cols: usize) -> (Vec<u32>, gpu_sim::PipelineStats) {
        let mut sim = Sim::new(dev, rows * cols + 8);
        let buf = sim.alloc(rows * cols);
        let m = Matrix::iota(rows, cols);
        sim.upload_u32(buf, m.as_slice());
        let stats = transpose_coprime_on_device(&sim, buf, rows, cols, 256).unwrap();
        (sim.download_u32(buf), stats)
    }

    #[test]
    fn transposes_coprime_shapes_on_device() {
        for &(r, c) in &[(5usize, 3usize), (127, 64), (61, 45), (97, 101), (2, 9)] {
            let (got, _) = run(DeviceSpec::tesla_k20(), r, c);
            assert_eq!(got, Matrix::iota(r, c).transposed().into_vec(), "{r}x{c}");
        }
    }

    #[test]
    fn works_on_amd_and_phi() {
        for dev in [DeviceSpec::hd7750(), DeviceSpec::xeon_phi()] {
            let (got, _) = run(dev, 31, 45);
            assert_eq!(got, Matrix::iota(31, 45).transposed().into_vec());
        }
    }

    #[test]
    fn beats_single_stage_on_prime_dims() {
        // The point of the extension: prime×prime at staged-like speed
        // instead of the single-stage chase.
        use ipt_core::stages::StagePlan;
        use ipt_gpu_test_util::run_plan_gbps;
        let (r, c) = (509usize, 251usize);
        let dev = DeviceSpec::tesla_k20();
        let (_, stats) = run(dev.clone(), r, c);
        let bytes = (r * c * 4) as f64;
        let coprime_gbps = stats.throughput_gbps(bytes);
        let single = run_plan_gbps(&dev, r, c, &StagePlan::single_stage(r, c));
        assert!(
            coprime_gbps > 2.0 * single,
            "coprime {coprime_gbps:.1} GB/s should beat single-stage {single:.1} GB/s"
        );
    }

    /// Minimal helper mirroring pipeline::transpose_on_device for plans.
    mod ipt_gpu_test_util {
        use gpu_sim::{DeviceSpec, Sim};
        use ipt_core::stages::StagePlan;
        use ipt_core::Matrix;

        pub fn run_plan_gbps(dev: &DeviceSpec, r: usize, c: usize, plan: &StagePlan) -> f64 {
            let opts = crate::opts::GpuOptions::tuned_for(dev);
            let mut sim =
                Sim::new(dev.clone(), r * c + crate::pipeline::plan_flag_words(plan) + 64);
            let mut data = Matrix::iota(r, c).into_vec();
            let stats =
                crate::pipeline::transpose_on_device(&mut sim, &mut data, r, c, plan, &opts)
                    .unwrap();
            stats.throughput_gbps((r * c * 4) as f64)
        }
    }

    #[test]
    fn row_kernel_is_coalesced() {
        let (r, c) = (63usize, 128usize);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), r * c + 8);
        let buf = sim.alloc(r * c);
        sim.upload_u32(buf, Matrix::iota(r, c).as_slice());
        let s1 = sim.launch(&CoprimeRowScramble::new(buf, r, c, 256)).unwrap();
        assert!(s1.coalescing_efficiency() > 0.9, "{}", s1.coalescing_efficiency());
    }
}
