//! Device kernels for the full C2R/R2C decomposition (Catanzaro, Keller &
//! Garland, PPoPP 2014) — see [`ipt_core::c2r`] for the mathematics. Three
//! line-permutation passes (column rotate → row shuffle → column shuffle;
//! the rotate is skipped when `gcd = 1`), all [`Coordination::WgLocal`]:
//! no claim flags, no atomics, and per-work-group footprints that never
//! overlap, so the parallel engine covers them with bit-identity for free.
//!
//! ## Why these beat the coprime kernels
//!
//! [`crate::coprime`] stages one column per work-group, paying a stride-N
//! (fully uncoalesced) global access per element on its column pass. Here
//! a work-group stages a **batch of adjacent lines** as one rectangle, so
//! the column passes read and write runs of `batch` consecutive words —
//! `batch`-word segments instead of isolated 4-byte accesses — which cuts
//! the DRAM transaction count by up to `batch ×` on exactly the pass that
//! dominates. The batch width balances coalescing against occupancy: the
//! staging slot is kept small enough for several resident work-groups per
//! SM.
//!
//! ## Lines longer than local memory
//!
//! A 104729-word line cannot be staged in a 48 KB scratchpad; the coprime
//! kernels simply refuse to launch there. Each C2R pass instead degrades
//! to a **global-scratch staging mode**: every work-group owns a disjoint
//! scratch slot (so the kernel stays `WgLocal`), stages its rectangle
//! there, and gathers back through the same index maps. Slower than local
//! staging — scratch traffic is honest global traffic — but total, which
//! is what lets every prime shape stay on the device path.

use gpu_sim::{
    Buffer, Coordination, Grid, Kernel, LaneAddrs, LaneWrites, LaunchError, Step, WarpCtx,
};
use ipt_core::C2rGeometry;

/// Which of the three C2R line passes a kernel instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum C2rPassKind {
    /// Phase 1: rotate column `q` down by `⌊q/b⌋` (skipped when `c = 1`).
    Rotate,
    /// Phase 2: modular shuffle within each row.
    RowShuffle,
    /// Phase 3: modular shuffle within each column.
    ColShuffle,
}

impl C2rPassKind {
    fn label(self) -> &'static str {
        match self {
            Self::Rotate => "rotate",
            Self::RowShuffle => "rows",
            Self::ColShuffle => "cols",
        }
    }
}

/// Upper bound on work-groups in global-scratch mode: enough to cover the
/// SMs of every modelled device while bounding the scratch allocation.
const SCRATCH_MAX_WGS: usize = 16;

/// Grid cap in local-staging mode (matches the coprime kernels).
const LOCAL_MAX_WGS: usize = 4096;

/// How one pass stages its lines on one device: batch width, slot size,
/// grid, and whether staging lives in local memory or global scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassLayout {
    /// Words per line (M for column passes, N for the row pass).
    pub line_len: usize,
    /// Lines in the pass (N columns or M rows).
    pub num_lines: usize,
    /// Adjacent lines staged together by one work-group.
    pub batch: usize,
    /// Words in one staging slot (`line_len · batch`).
    pub slot_words: usize,
    /// Work-groups launched.
    pub num_wgs: usize,
    /// `true`: staging slot lives in a global scratch buffer.
    pub scratch: bool,
}

/// Compute the staging layout of one pass for one device.
#[must_use]
pub fn pass_layout(
    kind: C2rPassKind,
    geom: &C2rGeometry,
    dev: &gpu_sim::DeviceSpec,
    wg_size: usize,
) -> PassLayout {
    let (line_len, num_lines) = match kind {
        C2rPassKind::RowShuffle => (geom.n, geom.m),
        C2rPassKind::Rotate | C2rPassKind::ColShuffle => (geom.m, geom.n),
    };
    let local_budget = dev.local_words_per_wg();
    if line_len <= local_budget {
        // Local staging. Column passes batch up to a SIMD-width of adjacent
        // columns for coalescing; the row pass batches only to keep short
        // rows from starving a work-group (its accesses are contiguous
        // already). The occupancy target keeps ~6 slots resident per SM so
        // batching never collapses the grid to one work-group per SM.
        let occupancy_target = (dev.local_mem_per_sm / 4 / 6).max(1);
        let want = match kind {
            C2rPassKind::RowShuffle => (wg_size / line_len.max(1)).max(1),
            C2rPassKind::Rotate | C2rPassKind::ColShuffle => dev.simd_width,
        };
        // Parallelism floor: on small matrices batching must shrink before
        // the grid does, or a handful of fat work-groups leaves most SMs
        // idle (127×61 would otherwise launch 4 work-groups on a 13-SM
        // device).
        let min_wgs = 4 * dev.num_sms.max(1);
        let batch = want
            .min((occupancy_target / line_len).max(1))
            .min(local_budget / line_len)
            .min(num_lines.div_ceil(min_wgs).max(1))
            .min(num_lines)
            .max(1);
        let num_wgs = num_lines.div_ceil(batch).clamp(1, LOCAL_MAX_WGS);
        PassLayout {
            line_len,
            num_lines,
            batch,
            slot_words: line_len * batch,
            num_wgs,
            scratch: false,
        }
    } else {
        // Line exceeds local memory: global-scratch staging, one disjoint
        // slot per work-group. Column passes still batch a SIMD-width of
        // columns so the data-side traffic stays segment-coalesced.
        let batch = match kind {
            C2rPassKind::RowShuffle => 1,
            C2rPassKind::Rotate | C2rPassKind::ColShuffle => dev.simd_width.min(num_lines),
        };
        let num_wgs = num_lines.div_ceil(batch).clamp(1, SCRATCH_MAX_WGS);
        PassLayout {
            line_len,
            num_lines,
            batch,
            slot_words: line_len * batch,
            num_wgs,
            scratch: true,
        }
    }
}

/// Scratch words [`transpose_c2r_on_device`] must allocate for this shape
/// on this device — `0` when every pass fits local memory (the common
/// case; only lines longer than the scratchpad need scratch).
#[must_use]
pub fn c2r_scratch_words(
    dev: &gpu_sim::DeviceSpec,
    rows: usize,
    cols: usize,
    wg_size: usize,
) -> usize {
    let geom = C2rGeometry::new(rows, cols);
    [C2rPassKind::Rotate, C2rPassKind::RowShuffle, C2rPassKind::ColShuffle]
        .into_iter()
        .filter(|&k| k != C2rPassKind::Rotate || geom.needs_rotate())
        .map(|k| {
            let l = pass_layout(k, &geom, dev, wg_size);
            if l.scratch { l.num_wgs * l.slot_words } else { 0 }
        })
        .max()
        .unwrap_or(0)
}

/// One C2R line-permutation pass as a simulated kernel.
#[derive(Debug, Clone)]
pub struct C2rLinePass {
    /// The matrix buffer (`rows × cols` row-major words).
    pub data: Buffer,
    /// Shape constants shared by all passes.
    pub geom: C2rGeometry,
    /// Which pass this instance runs.
    pub kind: C2rPassKind,
    /// Work-items per work-group.
    pub wg_size: usize,
    layout: PassLayout,
    scratch: Option<Buffer>,
}

impl C2rLinePass {
    /// Build one pass. `scratch` must be provided (and large enough) when
    /// [`pass_layout`] says this pass stages through global scratch —
    /// [`transpose_c2r_on_device`] sizes it via [`c2r_scratch_words`].
    ///
    /// # Panics
    /// Panics if the layout needs scratch and `scratch` is missing or too
    /// small — a caller bug, not a runtime condition.
    #[must_use]
    pub fn new(
        data: Buffer,
        geom: C2rGeometry,
        kind: C2rPassKind,
        wg_size: usize,
        dev: &gpu_sim::DeviceSpec,
        scratch: Option<Buffer>,
    ) -> Self {
        let layout = pass_layout(kind, &geom, dev, wg_size);
        if layout.scratch {
            let buf = scratch.expect("scratch-mode pass needs a scratch buffer");
            assert!(
                buf.len >= layout.num_wgs * layout.slot_words,
                "scratch buffer holds {} words; pass needs {}",
                buf.len,
                layout.num_wgs * layout.slot_words,
            );
        }
        Self { data, geom, kind, wg_size, layout, scratch }
    }

    /// The resolved staging layout.
    #[must_use]
    pub fn layout(&self) -> PassLayout {
        self.layout
    }

    /// Lines actually present in the batch starting at `line0` (the last
    /// batch may be ragged).
    fn batch_width(&self, line0: usize) -> usize {
        (self.layout.num_lines - line0).min(self.layout.batch)
    }

    /// Global word address of flat rectangle index `idx` for the batch at
    /// `line0` with width `bw`.
    fn rect_addr(&self, line0: usize, bw: usize, idx: usize) -> usize {
        match self.kind {
            // Adjacent rows are contiguous: the rectangle is one flat run.
            C2rPassKind::RowShuffle => line0 * self.geom.n + idx,
            // Row-major traversal of a (line_len × bw) column block:
            // consecutive idx → bw consecutive words, then a stride-N jump.
            C2rPassKind::Rotate | C2rPassKind::ColShuffle => {
                (idx / bw) * self.geom.n + line0 + idx % bw
            }
        }
    }

    /// Slot-relative staging index the output rectangle element `idx`
    /// gathers from — the heart of each pass.
    fn staged_src(&self, line0: usize, bw: usize, idx: usize) -> usize {
        let g = &self.geom;
        match self.kind {
            C2rPassKind::RowShuffle => {
                let (row_local, j) = (idx / g.n, idx % g.n);
                row_local * g.n + g.row_shuffle_src_col(line0 + row_local, j)
            }
            C2rPassKind::Rotate => {
                let (k, t) = (idx / bw, idx % bw);
                g.rotate_src_row(k, line0 + t) * bw + t
            }
            C2rPassKind::ColShuffle => {
                let (k, t) = (idx / bw, idx % bw);
                g.col_shuffle_src_row(k, line0 + t) * bw + t
            }
        }
    }

    /// Index-arithmetic cost of one phase-1 gather instruction.
    fn gather_alu(&self) -> f64 {
        match self.kind {
            C2rPassKind::Rotate => 5.0,
            C2rPassKind::RowShuffle => 12.0, // x, r, z, y: four modular steps
            C2rPassKind::ColShuffle => 8.0,
        }
    }
}

/// Per-warp state: owning work-group, current batch (grid-stride), phase
/// and word cursor.
pub struct PassState {
    wg_id: usize,
    batch_idx: usize,
    phase: u8,
    iter: usize,
}

impl Kernel for C2rLinePass {
    type State = PassState;

    fn name(&self) -> String {
        format!(
            "c2r-{} {}x{}{}",
            self.kind.label(),
            self.geom.m,
            self.geom.n,
            if self.layout.scratch { " (scratch)" } else { "" },
        )
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: self.layout.num_wgs, wg_size: self.wg_size }
    }

    // Grid-stride over line batches: a work-group touches only batches
    // ≡ wg_id (mod num_wgs) plus its own scratch slot — footprints never
    // overlap, so the parallel engine may run work-groups concurrently.
    fn coordination(&self) -> Coordination {
        Coordination::WgLocal
    }

    fn regs_per_thread(&self) -> usize {
        18
    }

    fn local_mem_words(&self, _dev: &gpu_sim::DeviceSpec) -> usize {
        if self.layout.scratch { 0 } else { self.layout.slot_words }
    }

    fn init(&self, wg_id: usize, _warp: usize) -> PassState {
        PassState { wg_id, batch_idx: wg_id, phase: 0, iter: 0 }
    }

    fn step(&self, st: &mut PassState, ctx: &mut WarpCtx<'_>) -> Step {
        let num_batches = self.layout.num_lines.div_ceil(self.layout.batch);
        if st.batch_idx >= num_batches {
            return Step::Done;
        }
        let line0 = st.batch_idx * self.layout.batch;
        let bw = self.batch_width(line0);
        let rect = self.layout.line_len * bw;
        let slot_base = st.wg_id * self.layout.slot_words;
        let warp_off = ctx.warp_id * ctx.device().simd_width;
        let w0 = st.iter * ctx.wg_size + warp_off;
        match st.phase {
            0 => {
                // Stage the rectangle (coalesced in runs of `bw` words for
                // column passes, fully contiguous for the row pass).
                if w0 < rect {
                    let addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
                        let idx = w0 + l;
                        (idx < rect).then(|| self.rect_addr(line0, bw, idx))
                    });
                    let vals = ctx.global_read(self.data, &addrs);
                    let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                        let idx = w0 + l;
                        (idx < rect).then_some((idx, vals.get(l)))
                    });
                    match self.scratch_target() {
                        None => ctx.local_write(&writes),
                        Some(buf) => {
                            let shifted = LaneWrites::from_fn(ctx.lanes, |l| {
                                let idx = w0 + l;
                                (idx < rect).then_some((slot_base + idx, vals.get(l)))
                            });
                            ctx.global_write(buf, &shifted);
                        }
                    }
                }
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= rect {
                    st.phase = 1;
                    st.iter = 0;
                    Step::Barrier
                } else {
                    Step::Continue
                }
            }
            _ => {
                // Permuted write-back through the pass's gather map.
                if w0 < rect {
                    let src = LaneAddrs::from_fn(ctx.lanes, |l| {
                        let idx = w0 + l;
                        (idx < rect).then(|| self.staged_src(line0, bw, idx))
                    });
                    let vals = match self.scratch_target() {
                        None => ctx.local_read(&src),
                        Some(buf) => {
                            let shifted = LaneAddrs::from_fn(ctx.lanes, |l| {
                                let idx = w0 + l;
                                (idx < rect)
                                    .then(|| slot_base + self.staged_src(line0, bw, idx))
                            });
                            ctx.global_read(buf, &shifted)
                        }
                    };
                    ctx.alu(self.gather_alu());
                    let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                        let idx = w0 + l;
                        (idx < rect).then_some((self.rect_addr(line0, bw, idx), vals.get(l)))
                    });
                    ctx.global_write(self.data, &writes);
                }
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= rect {
                    st.batch_idx += ctx.num_wgs;
                    st.phase = 0;
                    st.iter = 0;
                    if st.batch_idx >= num_batches {
                        Step::Done
                    } else {
                        Step::Barrier
                    }
                } else {
                    Step::Continue
                }
            }
        }
    }
}

impl C2rLinePass {
    fn scratch_target(&self) -> Option<Buffer> {
        if self.layout.scratch { self.scratch } else { None }
    }
}

/// Run the full C2R transposition on the device (two passes when
/// `gcd(rows, cols) = 1`, three otherwise) and return the per-pass stats.
/// `data` is reinterpreted as row-major `cols × rows` afterwards. Any
/// needed global scratch is allocated from `sim` for the duration of the
/// call.
///
/// # Errors
/// [`LaunchError::Infeasible`] when the device cannot hold the global
/// scratch a long-line shape needs; otherwise propagates launch errors.
///
/// # Panics
/// Panics on a zero dimension (the planner maps those to identity).
pub fn transpose_c2r_on_device(
    sim: &mut gpu_sim::Sim,
    data: Buffer,
    rows: usize,
    cols: usize,
    wg_size: usize,
) -> Result<gpu_sim::PipelineStats, LaunchError> {
    let geom = C2rGeometry::new(rows, cols);
    let dev = sim.device().clone();
    let need = c2r_scratch_words(&dev, rows, cols, wg_size);
    let scratch = if need > 0 {
        Some(sim.try_alloc(need).ok_or_else(|| LaunchError::Infeasible {
            why: format!(
                "c2r global scratch needs {need} words; only {} free on {}",
                sim.free_words(),
                dev.name,
            ),
        })?)
    } else {
        None
    };
    let mut stages = Vec::new();
    for kind in [C2rPassKind::Rotate, C2rPassKind::RowShuffle, C2rPassKind::ColShuffle] {
        if kind == C2rPassKind::Rotate && !geom.needs_rotate() {
            continue;
        }
        let pass = C2rLinePass::new(data, geom, kind, wg_size, &dev, scratch);
        stages.push(sim.launch(&pass)?);
    }
    Ok(gpu_sim::PipelineStats { stages, overhead_s: 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Sim};
    use ipt_core::Matrix;

    fn run(dev: DeviceSpec, rows: usize, cols: usize) -> (Vec<u32>, gpu_sim::PipelineStats) {
        let scratch = c2r_scratch_words(&dev, rows, cols, 256);
        let mut sim = Sim::new(dev, rows * cols + scratch + 8);
        let buf = sim.alloc(rows * cols);
        let m = Matrix::iota(rows, cols);
        sim.upload_u32(buf, m.as_slice());
        let stats = transpose_c2r_on_device(&mut sim, buf, rows, cols, 256).unwrap();
        (sim.download_u32(buf), stats)
    }

    #[test]
    fn transposes_all_gcd_classes_on_device() {
        for &(r, c) in &[
            (5usize, 3usize), // gcd 1
            (4, 6),           // gcd 2: rotate pass live
            (12, 18),         // gcd 6
            (24, 36),         // gcd 12
            (127, 64),        // gcd 1, power-of-two cols
            (61, 45),         // gcd 1
            (97, 101),        // both prime
            (2, 9),
            (9, 2),
            (30, 42),
        ] {
            let (got, _) = run(DeviceSpec::tesla_k20(), r, c);
            assert_eq!(got, Matrix::iota(r, c).transposed().into_vec(), "{r}x{c}");
        }
    }

    #[test]
    fn rotate_pass_is_skipped_exactly_when_gcd_is_1() {
        let (_, stats) = run(DeviceSpec::tesla_k20(), 97, 101);
        assert_eq!(stats.stages.len(), 2, "gcd 1 → rotate skipped");
        let (_, stats) = run(DeviceSpec::tesla_k20(), 12, 18);
        assert_eq!(stats.stages.len(), 3, "gcd 6 → rotate live");
    }

    #[test]
    fn works_on_all_device_presets() {
        for dev in [
            DeviceSpec::gtx580(),
            DeviceSpec::tesla_k20(),
            DeviceSpec::hd7750(),
            DeviceSpec::xeon_phi(),
        ] {
            let (got, _) = run(dev, 31, 45);
            assert_eq!(got, Matrix::iota(31, 45).transposed().into_vec());
        }
    }

    #[test]
    fn long_line_takes_the_scratch_path() {
        // 13001 is prime and exceeds the K20's 12288-word scratchpad, so
        // the row pass must stage through global scratch — the case where
        // the coprime kernels refuse to launch outright.
        let dev = DeviceSpec::tesla_k20();
        let (r, c) = (7usize, 13_001usize);
        assert!(c2r_scratch_words(&dev, r, c, 256) > 0, "shape must exercise scratch");
        let geom = ipt_core::C2rGeometry::new(r, c);
        assert!(pass_layout(C2rPassKind::RowShuffle, &geom, &dev, 256).scratch);
        let (got, _) = run(dev, r, c);
        assert_eq!(got, Matrix::iota(r, c).transposed().into_vec());
    }

    #[test]
    fn column_pass_batches_for_coalescing() {
        let dev = DeviceSpec::tesla_k20();
        let geom = ipt_core::C2rGeometry::new(509, 251);
        let l = pass_layout(C2rPassKind::ColShuffle, &geom, &dev, 256);
        assert!(!l.scratch);
        assert!(l.batch >= 4, "509-word lines should batch ≥ 4 columns, got {}", l.batch);
        assert!(l.slot_words <= dev.local_words_per_wg());
        // The batched column pass must beat the coprime kernels' one-column
        // staging on DRAM transactions — the whole point of the rewrite.
        let mut sim = Sim::new(dev.clone(), 509 * 251 + 8);
        let buf = sim.alloc(509 * 251);
        sim.upload_u32(buf, Matrix::iota(509, 251).as_slice());
        let pass = C2rLinePass::new(buf, geom, C2rPassKind::ColShuffle, 256, &dev, None);
        let c2r_stats = sim.launch(&pass).unwrap();
        let coprime = crate::coprime::CoprimeColShuffle { data: buf, rows: 509, cols: 251, wg_size: 256 };
        let coprime_stats = sim.launch(&coprime).unwrap();
        assert!(
            c2r_stats.coalescing_efficiency() > 1.5 * coprime_stats.coalescing_efficiency(),
            "c2r col pass {:.3} vs coprime {:.3}",
            c2r_stats.coalescing_efficiency(),
            coprime_stats.coalescing_efficiency(),
        );
    }

    #[test]
    fn beats_coprime_kernels_on_prime_dims() {
        // The dominance claim at unit-test scale: same shape, same device,
        // same wg size — the batched C2R pipeline outruns the coprime
        // two-phase kernels it supersedes.
        let dev = DeviceSpec::tesla_k20();
        let (r, c) = (509usize, 251usize);
        let bytes = (r * c * 4) as f64;
        let (got, c2r_stats) = run(dev.clone(), r, c);
        assert_eq!(got, Matrix::iota(r, c).transposed().into_vec());
        let mut sim = Sim::new(dev, r * c + 8);
        let buf = sim.alloc(r * c);
        sim.upload_u32(buf, Matrix::iota(r, c).as_slice());
        let coprime_stats =
            crate::coprime::transpose_coprime_on_device(&sim, buf, r, c, 256).unwrap();
        let c2r_gbps = c2r_stats.throughput_gbps(bytes);
        let coprime_gbps = coprime_stats.throughput_gbps(bytes);
        assert!(
            c2r_gbps > coprime_gbps,
            "c2r {c2r_gbps:.1} GB/s should beat coprime {coprime_gbps:.1} GB/s"
        );
    }
}
