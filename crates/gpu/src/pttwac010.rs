//! PTTWAC `010!` (AoS→ASTA) — in-tile cycle following with per-element
//! 1-bit flags in local memory (§5.1 of the paper).
//!
//! For tiles too large for the BS kernel, each work-group transposes one
//! tile *directly in global memory*: work-items start at consecutive
//! elements (coalesced first touch), then chase the shifting cycles of
//! Eq. (1), claiming each destination with a simulated bit-addressable
//! atomic (`atom_or` on a 32-bit word). The flag layout
//! ([`FlagLayout`](crate::opts::FlagLayout)) decides how bits map to words:
//! packed flags serialise colliding work-items (position conflicts); the
//! paper's spreading (Eq. 3) and padding (§5.1.2) optimisations reduce
//! position, then bank and lock conflicts.
//!
//! Claim protocol (single scheduling slice = atomic w.r.t. other warps):
//! a work-item holding the value of position `p` computes `next = dest(p)`,
//! atomically sets `flag[next]`; on success it swaps its carried value with
//! `data[next]` and continues the chain; on failure the chain is already
//! owned and the work-item grabs its next start position.

// Per-lane state lives in parallel fixed-size arrays; indexed loops over
// `0..ctx.lanes` are the clearest expression of warp-vector code.
#![allow(clippy::needless_range_loop)]

use crate::opts::{ClaimBackoff, FlagLayout};
use gpu_sim::{Buffer, Coordination, Grid, Kernel, LaneAddrs, LaneWrites, Step, WarpCtx};
use ipt_core::TransposePerm;

/// PTTWAC 010! kernel: `instances` tiles of `rows × cols` scalars.
#[derive(Debug, Clone)]
pub struct Pttwac010 {
    /// The array (all instances, contiguous).
    pub data: Buffer,
    /// Number of tiles (one work-group each).
    pub instances: usize,
    /// Tile rows.
    pub rows: usize,
    /// Tile cols.
    pub cols: usize,
    /// Work-items per work-group.
    pub wg_size: usize,
    /// Flag bit layout in local memory.
    pub flags: FlagLayout,
    /// Optional claim-retry backoff: after losing a successor claim, the
    /// lane sits out a capped-exponential, seeded-jitter number of slices
    /// before acquiring new work. `None` = historic retry-every-slice.
    pub backoff: Option<ClaimBackoff>,
}

impl Pttwac010 {
    /// Elements per tile.
    #[must_use]
    pub fn tile_len(&self) -> usize {
        self.rows * self.cols
    }
}

/// Per-lane chase state.
#[derive(Clone, Copy, Default)]
struct LaneState {
    /// Currently carried value.
    carried: u32,
    /// Position whose successor we will claim next.
    pos: usize,
    /// Lane is mid-chain.
    active: bool,
    /// Next start offset to examine (stride `wg_size`).
    next_start: usize,
    /// No starts left and not active.
    exhausted: bool,
    /// Consecutive lost successor claims (backoff exponent).
    losses: u32,
    /// Scheduling slices left to sit out before acquiring again.
    cooldown: u32,
}

/// Per-warp state.
pub struct P010State {
    phase: u8,
    init_cursor: usize,
    lanes: [LaneState; gpu_sim::MAX_LANES],
}

impl Kernel for Pttwac010 {
    type State = P010State;

    fn name(&self) -> String {
        format!(
            "PTTWAC010 {}x{}x{} flags={:?}",
            self.instances, self.rows, self.cols, self.flags
        )
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: self.instances, wg_size: self.wg_size }
    }

    // One work-group per tile instance (`base = wg_id * tile_len`) with the
    // claim flags in work-group-local memory — nothing global is shared.
    fn coordination(&self) -> Coordination {
        Coordination::WgLocal
    }

    fn regs_per_thread(&self) -> usize {
        20
    }

    fn local_mem_words(&self, _dev: &gpu_sim::DeviceSpec) -> usize {
        self.flags.words_needed(self.tile_len())
    }

    fn init(&self, _wg_id: usize, _warp_id: usize) -> P010State {
        // Per-lane start offsets are filled in on the first step, when the
        // device's SIMD width is known.
        P010State { phase: 0, init_cursor: 0, lanes: [LaneState::default(); gpu_sim::MAX_LANES] }
    }

    fn step(&self, st: &mut P010State, ctx: &mut WarpCtx<'_>) -> Step {
        let tile = self.tile_len();
        let base = ctx.wg_id * tile;
        let perm = TransposePerm::new(self.rows, self.cols);
        let flag_words = self.flags.words_needed(tile);

        let warp_off = ctx.warp_id * ctx.device().simd_width;
        if st.phase == 0 {
            // Flag zeroing pass (the real kernel must clear local memory).
            let w0 = st.init_cursor * ctx.wg_size + warp_off;
            if w0 >= flag_words {
                st.phase = 1;
                // Correct per-lane start offsets now that lane geometry is
                // final.
                for l in 0..ctx.lanes {
                    st.lanes[l].next_start = ctx.local_thread_id(l);
                }
                return Step::Barrier;
            }
            let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                let w = w0 + l;
                (w < flag_words).then_some((w, 0u32))
            });
            ctx.local_write(&writes);
            st.init_cursor += 1;
            if st.init_cursor * ctx.wg_size + warp_off >= flag_words {
                st.phase = 1;
                for l in 0..ctx.lanes {
                    st.lanes[l].next_start = ctx.local_thread_id(l);
                }
                return Step::Barrier;
            }
            return Step::Continue;
        }

        // ---- main chase phase ----
        // 1. Lanes without work acquire a start position: skip fixed points,
        //    read the candidate's data, then check its flag.
        let mut want_start = [None::<usize>; gpu_sim::MAX_LANES];
        for l in 0..ctx.lanes {
            let s = &mut st.lanes[l];
            if s.active || s.exhausted {
                continue;
            }
            if s.cooldown > 0 {
                // Backing off after a lost claim: sit this slice out.
                s.cooldown -= 1;
                continue;
            }
            // Consume fixed points without memory traffic.
            while s.next_start < tile && perm.dest(s.next_start) == s.next_start {
                s.next_start += ctx.wg_size;
            }
            if s.next_start >= tile {
                s.exhausted = true;
            } else {
                want_start[l] = Some(s.next_start);
                s.next_start += ctx.wg_size;
            }
        }
        let start_addrs = LaneAddrs::from_fn(ctx.lanes, |l| want_start[l].map(|p| base + p));
        if start_addrs.active() > 0 {
            // Read candidate data (the algorithm reads data first, §3/§5.1).
            let vals = ctx.global_read(self.data, &start_addrs);
            // Check the candidate's own flag (atom_or with 0 = atomic read).
            let flag_ops = LaneWrites::from_fn(ctx.lanes, |l| {
                want_start[l].map(|p| {
                    let (w, _) = self.flags.word_and_bit(p);
                    (w, 0u32)
                })
            });
            let old = ctx.local_atomic_or(&flag_ops);
            for l in 0..ctx.lanes {
                if let Some(p) = want_start[l] {
                    let (_, bit) = self.flags.word_and_bit(p);
                    if (old.get(l) >> bit) & 1 == 0 {
                        let s = &mut st.lanes[l];
                        s.active = true;
                        s.pos = p;
                        s.carried = vals.get(l);
                    } else {
                        // Another lane already started (or finished) this
                        // cycle — the candidate claim was lost.
                        ctx.note_claim_retry();
                    }
                }
            }
        }

        // 2. Active lanes claim their successor.
        let mut next_pos = [0usize; gpu_sim::MAX_LANES];
        let claim_ops = LaneWrites::from_fn(ctx.lanes, |l| {
            let s = &st.lanes[l];
            if !s.active {
                return None;
            }
            let np = perm.dest(s.pos);
            next_pos[l] = np;
            let (w, bit) = self.flags.word_and_bit(np);
            Some((w, 1u32 << bit))
        });
        ctx.alu(6.0); // Eq.(1) multiply+mod plus flag addressing
        if claim_ops.active() > 0 {
            let old = ctx.local_atomic_or(&claim_ops);
            // Winners swap carried with data[next]; losers retire the chain.
            let mut won = [false; gpu_sim::MAX_LANES];
            for l in 0..ctx.lanes {
                if let Some((_, bitmask)) = claim_ops.get(l) {
                    won[l] = old.get(l) & bitmask == 0;
                    let s = &mut st.lanes[l];
                    if won[l] {
                        s.losses = 0;
                    } else {
                        s.active = false;
                        ctx.note_claim_retry();
                        if let Some(b) = self.backoff {
                            s.losses = s.losses.saturating_add(1);
                            s.cooldown = b.cooldown(next_pos[l], s.losses);
                        }
                    }
                }
            }
            let backup_addrs =
                LaneAddrs::from_fn(ctx.lanes, |l| won[l].then(|| base + next_pos[l]));
            let backups = ctx.global_read(self.data, &backup_addrs);
            let writes = LaneWrites::from_fn(ctx.lanes, |l| {
                won[l].then(|| (base + next_pos[l], st.lanes[l].carried))
            });
            ctx.global_write(self.data, &writes);
            for l in 0..ctx.lanes {
                if won[l] {
                    let s = &mut st.lanes[l];
                    s.carried = backups.get(l);
                    s.pos = next_pos[l];
                }
            }
        }

        let all_done = (0..ctx.lanes).all(|l| st.lanes[l].exhausted && !st.lanes[l].active);
        if all_done {
            Step::Done
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Sim};
    use ipt_core::InstancedTranspose;

    fn run(
        dev: DeviceSpec,
        instances: usize,
        rows: usize,
        cols: usize,
        wg_size: usize,
        flags: FlagLayout,
    ) -> (Vec<u32>, gpu_sim::KernelStats) {
        let op = InstancedTranspose::new(instances, rows, cols, 1);
        let mut sim = Sim::new(dev, op.total_len() + 8);
        let buf = sim.alloc(op.total_len());
        let data: Vec<u32> = (0..op.total_len() as u32).collect();
        sim.upload_u32(buf, &data);
        let k = Pttwac010 { data: buf, instances, rows, cols, wg_size, flags, backoff: None };
        let stats = sim.launch(&k).expect("feasible");
        (sim.download_u32(buf), stats)
    }

    fn expected(instances: usize, rows: usize, cols: usize) -> Vec<u32> {
        let op = InstancedTranspose::new(instances, rows, cols, 1);
        let mut want: Vec<u32> = (0..op.total_len() as u32).collect();
        op.apply_seq(&mut want);
        want
    }

    #[test]
    fn transposes_correctly_all_layouts() {
        for flags in [
            FlagLayout::Packed,
            FlagLayout::Spread { factor: 8 },
            FlagLayout::Spread { factor: 32 },
            FlagLayout::SpreadPadded { factor: 8 },
            FlagLayout::SpreadPadded { factor: 16 },
        ] {
            for &(i, r, c, wg) in &[
                (1usize, 5usize, 3usize, 32usize),
                (3, 16, 215, 64),
                (2, 16, 48, 96),
                (4, 61, 7, 128),
                (1, 64, 100, 256),
            ] {
                let (got, _) = run(DeviceSpec::tesla_k20(), i, r, c, wg, flags);
                assert_eq!(got, expected(i, r, c), "{i}x{r}x{c} wg={wg} {flags:?}");
            }
        }
    }

    #[test]
    fn backoff_keeps_results_correct() {
        use crate::opts::ClaimBackoff;
        let op = InstancedTranspose::new(3, 16, 215, 1);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), op.total_len() + 8);
        let buf = sim.alloc(op.total_len());
        let data: Vec<u32> = (0..op.total_len() as u32).collect();
        sim.upload_u32(buf, &data);
        let k = Pttwac010 {
            data: buf,
            instances: 3,
            rows: 16,
            cols: 215,
            wg_size: 64,
            flags: FlagLayout::SpreadPadded { factor: 8 },
            backoff: Some(ClaimBackoff::mild(7)),
        };
        let stats = sim.launch(&k).expect("feasible");
        assert_eq!(sim.download_u32(buf), expected(3, 16, 215));
        assert!(stats.time_s > 0.0);
    }

    #[test]
    fn works_on_amd_wavefronts() {
        let (got, _) = run(DeviceSpec::hd7750(), 2, 16, 33, 128, FlagLayout::Packed);
        assert_eq!(got, expected(2, 16, 33));
    }

    #[test]
    fn spreading_reduces_position_conflicts() {
        // The §5.1.1 effect: same workload, spread flags → far fewer
        // position conflicts.
        let (_, packed) = run(DeviceSpec::tesla_k20(), 4, 16, 215, 128, FlagLayout::Packed);
        let (_, spread) =
            run(DeviceSpec::tesla_k20(), 4, 16, 215, 128, FlagLayout::Spread { factor: 16 });
        assert!(
            spread.position_conflicts * 2 < packed.position_conflicts,
            "packed {} vs spread {}",
            packed.position_conflicts,
            spread.position_conflicts
        );
    }

    #[test]
    fn padding_reduces_bank_conflicts_for_pow2_strides() {
        // The §5.1.2 effect needs power-of-two cycle strides (Eq. (1)
        // multiplies positions by m). With n = 64 (so m·n−1 = 2^k−1) every
        // chase stride stays a power of two and spread flags hammer the
        // same banks; padding rotates them apart.
        let m = 16;
        for f in [8usize, 16, 32] {
            let (_, spread) =
                run(DeviceSpec::tesla_k20(), 64, m, 64, 256, FlagLayout::Spread { factor: f });
            let (_, padded) =
                run(DeviceSpec::tesla_k20(), 64, m, 64, 256, FlagLayout::SpreadPadded { factor: f });
            assert!(
                padded.bank_conflicts * 2 < spread.bank_conflicts,
                "f={f}: spread banks {} vs padded {}",
                spread.bank_conflicts,
                padded.bank_conflicts
            );
            assert!(padded.time_s <= spread.time_s, "f={f}: padding must not slow down");
        }
    }

    #[test]
    fn padding_reduces_lock_conflicts() {
        // Lock conflicts (1024 locks) appear at high spreading on the
        // paper's Figure-3 example (m = 16, n = 215); padding removes most.
        let (_, spread) =
            run(DeviceSpec::tesla_k20(), 64, 16, 215, 256, FlagLayout::Spread { factor: 32 });
        let (_, padded) =
            run(DeviceSpec::tesla_k20(), 64, 16, 215, 256, FlagLayout::SpreadPadded { factor: 32 });
        assert!(
            padded.lock_conflicts * 4 < spread.lock_conflicts,
            "spread locks {} vs padded {}",
            spread.lock_conflicts,
            padded.lock_conflicts
        );
    }

    #[test]
    fn spreading_speeds_up_simulated_time() {
        let (_, packed) = run(DeviceSpec::tesla_k20(), 8, 32, 215, 256, FlagLayout::Packed);
        let (_, best) =
            run(DeviceSpec::tesla_k20(), 8, 32, 215, 256, FlagLayout::SpreadPadded { factor: 8 });
        assert!(
            best.time_s < packed.time_s,
            "optimised {} vs packed {}",
            best.time_s,
            packed.time_s
        );
    }

    #[test]
    fn extreme_spreading_costs_occupancy() {
        // Fig. 6's drops: spreading 32 inflates local memory and can push
        // occupancy below the packed variant's.
        let (_, packed) = run(DeviceSpec::tesla_k20(), 2, 64, 100, 256, FlagLayout::Packed);
        let (_, s32) =
            run(DeviceSpec::tesla_k20(), 2, 64, 100, 256, FlagLayout::Spread { factor: 32 });
        assert!(s32.occupancy.occupancy < packed.occupancy.occupancy);
    }
}
