//! Using the device's full in-place transposition from the host (§6):
//! "virtual in-place transposition" — the matrix is shipped over PCIe,
//! transposed in place on the accelerator, and shipped back to the same
//! host location.
//!
//! * **Synchronous** (Figure 4): `H2D → stage1 → stage2 → stage3 → D2H` on
//!   one command queue.
//! * **Asynchronous** (Figure 5 (b)): stage 1 cannot be split (its cycles
//!   span the whole array), but stages 2 and 3 operate on independent
//!   instances. They are split into `Q` chunks along the leading `N′`
//!   dimension, each chunk's `stage2 → stage3 → D2H` enqueued on its own
//!   command queue, so chunk kernels overlap other chunks' D2H transfers.

use crate::opts::GpuOptions;
use crate::pipeline::{plan_flag_words, run_plan, transpose_on_device};
use crate::recover::{
    transpose_with_recovery, verify_exact, RecoveryPolicy, RecoveryReport, TransposeError,
};
use gpu_sim::{
    simulate_queues_dep, try_simulate_queues_dep, Buffer, Cmd, DeviceSpec, FaultPlan, LaunchError,
    PipelineStats, QCmd, QueueError, Sim, Timeline,
};
use ipt_core::stages::{StageOp, StagePlan, TileConfig};
use ipt_core::{InstancedTranspose, Matrix};
use ipt_obs::Recorder;

/// Result of a host-side (virtual in-place) transposition.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// The DES timeline (PCIe + kernels on engines).
    pub timeline: Timeline,
    /// End-to-end seconds (= `timeline.total_s`).
    pub total_s: f64,
    /// Paper-convention effective throughput from the CPU's perspective:
    /// `2 × matrix_bytes / total_s`.
    pub effective_gbps: f64,
    /// The device-side kernel stats that produced the kernel durations.
    pub kernels: PipelineStats,
    /// Number of command queues used.
    pub queues: usize,
}

impl HostReport {
    /// Emit this report into a [`Recorder`]: the DES timeline (one span per
    /// queue command, one display track per engine, busy-fraction gauges),
    /// every device-side kernel's counters, and end-to-end gauges. `t0_s`
    /// offsets the timeline on the recorder's global clock.
    pub fn record<R: Recorder>(&self, rec: &R, t0_s: f64) {
        if !rec.enabled() {
            return;
        }
        self.timeline.record(rec, t0_s, &["copy H2D", "copy D2H", "compute"]);
        for st in &self.kernels.stages {
            st.record_counters(rec);
        }
        rec.gauge("host", "effective_gbps", self.effective_gbps);
        rec.gauge("host", "total_s", self.total_s);
        #[allow(clippy::cast_precision_loss)]
        rec.gauge("host", "queues", self.queues as f64);
    }
}

fn matrix_bytes(rows: usize, cols: usize) -> f64 {
    ipt_core::check::bytes_f64(rows, cols, 4)
}

/// Synchronous scheme: one queue, full H2D, all stages, full D2H.
///
/// Functionally executes and verifies the transposition on a fresh
/// simulator.
///
/// # Errors
/// Propagates infeasible kernel launches.
pub fn run_host_sync(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
) -> Result<HostReport, LaunchError> {
    let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(plan) + 64);
    let mut data = Matrix::iota(rows, cols).into_vec();
    let stats = transpose_on_device(&mut sim, &mut data, rows, cols, plan, opts)?;

    let bytes = matrix_bytes(rows, cols);
    let mut q = vec![QCmd::plain(Cmd::H2D { bytes })];
    for st in &stats.stages {
        q.push(QCmd::plain(Cmd::Kernel { time_s: st.time_s, name: st.name.as_str().into() }));
    }
    if stats.overhead_s > 0.0 {
        q.push(QCmd::plain(Cmd::Kernel { time_s: stats.overhead_s, name: "flag memsets".into() }));
    }
    q.push(QCmd::plain(Cmd::D2H { bytes }));
    let timeline = simulate_queues_dep(dev, &[q]);
    Ok(HostReport {
        total_s: timeline.total_s,
        effective_gbps: 2.0 * bytes / timeline.total_s / 1e9,
        timeline,
        kernels: stats,
        queues: 1,
    })
}

/// Split an instanced stage into `q` chunks along its leading instances.
/// Returns `(instance_ranges, word_offsets, word_lengths)`.
fn chunk_ranges(total_instances: usize, instance_words: usize, q: usize) -> Vec<(usize, usize)> {
    // (first_instance, count) per chunk, last chunk takes the remainder.
    let _ = instance_words;
    let per = total_instances.div_ceil(q);
    (0..q)
        .map(|c| {
            let lo = (c * per).min(total_instances);
            let hi = ((c + 1) * per).min(total_instances);
            (lo, hi - lo)
        })
        .filter(|&(_, n)| n > 0)
        .collect()
}

/// Asynchronous scheme with `q` command queues (§7.6). Only valid for the
/// 3-stage plan (`100! → 0010! → 0100!`): stages 2 and 3 are chunked along
/// `N′` and overlapped with the D2H transfer.
///
/// # Errors
/// [`TransposeError::InvalidConfig`] for `q == 0` or a non-3-stage plan;
/// [`TransposeError::Launch`] for infeasible kernel launches;
/// [`TransposeError::Verify`] if the chunked execution produces an
/// incorrect transposition.
pub fn run_host_async(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    q: usize,
) -> Result<HostReport, TransposeError> {
    run_host_async_attempt(dev, rows, cols, plan, opts, q, None).0
}

/// One attempt at the asynchronous scheme, with an optional fault plan
/// armed on the internal simulator. Returns the (possibly consumed) fault
/// plan so a coarse-grained retry can carry it forward.
pub(crate) fn run_host_async_attempt(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    q: usize,
    fault: Option<FaultPlan>,
) -> (Result<HostReport, TransposeError>, Option<FaultPlan>) {
    if q == 0 {
        let e = TransposeError::InvalidConfig {
            what: "asynchronous scheme needs at least one command queue (q >= 1)".into(),
        };
        return (Err(e), fault);
    }
    if plan.name != "3-stage" {
        let e = TransposeError::InvalidConfig {
            what: format!("asynchronous scheme requires the 3-stage plan, got `{}`", plan.name),
        };
        return (Err(e), fault);
    }
    // Pull the three ops out of the plan.
    let mut ops = Vec::with_capacity(plan.stages.len());
    for s in &plan.stages {
        match &s.op {
            StageOp::Instanced(op) => ops.push(*op),
            StageOp::Fused(_) => {
                let e = TransposeError::InvalidConfig {
                    what: "3-stage plan unexpectedly contains a fused stage".into(),
                };
                return (Err(e), fault);
            }
        }
    }

    let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(plan) + 64);
    if let Some(f) = fault {
        sim.set_fault_plan(f);
    }
    let data = sim.alloc(rows * cols);
    let flags = sim.alloc(plan_flag_words(plan).max(1));
    let res = run_host_async_body(&sim, data, flags, dev, rows, cols, plan, &ops, opts, q);
    let fault = sim.take_fault_plan();
    (res, fault)
}

#[allow(clippy::too_many_arguments)]
fn run_host_async_body(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    ops: &[InstancedTranspose],
    opts: &GpuOptions,
    q: usize,
) -> Result<HostReport, TransposeError> {
    let tile = plan.tile;
    let (mp, np) = (rows / tile.m, cols / tile.n);
    let bytes = matrix_bytes(rows, cols);

    // Device-side functional execution, chunked exactly as scheduled.
    let host = Matrix::iota(rows, cols).into_vec();
    sim.upload_u32(data, &host);

    let mut kernels = PipelineStats::default();

    // Stage 1 (100!): unsplittable.
    let stage1_plan = StagePlan {
        rows,
        cols,
        tile,
        name: "3-stage",
        stages: vec![plan.stages[0].clone()],
    };
    let s1 = run_plan(sim, data, flags, &stage1_plan, opts)?;
    let stage1_time: f64 = s1.time_s();
    kernels.stages.extend(s1.stages);
    kernels.overhead_s += s1.overhead_s;

    // Stages 2 and 3, chunked along N′.
    let chunks = chunk_ranges(np, 0, q);
    let mut chunk_cmds: Vec<Vec<QCmd>> = Vec::new();
    // Queue 0 carries H2D + stage1 first.
    let mut q0 = vec![
        QCmd::plain(Cmd::H2D { bytes }),
        QCmd::plain(Cmd::Kernel { time_s: stage1_time, name: "stage1 100!".into() }),
    ];

    let inst2_per_np = mp; // stage-2 instances per N′ slot
    let words_per_np = mp * tile.m * tile.n; // words per N′ slot
    for (ci, &(lo, n_np)) in chunks.iter().enumerate() {
        // Chunked stage 2 (0010!): instances = n_np · mp tiles.
        let off = lo * words_per_np;
        let len = n_np * words_per_np;
        let sub = data.slice(off, len);
        let op2 = ipt_core::InstancedTranspose::new(
            n_np * inst2_per_np,
            ops[1].rows,
            ops[1].cols,
            1,
        );
        let st2 = crate::pipeline::run_instanced_public(sim, sub, flags, &op2, opts)?;
        // Chunked stage 3 (0100!): instances = n_np.
        let op3 = InstancedTranspose::new(n_np, ops[2].rows, ops[2].cols, ops[2].super_size);
        let st3 = crate::pipeline::run_instanced_public(sim, sub, flags, &op3, opts)?;

        let d2h_bytes = len as f64 * 4.0;
        let mut cmds = Vec::new();
        let wait_stage1 = Some((0usize, 1usize)); // stage1 is queue 0, index 1
        cmds.push(QCmd {
            cmd: Cmd::Kernel { time_s: st2.time_s, name: format!("stage2 chunk {ci}").into() },
            wait: wait_stage1,
        });
        cmds.push(QCmd::plain(Cmd::Kernel {
            time_s: st3.time_s,
            name: format!("stage3 chunk {ci}").into(),
        }));
        cmds.push(QCmd::plain(Cmd::D2H { bytes: d2h_bytes }));
        kernels.stages.push(st2);
        kernels.stages.push(st3);
        if ci == 0 {
            // Chunk 0 rides queue 0 (after stage1).
            q0.extend(cmds);
        } else {
            chunk_cmds.push(cmds);
        }
    }

    let mut queues = vec![q0];
    queues.extend(chunk_cmds);
    // The application creates Q queues before knowing how many chunks the
    // tiling yields; surplus queues still cost their creation overhead.
    while queues.len() < q {
        queues.push(Vec::new());
    }
    let timeline = try_simulate_queues_dep(dev, &queues, sim.fault_source())?;

    // Verify the chunked execution.
    let result = sim.download_u32(data);
    verify_exact(&host, &result, rows, cols)?;

    Ok(HostReport {
        total_s: timeline.total_s,
        effective_gbps: 2.0 * bytes / timeline.total_s / 1e9,
        timeline,
        kernels,
        queues: queues.len(),
    })
}

/// Out-of-place transposition from the host (Table 3's "GPU out-of-place +
/// data transfers" row): H2D, OOP kernel, D2H. Needs 2× device memory.
///
/// # Errors
/// Propagates infeasible kernel launches.
pub fn run_host_oop(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
) -> Result<HostReport, LaunchError> {
    let mut sim = Sim::new(dev.clone(), 2 * rows * cols + 8);
    let src = sim.alloc(rows * cols);
    let dst = sim.alloc(rows * cols);
    let host = Matrix::iota(rows, cols);
    sim.upload_u32(src, host.as_slice());
    let k = crate::oop::OopTranspose { src, dst, rows, cols };
    let stats = sim.launch(&k)?;
    assert_eq!(
        sim.download_u32(dst),
        host.transposed().into_vec(),
        "OOP kernel incorrect"
    );
    let bytes = matrix_bytes(rows, cols);
    let q = vec![
        QCmd::plain(Cmd::H2D { bytes }),
        QCmd::plain(Cmd::Kernel { time_s: stats.time_s, name: stats.name.as_str().into() }),
        QCmd::plain(Cmd::D2H { bytes }),
    ];
    let timeline = simulate_queues_dep(dev, &[q]);
    Ok(HostReport {
        total_s: timeline.total_s,
        effective_gbps: 2.0 * bytes / timeline.total_s / 1e9,
        timeline,
        kernels: PipelineStats { stages: vec![stats], overhead_s: 0.0 },
        queues: 1,
    })
}

/// Build the 3-stage plan the host schemes expect.
///
/// # Errors
/// Propagates tile divisibility failures.
pub fn three_stage_plan(
    rows: usize,
    cols: usize,
    tile: TileConfig,
) -> Result<StagePlan, ipt_core::stages::PlanError> {
    StagePlan::three_stage(rows, cols, tile)
}

/// Run the DES timeline, resubmitting on injected transfer failures
/// (bounded by the policy's retry budget, each resubmission charging
/// backoff into the report). Each observed fault is routed through the
/// recorder as a typed `transfer_fault` event plus a
/// [`Counter::TransferFaultsInjected`] increment — silent under
/// [`ipt_obs::NoopRecorder`], countable in Prometheus otherwise.
///
/// [`Counter::TransferFaultsInjected`]: ipt_obs::Counter::TransferFaultsInjected
fn simulate_with_transfer_retry<R: Recorder>(
    dev: &DeviceSpec,
    queues: &[Vec<QCmd>],
    sim: &Sim,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
    rec: &R,
) -> Result<Timeline, TransposeError> {
    let mut attempt = 0usize;
    loop {
        match try_simulate_queues_dep(dev, queues, sim.fault_source()) {
            Ok(tl) => return Ok(tl),
            Err(e @ QueueError::TransferFault { .. }) => {
                record_transfer_fault(rec, "host", &e);
                if attempt >= policy.max_stage_retries {
                    return Err(TransposeError::RecoveryExhausted {
                        attempts: attempt + 1,
                        last: Box::new(TransposeError::Transfer(e)),
                    });
                }
                report.transfer_retries += 1;
                report.penalty_s += policy.backoff_s(attempt);
                attempt += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Route one observed transient transfer fault through the recorder: a
/// typed event carrying the DES error's message plus the
/// `TransferFaultsInjected` counter under `scope`.
pub(crate) fn record_transfer_fault<R: Recorder>(rec: &R, scope: &str, err: &QueueError) {
    rec.add(scope, ipt_obs::Counter::TransferFaultsInjected, 1);
    if rec.enabled() {
        rec.event(0.0, "transfer_fault", &err.to_string());
    }
}

/// Synchronous host scheme with verified recovery: the device-side
/// transposition runs through [`transpose_with_recovery`] (per-stage
/// validation, fallback chain) and the PCIe timeline resubmits failed
/// transfers. An optional [`FaultPlan`] is armed on the internal
/// simulator — the test harness's injection point.
///
/// # Errors
/// Only configuration errors when fallback is allowed; any
/// [`TransposeError`] otherwise. Never panics.
pub fn run_host_sync_recovering(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
    fault: Option<FaultPlan>,
) -> Result<(HostReport, RecoveryReport), TransposeError> {
    run_host_sync_recovering_rec(
        dev,
        rows,
        cols,
        plan,
        opts,
        policy,
        fault,
        &ipt_obs::NoopRecorder,
    )
}

/// [`run_host_sync_recovering`] with observability: injected transfer
/// faults are routed through `rec` as typed events plus the
/// `TransferFaultsInjected` counter.
///
/// # Errors
/// Same as [`run_host_sync_recovering`].
#[allow(clippy::too_many_arguments)]
pub fn run_host_sync_recovering_rec<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    policy: &RecoveryPolicy,
    fault: Option<FaultPlan>,
    rec: &R,
) -> Result<(HostReport, RecoveryReport), TransposeError> {
    // 2× data room keeps the out-of-place fallback reachable.
    let mut sim =
        Sim::new(dev.clone(), 2 * rows * cols + plan_flag_words(plan).max(1) + 64);
    if let Some(f) = fault {
        sim.set_fault_plan(f);
    }
    let mut data = Matrix::iota(rows, cols).into_vec();
    let (stats, mut report) =
        transpose_with_recovery(&mut sim, &mut data, rows, cols, plan, opts, policy)?;

    let bytes = matrix_bytes(rows, cols);
    let mut q = vec![QCmd::plain(Cmd::H2D { bytes })];
    for st in &stats.stages {
        q.push(QCmd::plain(Cmd::Kernel { time_s: st.time_s, name: st.name.as_str().into() }));
    }
    if stats.overhead_s > 0.0 {
        q.push(QCmd::plain(Cmd::Kernel { time_s: stats.overhead_s, name: "flag memsets".into() }));
    }
    if report.penalty_s > 0.0 {
        q.push(QCmd::plain(Cmd::Kernel {
            time_s: report.penalty_s,
            name: "recovery penalty".into(),
        }));
    }
    q.push(QCmd::plain(Cmd::D2H { bytes }));
    let timeline = simulate_with_transfer_retry(dev, &[q], &sim, policy, &mut report, rec)?;
    report.faults = sim.fault_records();
    Ok((
        HostReport {
            total_s: timeline.total_s,
            effective_gbps: 2.0 * bytes / timeline.total_s / 1e9,
            timeline,
            kernels: stats,
            queues: 1,
        },
        report,
    ))
}

/// Asynchronous host scheme with coarse-grained recovery. The chunked
/// scheme interleaves kernels and transfers too tightly for per-stage
/// snapshots, so recovery is whole-scheme: retry the full asynchronous
/// execution (injected faults are single-shot, so a retry runs clean),
/// and when the retry budget is spent, degrade to the synchronous
/// recovering scheme — whose own chain bottoms out at the host-sequential
/// path and cannot fail.
///
/// # Errors
/// Configuration errors immediately (retrying cannot fix them); otherwise
/// only what [`run_host_sync_recovering`] can return. Never panics.
#[allow(clippy::too_many_arguments)]
pub fn run_host_async_recovering(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    q: usize,
    policy: &RecoveryPolicy,
    fault: Option<FaultPlan>,
) -> Result<(HostReport, RecoveryReport), TransposeError> {
    let mut report = RecoveryReport::new(crate::recover::RecoveryPath::Primary);
    let mut fault = fault;
    let mut last_err: Option<TransposeError> = None;
    for attempt in 0..=policy.max_stage_retries {
        let (res, fp) = run_host_async_attempt(dev, rows, cols, plan, opts, q, fault.take());
        if let Some(f) = &fp {
            report.faults = f.records();
        }
        fault = fp;
        match res {
            Ok(rep) => {
                report.scheme_retries = attempt;
                if report.primary_error.is_none() {
                    report.primary_error = last_err.map(|e| e.to_string());
                }
                return Ok((rep, report));
            }
            // Deterministic configuration problems: fail fast.
            Err(e @ (TransposeError::InvalidConfig { .. } | TransposeError::Plan(_))) => {
                return Err(e);
            }
            Err(e) => {
                report.penalty_s += policy.backoff_s(attempt);
                last_err = Some(e);
            }
        }
    }
    // Degrade: the synchronous recovering scheme finishes the job.
    report.primary_error = last_err.map(|e| e.to_string());
    let async_attempts = policy.max_stage_retries + 1;
    let (rep, mut merged) =
        run_host_sync_recovering(dev, rows, cols, plan, opts, policy, fault)?;
    merged.scheme_retries += async_attempts;
    merged.penalty_s += report.penalty_s;
    // The fault plan (and its record log) was carried into the sync run,
    // so its report already holds the full firing history.
    if merged.faults.is_empty() {
        merged.faults = report.faults;
    }
    if merged.primary_error.is_none() {
        merged.primary_error = report.primary_error;
    }
    Ok((rep, merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipt_core::TileHeuristic;

    // Large enough that PCIe transfers dwarf queue-creation overhead (the
    // paper's regime: 51.8 MB matrices, ≈15 ms per transfer direction).
    const ROWS: usize = 2880;
    const COLS: usize = 720;

    fn tile() -> TileConfig {
        TileHeuristic { shared_capacity_words: 3600, preferred_lo: 30, preferred_hi: 90 }
            .select(ROWS, COLS)
            .unwrap()
    }

    #[test]
    fn sync_scheme_runs_and_verifies() {
        let dev = DeviceSpec::tesla_k20();
        let plan = StagePlan::three_stage(ROWS, COLS, tile()).unwrap();
        let opts = GpuOptions::tuned_for(&dev);
        let rep = run_host_sync(&dev, ROWS, COLS, &plan, &opts).unwrap();
        assert!(rep.total_s > 0.0);
        assert!(rep.effective_gbps > 0.0);
        // Transfers dominate for this size: effective < device-side.
        let dev_gbps = rep.kernels.throughput_gbps(matrix_bytes(ROWS, COLS));
        assert!(rep.effective_gbps < dev_gbps);
    }

    #[test]
    fn async_beats_sync_for_moderate_q() {
        let dev = DeviceSpec::tesla_k20();
        let plan = StagePlan::three_stage(ROWS, COLS, tile()).unwrap();
        let opts = GpuOptions::tuned_for(&dev);
        let sync = run_host_sync(&dev, ROWS, COLS, &plan, &opts).unwrap();
        let asy = run_host_async(&dev, ROWS, COLS, &plan, &opts, 4).unwrap();
        assert!(
            asy.total_s < sync.total_s,
            "async {} vs sync {}",
            asy.total_s,
            sync.total_s
        );
    }

    #[test]
    fn excessive_queues_degrade() {
        let dev = DeviceSpec::tesla_k20();
        let plan = StagePlan::three_stage(ROWS, COLS, tile()).unwrap();
        let opts = GpuOptions::tuned_for(&dev);
        let q4 = run_host_async(&dev, ROWS, COLS, &plan, &opts, 4).unwrap();
        let q64 = run_host_async(&dev, ROWS, COLS, &plan, &opts, 64).unwrap();
        assert!(q64.total_s > q4.total_s, "q64 {} vs q4 {}", q64.total_s, q4.total_s);
    }

    #[test]
    fn oop_from_host_close_to_inplace_from_host() {
        // Table 3: 3.57 vs 3.43 GB/s — transfers dominate both.
        let dev = DeviceSpec::tesla_k20();
        let plan = StagePlan::three_stage(ROWS, COLS, tile()).unwrap();
        let opts = GpuOptions::tuned_for(&dev);
        let oop = run_host_oop(&dev, ROWS, COLS).unwrap();
        let ip = run_host_sync(&dev, ROWS, COLS, &plan, &opts).unwrap();
        let ratio = oop.effective_gbps / ip.effective_gbps;
        assert!((0.8..1.6).contains(&ratio), "ratio {ratio}");
    }
}
