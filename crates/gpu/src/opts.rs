//! Kernel configuration: flag layouts for PTTWAC (§5.1) and per-device
//! launch options.

use gpu_sim::DeviceSpec;

/// How the 1-bit-per-element cycle flags are laid out in local memory.
///
/// The paper's §5.1 optimisations in increasing order of sophistication:
/// packed (Eq. 2) → spread (Eq. 3) → spread + padded (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagLayout {
    /// Eq. (2): `word = pos / 32` — maximal packing, maximal position
    /// conflicts.
    Packed,
    /// Eq. (3): `word = pos × factor / 32` — spreads flags over more words.
    /// `factor` ∈ 1..=32; 1 is equivalent to [`FlagLayout::Packed`].
    Spread {
        /// The spreading factor.
        factor: usize,
    },
    /// Spreading plus one unused word inserted every 32 words, which rotates
    /// banks and locks under power-of-two strides (§5.1.2, Figure 3 (c)).
    SpreadPadded {
        /// The spreading factor.
        factor: usize,
    },
}

impl FlagLayout {
    /// The effective spreading factor.
    #[must_use]
    pub fn factor(&self) -> usize {
        match *self {
            FlagLayout::Packed => 1,
            FlagLayout::Spread { factor } | FlagLayout::SpreadPadded { factor } => factor,
        }
    }

    /// Is padding applied?
    #[must_use]
    pub fn padded(&self) -> bool {
        matches!(self, FlagLayout::SpreadPadded { .. })
    }

    /// Local-memory word and bit holding the flag of element `pos`.
    #[inline]
    #[must_use]
    pub fn word_and_bit(&self, pos: usize) -> (usize, u32) {
        let f = self.factor();
        let spread = pos * f;
        let word = spread / 32;
        let bit = (spread % 32) as u32;
        let word = if self.padded() { word + word / 32 } else { word };
        (word, bit)
    }

    /// Local-memory words required for `elems` flags.
    #[must_use]
    pub fn words_needed(&self, elems: usize) -> usize {
        if elems == 0 {
            return 0;
        }
        let (w, _) = self.word_and_bit(elems - 1);
        w + 1
    }

    /// All layouts exercised by the Figure-6 experiment for one spreading
    /// factor.
    #[must_use]
    pub fn for_factor(factor: usize, padded: bool) -> Self {
        match (factor, padded) {
            (0 | 1, false) => FlagLayout::Packed,
            (f, false) => FlagLayout::Spread { factor: f },
            (f, true) => FlagLayout::SpreadPadded { factor: f.max(1) },
        }
    }
}

/// Which implementation of the `100!` (SoA→ASTA) family to use (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant100 {
    /// Sung et al.'s original: one work-group of `m` work-items per chain,
    /// barriers between SIMD units, occupancy limited by work-group slots.
    SungWorkGroup,
    /// §5.2.1: one SIMD unit per chain, super-element staged through local
    /// memory (2·m words per warp).
    WarpLocalTile,
    /// §5.2.1: register tiling — carried super-element lives in lane
    /// registers. Only legal when `m` is a multiple or divisor of the SIMD
    /// width.
    WarpRegTile,
    /// Pick [`Variant100::WarpRegTile`] when legal, else
    /// [`Variant100::WarpLocalTile`].
    Auto,
}

impl Variant100 {
    /// Resolve [`Variant100::Auto`] for a given super-element size.
    /// Register tiling needs `m` to divide / be a multiple of the SIMD width
    /// *and* a register budget of at most 8 payload words per lane.
    #[must_use]
    pub fn resolve(self, super_size: usize, simd_width: usize) -> Variant100 {
        match self {
            Variant100::Auto => {
                let aligned = super_size.is_multiple_of(simd_width) || simd_width.is_multiple_of(super_size);
                if aligned && super_size <= simd_width * 8 {
                    Variant100::WarpRegTile
                } else {
                    Variant100::WarpLocalTile
                }
            }
            v => v,
        }
    }
}

/// Capped exponential backoff with seeded jitter for the PTTWAC claim-retry
/// paths: after a lost claim, the loser sits out a pseudo-random number of
/// scheduling slices before retrying, decorrelating repeat collisions under
/// adversarial schedules. Cooldowns grow `base << losses` up to `cap`, with
/// a jitter term derived from `(seed, position, losses)` — fully
/// deterministic, so explored schedules stay replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimBackoff {
    /// First cooldown, in scheduling slices (≥ 1).
    pub base: u32,
    /// Cooldown ceiling, in scheduling slices.
    pub cap: u32,
    /// Jitter seed (campaign-level; thread one seed through the whole run).
    pub seed: u64,
}

impl ClaimBackoff {
    /// A mild default: 1-slice first cooldown capped at 8 slices.
    #[must_use]
    pub fn mild(seed: u64) -> Self {
        Self { base: 1, cap: 8, seed }
    }

    /// Cooldown (in slices) after `losses` consecutive lost claims of
    /// cycle-start `pos`: `min(base << losses, cap)` plus jitter in
    /// `[0, current)`.
    #[must_use]
    pub fn cooldown(&self, pos: usize, losses: u32) -> u32 {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(losses.min(16)).unwrap_or(u32::MAX))
            .min(self.cap)
            .max(1);
        let h = gpu_sim::sched::mix64(
            self.seed,
            (pos as u64).wrapping_mul(0x9e37_79b9) ^ u64::from(losses),
        );
        exp + (h % u64::from(exp)) as u32
    }
}

/// Launch options for the staged pipelines.
#[derive(Debug, Clone, Copy)]
pub struct GpuOptions {
    /// Work-group size for the BS and PTTWAC-010 kernels.
    pub wg_size: usize,
    /// Work-group size for the warp-based 100! kernels (paper: 192 on
    /// Fermi — register limited — and a multiple of 128 on Kepler).
    pub wg_size_100: usize,
    /// Flag layout for PTTWAC-010.
    pub flags: FlagLayout,
    /// 100!-family implementation.
    pub variant100: Variant100,
    /// Claim-retry backoff for both PTTWAC kernels. `None` (the default,
    /// and what `tuned_for`/`baseline_for` produce) retries every slice —
    /// the historic behaviour the committed benchmark baselines pin.
    pub backoff: Option<ClaimBackoff>,
}

impl GpuOptions {
    /// The paper's best configuration for a device: spread+padded flags,
    /// warp-based 100! with automatic register tiling.
    #[must_use]
    pub fn tuned_for(dev: &DeviceSpec) -> Self {
        let wg_100 = match dev.arch {
            gpu_sim::Arch::Fermi => 192,
            gpu_sim::Arch::Kepler => 256,
            gpu_sim::Arch::Gcn => 256,
            gpu_sim::Arch::Mic => 128,
        };
        Self {
            wg_size: 256.min(dev.max_threads_per_wg),
            wg_size_100: wg_100.min(dev.max_threads_per_wg),
            flags: FlagLayout::SpreadPadded { factor: 8 },
            variant100: Variant100::Auto,
            backoff: None,
        }
    }

    /// The unoptimised baseline: packed flags (Eq. 2) and Sung's
    /// work-group-per-super-element 100!.
    #[must_use]
    pub fn baseline_for(dev: &DeviceSpec) -> Self {
        Self {
            wg_size: 256.min(dev.max_threads_per_wg),
            wg_size_100: 256.min(dev.max_threads_per_wg),
            flags: FlagLayout::Packed,
            variant100: Variant100::SungWorkGroup,
            backoff: None,
        }
    }

    /// `self` with claim-retry backoff enabled (builder style).
    #[must_use]
    pub fn with_backoff(mut self, backoff: ClaimBackoff) -> Self {
        self.backoff = Some(backoff);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_layout_is_eq2() {
        let l = FlagLayout::Packed;
        assert_eq!(l.word_and_bit(0), (0, 0));
        assert_eq!(l.word_and_bit(31), (0, 31));
        assert_eq!(l.word_and_bit(32), (1, 0));
        assert_eq!(l.words_needed(64), 2);
        assert_eq!(l.words_needed(65), 3);
    }

    #[test]
    fn spread_layout_is_eq3() {
        let l = FlagLayout::Spread { factor: 8 };
        // pos 0..3 share word 0 at bits 0,8,16,24; pos 4 → word 1.
        assert_eq!(l.word_and_bit(0), (0, 0));
        assert_eq!(l.word_and_bit(3), (0, 24));
        assert_eq!(l.word_and_bit(4), (1, 0));
        assert_eq!(l.words_needed(64), 16);
        // factor 32: one flag per word.
        let l = FlagLayout::Spread { factor: 32 };
        assert_eq!(l.word_and_bit(5), (5, 0));
    }

    #[test]
    fn padding_inserts_gap_every_32_words() {
        let l = FlagLayout::SpreadPadded { factor: 32 };
        // Unpadded words 0..31 map to 0..31; word 32 skips to 33.
        assert_eq!(l.word_and_bit(31).0, 31);
        assert_eq!(l.word_and_bit(32).0, 33);
        assert_eq!(l.word_and_bit(64).0, 66);
    }

    #[test]
    fn flags_unique_per_position() {
        for layout in [
            FlagLayout::Packed,
            FlagLayout::Spread { factor: 4 },
            FlagLayout::Spread { factor: 32 },
            FlagLayout::SpreadPadded { factor: 8 },
        ] {
            let mut seen = std::collections::HashSet::new();
            for pos in 0..2000 {
                assert!(seen.insert(layout.word_and_bit(pos)), "{layout:?} pos={pos}");
            }
        }
    }

    #[test]
    fn spreading_reduces_same_word_collisions() {
        // 32 consecutive positions: packed → all in 1 word; spread 8 → 8 per
        // 4 words... i.e. 4 positions per word.
        let count_words = |l: FlagLayout| {
            let mut words = std::collections::HashSet::new();
            for pos in 0..32 {
                words.insert(l.word_and_bit(pos).0);
            }
            words.len()
        };
        assert_eq!(count_words(FlagLayout::Packed), 1);
        assert_eq!(count_words(FlagLayout::Spread { factor: 8 }), 8);
        assert_eq!(count_words(FlagLayout::Spread { factor: 32 }), 32);
    }

    #[test]
    fn variant_resolution() {
        assert_eq!(Variant100::Auto.resolve(64, 32), Variant100::WarpRegTile);
        assert_eq!(Variant100::Auto.resolve(16, 32), Variant100::WarpRegTile);
        assert_eq!(Variant100::Auto.resolve(72, 32), Variant100::WarpLocalTile);
        assert_eq!(Variant100::SungWorkGroup.resolve(64, 32), Variant100::SungWorkGroup);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let b = ClaimBackoff { base: 1, cap: 8, seed: 42 };
        // Deterministic: same inputs, same cooldown.
        assert_eq!(b.cooldown(17, 0), b.cooldown(17, 0));
        for losses in 0..12 {
            let c = b.cooldown(5, losses);
            let exp = (1u32 << losses.min(16)).min(8);
            assert!(c >= exp && c < 2 * exp, "losses={losses} cooldown={c}");
        }
        // Different positions decorrelate (not all equal over a window).
        let all_same = (0..32).map(|p| b.cooldown(p, 3)).all(|c| c == b.cooldown(0, 3));
        assert!(!all_same, "jitter should vary with position");
    }

    #[test]
    fn tuned_options_per_arch() {
        assert_eq!(GpuOptions::tuned_for(&DeviceSpec::gtx580()).wg_size_100, 192);
        assert_eq!(GpuOptions::tuned_for(&DeviceSpec::tesla_k20()).wg_size_100, 256);
        // AMD: hard 256-thread cap.
        assert!(GpuOptions::tuned_for(&DeviceSpec::hd7750()).wg_size <= 256);
    }
}
