//! Schedule-exploration harnesses for the PTTWAC claim protocols.
//!
//! The `010!`/`100!` kernels coordinate through flag bits claimed with
//! atomics; their correctness must hold under *every* warp interleaving,
//! not just the engine's historic round-robin. This module packages the
//! [`gpu_sim::sched`] machinery into ready-to-run race harnesses:
//!
//! * [`tiny_device`] — a 4-lane, single-SM device model that shrinks the
//!   interleaving space enough for bounded exhaustive exploration while
//!   keeping several warps genuinely concurrent.
//! * [`run_race_case`] — one fresh, watchdog-guarded, verified execution of
//!   a claim-protocol kernel under a caller-supplied [`Scheduler`].
//! * [`explore_case`] — bounded exhaustive exploration
//!   ([`gpu_sim::sched::explore`]) of a case's interleavings.
//! * [`pct_sweep`] — a seeded campaign of randomized-priority (PCT)
//!   schedules; every failure reports the sub-seed that reproduces it.
//! * [`BrokenPttwac010`] — a deliberately broken flag-update variant whose
//!   claim is split across two scheduling slices (a TOCTOU window). It
//!   exists so tests can prove the explorer catches real claim races; no
//!   pipeline ever selects it.

use crate::pttwac010::Pttwac010;
use crate::pttwac100::Pttwac100;
use crate::opts::{FlagLayout, Variant100};
use gpu_sim::sched::{
    explore, mix64, ExploreConfig, ExploreOutcome, PctScheduler, Scheduler, TraceScheduler,
    Watchdog,
};
use gpu_sim::{
    Buffer, DeviceSpec, Grid, Kernel, KernelStats, LaneAddrs, LaneWrites, Sim, Step, WarpCtx,
};
use ipt_core::{InstancedTranspose, TransposePerm};

/// Words per super-element used by the `100!` race case (small enough to
/// keep runs short, large enough that moves span several memory ops).
pub const SUPER_100: usize = 2;

/// A shrunken device model for schedule exploration: 4-wide SIMD, one SM,
/// and room for only a few resident work-groups, so a handful of warps are
/// concurrent and the bounded explorer can cover their interleavings.
/// Latency/bandwidth constants are inherited from the K20 preset — they
/// affect the simulated clock, never functional ordering.
#[must_use]
pub fn tiny_device() -> DeviceSpec {
    DeviceSpec {
        name: "explore-tiny",
        simd_width: 4,
        num_sms: 1,
        max_wgs_per_sm: 3,
        max_warps_per_sm: 8,
        max_threads_per_wg: 64,
        num_banks: 4,
        num_locks: 16,
        ..DeviceSpec::tesla_k20()
    }
}

/// Which claim-protocol kernel a race harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceTarget {
    /// `010!` with packed local flags (maximum flag contention).
    P010,
    /// `100!` warp/local-tile with global flag bits.
    P100,
    /// [`BrokenPttwac010`]: the claim's read and commit are separated by a
    /// slice boundary, so another warp can claim in between.
    Broken010,
}

impl RaceTarget {
    /// Short label for reports and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RaceTarget::P010 => "pttwac010",
            RaceTarget::P100 => "pttwac100",
            RaceTarget::Broken010 => "broken010",
        }
    }
}

/// One verified execution of `target` on a fresh simulator under `sched`:
/// iota input, watchdog armed, result compared element-exact against the
/// reference transposition.
///
/// # Errors
/// Returns a description of the launch error (including watchdog
/// [`Stalled`](gpu_sim::LaunchError::Stalled) trips) or of the first
/// corrupted element — the verdict format the explorer minimizes against.
pub fn run_race_case(
    dev: &DeviceSpec,
    target: RaceTarget,
    rows: usize,
    cols: usize,
    wg_size: usize,
    sched: &mut dyn Scheduler,
) -> Result<KernelStats, String> {
    let super_size = if target == RaceTarget::P100 { SUPER_100 } else { 1 };
    let op = InstancedTranspose::new(1, rows, cols, super_size);
    let total = op.total_len();
    let flag_words = Pttwac100::flag_words(rows * cols);
    let mut sim = Sim::new(dev.clone(), total + flag_words + 8);
    // Slices per warp in these cases is O(tile · cycle length); 50k leaves
    // two orders of magnitude of headroom while still converting a livelock
    // into a typed failure quickly.
    sim.set_watchdog(Some(Watchdog::new(50_000, 2_000_000)));
    let data = sim.alloc(total);
    let v: Vec<u32> = (0..total as u32).collect();
    sim.upload_u32(data, &v);
    let mut want = v;
    op.apply_seq(&mut want);

    let stats = match target {
        RaceTarget::P010 => {
            let k = Pttwac010 {
                data,
                instances: 1,
                rows,
                cols,
                wg_size,
                flags: FlagLayout::Packed,
                backoff: None,
            };
            sim.launch_sched(&k, sched)
        }
        RaceTarget::P100 => {
            let flags = sim.alloc(flag_words);
            sim.zero(flags);
            let k = Pttwac100 {
                data,
                flags,
                instances: 1,
                rows,
                cols,
                super_size,
                variant: Variant100::WarpLocalTile,
                wg_size,
                fuse_tile: None,
                backoff: None,
            };
            sim.launch_sched(&k, sched)
        }
        RaceTarget::Broken010 => {
            let k = BrokenPttwac010 { data, rows, cols, wg_size };
            sim.launch_sched(&k, sched)
        }
    }
    .map_err(|e| format!("launch failed: {e}"))?;

    let got = sim.download_u32(data);
    if let Some(i) = (0..total).find(|&i| got[i] != want[i]) {
        return Err(format!(
            "corrupt element {i}: got {} want {} ({} {rows}x{cols} under {})",
            got[i],
            want[i],
            target.label(),
            sched.name(),
        ));
    }
    Ok(stats)
}

/// Bounded exhaustive exploration of `target`'s warp interleavings on
/// `dev` (see [`gpu_sim::sched::explore`] for the branching and pruning
/// rules). Every schedule is a fresh deterministic execution verified
/// element-exact.
#[must_use]
pub fn explore_case(
    dev: &DeviceSpec,
    target: RaceTarget,
    rows: usize,
    cols: usize,
    wg_size: usize,
    cfg: &ExploreConfig,
) -> ExploreOutcome {
    explore(cfg, |trace| {
        let mut ts = TraceScheduler::new(trace);
        let verdict = run_race_case(dev, target, rows, cols, wg_size, &mut ts).map(|_| ());
        (ts.into_decisions(), verdict)
    })
}

/// One failing schedule of a [`pct_sweep`] campaign.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// Index of the schedule within the sweep.
    pub index: usize,
    /// The derived sub-seed that reproduces the failing schedule.
    pub seed: u64,
    /// What went wrong (launch error or first corrupted element).
    pub detail: String,
}

/// Outcome of a [`pct_sweep`] campaign.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Schedules executed.
    pub runs: usize,
    /// Claim retries summed over all runs — evidence the sweep actually
    /// provoked contention rather than exploring uncontended schedules.
    pub claim_retries: u64,
    /// Every failing schedule with its reproducer seed.
    pub failures: Vec<SweepFailure>,
}

impl SweepOutcome {
    /// Did every schedule in the sweep pass?
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `schedules` verified executions of `target` under PCT schedulers
/// whose sub-seeds derive from `base_seed` (schedule *i* uses
/// `mix64(base_seed, i)`), each with `depth` priority-change points. The
/// whole campaign is reproducible from `base_seed`, and any failure names
/// the exact sub-seed that replays it.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn pct_sweep(
    dev: &DeviceSpec,
    target: RaceTarget,
    rows: usize,
    cols: usize,
    wg_size: usize,
    base_seed: u64,
    schedules: usize,
    depth: usize,
) -> SweepOutcome {
    let mut out = SweepOutcome { runs: schedules, ..SweepOutcome::default() };
    for i in 0..schedules {
        let seed = mix64(base_seed, i as u64);
        let mut pct = PctScheduler::new(seed, depth);
        match run_race_case(dev, target, rows, cols, wg_size, &mut pct) {
            Ok(stats) => out.claim_retries += stats.claim_retries,
            Err(detail) => out.failures.push(SweepFailure { index: i, seed, detail }),
        }
    }
    out
}

/// A deliberately broken `010!` variant: the successor claim is split into
/// a *read* slice (`atom_or` with 0, observing the flag) and a later
/// *blind commit* slice (set the flag and move the data without
/// re-checking). Between the two slices another warp can read the same
/// flag clear and also commit — the classic TOCTOU double-claim that the
/// real kernel's single-slice atomic `or` makes impossible.
///
/// One lane per warp drives a chase (so the race is between *warps*, i.e.
/// visible to the scheduler), starts striding over the tile exactly like
/// the real kernel. Correct under any serial schedule; corrupt under
/// specific interleavings. **Test harness only** — no pipeline selects it.
#[derive(Debug, Clone)]
pub struct BrokenPttwac010 {
    /// The tile (single instance).
    pub data: Buffer,
    /// Tile rows.
    pub rows: usize,
    /// Tile cols.
    pub cols: usize,
    /// Work-items per work-group (one work-group total).
    pub wg_size: usize,
}

impl BrokenPttwac010 {
    fn tile_len(&self) -> usize {
        self.rows * self.cols
    }
}

/// Per-warp state of [`BrokenPttwac010`].
pub struct Broken010State {
    phase: u8,
    init_cursor: usize,
    active: bool,
    pos: usize,
    carried: u32,
    next_start: usize,
    /// 0 until lane geometry is known (lazy, like the real warp variants).
    stride: usize,
    exhausted: bool,
    /// `Some(next)` while inside the TOCTOU window: the flag of `next` was
    /// read clear and the commit is deferred to the next slice.
    pending_claim: Option<usize>,
}

impl Kernel for BrokenPttwac010 {
    type State = Broken010State;

    fn name(&self) -> String {
        format!("BROKEN-PTTWAC010 {}x{}", self.rows, self.cols)
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: 1, wg_size: self.wg_size }
    }

    fn regs_per_thread(&self) -> usize {
        16
    }

    fn local_mem_words(&self, _dev: &gpu_sim::DeviceSpec) -> usize {
        self.tile_len().div_ceil(32)
    }

    fn init(&self, _wg_id: usize, _warp_id: usize) -> Broken010State {
        Broken010State {
            phase: 0,
            init_cursor: 0,
            active: false,
            pos: 0,
            carried: 0,
            next_start: 0,
            stride: 0,
            exhausted: false,
            pending_claim: None,
        }
    }

    fn step(&self, st: &mut Broken010State, ctx: &mut WarpCtx<'_>) -> Step {
        let tile = self.tile_len();
        let perm = TransposePerm::new(self.rows, self.cols);
        let flag_words = tile.div_ceil(32);

        if st.phase == 0 {
            // Zero the flag words (lane 0 of warp 0 covers them all; the
            // barrier publishes the cleared flags to every warp).
            if ctx.warp_id == 0 {
                let writes = LaneWrites::from_fn(1, |_| {
                    (st.init_cursor < flag_words).then_some((st.init_cursor, 0u32))
                });
                ctx.local_write(&writes);
                st.init_cursor += 1;
            }
            if ctx.warp_id != 0 || st.init_cursor >= flag_words {
                st.phase = 1;
                let warps = ctx.wg_size.div_ceil(ctx.device().simd_width).max(1);
                st.next_start = ctx.warp_id;
                st.stride = warps;
                return Step::Barrier;
            }
            return Step::Continue;
        }

        // ---- blind commit slice: the second half of the split claim ----
        if let Some(next) = st.pending_claim.take() {
            // BUG under exploration: the flag was read clear one slice ago,
            // but it is set-and-committed here *without re-checking* — any
            // warp that claimed `next` in between is silently double-moved.
            let (w, bit) = (next / 32, (next % 32) as u32);
            let set = LaneWrites::from_fn(1, |_| Some((w, 1u32 << bit)));
            let _ = ctx.local_atomic_or(&set);
            let addr = LaneAddrs::from_fn(1, |_| Some(next));
            let backup = ctx.global_read(self.data, &addr);
            let wr = LaneWrites::from_fn(1, |_| Some((next, st.carried)));
            ctx.global_write(self.data, &wr);
            st.carried = backup.get(0);
            st.pos = next;
            return Step::Continue;
        }

        if !st.active {
            // Acquire a start: skip fixed points, read data then the flag
            // (same benign-duplicate protocol as the real kernel — the
            // successor claim is what is supposed to arbitrate).
            while st.next_start < tile && perm.dest(st.next_start) == st.next_start {
                st.next_start += st.stride;
            }
            if st.next_start >= tile {
                st.exhausted = true;
                return Step::Done;
            }
            let p = st.next_start;
            st.next_start += st.stride;
            let addr = LaneAddrs::from_fn(1, |_| Some(p));
            let val = ctx.global_read(self.data, &addr);
            let (w, bit) = (p / 32, (p % 32) as u32);
            let read = LaneWrites::from_fn(1, |_| Some((w, 0u32)));
            let old = ctx.local_atomic_or(&read);
            if (old.get(0) >> bit) & 1 == 0 {
                st.active = true;
                st.pos = p;
                st.carried = val.get(0);
            } else {
                ctx.note_claim_retry();
            }
            return Step::Continue;
        }

        // ---- read slice: first half of the split claim ----
        let next = perm.dest(st.pos);
        let (w, bit) = (next / 32, (next % 32) as u32);
        let read = LaneWrites::from_fn(1, |_| Some((w, 0u32)));
        let old = ctx.local_atomic_or(&read);
        ctx.alu(6.0);
        if (old.get(0) >> bit) & 1 == 0 {
            // Flag observed clear: commit on the *next* slice — the window.
            st.pending_claim = Some(next);
        } else {
            // Chain owned elsewhere; retire and scan for a new start.
            st.active = false;
            ctx.note_claim_retry();
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::RoundRobin;

    #[test]
    fn tiny_device_is_sane() {
        let d = tiny_device();
        assert!(d.simd_width.is_power_of_two());
        assert_eq!(d.num_sms, 1);
        assert!(d.local_words_per_wg() > 0);
    }

    #[test]
    fn race_cases_pass_under_round_robin() {
        let dev = tiny_device();
        for (target, wg) in
            [(RaceTarget::P010, 8), (RaceTarget::P100, 4), (RaceTarget::Broken010, 8)]
        {
            let mut rr = RoundRobin;
            let r = run_race_case(&dev, target, 4, 6, wg, &mut rr);
            assert!(r.is_ok(), "{}: {}", target.label(), r.unwrap_err());
        }
    }

    #[test]
    fn broken_kernel_correct_when_serial() {
        // The empty trace = serial default schedule: one warp runs to
        // completion before the next starts. The TOCTOU window never
        // overlaps another warp, so the broken kernel still passes.
        let dev = tiny_device();
        let mut ts = TraceScheduler::new(&[]);
        let r = run_race_case(&dev, RaceTarget::Broken010, 3, 2, 8, &mut ts);
        assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn sweep_reports_contention_evidence() {
        let dev = tiny_device();
        let out = pct_sweep(&dev, RaceTarget::P010, 4, 6, 8, 42, 8, 3);
        assert_eq!(out.runs, 8);
        assert!(out.all_passed(), "{:?}", out.failures);
    }
}
