//! Tile-size search on the device (§7.4): exhaustive and pruned.
//!
//! The throughput surface over `(m, n)` is what Figure 8 plots; the paper's
//! pruning heuristic (`m, n ∈ [50, 100]`, `m·n` under the shared-memory
//! capacity) recovers ≥ 80 % of the exhaustive best.

use crate::opts::GpuOptions;
use crate::pipeline::{plan_flag_words, transpose_on_device};
use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::tiles::{all_tiles, TileHeuristic};
use ipt_core::Matrix;

/// One measured tile configuration.
#[derive(Debug, Clone, Copy)]
pub struct TilePoint {
    /// The tile.
    pub tile: TileConfig,
    /// Simulated device-side throughput (paper convention), GB/s.
    pub gbps: f64,
}

/// Measure the 3-stage throughput of one tile on a fresh simulator.
///
/// Returns `None` for infeasible configurations (e.g. stage-2 tile that
/// fits neither local memory nor local flags and whose 100!-fallback cannot
/// launch).
#[must_use]
pub fn measure_tile(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    tile: TileConfig,
    opts: &GpuOptions,
) -> Option<TilePoint> {
    let plan = StagePlan::three_stage(rows, cols, tile).ok()?;
    let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(&plan) + 64);
    let mut data = Matrix::iota(rows, cols).into_vec();
    let stats = transpose_on_device(&mut sim, &mut data, rows, cols, &plan, opts).ok()?;
    let bytes = (rows * cols * 4) as f64;
    Some(TilePoint { tile, gbps: stats.throughput_gbps(bytes) })
}

/// Exhaustively measure every divisor tile of `rows × cols` (optionally
/// capped to `max_dim` per dimension to keep sweeps tractable). Sorted by
/// descending throughput.
#[must_use]
pub fn exhaustive_search(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    max_dim: usize,
    opts: &GpuOptions,
) -> Vec<TilePoint> {
    let mut out: Vec<TilePoint> = all_tiles(rows, cols)
        .into_iter()
        .filter(|t| t.m > 1 && t.n > 1 && t.m <= max_dim && t.n <= max_dim)
        .filter_map(|t| measure_tile(dev, rows, cols, t, opts))
        .collect();
    out.sort_by(|a, b| b.gbps.total_cmp(&a.gbps));
    out
}

/// Measure only the §7.4 pruned candidates. Sorted by descending
/// throughput.
#[must_use]
pub fn pruned_search(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    heuristic: &TileHeuristic,
    opts: &GpuOptions,
) -> Vec<TilePoint> {
    let mut out: Vec<TilePoint> = heuristic
        .pruned_candidates(rows, cols)
        .into_iter()
        .filter_map(|t| measure_tile(dev, rows, cols, t, opts))
        .collect();
    out.sort_by(|a, b| b.gbps.total_cmp(&a.gbps));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::GpuOptions;

    // A scaled-down 7200×1800 with the same 4:1 aspect and rich divisor
    // structure.
    const ROWS: usize = 720;
    const COLS: usize = 180;

    #[test]
    fn exhaustive_finds_points() {
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let pts = exhaustive_search(&dev, ROWS, COLS, 96, &opts);
        assert!(pts.len() > 10);
        // Sorted descending.
        for w in pts.windows(2) {
            assert!(w[0].gbps >= w[1].gbps);
        }
    }

    #[test]
    fn pruned_heuristic_recovers_most_of_best() {
        // §7.4: the pruned set yields at least 80 % of the exhaustive best.
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let all = exhaustive_search(&dev, ROWS, COLS, 181, &opts);
        let h = TileHeuristic { shared_capacity_words: 3600, preferred_lo: 30, preferred_hi: 100 };
        let pruned = pruned_search(&dev, ROWS, COLS, &h, &opts);
        assert!(!pruned.is_empty());
        let best = all[0].gbps;
        let pruned_best = pruned[0].gbps;
        assert!(
            pruned_best >= 0.8 * best,
            "pruned {pruned_best} vs exhaustive {best}"
        );
    }

    #[test]
    fn bigger_tiles_beat_tiny_tiles() {
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let tiny = measure_tile(&dev, ROWS, COLS, TileConfig::new(4, 4), &opts).unwrap();
        let good = measure_tile(&dev, ROWS, COLS, TileConfig::new(48, 36), &opts).unwrap();
        assert!(good.gbps > tiny.gbps, "good {} vs tiny {}", good.gbps, tiny.gbps);
    }
}
