//! Tile-size search on the device (§7.4): exhaustive and pruned.
//!
//! The throughput surface over `(m, n)` is what Figure 8 plots; the paper's
//! pruning heuristic (`m, n ∈ [50, 100]`, `m·n` under the shared-memory
//! capacity) recovers ≥ 80 % of the exhaustive best.

use crate::opts::GpuOptions;
use crate::pipeline::{plan_flag_words, transpose_on_device};
use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::tiles::{all_tiles, TileHeuristic};
use ipt_core::Matrix;
use ipt_obs::{Counter, NoopRecorder, Recorder};
use serde::Serialize;

/// One measured tile configuration.
#[derive(Debug, Clone, Copy)]
pub struct TilePoint {
    /// The tile.
    pub tile: TileConfig,
    /// Simulated device-side throughput (paper convention), GB/s.
    pub gbps: f64,
}

/// The winning tile, in serialisable form (for [`TuneLog`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TileChoice {
    /// Tile rows `m`.
    pub m: usize,
    /// Tile cols `n`.
    pub n: usize,
    /// Measured device-side throughput, GB/s.
    pub gbps: f64,
}

/// What an autotuning search did — how many candidates the §7.4 pruning
/// kept, dropped, or found infeasible, and which tile won. Serialises into
/// `BenchReport` rows so pruning effectiveness is auditable after the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TuneLog {
    /// Candidates actually measured (the pruned-in / capped-in set).
    pub considered: usize,
    /// Of the considered, how many produced a feasible measurement.
    pub measured: usize,
    /// Of the considered, how many were infeasible on the device.
    pub rejected_infeasible: usize,
    /// Divisor tiles excluded before measurement (the pruning's savings).
    pub pruned_out: usize,
    /// The winner, if any candidate measured.
    pub chosen: Option<TileChoice>,
}

impl TuneLog {
    fn finish<R: Recorder>(mut self, best: Option<&TilePoint>, rec: &R, scope: &str) -> Self {
        self.chosen = best.map(|p| TileChoice { m: p.tile.m, n: p.tile.n, gbps: p.gbps });
        rec.add(scope, Counter::AutotuneConsidered, self.considered as u64);
        rec.add(scope, Counter::AutotuneRejectedInfeasible, self.rejected_infeasible as u64);
        rec.add(scope, Counter::AutotunePruned, self.pruned_out as u64);
        if let Some(c) = &self.chosen {
            rec.gauge(scope, "chosen_gbps", c.gbps);
            rec.event(0.0, "autotune_chosen", &format!("{scope}: ({}, {}) at {:.3} GB/s", c.m, c.n, c.gbps));
        }
        self
    }
}

/// Count the full divisor-tile universe the searches select from.
fn tile_universe(rows: usize, cols: usize) -> usize {
    all_tiles(rows, cols).iter().filter(|t| t.m > 1 && t.n > 1).count()
}

/// Measure `candidates`, recording one gauge per measured tile and one
/// counter tick per infeasible rejection.
#[allow(clippy::too_many_arguments)]
fn measure_candidates<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    candidates: &[TileConfig],
    opts: &GpuOptions,
    rec: &R,
    scope: &str,
    log: &mut TuneLog,
) -> Vec<TilePoint> {
    let mut out = Vec::with_capacity(candidates.len());
    for &t in candidates {
        log.considered += 1;
        match measure_tile(dev, rows, cols, t, opts) {
            Some(p) => {
                log.measured += 1;
                if rec.enabled() {
                    rec.gauge(&format!("{scope}:{}x{}", t.m, t.n), "gbps", p.gbps);
                }
                out.push(p);
            }
            None => {
                log.rejected_infeasible += 1;
                if rec.enabled() {
                    rec.event(0.0, "autotune_infeasible", &format!("{scope}: ({}, {})", t.m, t.n));
                }
            }
        }
    }
    out.sort_by(|a, b| b.gbps.total_cmp(&a.gbps));
    out
}

/// Measure the 3-stage throughput of one tile on a fresh simulator.
///
/// Returns `None` for infeasible configurations (e.g. stage-2 tile that
/// fits neither local memory nor local flags and whose 100!-fallback cannot
/// launch).
#[must_use]
pub fn measure_tile(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    tile: TileConfig,
    opts: &GpuOptions,
) -> Option<TilePoint> {
    let plan = StagePlan::three_stage(rows, cols, tile).ok()?;
    let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(&plan) + 64);
    let mut data = Matrix::iota(rows, cols).into_vec();
    let stats = transpose_on_device(&mut sim, &mut data, rows, cols, &plan, opts).ok()?;
    let bytes = ipt_core::check::bytes_f64(rows, cols, 4);
    Some(TilePoint { tile, gbps: stats.throughput_gbps(bytes) })
}

/// Exhaustively measure every divisor tile of `rows × cols` (optionally
/// capped to `max_dim` per dimension to keep sweeps tractable). Sorted by
/// descending throughput.
#[must_use]
pub fn exhaustive_search(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    max_dim: usize,
    opts: &GpuOptions,
) -> Vec<TilePoint> {
    exhaustive_search_rec(dev, rows, cols, max_dim, opts, &NoopRecorder).0
}

/// [`exhaustive_search`] instrumented with a [`Recorder`], returning the
/// [`TuneLog`] alongside the measurements. `pruned_out` counts divisor
/// tiles the `max_dim` cap excluded.
#[must_use]
pub fn exhaustive_search_rec<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    max_dim: usize,
    opts: &GpuOptions,
    rec: &R,
) -> (Vec<TilePoint>, TuneLog) {
    let candidates: Vec<TileConfig> = all_tiles(rows, cols)
        .into_iter()
        .filter(|t| t.m > 1 && t.n > 1 && t.m <= max_dim && t.n <= max_dim)
        .collect();
    let mut log = TuneLog {
        pruned_out: tile_universe(rows, cols).saturating_sub(candidates.len()),
        ..TuneLog::default()
    };
    let scope = "autotune:exhaustive";
    let out = measure_candidates(dev, rows, cols, &candidates, opts, rec, scope, &mut log);
    let log = log.finish(out.first(), rec, scope);
    (out, log)
}

/// Measure only the §7.4 pruned candidates. Sorted by descending
/// throughput.
#[must_use]
pub fn pruned_search(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    heuristic: &TileHeuristic,
    opts: &GpuOptions,
) -> Vec<TilePoint> {
    pruned_search_rec(dev, rows, cols, heuristic, opts, &NoopRecorder).0
}

/// [`pruned_search`] instrumented with a [`Recorder`], returning the
/// [`TuneLog`] alongside the measurements. `pruned_out` counts divisor
/// tiles the §7.4 heuristic refused to measure — the pruning's savings.
#[must_use]
pub fn pruned_search_rec<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    heuristic: &TileHeuristic,
    opts: &GpuOptions,
    rec: &R,
) -> (Vec<TilePoint>, TuneLog) {
    let candidates = heuristic.pruned_candidates(rows, cols);
    let mut log = TuneLog {
        pruned_out: tile_universe(rows, cols).saturating_sub(candidates.len()),
        ..TuneLog::default()
    };
    let scope = "autotune:pruned";
    let out = measure_candidates(dev, rows, cols, &candidates, opts, rec, scope, &mut log);
    let log = log.finish(out.first(), rec, scope);
    (out, log)
}

/// Pick a tile for `rows × cols`, deterministically, never panicking.
///
/// Runs [`pruned_search_rec`] first; when the §7.4 candidate set measures
/// empty (prime dimensions, degenerate bands, every candidate infeasible),
/// falls back to [`TileHeuristic::select`]'s nearest-divisor choice without
/// measurement — the fallback is recorded in the returned [`TuneLog`]
/// (`measured == 0`, `chosen.gbps == 0.0`) and as an `autotune_fallback`
/// trace event, so serving-layer plans built from it stay auditable.
/// Returns `(None, log)` only when the shape has no usable tile at all.
#[must_use]
pub fn choose_tile_rec<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    heuristic: &TileHeuristic,
    opts: &GpuOptions,
    rec: &R,
) -> (Option<TileConfig>, TuneLog) {
    let (points, mut log) = pruned_search_rec(dev, rows, cols, heuristic, opts, rec);
    if let Some(best) = points.first() {
        return (Some(best.tile), log);
    }
    match heuristic.select(rows, cols) {
        Some(tile) => {
            rec.event(
                0.0,
                "autotune_fallback",
                &format!("{rows}x{cols}: pruned set empty, heuristic tile ({}, {})", tile.m, tile.n),
            );
            log.chosen = Some(TileChoice { m: tile.m, n: tile.n, gbps: 0.0 });
            (Some(tile), log)
        }
        None => {
            rec.event(0.0, "autotune_fallback", &format!("{rows}x{cols}: no feasible tile"));
            (None, log)
        }
    }
}

/// Measure the C2R pipeline throughput at one work-group size on a fresh
/// simulator. `None` when the device cannot launch it (wg over the device
/// limit, or scratch for a long-line shape does not fit).
fn measure_c2r_wg(dev: &DeviceSpec, rows: usize, cols: usize, wg: usize) -> Option<f64> {
    if wg > dev.max_threads_per_wg {
        return None;
    }
    let scratch = crate::c2r::c2r_scratch_words(dev, rows, cols, wg);
    let mut sim = Sim::new(dev.clone(), rows * cols + scratch + 8);
    let data = sim.alloc(rows * cols);
    sim.upload_u32(data, Matrix::iota(rows, cols).as_slice());
    let stats = crate::c2r::transpose_c2r_on_device(&mut sim, data, rows, cols, wg).ok()?;
    Some(stats.throughput_gbps(ipt_core::check::bytes_f64(rows, cols, 4)))
}

/// Autotune the work-group size for a [`Scheme::C2R`] plan: sweep the
/// candidate sizes the device admits, measure the full pipeline on each,
/// and return the fastest together with the search's [`TuneLog`] (the
/// winner is recorded as a degenerate `(wg, 1)` tile choice so the same
/// serialisable log covers both search families). Deterministic and
/// total — when nothing measures (every candidate infeasible), returns the
/// largest admissible candidate so the recovery chain still has a sane
/// launch configuration to fail over from.
///
/// [`Scheme::C2R`]: ipt_core::Scheme::C2R
#[must_use]
pub fn choose_c2r_wg_rec<R: Recorder>(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    rec: &R,
) -> (usize, TuneLog) {
    let candidates: Vec<usize> =
        [64usize, 128, 256].into_iter().filter(|&w| w <= dev.max_threads_per_wg).collect();
    let fallback = candidates.last().copied().unwrap_or(dev.max_threads_per_wg.max(1));
    let mut log = TuneLog::default();
    let scope = "autotune:c2r-wg";
    let mut best: Option<(usize, f64)> = None;
    for wg in candidates {
        log.considered += 1;
        match measure_c2r_wg(dev, rows, cols, wg) {
            Some(gbps) => {
                log.measured += 1;
                if rec.enabled() {
                    rec.gauge(&format!("{scope}:{wg}"), "gbps", gbps);
                }
                if best.is_none_or(|(_, b)| gbps > b) {
                    best = Some((wg, gbps));
                }
            }
            None => {
                log.rejected_infeasible += 1;
                if rec.enabled() {
                    rec.event(0.0, "autotune_infeasible", &format!("{scope}: wg {wg}"));
                }
            }
        }
    }
    rec.add(scope, Counter::AutotuneConsidered, log.considered as u64);
    rec.add(scope, Counter::AutotuneRejectedInfeasible, log.rejected_infeasible as u64);
    match best {
        Some((wg, gbps)) => {
            log.chosen = Some(TileChoice { m: wg, n: 1, gbps });
            rec.gauge(scope, "chosen_gbps", gbps);
            rec.event(0.0, "autotune_chosen", &format!("{scope}: wg {wg} at {gbps:.3} GB/s"));
            (wg, log)
        }
        None => {
            rec.event(0.0, "autotune_fallback", &format!("{scope}: nothing measured, wg {fallback}"));
            (fallback, log)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::GpuOptions;

    // A scaled-down 7200×1800 with the same 4:1 aspect and rich divisor
    // structure.
    const ROWS: usize = 720;
    const COLS: usize = 180;

    #[test]
    fn c2r_wg_sweep_is_deterministic_and_respects_device_limits() {
        let dev = DeviceSpec::hd7750(); // admits wg ≤ 256
        let (wg, log) = choose_c2r_wg_rec(&dev, 127, 61, &NoopRecorder);
        assert!(wg <= dev.max_threads_per_wg);
        assert!(log.measured >= 1, "at least one candidate must measure");
        assert_eq!(log.chosen.map(|c| c.m), Some(wg), "log records the winner");
        let (again, _) = choose_c2r_wg_rec(&dev, 127, 61, &NoopRecorder);
        assert_eq!(wg, again, "sweep is deterministic");
    }

    #[test]
    fn exhaustive_finds_points() {
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let pts = exhaustive_search(&dev, ROWS, COLS, 96, &opts);
        assert!(pts.len() > 10);
        // Sorted descending.
        for w in pts.windows(2) {
            assert!(w[0].gbps >= w[1].gbps);
        }
    }

    #[test]
    fn pruned_heuristic_recovers_most_of_best() {
        // §7.4: the pruned set yields at least 80 % of the exhaustive best.
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let all = exhaustive_search(&dev, ROWS, COLS, 181, &opts);
        let h = TileHeuristic { shared_capacity_words: 3600, preferred_lo: 30, preferred_hi: 100 };
        let pruned = pruned_search(&dev, ROWS, COLS, &h, &opts);
        assert!(!pruned.is_empty());
        let best = all[0].gbps;
        let pruned_best = pruned[0].gbps;
        assert!(
            pruned_best >= 0.8 * best,
            "pruned {pruned_best} vs exhaustive {best}"
        );
    }

    #[test]
    fn tune_log_accounts_for_every_candidate() {
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let rec = ipt_obs::TraceRecorder::new();
        let h = TileHeuristic { shared_capacity_words: 3600, preferred_lo: 30, preferred_hi: 100 };
        let (pts, log) = pruned_search_rec(&dev, ROWS, COLS, &h, &opts, &rec);
        assert_eq!(log.considered, log.measured + log.rejected_infeasible);
        assert_eq!(log.measured, pts.len());
        assert!(log.pruned_out > 0, "the §7.4 heuristic must actually prune");
        let chosen = log.chosen.expect("some candidate must measure");
        assert_eq!(chosen.gbps, pts[0].gbps);
        assert_eq!(
            rec.counter("autotune:pruned", Counter::AutotuneConsidered),
            log.considered as u64
        );
        assert_eq!(
            rec.counter("autotune:pruned", Counter::AutotunePruned),
            log.pruned_out as u64
        );
        // One throughput gauge per measured candidate.
        let gauges = rec.gauges();
        let measured_gauges = gauges
            .iter()
            .filter(|(scope, name, _)| scope.starts_with("autotune:pruned:") && *name == "gbps")
            .count();
        assert_eq!(measured_gauges, log.measured);
    }

    #[test]
    fn choose_tile_measures_when_candidates_exist() {
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let h = TileHeuristic { shared_capacity_words: 3600, preferred_lo: 30, preferred_hi: 100 };
        let (tile, log) = choose_tile_rec(&dev, ROWS, COLS, &h, &opts, &NoopRecorder);
        let tile = tile.expect("720x180 has pruned candidates");
        assert!(log.measured > 0);
        let chosen = log.chosen.expect("measured search records a winner");
        assert_eq!((chosen.m, chosen.n), (tile.m, tile.n));
        assert!(chosen.gbps > 0.0);
        // Determinism: same inputs, same tile.
        let (again, _) = choose_tile_rec(&dev, ROWS, COLS, &h, &opts, &NoopRecorder);
        assert_eq!(again, Some(tile));
    }

    #[test]
    fn choose_tile_falls_back_without_measurement_on_empty_pruned_set() {
        // A band nothing divides into: the §7.4 preferred window [50, 100]
        // contains no divisor of 48 or 36, so the pruned set is empty, but
        // the heuristic still has feasible tiles to select from.
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let h = TileHeuristic::default();
        assert!(h.pruned_candidates(48, 36).is_empty(), "precondition: empty pruned set");
        let rec = ipt_obs::TraceRecorder::new();
        let (tile, log) = choose_tile_rec(&dev, 48, 36, &h, &opts, &rec);
        let tile = tile.expect("48x36 has feasible tiles");
        assert_eq!(Some(tile), h.select(48, 36), "fallback is the heuristic's pick");
        assert_eq!(log.measured, 0, "fallback tile is unmeasured");
        assert_eq!(log.chosen.map(|c| c.gbps), Some(0.0));
        assert!(
            rec.events().iter().any(|e| e.name == "autotune_fallback"),
            "fallback must be observable"
        );
    }

    #[test]
    fn choose_tile_reports_prime_shapes_as_untileable() {
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let (tile, log) =
            choose_tile_rec(&dev, 127, 61, &TileHeuristic::default(), &opts, &NoopRecorder);
        assert_eq!(tile, None, "prime dims have no nontrivial divisor tile");
        assert_eq!(log.chosen, None);
    }

    #[test]
    fn bigger_tiles_beat_tiny_tiles() {
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let tiny = measure_tile(&dev, ROWS, COLS, TileConfig::new(4, 4), &opts).unwrap();
        let good = measure_tile(&dev, ROWS, COLS, TileConfig::new(48, 36), &opts).unwrap();
        assert!(good.gbps > tiny.gbps, "good {} vs tiny {}", good.gbps, tiny.gbps);
    }
}
