//! Staged full in-place transposition on the simulated device: plan →
//! kernel selection → execution → stats.
//!
//! Kernel selection per stage follows the paper:
//!
//! * an instanced stage whose whole tile fits local memory → **BS**
//!   (Figure 1; the preferred stage-2 kernel, §7.4),
//! * scalar stage (super = 1) with flags fitting local memory →
//!   **PTTWAC 010!** (§5.1, with the configured flag layout),
//! * anything with super-elements (100!, 0100!, 1000!) or too big for local
//!   flags → **PTTWAC 100!** (§5.2, with the configured variant),
//! * the fused stage of the 4-stage(+fusion) plan → PTTWAC 100! with
//!   in-flight tile transposition plus a BS pass over outer fixed tiles.

use crate::bs::BsKernel;
use crate::opts::{GpuOptions, Variant100};
use crate::pttwac010::Pttwac010;
use crate::pttwac100::Pttwac100;
use gpu_sim::{Buffer, KernelStats, LaunchError, PipelineStats, Sim};
use ipt_core::stages::{Stage, StageOp, StagePlan};
use ipt_core::{InstancedTranspose, TransposePerm};
use ipt_obs::{Level, NoopRecorder, Recorder};

/// Largest permutation (`rows × cols`) whose cycle structure is enumerated
/// into the trace's cycle-length histogram; bigger stages skip the scan
/// (it is `O(rows × cols)` analysis work, not kernel work).
pub const MAX_CYCLE_SCAN: usize = 1 << 20;

/// Which kernel the selector chose for a stage (exposed for tests and the
/// experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKernel {
    /// Barrier-sync on-chip transposition.
    Bs,
    /// PTTWAC with local-memory flags.
    Pttwac010,
    /// PTTWAC with global coordination bits.
    Pttwac100,
}

/// Decide the kernel for an instanced stage on this device.
#[must_use]
pub fn select_kernel(sim: &Sim, op: &InstancedTranspose, opts: &GpuOptions) -> StageKernel {
    let dev = sim.device();
    let tile_words = op.instance_len();
    if tile_words <= dev.local_words_per_wg() && op.instances > 1 {
        return StageKernel::Bs;
    }
    if op.super_size == 1 {
        let flag_words = opts.flags.words_needed(op.rows * op.cols);
        if flag_words <= dev.local_words_per_wg() && op.instances > 1 {
            return StageKernel::Pttwac010;
        }
    }
    StageKernel::Pttwac100
}

/// Flag words needed by the whole plan: the maximum over the stages that
/// route to the global-coordination-bit kernel (`100!` family). Scalar
/// multi-instance stages (`0010!`) use BS or local-memory flags and need
/// none — this is why the paper's global overhead is one bit per
/// *super-element* (< 0.1 % for §7.4 tiles), not per element.
#[must_use]
pub fn plan_flag_words(plan: &StagePlan) -> usize {
    // Conservative local-flag capacity: the smallest modelled local memory
    // (32 KB) at the most wasteful layout (spreading 32 + padding) holds
    // ≈ 7900 flags. Scalar tiles beyond this may fall back to global flags
    // even with instances > 1.
    const MAX_LOCAL_FLAGS: usize = 7900;
    plan.stages
        .iter()
        .map(|s| match &s.op {
            StageOp::Instanced(op) => {
                let supers = op.rows * op.cols;
                let uses_global_flags =
                    op.super_size > 1 || op.instances == 1 || supers > MAX_LOCAL_FLAGS;
                if uses_global_flags {
                    Pttwac100::flag_words(op.instances * supers)
                } else {
                    0
                }
            }
            StageOp::Fused(f) => Pttwac100::flag_words(f.rows_outer * f.cols_outer),
        })
        .max()
        .unwrap_or(0)
}

/// Execute `plan` in place over `data` on the simulator; `flags` must have
/// at least [`plan_flag_words`] words.
///
/// Returns per-stage kernel stats; `overhead_s` accounts the flag-buffer
/// memsets (the paper's ≈0.1 % coordination-bit overhead).
///
/// # Errors
/// Propagates infeasible launches.
pub fn run_plan(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    plan: &StagePlan,
    opts: &GpuOptions,
) -> Result<PipelineStats, LaunchError> {
    run_plan_rec(sim, data, flags, plan, opts, &NoopRecorder, 0.0)
}

/// [`run_plan`] instrumented with a [`Recorder`]: an algorithm-level span
/// covering the whole plan, one stage-level span per stage (both on the
/// cumulative DES clock starting at `t0_s`), kernel spans and counters from
/// the engine, and each instanced stage's permutation cycle-length
/// histogram (stages over [`MAX_CYCLE_SCAN`] elements skip the scan).
///
/// With [`NoopRecorder`] this is exactly [`run_plan`].
///
/// # Errors
/// Propagates infeasible launches.
pub fn run_plan_rec<R: Recorder>(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    plan: &StagePlan,
    opts: &GpuOptions,
    rec: &R,
    t0_s: f64,
) -> Result<PipelineStats, LaunchError> {
    let mut out = PipelineStats::default();
    for stage in &plan.stages {
        let before_s = out.time_s();
        run_stage_rec(sim, data, flags, stage, opts, &mut out, rec, t0_s + before_s)?;
        if rec.enabled() {
            let code = stage.code.to_string();
            rec.span(
                Level::Stage,
                &code,
                (t0_s + before_s) * 1e6,
                (out.time_s() - before_s) * 1e6,
                Level::Stage.base_track(),
                &[("total_len", stage.op.total_len() as f64)],
            );
            record_stage_cycles(rec, &format!("stage:{code}"), stage);
        }
    }
    if rec.enabled() {
        rec.span(
            Level::Algorithm,
            plan.name,
            t0_s * 1e6,
            out.time_s() * 1e6,
            Level::Algorithm.base_track(),
            &[("rows", plan.rows as f64), ("cols", plan.cols as f64)],
        );
    }
    Ok(out)
}

/// Record the cycle-length histogram of an instanced stage's permutation
/// (the parallelism/imbalance structure of §4): every cycle of the
/// `rows × cols` transposition, weighted by the instance count.
fn record_stage_cycles<R: Recorder>(rec: &R, scope: &str, stage: &Stage) {
    let StageOp::Instanced(op) = &stage.op else {
        return;
    };
    let supers = op.rows * op.cols;
    if supers <= 1 || supers > MAX_CYCLE_SCAN {
        return;
    }
    let perm = TransposePerm::new(op.rows, op.cols);
    for (_, len) in perm.leaders() {
        #[allow(clippy::cast_possible_truncation)]
        rec.cycles(scope, len as usize, op.instances as u64);
    }
}

/// Execute one stage of a plan, appending its kernel stats (one entry, or
/// two for a fused stage's moving + fixed-tile passes) to `out`. This is
/// the granularity at which the recovery layer snapshots and validates
/// device state between stages.
///
/// # Errors
/// Propagates infeasible launches (and injected kernel aborts).
pub fn run_stage(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    stage: &ipt_core::stages::Stage,
    opts: &GpuOptions,
    out: &mut PipelineStats,
) -> Result<(), LaunchError> {
    run_stage_rec(sim, data, flags, stage, opts, out, &NoopRecorder, 0.0)
}

/// [`run_stage`] instrumented with a [`Recorder`]; `t0_s` is the stage's
/// start on the cumulative DES clock.
///
/// # Errors
/// Propagates infeasible launches (and injected kernel aborts).
#[allow(clippy::too_many_arguments)]
pub fn run_stage_rec<R: Recorder>(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    stage: &ipt_core::stages::Stage,
    opts: &GpuOptions,
    out: &mut PipelineStats,
    rec: &R,
    t0_s: f64,
) -> Result<(), LaunchError> {
    match &stage.op {
        StageOp::Instanced(op) => {
            let stats = run_instanced(sim, data, flags, op, opts, &mut out.overhead_s, rec, t0_s)?;
            out.stages.push(stats);
        }
        StageOp::Fused(f) => {
            // Moving stage: m·n-word super-elements over the (M′,N′)
            // grid, transposed in flight.
            let supers = f.rows_outer * f.cols_outer;
            sim.zero(flags);
            let ms = memset_time(sim, Pttwac100::flag_words(supers));
            out.overhead_s += ms;
            let ss = f.rows_inner * f.cols_inner;
            let k = Pttwac100 {
                data,
                flags,
                instances: 1,
                rows: f.rows_outer,
                cols: f.cols_outer,
                super_size: ss,
                variant: moving_variant(sim, opts, ss),
                wg_size: opts.wg_size_100,
                fuse_tile: Some((f.rows_inner, f.cols_inner)),
                backoff: opts.backoff,
            };
            let moving = sim.launch_rec(&k, rec, t0_s + ms)?;
            let after_moving_s = t0_s + ms + moving.time_s;
            out.stages.push(moving);
            // Outer fixed tiles still need internal transposition.
            if let Some(stats) = run_fused_fixed_tiles(sim, data, f, opts, rec, after_moving_s)? {
                out.stages.push(stats);
            }
        }
    }
    Ok(())
}

/// Execute a single instanced elementary transposition on the device
/// (kernel selection as in [`run_plan`]); flag-memset overhead is folded
/// into the returned stage time. Used by the asynchronous host scheme to
/// run chunked stages.
///
/// # Errors
/// Propagates infeasible launches.
pub fn run_instanced_public(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    op: &InstancedTranspose,
    opts: &GpuOptions,
) -> Result<KernelStats, LaunchError> {
    let mut overhead = 0.0;
    let mut stats =
        run_instanced(sim, data, flags, op, opts, &mut overhead, &NoopRecorder, 0.0)?;
    stats.time_s += overhead;
    Ok(stats)
}

/// Time to clear `words` of flag storage (bandwidth-bound memset).
fn memset_time(sim: &Sim, words: usize) -> f64 {
    words as f64 * 4.0 / (sim.device().peak_gbps * 1e9)
}

fn moving_variant(sim: &Sim, opts: &GpuOptions, super_size: usize) -> Variant100 {
    opts.variant100.resolve(super_size, sim.device().simd_width)
}

#[allow(clippy::too_many_arguments)]
fn run_instanced<R: Recorder>(
    sim: &Sim,
    data: Buffer,
    flags: Buffer,
    op: &InstancedTranspose,
    opts: &GpuOptions,
    overhead_s: &mut f64,
    rec: &R,
    t0_s: f64,
) -> Result<KernelStats, LaunchError> {
    // Degenerate stages (1×1 grids) move nothing.
    if op.rows * op.cols <= 1 || (op.rows == 1 || op.cols == 1) {
        // A r×1 or 1×c transposition is the identity on linear storage.
        return Ok(noop_stats(op));
    }
    match select_kernel(sim, op, opts) {
        StageKernel::Bs => sim.launch_rec(
            &BsKernel {
                data,
                instances: op.instances,
                rows: op.rows,
                cols: op.cols,
                super_size: op.super_size,
                wg_size: opts.wg_size,
            },
            rec,
            t0_s,
        ),
        StageKernel::Pttwac010 => sim.launch_rec(
            &Pttwac010 {
                data,
                instances: op.instances,
                rows: op.rows,
                cols: op.cols,
                wg_size: opts.wg_size,
                flags: opts.flags,
                backoff: opts.backoff,
            },
            rec,
            t0_s,
        ),
        StageKernel::Pttwac100 => {
            let needed = Pttwac100::flag_words(op.instances * op.rows * op.cols);
            if flags.len < needed {
                // Typed instead of an assert so adversarial-schedule and
                // chaos harnesses surface this as a recoverable error.
                return Err(LaunchError::Infeasible {
                    why: format!(
                        "flags buffer has {} words but the 100!-family stage needs \
                         {needed}; size it with plan_flag_words()",
                        flags.len
                    ),
                });
            }
            sim.zero(flags);
            let ms = memset_time(sim, needed);
            *overhead_s += ms;
            sim.launch_rec(
                &Pttwac100 {
                    data,
                    flags,
                    instances: op.instances,
                    rows: op.rows,
                    cols: op.cols,
                    super_size: op.super_size,
                    variant: moving_variant(sim, opts, op.super_size),
                    wg_size: opts.wg_size_100,
                    fuse_tile: None,
                    backoff: opts.backoff,
                },
                rec,
                t0_s + ms,
            )
        }
    }
}

/// Zero-cost stats entry for stages that are the identity on linear
/// storage.
fn noop_stats(op: &InstancedTranspose) -> KernelStats {
    KernelStats {
        name: format!("noop {}x{}x{}x{}", op.instances, op.rows, op.cols, op.super_size),
        num_wgs: 0,
        wg_size: 0,
        occupancy: gpu_sim::Occupancy {
            wgs_per_sm: 0,
            warps_per_sm: 0,
            occupancy: 0.0,
            limiter: gpu_sim::Limiter::WgSlots,
        },
        time_s: 0.0,
        bounds: gpu_sim::TimeBounds {
            bandwidth_s: 0.0,
            latency_s: 0.0,
            serial_s: 0.0,
            local_port_s: 0.0,
        },
        dram_bytes: 0.0,
        useful_bytes: 0.0,
        gld_transactions: 0,
        gst_transactions: 0,
        local_accesses: 0,
        local_atomics: 0,
        global_atomics: 0,
        position_conflicts: 0,
        lock_conflicts: 0,
        bank_conflicts: 0,
        claim_retries: 0,
        barriers: 0,
        warp_steps: 0,
        total_chain_cycles: 0.0,
        max_chain_cycles: 0.0,
    }
}

/// Transpose the outer fixed tiles of a fused stage with a BS pass over
/// just those tiles. Returns `None` when the tiles fit nothing (no fixed
/// tiles beyond trivial cases are exercised — there are always at least 2).
fn run_fused_fixed_tiles<R: Recorder>(
    sim: &Sim,
    data: Buffer,
    f: &ipt_core::elementary::FusedTileTranspose,
    opts: &GpuOptions,
    rec: &R,
    t0_s: f64,
) -> Result<Option<KernelStats>, LaunchError> {
    let perm = TransposePerm::new(f.rows_outer, f.cols_outer);
    let tile = f.rows_inner * f.cols_inner;
    if tile <= 1 || f.rows_inner == 1 || f.cols_inner == 1 {
        return Ok(None);
    }
    // Fixed outer tiles are contiguous tile-sized regions; run one BS
    // work-group per fixed tile via a sub-buffer each. For simplicity and
    // because there are only gcd(M′N′−1, M′−1)+1 ≈ a handful of them, launch
    // one BS kernel per fixed tile and merge the stats.
    let mut merged: Option<KernelStats> = None;
    let mut t_cursor = t0_s;
    for t in 0..f.rows_outer * f.cols_outer {
        if perm.dest(t) != t {
            continue;
        }
        let sub = data.slice(t * tile, tile);
        let stats = sim.launch_rec(
            &BsKernel {
                data: sub,
                instances: 1,
                rows: f.rows_inner,
                cols: f.cols_inner,
                super_size: 1,
                wg_size: opts.wg_size.min(tile.next_multiple_of(32)),
            },
            rec,
            t_cursor,
        )?;
        t_cursor += stats.time_s;
        merged = Some(match merged {
            None => stats,
            Some(mut acc) => {
                acc.time_s += stats.time_s;
                acc.dram_bytes += stats.dram_bytes;
                acc.useful_bytes += stats.useful_bytes;
                acc.name = "BS fixed-tiles".into();
                acc
            }
        });
    }
    Ok(merged)
}

/// Convenience: upload, run, download, and *verify* a full in-place
/// transposition of `data` (row-major `rows × cols`) on a fresh simulator.
///
/// # Errors
/// Propagates infeasible launches.
///
/// # Panics
/// Panics if the simulated kernels produce an incorrect transposition —
/// functional correctness is non-negotiable in this workspace.
pub fn transpose_on_device(
    sim: &mut Sim,
    host_data: &mut Vec<u32>,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
) -> Result<PipelineStats, LaunchError> {
    transpose_on_device_rec(sim, host_data, rows, cols, plan, opts, &NoopRecorder, 0.0)
}

/// [`transpose_on_device`] instrumented with a [`Recorder`]: everything
/// [`run_plan_rec`] emits plus the host↔device traffic meters.
///
/// # Errors
/// Propagates infeasible launches.
///
/// # Panics
/// Panics on an incorrect transposition, like [`transpose_on_device`].
#[allow(clippy::too_many_arguments)]
pub fn transpose_on_device_rec<R: Recorder>(
    sim: &mut Sim,
    host_data: &mut Vec<u32>,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
    rec: &R,
    t0_s: f64,
) -> Result<PipelineStats, LaunchError> {
    assert_eq!(host_data.len(), rows * cols);
    let data = sim.alloc(rows * cols);
    let flags = sim.alloc(plan_flag_words(plan).max(1));
    sim.upload_u32(data, host_data);
    let stats = run_plan_rec(sim, data, flags, plan, opts, rec, t0_s)?;
    let result = sim.download_u32(data);
    sim.record_traffic(rec, "sim");
    // Verify against the definitional permutation.
    let perm = TransposePerm::new(rows, cols);
    for (k, &v) in host_data.iter().enumerate() {
        let d = perm.dest(k);
        assert_eq!(
            result[d], v,
            "device transposition incorrect at source offset {k} (plan {})",
            plan.name
        );
    }
    *host_data = result;
    Ok(stats)
}

/// Scale a plan's elementary operations for elements of `elem_words` 32-bit
/// words (e.g. 2 for `f64`): every moved unit grows by the element size.
/// Fused stages are replaced by their unfused pair (the fused kernel's
/// in-flight tile transposition is word-granular).
#[must_use]
pub fn scale_plan_words(plan: &StagePlan, elem_words: usize) -> StagePlan {
    assert!(elem_words >= 1);
    if elem_words == 1 {
        return plan.clone();
    }
    let mut out = plan.clone();
    let mut stages = Vec::with_capacity(plan.stages.len() + 1);
    for stage in &plan.stages {
        match &stage.op {
            StageOp::Instanced(op) => {
                let mut st = stage.clone();
                st.op = StageOp::Instanced(InstancedTranspose::new(
                    op.instances,
                    op.rows,
                    op.cols,
                    op.super_size * elem_words,
                ));
                stages.push(st);
            }
            StageOp::Fused(f) => {
                // Unfuse: 0010! (tiles of rows_inner × cols_inner elements)
                // then 1000! over the outer grid.
                let mut a = stage.clone();
                a.op = StageOp::Instanced(InstancedTranspose::new(
                    f.rows_outer * f.cols_outer,
                    f.rows_inner,
                    f.cols_inner,
                    elem_words,
                ));
                stages.push(a);
                let mut b = stage.clone();
                b.op = StageOp::Instanced(InstancedTranspose::new(
                    1,
                    f.rows_outer,
                    f.cols_outer,
                    f.rows_inner * f.cols_inner * elem_words,
                ));
                stages.push(b);
            }
        }
    }
    out.stages = stages;
    out
}

/// [`transpose_on_device`] for `f64` matrices: elements travel as pairs of
/// 32-bit words; every elementary operation's super-element size doubles.
/// The result is verified element-exact against the reference permutation.
///
/// # Errors
/// Propagates infeasible launches.
///
/// # Panics
/// Panics on an incorrect transposition or size mismatch.
pub fn transpose_on_device_f64(
    sim: &mut Sim,
    host_data: &mut Vec<f64>,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    opts: &GpuOptions,
) -> Result<PipelineStats, LaunchError> {
    assert_eq!(host_data.len(), rows * cols);
    let scaled = scale_plan_words(plan, 2);
    let words: Vec<u32> = host_data
        .iter()
        .flat_map(|v| {
            let b = v.to_bits();
            [(b & 0xffff_ffff) as u32, (b >> 32) as u32]
        })
        .collect();
    let data = sim.alloc(words.len());
    let flags = sim.alloc(plan_flag_words(&scaled).max(1));
    sim.upload_u32(data, &words);
    let stats = run_plan(sim, data, flags, &scaled, opts)?;
    let out_words = sim.download_u32(data);
    let result: Vec<f64> = out_words
        .chunks_exact(2)
        .map(|w| f64::from_bits(u64::from(w[0]) | (u64::from(w[1]) << 32)))
        .collect();
    let perm = TransposePerm::new(rows, cols);
    for (k, &v) in host_data.iter().enumerate() {
        assert_eq!(
            result[perm.dest(k)].to_bits(),
            v.to_bits(),
            "f64 device transposition incorrect at source offset {k}"
        );
    }
    *host_data = result;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use ipt_core::stages::TileConfig;
    use ipt_core::Matrix;

    fn run_full(
        dev: DeviceSpec,
        rows: usize,
        cols: usize,
        plan: &StagePlan,
        opts: &GpuOptions,
    ) -> PipelineStats {
        let mut sim = Sim::new(dev, rows * cols + plan_flag_words(plan) + 64);
        let mut data = Matrix::iota(rows, cols).into_vec();
        transpose_on_device(&mut sim, &mut data, rows, cols, plan, opts).expect("launch")
        // transpose_on_device panics on functional mismatch.
    }

    #[test]
    fn three_stage_transposes_on_all_devices() {
        let (rows, cols) = (72, 60);
        let plan = StagePlan::three_stage(rows, cols, TileConfig::new(12, 10)).unwrap();
        for dev in [
            DeviceSpec::tesla_k20(),
            DeviceSpec::gtx580(),
            DeviceSpec::hd7750(),
            DeviceSpec::xeon_phi(),
        ] {
            let opts = GpuOptions::tuned_for(&dev);
            let stats = run_full(dev, rows, cols, &plan, &opts);
            assert_eq!(stats.stages.len(), 3);
            assert!(stats.time_s() > 0.0);
        }
    }

    #[test]
    fn all_plans_verify_functionally() {
        let (rows, cols) = (48, 90);
        let tile = TileConfig::new(8, 9);
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        for plan in [
            StagePlan::three_stage(rows, cols, tile).unwrap(),
            StagePlan::four_stage(rows, cols, tile).unwrap(),
            StagePlan::four_stage_fused(rows, cols, tile).unwrap(),
            StagePlan::single_stage(rows, cols),
        ] {
            let _ = run_full(DeviceSpec::tesla_k20(), rows, cols, &plan, &opts);
        }
    }

    #[test]
    fn f64_three_and_four_stage_verify() {
        let (rows, cols) = (72, 60);
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let tile = TileConfig::new(12, 10);
        for plan in [
            StagePlan::three_stage(rows, cols, tile).unwrap(),
            StagePlan::four_stage(rows, cols, tile).unwrap(),
            StagePlan::four_stage_fused(rows, cols, tile).unwrap(), // unfused under f64
            StagePlan::single_stage(rows, cols),
        ] {
            let scaled = scale_plan_words(&plan, 2);
            let mut sim =
                Sim::new(dev.clone(), 2 * rows * cols + plan_flag_words(&scaled) + 64);
            let mut data: Vec<f64> =
                (0..rows * cols).map(|k| k as f64 * 1.5 - 7.25).collect();
            // Verified internally (bit-exact).
            let stats =
                transpose_on_device_f64(&mut sim, &mut data, rows, cols, &plan, &opts)
                    .unwrap();
            assert!(stats.time_s() > 0.0, "{}", plan.name);
        }
    }

    #[test]
    fn f64_moves_double_the_bytes_at_similar_bandwidth() {
        let (rows, cols) = (360, 180);
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let plan = StagePlan::three_stage(rows, cols, TileConfig::new(60, 60)).unwrap();
        let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(&plan) + 64);
        let mut d32 = Matrix::iota(rows, cols).into_vec();
        let s32 = transpose_on_device(&mut sim, &mut d32, rows, cols, &plan, &opts).unwrap();
        let scaled = scale_plan_words(&plan, 2);
        let mut sim = Sim::new(dev, 2 * rows * cols + plan_flag_words(&scaled) + 64);
        let mut d64: Vec<f64> = (0..rows * cols).map(|k| k as f64).collect();
        let s64 = transpose_on_device_f64(&mut sim, &mut d64, rows, cols, &plan, &opts).unwrap();
        // Same payload GB/s regime: f64 time within ~3x of 2x-the-f32 time.
        let ratio = s64.time_s() / (2.0 * s32.time_s());
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn kernel_selection_logic() {
        let dev = DeviceSpec::tesla_k20();
        let sim = Sim::new(dev, 64);
        let opts = GpuOptions::tuned_for(sim.device());
        // Small tiles in many instances → BS.
        assert_eq!(
            select_kernel(&sim, &InstancedTranspose::new(100, 16, 16, 1), &opts),
            StageKernel::Bs
        );
        // Large scalar tile, flags fit → PTTWAC 010.
        assert_eq!(
            select_kernel(&sim, &InstancedTranspose::new(8, 64, 500, 1), &opts),
            StageKernel::Pttwac010
        );
        // Super-elements → PTTWAC 100.
        assert_eq!(
            select_kernel(&sim, &InstancedTranspose::new(1, 100, 50, 64), &opts),
            StageKernel::Pttwac100
        );
        // Whole-matrix scalar (single instance) → PTTWAC 100 (global flags).
        assert_eq!(
            select_kernel(&sim, &InstancedTranspose::new(1, 7200, 1800, 1), &opts),
            StageKernel::Pttwac100
        );
    }

    #[test]
    fn three_stage_beats_four_stage_at_good_tiles() {
        // The Table-2 headline on a reduced-size matrix: 720×180 with the
        // paper's preferred tile shapes.
        let (rows, cols) = (720, 180);
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let t3 = StagePlan::three_stage(rows, cols, TileConfig::new(48, 36)).unwrap();
        let t4 = StagePlan::four_stage(rows, cols, TileConfig::new(16, 12)).unwrap();
        let s3 = run_full(dev.clone(), rows, cols, &t3, &opts);
        let s4 = run_full(dev, rows, cols, &t4, &opts);
        assert!(
            s3.time_s() < s4.time_s(),
            "3-stage {} vs 4-stage {}",
            s3.time_s(),
            s4.time_s()
        );
    }

    #[test]
    fn single_stage_is_much_slower_than_staged() {
        let (rows, cols) = (360, 180);
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let staged = StagePlan::three_stage(rows, cols, TileConfig::new(60, 60)).unwrap();
        let single = StagePlan::single_stage(rows, cols);
        let s = run_full(dev.clone(), rows, cols, &staged, &opts);
        let one = run_full(dev, rows, cols, &single, &opts);
        assert!(
            one.time_s() > 2.0 * s.time_s(),
            "single {} vs staged {}",
            one.time_s(),
            s.time_s()
        );
    }
}
