//! Out-of-place tiled transposition (Ruetsch & Micikevicius, the classic
//! CUDA kernel) — the GPU baseline of Table 3.
//!
//! 32×32 tiles are staged through local memory with a +1 padding column so
//! both the global read and the global write are fully coalesced and the
//! local accesses are bank-conflict-free. Needs a second buffer — the 100 %
//! memory overhead that motivates the paper.

use gpu_sim::{Buffer, Coordination, Grid, Kernel, LaneAddrs, LaneWrites, Step, WarpCtx};

/// Tile edge (words).
pub const TILE: usize = 32;
/// Rows of a tile one work-group iteration covers (wg = 32×8).
pub const BLOCK_ROWS: usize = 8;

/// Out-of-place transposition of an `rows × cols` matrix from `src` into
/// `dst`.
#[derive(Debug, Clone)]
pub struct OopTranspose {
    /// Source matrix (row-major `rows × cols`).
    pub src: Buffer,
    /// Destination matrix (row-major `cols × rows`).
    pub dst: Buffer,
    /// Source rows.
    pub rows: usize,
    /// Source cols.
    pub cols: usize,
}

impl OopTranspose {
    fn tiles_x(&self) -> usize {
        self.cols.div_ceil(TILE)
    }

    fn tiles_y(&self) -> usize {
        self.rows.div_ceil(TILE)
    }
}

/// Per-warp state: which tile, which phase, which row-chunk.
pub struct OopState {
    tile_idx: usize,
    phase: u8,
    row: usize,
}

impl Kernel for OopTranspose {
    type State = OopState;

    fn name(&self) -> String {
        format!("OOP {}x{}", self.rows, self.cols)
    }

    fn grid(&self) -> Grid {
        // One work-group per tile, grid-strided over tiles; 32×8 threads.
        let tiles = self.tiles_x() * self.tiles_y();
        Grid { num_wgs: tiles.clamp(1, 4096), wg_size: TILE * BLOCK_ROWS }
    }

    // Grid-strided disjoint destination tiles; the source is only read, so
    // nothing a work-group writes is visible to any other.
    fn coordination(&self) -> Coordination {
        Coordination::WgLocal
    }

    fn regs_per_thread(&self) -> usize {
        12
    }

    fn local_mem_words(&self, _dev: &gpu_sim::DeviceSpec) -> usize {
        TILE * (TILE + 1)
    }

    fn init(&self, wg_id: usize, warp_id: usize) -> OopState {
        OopState { tile_idx: wg_id, phase: 0, row: warp_id }
    }

    fn step(&self, st: &mut OopState, ctx: &mut WarpCtx<'_>) -> Step {
        let tiles = self.tiles_x() * self.tiles_y();
        if st.tile_idx >= tiles {
            return Step::Done;
        }
        let ty = st.tile_idx / self.tiles_x();
        let tx = st.tile_idx % self.tiles_x();
        let warps = ctx.wg_size.div_ceil(ctx.device().simd_width);
        // Each warp covers rows `warp_id, warp_id+warps, …` of the tile.
        match st.phase {
            0 => {
                let r = st.row;
                if r >= TILE {
                    st.phase = 1;
                    st.row = ctx.warp_id;
                    return Step::Barrier;
                }
                let gy = ty * TILE + r;
                let addrs = LaneAddrs::from_fn(ctx.lanes.min(TILE), |l| {
                    let gx = tx * TILE + l;
                    (gy < self.rows && gx < self.cols).then(|| gy * self.cols + gx)
                });
                let vals = ctx.global_read(self.src, &addrs);
                let writes = LaneWrites::from_fn(ctx.lanes.min(TILE), |l| {
                    let gx = tx * TILE + l;
                    (gy < self.rows && gx < self.cols).then(|| (r * (TILE + 1) + l, vals.get(l)))
                });
                ctx.local_write(&writes);
                st.row += warps;
                if st.row >= TILE {
                    st.phase = 1;
                    st.row = ctx.warp_id;
                    Step::Barrier
                } else {
                    Step::Continue
                }
            }
            _ => {
                let r = st.row;
                if r >= TILE {
                    // Next tile (grid stride).
                    st.tile_idx += ctx.num_wgs;
                    st.phase = 0;
                    st.row = ctx.warp_id;
                    return if st.tile_idx >= tiles { Step::Done } else { Step::Barrier };
                }
                // Write row r of the *transposed* tile: dst row = tx·32 + r.
                let gy = tx * TILE + r;
                let addrs = LaneAddrs::from_fn(ctx.lanes.min(TILE), |l| {
                    let gx = ty * TILE + l;
                    (gy < self.cols && gx < self.rows).then(|| l * (TILE + 1) + r)
                });
                let vals = ctx.local_read(&addrs);
                let writes = LaneWrites::from_fn(ctx.lanes.min(TILE), |l| {
                    let gx = ty * TILE + l;
                    (gy < self.cols && gx < self.rows).then(|| (gy * self.rows + gx, vals.get(l)))
                });
                ctx.global_write(self.dst, &writes);
                st.row += warps;
                if st.row >= TILE {
                    st.tile_idx += ctx.num_wgs;
                    st.phase = 0;
                    st.row = ctx.warp_id;
                    if st.tile_idx >= tiles {
                        Step::Done
                    } else {
                        Step::Barrier
                    }
                } else {
                    Step::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Sim};
    use ipt_core::Matrix;

    fn run(dev: DeviceSpec, rows: usize, cols: usize) -> (Vec<u32>, gpu_sim::KernelStats) {
        let mut sim = Sim::new(dev, 2 * rows * cols + 8);
        let src = sim.alloc(rows * cols);
        let dst = sim.alloc(rows * cols);
        let m = Matrix::iota(rows, cols);
        sim.upload_u32(src, m.as_slice());
        let k = OopTranspose { src, dst, rows, cols };
        let stats = sim.launch(&k).unwrap();
        (sim.download_u32(dst), stats)
    }

    #[test]
    fn transposes_exact_tiles() {
        let (got, _) = run(DeviceSpec::tesla_k20(), 64, 96);
        assert_eq!(got, Matrix::iota(64, 96).transposed().into_vec());
    }

    #[test]
    fn transposes_ragged_sizes() {
        for &(r, c) in &[(33usize, 65usize), (100, 31), (5, 3), (32, 32), (1, 100)] {
            let (got, _) = run(DeviceSpec::tesla_k20(), r, c);
            assert_eq!(got, Matrix::iota(r, c).transposed().into_vec(), "{r}x{c}");
        }
    }

    #[test]
    fn high_throughput_on_k20() {
        // §7.5: "the out-of-place transposition achieves more than
        // 120 GB/s on a K20". Exercise a decently sized matrix.
        let (rows, cols) = (1024, 768);
        let (_, stats) = run(DeviceSpec::tesla_k20(), rows, cols);
        let gbps = stats.throughput_gbps((rows * cols * 4) as f64);
        assert!(gbps > 100.0, "OOP should be near-bandwidth: {gbps} GB/s");
        assert!(stats.coalescing_efficiency() > 0.9);
    }

    #[test]
    fn works_on_amd() {
        let (got, _) = run(DeviceSpec::hd7750(), 96, 64);
        assert_eq!(got, Matrix::iota(96, 64).transposed().into_vec());
    }
}
