//! The Barrier-Sync (BS) elementary transposition kernel — Figure 1 of the
//! paper.
//!
//! One work-group transposes one instance whose data fits entirely in local
//! memory: every work-item copies its elements into a local temporary at the
//! *transposed* position, the work-group barriers, then the temporary is
//! copied back contiguously. Global traffic is perfectly coalesced in both
//! phases, which is why BS is the kernel of choice for stage 2 (`0010!`)
//! whenever `m·n` fits on chip (§7.4).

use gpu_sim::{Buffer, Coordination, Grid, Kernel, LaneAddrs, LaneWrites, Step, WarpCtx};
use ipt_core::TransposePerm;

/// BS kernel over `instances` contiguous tiles of `rows × cols`
/// super-elements of `super_size` words.
#[derive(Debug, Clone)]
pub struct BsKernel {
    /// The array being transposed (whole operation range).
    pub data: Buffer,
    /// Independent contiguous instances (one work-group each).
    pub instances: usize,
    /// Super-element grid rows.
    pub rows: usize,
    /// Super-element grid cols.
    pub cols: usize,
    /// Words per super-element.
    pub super_size: usize,
    /// Work-items per work-group.
    pub wg_size: usize,
}

impl BsKernel {
    /// Words in one instance (must fit local memory).
    #[must_use]
    pub fn tile_words(&self) -> usize {
        self.rows * self.cols * self.super_size
    }
}

/// Per-warp state: current phase and the stride-iteration counter.
pub struct BsState {
    phase: u8,
    iter: usize,
}

impl Kernel for BsKernel {
    type State = BsState;

    fn name(&self) -> String {
        format!("BS {}x{}x{}x{}", self.instances, self.rows, self.cols, self.super_size)
    }

    fn grid(&self) -> Grid {
        Grid { num_wgs: self.instances, wg_size: self.wg_size }
    }

    // Each work-group owns the disjoint tile `wg_id * tile_len`; no global
    // word is shared across work-groups.
    fn coordination(&self) -> Coordination {
        Coordination::WgLocal
    }

    fn regs_per_thread(&self) -> usize {
        14
    }

    fn local_mem_words(&self, _dev: &gpu_sim::DeviceSpec) -> usize {
        self.tile_words()
    }

    fn init(&self, _wg_id: usize, _warp_id: usize) -> BsState {
        BsState { phase: 0, iter: 0 }
    }

    fn step(&self, st: &mut BsState, ctx: &mut WarpCtx<'_>) -> Step {
        let tile = self.tile_words();
        let base = ctx.wg_id * tile;
        let perm = TransposePerm::new(self.rows, self.cols);
        let simd = ctx.lanes; // tail warps have fewer live lanes
        let warp_off = ctx.warp_id * ctx.device().simd_width;
        match st.phase {
            0 => {
                // Gather phase: data[w] → temp[transposed(w)].
                let w0 = st.iter * ctx.wg_size + warp_off;
                if w0 >= tile {
                    st.phase = 1;
                    st.iter = 0;
                    return Step::Barrier;
                }
                let addrs = LaneAddrs::from_fn(simd, |l| {
                    let w = w0 + l;
                    (w < tile).then_some(base + w)
                });
                let vals = ctx.global_read(self.data, &addrs);
                let writes = LaneWrites::from_fn(simd, |l| {
                    let w = w0 + l;
                    if w >= tile {
                        return None;
                    }
                    let (se, off) = (w / self.super_size, w % self.super_size);
                    let dst = perm.dest(se) * self.super_size + off;
                    Some((dst, vals.get(l)))
                });
                ctx.local_write(&writes);
                ctx.alu(4.0); // index arithmetic incl. the Eq.(1) modulo
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= tile {
                    st.phase = 1;
                    st.iter = 0;
                    Step::Barrier
                } else {
                    Step::Continue
                }
            }
            _ => {
                // Scatter-back phase: temp[w] → data[w] (contiguous).
                let w0 = st.iter * ctx.wg_size + warp_off;
                if w0 >= tile {
                    return Step::Done;
                }
                let addrs = LaneAddrs::from_fn(simd, |l| {
                    let w = w0 + l;
                    (w < tile).then_some(w)
                });
                let vals = ctx.local_read(&addrs);
                let writes = LaneWrites::from_fn(simd, |l| {
                    let w = w0 + l;
                    (w < tile).then_some((base + w, vals.get(l)))
                });
                ctx.global_write(self.data, &writes);
                ctx.alu(2.0);
                st.iter += 1;
                if st.iter * ctx.wg_size + warp_off >= tile {
                    Step::Done
                } else {
                    Step::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Sim};
    use ipt_core::InstancedTranspose;

    fn run_bs(
        dev: DeviceSpec,
        instances: usize,
        rows: usize,
        cols: usize,
        super_size: usize,
        wg_size: usize,
    ) -> (Vec<u32>, gpu_sim::KernelStats) {
        let op = InstancedTranspose::new(instances, rows, cols, super_size);
        let mut sim = Sim::new(dev, op.total_len() + 64);
        let buf = sim.alloc(op.total_len());
        let data: Vec<u32> = (0..op.total_len() as u32).collect();
        sim.upload_u32(buf, &data);
        let k = BsKernel { data: buf, instances, rows, cols, super_size, wg_size };
        let stats = sim.launch(&k).unwrap();
        (sim.download_u32(buf), stats)
    }

    #[test]
    fn bs_transposes_correctly() {
        for &(i, r, c, s, wg) in &[
            (1usize, 5usize, 3usize, 1usize, 32usize),
            (4, 8, 8, 1, 64),
            (7, 6, 10, 2, 96),
            (3, 16, 48, 1, 256),
            (2, 2, 2, 5, 32),
        ] {
            let (got, _) = run_bs(DeviceSpec::tesla_k20(), i, r, c, s, wg);
            let op = InstancedTranspose::new(i, r, c, s);
            let mut want: Vec<u32> = (0..op.total_len() as u32).collect();
            op.apply_seq(&mut want);
            assert_eq!(got, want, "{i}x{r}x{c}x{s} wg={wg}");
        }
    }

    #[test]
    fn bs_works_on_all_devices() {
        for dev in [DeviceSpec::gtx580(), DeviceSpec::hd7750(), DeviceSpec::xeon_phi()] {
            let name = dev.name;
            let (got, _) = run_bs(dev, 4, 12, 16, 1, 128);
            let op = InstancedTranspose::new(4, 12, 16, 1);
            let mut want: Vec<u32> = (0..op.total_len() as u32).collect();
            op.apply_seq(&mut want);
            assert_eq!(got, want, "{name}");
        }
    }

    #[test]
    fn bs_is_mostly_coalesced() {
        let (_, stats) = run_bs(DeviceSpec::tesla_k20(), 16, 32, 32, 1, 256);
        assert!(stats.coalescing_efficiency() > 0.9, "{}", stats.coalescing_efficiency());
        assert!(stats.barriers >= 16, "one barrier per work-group at least");
    }

    #[test]
    fn bs_local_mem_drives_occupancy() {
        // A big tile should consume local memory and reduce occupancy.
        let (_, small) = run_bs(DeviceSpec::tesla_k20(), 8, 16, 16, 1, 128);
        let (_, big) = run_bs(DeviceSpec::tesla_k20(), 8, 64, 64, 1, 128);
        assert!(big.occupancy.occupancy < small.occupancy.occupancy);
    }

    #[test]
    fn bs_infeasible_when_tile_exceeds_local_mem() {
        // 48 KB = 12288 words; a 128×128 tile (16384 words) cannot fit.
        let dev = DeviceSpec::tesla_k20();
        let op = InstancedTranspose::new(1, 128, 128, 1);
        let mut sim = Sim::new(dev, op.total_len() + 8);
        let buf = sim.alloc(op.total_len());
        let k = BsKernel { data: buf, instances: 1, rows: 128, cols: 128, super_size: 1, wg_size: 256 };
        assert!(sim.launch(&k).is_err());
    }
}
