//! Multi-GPU in-place transposition — the paper's stated future work
//! ("we believe that our efficient 3-stage approach can be used as a
//! building block for a multi-GPU version", §8).
//!
//! ## Scheme
//!
//! The host matrix `M × N` is split into `D` row blocks of `M_d = M/D`
//! rows (requiring `D | M`). Each device:
//!
//! 1. receives its block over PCIe (H2D),
//! 2. transposes it in place with the 3-stage algorithm (block `d`
//!    becomes the row-major `N × M_d` column panel of the result),
//! 3. ships the panel back (D2H) into the host buffer's column slice
//!    `[d·M_d, (d+1)·M_d)` of the final `N × M` matrix.
//!
//! Every per-device computation is fully independent, so compute scales
//! with `D`; the PCIe link does **not** when all devices sit behind one
//! host link (`link = Shared`), which is the honest 2013-era configuration
//! — transfers stay the bottleneck and the end-to-end gain saturates.
//! With private links per device (`link = Private`, e.g. dual-socket
//! boards) the whole pipeline scales.
//!
//! The functional path really executes: each device's simulator transposes
//! its block, the host-side reassembly is verified element-exact against
//! the reference, and only then is the DES timeline reported.

use crate::opts::GpuOptions;
use crate::pipeline::{plan_flag_words, run_plan};
use crate::recover::{TransposeError, VerifyError};
use gpu_sim::{try_simulate_engines, DeviceSpec, ECmd, Sim, Timeline};
use ipt_core::stages::StagePlan;
use ipt_core::{Matrix, TileHeuristic};
use serde::Serialize;

/// PCIe topology for the device set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum LinkTopology {
    /// All devices share one host link (transfers serialise) — the common
    /// single-socket configuration.
    Shared,
    /// Each device has a private link (transfers scale with D).
    Private,
}

impl LinkTopology {
    /// DES engine indices `(h2d, d2h)` that device `d` of `d_count`
    /// transfers on. Engines `[0, d_count)` are per-device compute; shared
    /// links append one H2D and one D2H engine, private links append a pair
    /// per device. Shared by [`run_multi_gpu`] and the serving layer so
    /// both describe the same hardware.
    #[must_use]
    pub fn link_engines(self, d_count: usize, d: usize) -> (usize, usize) {
        match self {
            LinkTopology::Shared => (d_count, d_count + 1),
            LinkTopology::Private => (d_count + 2 * d, d_count + 2 * d + 1),
        }
    }

    /// Total DES engine count for `d_count` devices under this topology.
    #[must_use]
    pub fn num_engines(self, d_count: usize) -> usize {
        match self {
            LinkTopology::Shared => d_count + 2,
            LinkTopology::Private => 3 * d_count,
        }
    }
}

/// Result of a multi-GPU run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Devices used.
    pub devices: usize,
    /// Link topology.
    pub link: LinkTopology,
    /// DES timeline across all devices.
    pub timeline: Timeline,
    /// End-to-end seconds.
    pub total_s: f64,
    /// Effective host-side throughput (paper convention).
    pub effective_gbps: f64,
    /// Per-device kernel time (seconds), for scaling diagnostics.
    pub kernel_s_per_device: Vec<f64>,
}

impl MultiReport {
    /// Emit this report into a [`Recorder`](ipt_obs::Recorder): the DES
    /// timeline (engines named `dev<N> compute` / `H2D link` / `D2H link`)
    /// plus per-device kernel-time and end-to-end gauges. `t0_s` offsets
    /// the timeline on the recorder's global clock.
    pub fn record<R: ipt_obs::Recorder>(&self, rec: &R, t0_s: f64) {
        if !rec.enabled() {
            return;
        }
        let mut names: Vec<String> =
            (0..self.devices).map(|d| format!("dev{d} compute")).collect();
        match self.link {
            LinkTopology::Shared => {
                names.push("H2D link".into());
                names.push("D2H link".into());
            }
            LinkTopology::Private => {
                for d in 0..self.devices {
                    names.push(format!("dev{d} H2D"));
                    names.push(format!("dev{d} D2H"));
                }
            }
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.timeline.record(rec, t0_s, &refs);
        for (d, s) in self.kernel_s_per_device.iter().enumerate() {
            rec.gauge(&format!("multi:dev{d}"), "kernel_s", *s);
        }
        rec.gauge("multi", "effective_gbps", self.effective_gbps);
        rec.gauge("multi", "total_s", self.total_s);
    }
}

/// Run the multi-GPU scheme with `d_count` identical devices.
///
/// # Errors
/// [`TransposeError::InvalidConfig`] if `d_count` does not divide `rows`
/// or no tile fits the row blocks; [`TransposeError::Launch`] for
/// infeasible launches; [`TransposeError::Verify`] if the reassembled
/// result is not the exact transposition.
pub fn run_multi_gpu(
    dev: &DeviceSpec,
    d_count: usize,
    rows: usize,
    cols: usize,
    opts: &GpuOptions,
    link: LinkTopology,
) -> Result<MultiReport, TransposeError> {
    if d_count < 1 || !rows.is_multiple_of(d_count) {
        return Err(TransposeError::InvalidConfig {
            what: format!("device count {d_count} must divide M = {rows}"),
        });
    }
    let md = rows / d_count;
    let heuristic = TileHeuristic { preferred_lo: 20, ..TileHeuristic::default() };
    let tile = heuristic.select(md, cols).ok_or_else(|| TransposeError::InvalidConfig {
        what: format!(
            "no tile fits the {md}×{cols} row blocks; pick a device count that keeps divisors"
        ),
    })?;
    let plan = StagePlan::three_stage(md, cols, tile)?;

    let host = Matrix::iota(rows, cols);
    let want = host.transposed();
    let mut result = vec![0u32; rows * cols];

    // Functional execution per device + kernel times.
    let mut kernel_s = Vec::with_capacity(d_count);
    for d in 0..d_count {
        let mut sim = Sim::new(dev.clone(), md * cols + plan_flag_words(&plan) + 64);
        let buf = sim.alloc(md * cols);
        let flags = sim.alloc(plan_flag_words(&plan).max(1));
        let block = &host.as_slice()[d * md * cols..(d + 1) * md * cols];
        sim.upload_u32(buf, block);
        let stats = run_plan(&sim, buf, flags, &plan, opts)?;
        kernel_s.push(stats.time_s());
        // The device now holds the N × M_d panel; scatter it into the
        // host result's column slice [d·M_d, (d+1)·M_d).
        let panel = sim.download_u32(buf);
        for j in 0..cols {
            for i in 0..md {
                result[j * rows + d * md + i] = panel[j * md + i];
            }
        }
    }
    if result != want.as_slice() {
        let off = result
            .iter()
            .zip(want.as_slice())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(TransposeError::Verify(VerifyError {
            stage: None,
            detail: format!("multi-GPU reassembly incorrect, first mismatch at offset {off}"),
        }));
    }

    // Timeline: engines [0..D) = per-device compute; D = shared H2D link,
    // D+1 = shared D2H link (or 2 per device when private).
    let block_bytes = ipt_core::check::bytes_f64(md, cols, 4);
    let xfer = dev.pcie.transfer_time(block_bytes);
    let setup = dev.queue_create_overhead_s * d_count as f64;
    let queues: Vec<Vec<ECmd>> = (0..d_count)
        .map(|d| {
            let (h2d_e, d2h_e) = link.link_engines(d_count, d);
            vec![
                ECmd {
                    engine: h2d_e,
                    duration_s: xfer,
                    label: format!("H2D block {d}").into(),
                    wait: None,
                },
                ECmd {
                    engine: d,
                    duration_s: kernel_s[d],
                    label: format!("3-stage block {d}").into(),
                    wait: None,
                },
                ECmd {
                    engine: d2h_e,
                    duration_s: xfer,
                    label: format!("D2H panel {d}").into(),
                    wait: None,
                },
            ]
        })
        .collect();
    let timeline = try_simulate_engines(link.num_engines(d_count), setup, &queues)?;
    let bytes = ipt_core::check::bytes_f64(rows, cols, 4);
    Ok(MultiReport {
        devices: d_count,
        link,
        total_s: timeline.total_s,
        effective_gbps: 2.0 * bytes / timeline.total_s / 1e9,
        timeline,
        kernel_s_per_device: kernel_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROWS: usize = 1440;
    const COLS: usize = 360;

    fn k20() -> (DeviceSpec, GpuOptions) {
        let d = DeviceSpec::tesla_k20();
        let o = GpuOptions::tuned_for(&d);
        (d, o)
    }

    #[test]
    fn multi_gpu_reassembles_exactly() {
        let (dev, opts) = k20();
        for d in [1usize, 2, 4] {
            let rep = run_multi_gpu(&dev, d, ROWS, COLS, &opts, LinkTopology::Shared).unwrap();
            assert_eq!(rep.devices, d);
            assert!(rep.total_s > 0.0);
        }
    }

    #[test]
    fn private_links_scale_better_than_shared() {
        let (dev, opts) = k20();
        let shared = run_multi_gpu(&dev, 4, ROWS, COLS, &opts, LinkTopology::Shared).unwrap();
        let private = run_multi_gpu(&dev, 4, ROWS, COLS, &opts, LinkTopology::Private).unwrap();
        assert!(
            private.total_s < shared.total_s,
            "private {} < shared {}",
            private.total_s,
            shared.total_s
        );
    }

    #[test]
    fn shared_link_gain_saturates() {
        // With one host link, transfers dominate: going 1 → 4 devices must
        // help (kernels parallelise) but far less than 4×.
        let (dev, opts) = k20();
        let one = run_multi_gpu(&dev, 1, ROWS, COLS, &opts, LinkTopology::Shared).unwrap();
        let four = run_multi_gpu(&dev, 4, ROWS, COLS, &opts, LinkTopology::Shared).unwrap();
        assert!(four.total_s <= one.total_s * 1.05, "more devices must not hurt much");
        assert!(
            four.total_s > one.total_s / 3.0,
            "shared link cannot scale linearly: {} vs {}",
            four.total_s,
            one.total_s
        );
    }

    #[test]
    fn device_count_must_divide_rows() {
        let (dev, opts) = k20();
        let err = run_multi_gpu(&dev, 7, ROWS, COLS, &opts, LinkTopology::Shared).unwrap_err();
        assert!(
            matches!(&err, TransposeError::InvalidConfig { what } if what.contains("divide")),
            "{err}"
        );
    }
}
