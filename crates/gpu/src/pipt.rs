//! P-IPT: the cycle-per-thread parallelisation the paper compares against
//! (from Sung et al. [12], originally the multicore strategy of
//! Gustavson/Karlsson).
//!
//! Each work-item owns one complete cycle and shifts it alone, one element
//! (or one word of a super-element) per iteration. No flags, no atomics —
//! but the parallelism equals the number of cycles, which for rectangular
//! matrices is low and wildly imbalanced: the longest cycle shows up as the
//! `serial` time bound. Cycle leaders are precomputed on the host (as in
//! the CPU implementations) and passed in a buffer.

// Per-lane state lives in parallel fixed-size arrays; indexed loops over
// `0..ctx.lanes` are the clearest expression of warp-vector code.
#![allow(clippy::needless_range_loop)]

use gpu_sim::{Buffer, Grid, Kernel, LaneAddrs, LaneWrites, Step, WarpCtx};
use ipt_core::TransposePerm;

/// P-IPT kernel over `instances × rows × cols` super-elements of
/// `super_size` words.
#[derive(Debug, Clone)]
pub struct PiptKernel {
    /// The array.
    pub data: Buffer,
    /// Cycle leader table: pairs `(instance, leader)` flattened — built by
    /// [`PiptKernel::leader_table`].
    pub leaders: Buffer,
    /// Number of `(instance, leader)` entries.
    pub num_leaders: usize,
    /// Independent instances.
    pub instances: usize,
    /// Super-element grid rows.
    pub rows: usize,
    /// Super-element grid cols.
    pub cols: usize,
    /// Words per super-element.
    pub super_size: usize,
    /// Work-items per work-group.
    pub wg_size: usize,
}

impl PiptKernel {
    /// Host-side leader enumeration: one `(instance, leader)` pair per
    /// non-trivial cycle, flattened into `u32` pairs for upload.
    #[must_use]
    pub fn leader_table(instances: usize, rows: usize, cols: usize) -> Vec<u32> {
        let perm = TransposePerm::new(rows, cols);
        let leaders = ipt_core::elementary::parallel::find_cycle_leaders(&perm);
        let mut out = Vec::with_capacity(instances * leaders.len() * 2);
        for inst in 0..instances {
            for &(leader, _) in &leaders {
                out.push(inst as u32);
                out.push(leader as u32);
            }
        }
        out
    }
}

/// Per-lane chase state. Each lane walks its cycle once per word offset,
/// carrying a single word in a register (the classic minimal-storage
/// cycle shift: 1 read + 1 write per element visited).
#[derive(Clone, Copy, Default)]
struct LaneChase {
    /// Leader (start) super index within instance.
    leader: usize,
    /// Instance id.
    inst: usize,
    /// Current walk position within instance.
    pos: usize,
    /// Word offset within super-elements for the current lap.
    word: usize,
    /// The carried register.
    carried: u32,
    /// Carried register holds a value (lap in progress).
    loaded: bool,
    active: bool,
    /// Next leader-table index (stride total threads).
    next_entry: usize,
    exhausted: bool,
}

/// Per-warp state.
pub struct PiptState {
    lanes: [LaneChase; gpu_sim::MAX_LANES],
    initialised: bool,
}

impl Kernel for PiptKernel {
    type State = PiptState;

    fn name(&self) -> String {
        format!("P-IPT {}x{}x{}x{}", self.instances, self.rows, self.cols, self.super_size)
    }

    fn grid(&self) -> Grid {
        let wgs = self.num_leaders.div_ceil(self.wg_size).clamp(1, 1024);
        Grid { num_wgs: wgs, wg_size: self.wg_size }
    }

    fn regs_per_thread(&self) -> usize {
        18
    }

    fn init(&self, _wg_id: usize, _warp_id: usize) -> PiptState {
        PiptState { lanes: [LaneChase::default(); gpu_sim::MAX_LANES], initialised: false }
    }

    fn step(&self, st: &mut PiptState, ctx: &mut WarpCtx<'_>) -> Step {
        let perm = TransposePerm::new(self.rows, self.cols);
        let spi = self.rows * self.cols;
        let s = self.super_size;
        if !st.initialised {
            for l in 0..ctx.lanes {
                st.lanes[l].next_entry = ctx.thread_id(l);
            }
            st.initialised = true;
        }

        // Acquire cycles for idle lanes (read the leader table).
        let mut fetch = [None::<usize>; gpu_sim::MAX_LANES];
        for l in 0..ctx.lanes {
            let c = &mut st.lanes[l];
            if !c.active && !c.exhausted {
                if c.next_entry < self.num_leaders {
                    fetch[l] = Some(c.next_entry);
                    c.next_entry += ctx.total_threads();
                } else {
                    c.exhausted = true;
                }
            }
        }
        let inst_addrs = LaneAddrs::from_fn(ctx.lanes, |l| fetch[l].map(|e| 2 * e));
        if inst_addrs.active() > 0 {
            let insts = ctx.global_read(self.leaders, &inst_addrs);
            let lead_addrs = LaneAddrs::from_fn(ctx.lanes, |l| fetch[l].map(|e| 2 * e + 1));
            let leads = ctx.global_read(self.leaders, &lead_addrs);
            for l in 0..ctx.lanes {
                if fetch[l].is_some() {
                    let c = &mut st.lanes[l];
                    c.inst = insts.get(l) as usize;
                    c.leader = leads.get(l) as usize;
                    c.pos = c.leader;
                    c.word = 0;
                    c.loaded = false;
                    c.active = true;
                }
            }
        }

        // Lap-start loads: lanes beginning a word-lap read the leader's word
        // into the carried register.
        let lap_loads = LaneAddrs::from_fn(ctx.lanes, |l| {
            let c = &st.lanes[l];
            (c.active && !c.loaded).then(|| (c.inst * spi + c.leader) * s + c.word)
        });
        if lap_loads.active() > 0 {
            let vals = ctx.global_read(self.data, &lap_loads);
            for l in 0..ctx.lanes {
                if lap_loads.get(l).is_some() {
                    let c = &mut st.lanes[l];
                    c.carried = vals.get(l);
                    c.loaded = true;
                    c.pos = perm.dest(c.leader);
                }
            }
        }

        // One carried move per active lane: tmp = data[pos]; data[pos] =
        // carried; carried = tmp; pos = dest(pos). When the walk returns to
        // the leader, the carried value is written there and the next word
        // lap starts.
        let move_addrs = LaneAddrs::from_fn(ctx.lanes, |l| {
            let c = &st.lanes[l];
            (c.active && c.loaded).then(|| (c.inst * spi + c.pos) * s + c.word)
        });
        if move_addrs.active() == 0 {
            let done = (0..ctx.lanes).all(|l| st.lanes[l].exhausted);
            return if done { Step::Done } else { Step::Continue };
        }
        let tmps = ctx.global_read(self.data, &move_addrs);
        let writes = LaneWrites::from_fn(ctx.lanes, |l| {
            move_addrs.get(l).map(|a| (a, st.lanes[l].carried))
        });
        ctx.global_write(self.data, &writes);
        ctx.alu(8.0);

        for l in 0..ctx.lanes {
            if move_addrs.get(l).is_none() {
                continue;
            }
            let c = &mut st.lanes[l];
            if c.pos == c.leader {
                // Lap complete: move to the next word offset.
                c.word += 1;
                c.loaded = false;
                c.pos = c.leader;
                if c.word == s {
                    c.active = false; // whole super-element cycle done
                }
            } else {
                c.carried = tmps.get(l);
                c.pos = perm.dest(c.pos);
            }
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Sim};
    use ipt_core::InstancedTranspose;

    fn run(
        instances: usize,
        rows: usize,
        cols: usize,
        super_size: usize,
    ) -> (Vec<u32>, gpu_sim::KernelStats) {
        let total = instances * rows * cols * super_size;
        let table = PiptKernel::leader_table(instances, rows, cols);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), total + table.len() + 8);
        let data = sim.alloc(total);
        let leaders = sim.alloc(table.len().max(1));
        let v: Vec<u32> = (0..total as u32).collect();
        sim.upload_u32(data, &v);
        sim.upload_u32(leaders, &table);
        let k = PiptKernel {
            data,
            leaders,
            num_leaders: table.len() / 2,
            instances,
            rows,
            cols,
            super_size,
            wg_size: 128,
        };
        let stats = sim.launch(&k).unwrap();
        (sim.download_u32(data), stats)
    }

    fn expected(instances: usize, rows: usize, cols: usize, super_size: usize) -> Vec<u32> {
        let op = InstancedTranspose::new(instances, rows, cols, super_size);
        let mut want: Vec<u32> = (0..op.total_len() as u32).collect();
        op.apply_seq(&mut want);
        want
    }

    #[test]
    fn pipt_transposes_correctly() {
        for &(i, r, c, s) in &[
            (1usize, 5usize, 3usize, 1usize),
            (1, 16, 9, 4),
            (3, 7, 5, 2),
            (1, 32, 48, 1),
            (2, 9, 9, 3),
        ] {
            let (got, _) = run(i, r, c, s);
            assert_eq!(got, expected(i, r, c, s), "{i}x{r}x{c}x{s}");
        }
    }

    #[test]
    fn pipt_suffers_serial_imbalance() {
        // A matrix with one dominant cycle: the serial bound should be the
        // limiting component (or at least a large fraction of time).
        let (_, stats) = run(1, 64, 25, 1);
        assert!(
            stats.bounds.serial_s > 0.3 * stats.time_s,
            "serial {} vs total {}",
            stats.bounds.serial_s,
            stats.time_s
        );
    }
}
