//! Schedule exploration and chaos campaigns against the claim protocols:
//! bounded exhaustive interleaving of small tiles, a planted TOCTOU bug
//! the explorer must catch, a pinned adversarial schedule exercising the
//! `100!` claim-conflict path, and a seeded 200-run chaos campaign that
//! the recovery fallback chain must survive — including watchdog-induced
//! [`TransposeError::Stalled`] trips.
//!
//! [`TransposeError::Stalled`]: ipt_gpu::recover::TransposeError::Stalled

use gpu_sim::sched::{mix64, ExploreConfig, TraceScheduler, Watchdog};
use gpu_sim::{ChaosConfig, ChaosPlan, DeviceSpec, SchedPolicy, Sim};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::Matrix;
use ipt_gpu::opts::{ClaimBackoff, GpuOptions};
use ipt_gpu::pipeline::plan_flag_words;
use ipt_gpu::recover::{transpose_with_recovery, RecoveryPolicy};
use ipt_gpu::{explore_case, run_race_case, tiny_device, RaceTarget};

/// Acceptance case: bounded exhaustive exploration of a 4×6 tile with a
/// preemption budget of 3 — every explored interleaving of the `010!`
/// claim protocol must produce the correct transposition.
#[test]
fn exhaustive_010_small_tile_passes() {
    let cfg = ExploreConfig { preemption_budget: 3, max_schedules: 700, max_failures: 4 };
    let out = explore_case(&tiny_device(), RaceTarget::P010, 4, 6, 8, &cfg);
    assert!(
        out.all_passed(),
        "explorer found {} failing schedules, first: {:?}",
        out.failures.len(),
        out.failures.first()
    );
    assert!(out.explored > 50, "only {} schedules explored — space too small", out.explored);
}

/// Same acceptance case for the `100!` global-flag protocol.
#[test]
fn exhaustive_100_small_tile_passes() {
    let cfg = ExploreConfig { preemption_budget: 3, max_schedules: 700, max_failures: 4 };
    let out = explore_case(&tiny_device(), RaceTarget::P100, 4, 6, 4, &cfg);
    assert!(
        out.all_passed(),
        "explorer found {} failing schedules, first: {:?}",
        out.failures.len(),
        out.failures.first()
    );
    assert!(out.explored > 50, "only {} schedules explored — space too small", out.explored);
}

/// The planted bug: a flag-update variant whose claim is split across two
/// scheduling slices. The explorer must find an interleaving that lands in
/// the TOCTOU window and corrupts the result — and minimize it.
#[test]
fn explorer_catches_broken_flag_update() {
    let cfg = ExploreConfig { preemption_budget: 3, max_schedules: 2000, max_failures: 2 };
    let out = explore_case(&tiny_device(), RaceTarget::Broken010, 3, 2, 8, &cfg);
    assert!(
        !out.all_passed(),
        "the split-claim TOCTOU bug must be caught ({} schedules explored)",
        out.explored
    );
    let f = &out.failures[0];
    assert!(f.detail.contains("corrupt") || f.detail.contains("launch failed"), "{}", f.detail);
    assert!(!f.trace.is_empty(), "the default serial schedule passes; a deviation is required");
    assert!(f.preemptions <= 3, "minimized schedule used {} preemptions", f.preemptions);
}

/// Pinned adversarial schedule: a hand-built preemption trace that forces
/// the resident `100!` chain drivers to interleave at every round, driving
/// them into flag-claim conflicts. The run must stay correct end to end
/// and must actually exercise the claim-conflict path (retries observed).
#[test]
fn pinned_adversarial_schedule_exercises_100_claim_conflicts() {
    // Rotate among the (up to 3) resident warps each round: warp A claims
    // a chain, warp B immediately probes the same cycle, and so on.
    let trace: Vec<usize> = (0..2048).map(|i| i % 3).collect();
    let mut ts = TraceScheduler::new(&trace);
    let stats = run_race_case(&tiny_device(), RaceTarget::P100, 4, 6, 4, &mut ts)
        .expect("adversarial interleaving must still transpose correctly");
    assert!(
        stats.claim_retries >= 1,
        "the pinned trace was supposed to provoke claim conflicts (got {})",
        stats.claim_retries
    );
}

/// The same pinned schedule replayed twice is bit-identical — the
/// foundation every failure artifact in CI relies on.
#[test]
fn pinned_schedule_replays_deterministically() {
    let trace: Vec<usize> = (0..512).map(|i| i % 3).collect();
    let run = || {
        let mut ts = TraceScheduler::new(&trace);
        let stats = run_race_case(&tiny_device(), RaceTarget::P100, 4, 6, 4, &mut ts)
            .expect("pinned schedule");
        (stats.claim_retries, stats.time_s.to_bits(), ts.into_decisions().len())
    };
    assert_eq!(run(), run());
}

/// Acceptance case: a seeded 200-run chaos campaign against the recovering
/// pipeline. Every run arms a sustained [`ChaosPlan`], PCT scheduling, a
/// claim backoff, and a watchdog — every 4th run a deliberately strangling
/// one, so the primary path dies with [`Stalled`] and the fallback chain
/// must rescue it. All 200 runs must come back verified-correct, and at
/// least one must have recovered from a watchdog stall.
///
/// [`Stalled`]: ipt_gpu::recover::TransposeError::Stalled
#[test]
fn chaos_campaign_200_runs_all_recover() {
    let (rows, cols) = (36, 30);
    let tile = TileConfig::new(6, 5);
    let plan = StagePlan::three_stage(rows, cols, tile).expect("tile divides");
    let campaign_seed = 0xC0FF_EE77_u64;

    let mut stalled_recovered = 0usize;
    let mut faults_fired = 0usize;
    let mut fallbacks = 0usize;
    for i in 0..200u64 {
        let seed = mix64(campaign_seed, i);
        let mut sim = Sim::new(
            DeviceSpec::tesla_k20(),
            2 * rows * cols + plan_flag_words(&plan).max(1) + 64,
        );
        sim.set_chaos_plan(ChaosPlan::new(seed, ChaosConfig::mild()));
        sim.set_sched_policy(SchedPolicy::Pct { seed, depth: 3 });
        // Every 4th run the watchdog budget is far below what any stage
        // needs: the primary path (and the device-side fallbacks) stall,
        // and only the host-sequential tail can finish the job.
        sim.set_watchdog(Some(if i % 4 == 0 {
            Watchdog::new(6, 500_000)
        } else {
            Watchdog::new(50_000, 5_000_000)
        }));
        let opts = GpuOptions::tuned_for(sim.device()).with_backoff(ClaimBackoff::mild(seed));
        let policy = RecoveryPolicy {
            max_stage_retries: 1,
            retry_backoff_s: 1e-4,
            allow_fallback: true,
            seed,
        };
        let mut data = Matrix::iota(rows, cols).into_vec();
        let want = Matrix::iota(rows, cols).transposed().into_vec();
        let (_, report) =
            transpose_with_recovery(&mut sim, &mut data, rows, cols, &plan, &opts, &policy)
                .unwrap_or_else(|e| panic!("campaign run {i} (seed {seed}) died: {e}"));
        assert_eq!(data, want, "campaign run {i} (seed {seed}) silently corrupted the result");
        if report.primary_error.as_deref().is_some_and(|e| e.contains("stalled")) {
            stalled_recovered += 1;
        }
        if report.primary_error.is_some() {
            fallbacks += 1;
        }
        faults_fired += usize::from(!report.faults.is_empty());
    }
    assert!(
        stalled_recovered >= 1,
        "no watchdog-induced stall was recovered across the campaign \
         ({fallbacks} fallbacks, {faults_fired} runs with faults)"
    );
    assert!(
        faults_fired >= 1,
        "the chaos campaign never injected a fault — rates or plumbing broken"
    );
}
