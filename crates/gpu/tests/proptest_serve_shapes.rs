//! Properties for the degenerate/prime/remainder planning fixes and the
//! serving layer:
//!
//! 1. For *any* shape — degenerate vectors, prime dimensions, squares,
//!    non-divisible remainder shapes — the scheme-driven recovery chain
//!    returns a verified-correct transposition with a typed, non-panicking
//!    provenance (`decide_scheme` is total).
//! 2. Plan-cache determinism: serving the same stream twice produces
//!    bit-identical outputs, and a cached plan equals the plan a fresh
//!    search would build.

use gpu_sim::{DeviceSpec, Sim};
use ipt_core::tiles::TileHeuristic;
use ipt_core::{decide_scheme, FallbackReason, Scheme};
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::plan_flag_words;
use ipt_gpu::recover::{host_transpose_elems, transpose_scheme_with_recovery, RecoveryPolicy};
use ipt_gpu::serve::{build_plan, PriorityClass, ServeConfig, ServeRequest, Server};
use ipt_obs::NoopRecorder;
use proptest::prelude::*;

/// Shapes that historically broke planning: primes, degenerate vectors,
/// squares (prime- and composite-sided), and remainder-heavy rectangles.
fn tricky_dim() -> impl Strategy<Value = usize> {
    // Weighted pool: degenerate (1, twice for weight), primes, composites
    // with awkward divisors, and square-friendly sizes.
    prop::sample::select(vec![
        1usize, 1, 2, 3, 7, 13, 24, 31, 36, 45, 47, 50, 55, 60, 61, 64, 72, 77, 89, 91, 96,
        100, 113, 127, 128,
    ])
}

/// One scheme-driven recovering run; panics (test failure) on silent
/// corruption, returns the scheme it routed through.
fn round_trip(rows: usize, cols: usize, elem_words: usize, baseline_opts: bool) -> Scheme {
    let heuristic = TileHeuristic { preferred_lo: 10, ..TileHeuristic::default() };
    let decision = decide_scheme(rows, cols, &heuristic);
    // Totality: every shape gets a scheme and a reason that describes it.
    assert!(!decision.reason.describe().is_empty());
    if decision.scheme != Scheme::Staged {
        assert!(
            decision.reason != FallbackReason::Preferred || rows == cols,
            "{rows}x{cols}: non-staged routes must record why"
        );
    }

    let words = rows * cols * elem_words;
    let flag_words = decision.staged_plan(rows, cols).as_ref().map_or(0, plan_flag_words);
    let mut sim =
        Sim::new(DeviceSpec::tesla_k20(), 2 * words + elem_words * flag_words + 256);
    let opts = if baseline_opts {
        GpuOptions::baseline_for(sim.device())
    } else {
        GpuOptions::tuned_for(sim.device())
    };
    let src: Vec<u32> = (0..words as u32).map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
    let mut data = src.clone();
    let (_, report) = transpose_scheme_with_recovery(
        &mut sim,
        &mut data,
        rows,
        cols,
        elem_words,
        &decision,
        &opts,
        &RecoveryPolicy::default(),
    )
    .expect("default policy ends in the infallible host path");
    let want = if rows <= 1 || cols <= 1 {
        src
    } else {
        host_transpose_elems(&src, rows, cols, elem_words)
    };
    assert_eq!(
        data, want,
        "{rows}x{cols} elem {elem_words} via {:?} ({:?}) corrupted data",
        decision.scheme, report.path
    );
    decision.scheme
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any shape (degenerate, prime, square, remainder) round-trips
    /// verified-correct under both tuned and conservative kernel options,
    /// for 1- and 2-word elements.
    #[test]
    fn any_shape_round_trips_with_typed_provenance(
        rows in tricky_dim(),
        cols in tricky_dim(),
        wide in any::<bool>(),
        baseline_opts in any::<bool>(),
    ) {
        prop_assume!(rows * cols <= 12_000);
        round_trip(rows, cols, if wide { 2 } else { 1 }, baseline_opts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serving the same stream twice from fresh servers is bit-identical
    /// (plan caching and batching introduce no nondeterminism), and the
    /// second round of the same server serves from cache with identical
    /// results.
    #[test]
    fn serving_is_deterministic_and_cache_transparent(seed in 0u64..10_000) {
        let dev = DeviceSpec::tesla_k20();
        let shapes = [(72usize, 60usize), (60, 60), (127, 61), (1, 64), (47, 47)];
        let reqs: Vec<ServeRequest> = (0..6u64).map(|i| {
            let (rows, cols) = shapes[((seed + i) % shapes.len() as u64) as usize];
            let data = (0..(rows * cols) as u32)
                .map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(seed as u32))
                .collect();
            ServeRequest {
                id: i,
                rows,
                cols,
                elem_bytes: 4,
                priority: PriorityClass::Batch,
                data,
            }
        }).collect();

        let run_once = || {
            let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
            for r in &reqs {
                srv.submit(r.clone(), &NoopRecorder).unwrap();
            }
            srv.process_round(&NoopRecorder).unwrap()
        };
        let a = run_once();
        let b = run_once();
        for (x, y) in a.results.iter().zip(&b.results) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(&x.data, &y.data, "fresh servers must agree bit-for-bit");
            prop_assert_eq!(x.scheme, y.scheme);
        }
        prop_assert_eq!(a.batches, b.batches);

        // Same server again: cache hits, same bits.
        let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
        for r in &reqs {
            srv.submit(r.clone(), &NoopRecorder).unwrap();
        }
        let cold = srv.process_round(&NoopRecorder).unwrap();
        for r in &reqs {
            srv.submit(r.clone(), &NoopRecorder).unwrap();
        }
        let warm = srv.process_round(&NoopRecorder).unwrap();
        for (x, y) in cold.results.iter().zip(&warm.results) {
            prop_assert!(y.cache_hit, "second round must hit the cache");
            prop_assert_eq!(&x.data, &y.data, "cached plan must not change results");
        }
    }

    /// A cached staged plan is the plan a fresh pruned search builds:
    /// memoization changes cost, never the plan.
    #[test]
    fn cached_plan_equals_fresh_search(
        idx in 0usize..4,
    ) {
        let shapes = [(72usize, 60usize), (96, 72), (48, 36), (120, 24)];
        let (rows, cols) = shapes[idx];
        let dev = DeviceSpec::tesla_k20();
        let cfg = ServeConfig::new(&dev);
        let fresh = build_plan(&dev, rows, cols, &cfg.heuristic, &cfg.opts, &NoopRecorder);
        let again = build_plan(&dev, rows, cols, &cfg.heuristic, &cfg.opts, &NoopRecorder);
        prop_assert_eq!(fresh.decision, again.decision, "planning must be deterministic");
        prop_assert_eq!(fresh.plan, again.plan);
    }

    /// Warm-start round trip: serialize a warmed server's plan cache,
    /// restore it into a fresh server, and the restored server serves any
    /// shape subset bit-identically to a cold server — with every restored
    /// shape hitting the cache on first sight.
    #[test]
    fn snapshot_round_trip_serves_bit_identically(seed in 0u64..10_000) {
        let dev = DeviceSpec::tesla_k20();
        let shapes = [(72usize, 60usize), (60, 60), (127, 61), (1, 64), (47, 47), (24, 36)];
        let mk = |id: u64, rows: usize, cols: usize| ServeRequest {
            id,
            rows,
            cols,
            elem_bytes: 4,
            priority: PriorityClass::Batch,
            data: (0..(rows * cols) as u32)
                .map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(seed as u32))
                .collect(),
        };

        // Warm a server over a seed-dependent subset of shapes.
        let mut warm = Server::new(dev.clone(), ServeConfig::new(&dev));
        let picked: Vec<(usize, usize)> = (0..4u64)
            .map(|i| shapes[((seed ^ (i * 7)) % shapes.len() as u64) as usize])
            .collect();
        for (i, (r, c)) in picked.iter().enumerate() {
            warm.submit(mk(i as u64, *r, *c), &NoopRecorder).unwrap();
        }
        warm.process_round(&NoopRecorder).unwrap();
        let snapshot = warm.snapshot_json();
        prop_assert_eq!(&warm.snapshot_json(), &snapshot, "snapshot is deterministic");

        let mut restored = Server::new(dev.clone(), ServeConfig::new(&dev));
        restored.restore_snapshot(&snapshot, &NoopRecorder).unwrap();
        let mut cold = Server::new(dev.clone(), ServeConfig::new(&dev));
        for (i, (r, c)) in picked.iter().enumerate() {
            restored.submit(mk(100 + i as u64, *r, *c), &NoopRecorder).unwrap();
            cold.submit(mk(100 + i as u64, *r, *c), &NoopRecorder).unwrap();
        }
        let w = restored.process_round(&NoopRecorder).unwrap();
        let c = cold.process_round(&NoopRecorder).unwrap();
        prop_assert_eq!(w.results.len(), c.results.len());
        for (x, y) in w.results.iter().zip(&c.results) {
            prop_assert_eq!(x.id, y.id);
            prop_assert!(x.cache_hit, "restored shape must hit on first sight");
            prop_assert_eq!(&x.data, &y.data, "warm-restored serving must be bit-identical");
            prop_assert_eq!(x.scheme, y.scheme);
        }
        // Timing parity too: the restored plan is the same plan.
        prop_assert!((w.sim_total_s - c.sim_total_s).abs() < 1e-12);
    }
}
