//! Property: for random shapes and seeds, the seeded PCT scheduler and
//! the historic round-robin schedule produce *identical* transposed
//! matrices across the BS, `010!` and `100!` kernels — randomized
//! preemption perturbs the execution path, never the result.

use gpu_sim::{DeviceSpec, SchedPolicy, Sim};
use ipt_core::InstancedTranspose;
use ipt_gpu::bs::BsKernel;
use ipt_gpu::opts::{FlagLayout, Variant100};
use ipt_gpu::pttwac010::Pttwac010;
use ipt_gpu::pttwac100::Pttwac100;
use proptest::prelude::*;

/// Which kernel family the equivalence run drives.
#[derive(Debug, Clone, Copy)]
enum Fam {
    Bs,
    P010,
    P100,
}

/// One verified execution of `fam` on `rows × cols` under `policy`.
/// Returns the transposed matrix.
fn run_under(fam: Fam, rows: usize, cols: usize, policy: SchedPolicy) -> Vec<u32> {
    let super_size = if matches!(fam, Fam::P100) { 2 } else { 1 };
    let op = InstancedTranspose::new(1, rows, cols, super_size);
    let flag_words = Pttwac100::flag_words(rows * cols);
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), op.total_len() + flag_words + 8);
    sim.set_sched_policy(policy);
    let data = sim.alloc(op.total_len());
    sim.upload_u32(data, &(0..op.total_len() as u32).collect::<Vec<_>>());
    match fam {
        Fam::Bs => {
            let k = BsKernel { data, instances: 1, rows, cols, super_size, wg_size: 64 };
            sim.launch(&k).expect("bs launch");
        }
        Fam::P010 => {
            let k = Pttwac010 {
                data,
                instances: 1,
                rows,
                cols,
                wg_size: 64,
                flags: FlagLayout::Packed,
                backoff: None,
            };
            sim.launch(&k).expect("010 launch");
        }
        Fam::P100 => {
            let flags = sim.alloc(flag_words);
            sim.zero(flags);
            let k = Pttwac100 {
                data,
                flags,
                instances: 1,
                rows,
                cols,
                super_size,
                variant: Variant100::WarpLocalTile,
                wg_size: 256,
                fuse_tile: None,
                backoff: None,
            };
            sim.launch(&k).expect("100 launch");
        }
    }
    sim.download_u32(data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pct_and_round_robin_agree_on_every_kernel(
        rows in 2usize..20,
        cols in 2usize..20,
        seed in 0u64..1_000_000_000_000,
    ) {
        for fam in [Fam::Bs, Fam::P010, Fam::P100] {
            let rr = run_under(fam, rows, cols, SchedPolicy::RoundRobin);
            let pct = run_under(fam, rows, cols, SchedPolicy::Pct { seed, depth: 3 });
            prop_assert_eq!(
                &rr, &pct,
                "{:?} {}x{} diverged under pct(seed={})", fam, rows, cols, seed
            );
            // Both must also be the *correct* transposition, not merely
            // identically wrong.
            let s = if matches!(fam, Fam::P100) { 2 } else { 1 };
            let op = InstancedTranspose::new(1, rows, cols, s);
            let mut want: Vec<u32> = (0..op.total_len() as u32).collect();
            op.apply_seq(&mut want);
            prop_assert_eq!(&rr, &want, "{:?} {}x{} incorrect", fam, rows, cols);
        }
    }
}
