//! Property-based verification of every simulated kernel against the
//! reference permutation, over arbitrary shapes — the "no hand-picked
//! dimensions" guarantee for the device path.

use gpu_sim::{DeviceSpec, Sim};
use ipt_core::{InstancedTranspose, Matrix};
use ipt_gpu::bs::BsKernel;
use ipt_gpu::opts::{FlagLayout, GpuOptions, Variant100};
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use ipt_gpu::pttwac010::Pttwac010;
use ipt_gpu::pttwac100::Pttwac100;
use ipt_core::stages::{StagePlan, TileConfig};
use proptest::prelude::*;

fn expected(op: &InstancedTranspose) -> Vec<u32> {
    let mut want: Vec<u32> = (0..op.total_len() as u32).collect();
    op.apply_seq(&mut want);
    want
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bs_any_shape(
        inst in 1usize..6, rows in 1usize..24, cols in 1usize..24,
        s in 1usize..3, wg in prop::sample::select(vec![32usize, 64, 96, 256]),
    ) {
        prop_assume!(rows * cols * s <= 2048);
        let op = InstancedTranspose::new(inst, rows, cols, s);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), op.total_len() + 8);
        let buf = sim.alloc(op.total_len());
        sim.upload_u32(buf, &(0..op.total_len() as u32).collect::<Vec<_>>());
        let k = BsKernel { data: buf, instances: inst, rows, cols, super_size: s, wg_size: wg };
        sim.launch(&k).unwrap();
        prop_assert_eq!(sim.download_u32(buf), expected(&op));
    }

    #[test]
    fn pttwac010_any_shape_and_layout(
        inst in 1usize..5, rows in 2usize..32, cols in 2usize..64,
        factor in prop::sample::select(vec![1usize, 4, 8, 16, 32]),
        padded in any::<bool>(),
    ) {
        let op = InstancedTranspose::new(inst, rows, cols, 1);
        let flags = FlagLayout::for_factor(factor, padded);
        prop_assume!(flags.words_needed(rows * cols) * 4 <= 48 * 1024);
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), op.total_len() + 8);
        let buf = sim.alloc(op.total_len());
        sim.upload_u32(buf, &(0..op.total_len() as u32).collect::<Vec<_>>());
        let k = Pttwac010 { data: buf, instances: inst, rows, cols, wg_size: 128, flags, backoff: None };
        sim.launch(&k).unwrap();
        prop_assert_eq!(sim.download_u32(buf), expected(&op));
    }

    #[test]
    fn pttwac100_any_shape_and_variant(
        inst in 1usize..4, rows in 2usize..16, cols in 2usize..16,
        s in 1usize..80,
        variant in prop::sample::select(vec![
            Variant100::SungWorkGroup,
            Variant100::WarpLocalTile,
            Variant100::Auto,
        ]),
    ) {
        let op = InstancedTranspose::new(inst, rows, cols, s);
        prop_assume!(op.total_len() <= 40_000);
        let dev = DeviceSpec::tesla_k20();
        // Sung's variant launches wg_size = s work-groups.
        prop_assume!(variant != Variant100::SungWorkGroup || s <= dev.max_threads_per_wg);
        let flag_words = Pttwac100::flag_words(inst * rows * cols);
        let mut sim = Sim::new(dev.clone(), op.total_len() + flag_words + 8);
        let data = sim.alloc(op.total_len());
        let flags = sim.alloc(flag_words);
        sim.upload_u32(data, &(0..op.total_len() as u32).collect::<Vec<_>>());
        sim.zero(flags);
        let k = Pttwac100 {
            data, flags, instances: inst, rows, cols, super_size: s,
            variant: variant.resolve(s, dev.simd_width), wg_size: 256, fuse_tile: None,
            backoff: None,
        };
        sim.launch(&k).unwrap();
        prop_assert_eq!(sim.download_u32(data), expected(&op));
    }

    #[test]
    fn full_pipeline_any_tiled_shape(
        mp in 1usize..5, np in 1usize..5, m in 1usize..10, n in 1usize..10,
    ) {
        let (rows, cols) = (mp * m, np * n);
        let plan3 = StagePlan::three_stage(rows, cols, TileConfig::new(m, n)).unwrap();
        let plan4 = StagePlan::four_stage_fused(rows, cols, TileConfig::new(m, n)).unwrap();
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        for plan in [plan3, plan4] {
            let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(&plan) + 64);
            let mut data = Matrix::iota(rows, cols).into_vec();
            // Verifies internally against the reference permutation.
            transpose_on_device(&mut sim, &mut data, rows, cols, &plan, &opts).unwrap();
        }
    }

    #[test]
    fn coprime_device_any_shape(rows in 2usize..80, cols in 2usize..80) {
        prop_assume!(ipt_core::coprime::is_coprime_shape(rows, cols));
        let mut sim = Sim::new(DeviceSpec::tesla_k20(), rows * cols + 8);
        let buf = sim.alloc(rows * cols);
        let m = Matrix::iota(rows, cols);
        sim.upload_u32(buf, m.as_slice());
        ipt_gpu::coprime::transpose_coprime_on_device(&sim, buf, rows, cols, 128).unwrap();
        prop_assert_eq!(sim.download_u32(buf), m.transposed().into_vec());
    }

    /// The C2R device pipeline needs no coprimality assumption: it is
    /// total over every shape, and bit-identical to the host sequential
    /// reference.
    #[test]
    fn c2r_device_any_shape(
        rows in 1usize..80, cols in 1usize..80,
        wg in prop::sample::select(vec![64usize, 128, 256]),
    ) {
        let dev = DeviceSpec::tesla_k20();
        let scratch = ipt_gpu::c2r_scratch_words(&dev, rows, cols, wg);
        let mut sim = Sim::new(dev, rows * cols + scratch + 8);
        let buf = sim.alloc(rows * cols);
        let m = Matrix::iota(rows, cols);
        sim.upload_u32(buf, m.as_slice());
        ipt_gpu::transpose_c2r_on_device(&mut sim, buf, rows, cols, wg).unwrap();
        // Host sequential reference on the same payload.
        let mut host = m.as_slice().to_vec();
        ipt_core::transpose_c2r_seq(&mut host, rows, cols);
        prop_assert_eq!(&host, &m.transposed().into_vec(), "host reference");
        prop_assert_eq!(sim.download_u32(buf), host, "device ≡ host");
    }

    /// Host parallel ≡ host sequential ≡ naive reference for C2R across
    /// arbitrary shapes and 1–2-word elements (the recovery chain serves
    /// wide elements through the host path).
    #[test]
    fn c2r_host_paths_agree_for_wide_elements(
        rows in 1usize..48, cols in 1usize..48, elem_words in 1usize..3,
    ) {
        let n = rows * cols * elem_words;
        let payload: Vec<u32> = (0..n as u32).map(|x| x.wrapping_mul(2_654_435_761)).collect();
        let mut want = vec![0u32; n];
        for r in 0..rows {
            for c in 0..cols {
                for w in 0..elem_words {
                    want[(c * rows + r) * elem_words + w] =
                        payload[(r * cols + c) * elem_words + w];
                }
            }
        }
        let mut seq = payload.clone();
        ipt_core::c2r::transpose_c2r_seq_elems(&mut seq, rows, cols, elem_words);
        prop_assert_eq!(&seq, &want, "sequential");
        let mut par = payload.clone();
        ipt_core::c2r::transpose_c2r_par_elems(&mut par, rows, cols, elem_words);
        prop_assert_eq!(&par, &want, "parallel ≡ reference");
    }

    /// The scheme-level recovery chain on a C2R decision is exact for both
    /// element widths: word elements run the device kernels, wide elements
    /// the verified host path.
    #[test]
    fn c2r_recovery_chain_any_shape_and_width(
        rows in 1usize..40, cols in 1usize..40, elem_words in 1usize..3,
    ) {
        use ipt_core::{FallbackReason, PlanDecision, Scheme};
        let d = PlanDecision {
            scheme: Scheme::C2R,
            reason: FallbackReason::NoFeasibleTile { rows, cols },
            tile: None,
        };
        let n = rows * cols * elem_words;
        let dev = DeviceSpec::tesla_k20();
        let mut sim = Sim::new(dev.clone(), 2 * n + 64);
        let opts = GpuOptions::tuned_for(&dev);
        let mut data: Vec<u32> = (0..n as u32).collect();
        let original = data.clone();
        let (_, report) = ipt_gpu::recover::transpose_scheme_with_recovery(
            &mut sim, &mut data, rows, cols, elem_words, &d, &opts,
            &ipt_gpu::RecoveryPolicy::default(),
        ).unwrap();
        prop_assert_eq!(
            &data,
            &ipt_gpu::host_transpose_elems(&original, rows, cols, elem_words)
        );
        if elem_words == 1 {
            prop_assert_eq!(report.path, ipt_gpu::RecoveryPath::Primary);
        } else {
            prop_assert_eq!(report.path, ipt_gpu::RecoveryPath::HostSequential);
        }
    }
}
