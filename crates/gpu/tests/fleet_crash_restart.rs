//! Crash/warm-restart drill for the sharded fleet: a shard dies mid-stream,
//! its admitted-but-unserved requests are re-routed to survivors, and it
//! later rejoins warm from its own plan-cache snapshot. The interrupted
//! fleet must serve the *same id set* with *bit-identical payloads* as an
//! uninterrupted fleet — persistence and failover may change timing and
//! placement, never results.

use gpu_sim::DeviceSpec;
use ipt_gpu::fleet::{Fleet, FleetConfig};
use ipt_gpu::serve::{PriorityClass, ServeRequest};
use ipt_gpu::TransposeError;
use ipt_obs::{Counter, TraceRecorder};
use std::collections::HashMap;

const N: u64 = 300;
const ROUND: u64 = 24;
// Mid-round indices (not multiples of ROUND): the crash must catch
// admitted-but-unserved requests in the victim's queue.
const CRASH_AT: u64 = 130;
const RESTART_AT: u64 = 155;

fn request(id: u64) -> ServeRequest {
    let shapes = [
        (72usize, 60usize, 4usize),
        (96, 72, 4),
        (60, 60, 4),
        (47, 47, 4),
        (127, 61, 4),
        (1, 512, 4),
        (72, 60, 8),
    ];
    let (rows, cols, elem_bytes) = shapes[id as usize % shapes.len()];
    let words = rows * cols * (elem_bytes / 4);
    ServeRequest {
        id,
        rows,
        cols,
        elem_bytes,
        priority: match id % 3 {
            0 => PriorityClass::Interactive,
            1 => PriorityClass::Batch,
            _ => PriorityClass::Background,
        },
        data: (0..words as u32)
            .map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(id as u32))
            .collect(),
    }
}

fn submit_or_drain(
    fleet: &mut Fleet,
    req: ServeRequest,
    out: &mut HashMap<u64, Vec<u32>>,
    rec: &TraceRecorder,
) {
    if let Err(TransposeError::Backpressure { .. }) = fleet.submit(req.clone(), rec) {
        drain(fleet, out, rec);
        fleet.submit(req, rec).expect("fleet accepts after a drain");
    }
}

fn drain(fleet: &mut Fleet, out: &mut HashMap<u64, Vec<u32>>, rec: &TraceRecorder) {
    let round = fleet.process_rounds(rec).expect("fleet round");
    for (_, rep) in &round.rounds {
        for res in &rep.results {
            assert!(
                out.insert(res.id, res.data.clone()).is_none(),
                "request {} served twice",
                res.id
            );
        }
    }
}

/// Run the stream; `interrupt` injects the crash + warm restart.
fn run_stream(interrupt: bool, rec: &TraceRecorder) -> (HashMap<u64, Vec<u32>>, usize) {
    let dev = DeviceSpec::tesla_k20();
    let mut fleet = Fleet::new(dev.clone(), FleetConfig::new(&dev));
    // Crash the shard that owns the stream's first shape so the drill hits
    // a shard with live traffic and cached plans.
    let first = request(0);
    let victim = fleet.preferred_shard(first.rows, first.cols, first.elem_bytes);
    let mut out = HashMap::new();
    let mut snapshot = None;
    let mut plans_restored = 0usize;

    for id in 0..N {
        if interrupt && id == CRASH_AT {
            let (snap, orphans) = fleet.crash_shard(victim, rec);
            assert!(!orphans.is_empty(), "victim must hold admitted requests");
            for orphan in orphans {
                submit_or_drain(&mut fleet, orphan, &mut out, rec);
            }
            snapshot = Some(snap);
        }
        if interrupt && id == RESTART_AT {
            plans_restored = fleet
                .restart_shard(victim, snapshot.as_ref().unwrap(), rec)
                .expect("self-written snapshot restores");
            assert!(fleet.is_healthy(victim));
        }
        submit_or_drain(&mut fleet, request(id), &mut out, rec);
        if (id + 1) % ROUND == 0 {
            drain(&mut fleet, &mut out, rec);
        }
    }
    while fleet.backlog() > 0 {
        drain(&mut fleet, &mut out, rec);
    }
    (out, plans_restored)
}

#[test]
fn interrupted_fleet_serves_bit_identically_to_uninterrupted() {
    let rec_smooth = TraceRecorder::counters_only();
    let rec_crash = TraceRecorder::counters_only();
    let (smooth, _) = run_stream(false, &rec_smooth);
    let (crashed, plans_restored) = run_stream(true, &rec_crash);

    // Same id set: the crash loses no admitted request and serves none twice.
    assert_eq!(smooth.len(), N as usize);
    assert_eq!(crashed.len(), N as usize);

    // Bit-identical payloads per id, crash or no crash.
    for (id, want) in &smooth {
        let got = crashed.get(id).unwrap_or_else(|| panic!("id {id} lost in crash run"));
        assert_eq!(got, want, "id {id}: crash/restart changed the bits");
    }

    // The drill actually exercised the machinery it claims to.
    assert!(plans_restored > 0, "victim rejoined with a warm cache");
    assert_eq!(rec_crash.counter("serve", Counter::SnapshotRestores), 1);
    assert!(
        rec_crash.counter("fleet", Counter::ShardFailovers) >= 1,
        "traffic for the dead shard must fail over"
    );
    assert_eq!(rec_smooth.counter("serve", Counter::SnapshotRestores), 0);
    assert_eq!(rec_smooth.counter("fleet", Counter::ShardFailovers), 0);
}

#[test]
fn post_restart_traffic_hits_the_restored_cache() {
    let dev = DeviceSpec::tesla_k20();
    let rec = TraceRecorder::counters_only();
    let mut fleet = Fleet::new(dev.clone(), FleetConfig::new(&dev));
    let first = request(0);
    let victim = fleet.preferred_shard(first.rows, first.cols, first.elem_bytes);
    let mut out = HashMap::new();

    // Warm every shard over the full shape set.
    for id in 0..70 {
        submit_or_drain(&mut fleet, request(id), &mut out, &rec);
    }
    drain(&mut fleet, &mut out, &rec);

    let (snapshot, orphans) = fleet.crash_shard(victim, &rec);
    assert!(orphans.is_empty(), "post-drain crash holds nothing");
    let restored = fleet.restart_shard(victim, &snapshot, &rec).unwrap();
    assert!(restored > 0);

    // Replay the same shapes: the restored shard serves its share entirely
    // from the restored cache — zero fresh plan builds.
    let misses_before = fleet.shard(victim).cache().misses();
    for id in 70..140 {
        submit_or_drain(&mut fleet, request(id), &mut out, &rec);
    }
    drain(&mut fleet, &mut out, &rec);
    assert_eq!(
        fleet.shard(victim).cache().misses(),
        misses_before,
        "restored shard must not rebuild known plans"
    );
    assert!(fleet.shard(victim).cache().hits() > 0);
}
