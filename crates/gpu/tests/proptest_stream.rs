//! Property: any oversized matrix round-trips bit-exactly through the
//! out-of-core streaming executor, with every journal chunk committed —
//! fault-free and under a single injected transfer fault alike.

use gpu_sim::{DeviceSpec, FaultKind, FaultPlan};
use ipt_gpu::recover::host_transpose_elems;
use ipt_gpu::stream::{stream_transpose, StreamChaos, StreamConfig};
use proptest::prelude::*;

fn payload(rows: usize, cols: usize, elem_words: usize, salt: u32) -> Vec<u32> {
    (0..(rows * cols * elem_words) as u32)
        .map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(salt))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes, element widths and budgets (all forcing multiple
    /// chunks), with one seeded transfer fault injected mid-stream: the
    /// result must be bit-identical to the host reference and the journal
    /// fully committed. `chaos_off` interleaves fault-free runs through
    /// the same shapes as a control.
    #[test]
    fn oversized_round_trips_under_single_transfer_fault(
        rows in 12usize..=40,
        cols in 8usize..=32,
        elem_words in 1usize..=2,
        budget_div in 3u64..=6,
        seed in 0u64..100_000,
        h2d in any::<bool>(),
        trigger in 0u64..8,
        chaos_off in any::<bool>(),
    ) {
        let dev = DeviceSpec::tesla_k20();
        let total = (rows * cols * elem_words) as u64;
        // Keep at least one full row per buffer so planning succeeds.
        let budget = (total / budget_div).max(2 * (cols * elem_words) as u64);
        let cfg = StreamConfig::new(&dev, budget);
        let data = payload(rows, cols, elem_words, seed as u32);
        let chaos = if chaos_off {
            StreamChaos::None
        } else {
            let kind = if h2d { FaultKind::FailH2D } else { FaultKind::FailD2H };
            StreamChaos::TransferOnce(FaultPlan::exact(seed, kind, trigger, seed))
        };
        let (out, rep) = stream_transpose(&dev, &data, rows, cols, elem_words, &cfg, &chaos)
            .expect("streaming with at most one transfer fault must succeed");
        prop_assert_eq!(&out, &host_transpose_elems(&data, rows, cols, elem_words));
        prop_assert!(rep.journal.all_committed(), "journal must be fully durable");
        if chaos_off {
            prop_assert_eq!(rep.transfer_faults, 0);
            prop_assert_eq!(rep.chunk_retries, 0);
        } else {
            // A single fault is absorbed by one chunk retry; it must never
            // walk the ladder past the overlapped rung.
            prop_assert!(rep.transfer_faults <= 1);
            prop_assert_eq!(rep.degradations, 0, "one fault must not degrade");
        }
    }
}
