//! Acceptance tests for fleet-wide request telemetry: one request served
//! through the fleet — including a request that fails over off a crashed
//! shard and one that degrades to the host-shed rung — yields one
//! causally-complete trace (every span reachable from the root via parent
//! links); latency quantiles, exemplars, and the burn-rate alert stream
//! are byte-identical across repeated runs and across the serial and
//! parallel DES engines.

use std::collections::HashSet;

use gpu_sim::{DeviceSpec, EngineMode};
use ipt_gpu::fleet::{Fleet, FleetConfig};
use ipt_gpu::serve::{trace_id, DegradeLevel, PriorityClass, ServeRequest, ROOT_SPAN};
use ipt_obs::{prometheus_text, TraceRecorder};

fn req(id: u64, rows: usize, cols: usize, priority: PriorityClass) -> ServeRequest {
    let data = (0..(rows * cols) as u32)
        .map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(id as u32))
        .collect();
    ServeRequest { id, rows, cols, elem_bytes: 4, priority, data }
}

/// Ids of the requests the scenario (a) fails over and (b) drives into the
/// host-shed rung, plus every shed result id observed.
struct ScenarioOutcome {
    failover_id: u64,
    shed_ids: Vec<u64>,
}

/// A small end-to-end fleet drill: a warm round, a shard crash with
/// failover traffic, one overloaded round that trips the whole
/// degradation ladder, and a warm restart.
fn scenario(rec: &TraceRecorder) -> (Fleet, ScenarioOutcome) {
    let dev = DeviceSpec::tesla_k20();
    let mut cfg = FleetConfig::new(&dev);
    // Tight queues: degrade from position ceil(0.75*16)=12, shed from
    // ceil(0.9*16)=15 — one 16-deep same-shape burst trips both rungs.
    cfg.serve.queue_capacity = 16;
    cfg.serve.profile_replay = true;
    cfg.serve.full_exec_every = 7;
    let mut fleet = Fleet::new(dev, cfg);

    // Warm round: one request per shape, all tuned.
    let shapes = [(72usize, 60usize), (96, 72), (60, 60), (47, 47)];
    let mut id = 0u64;
    for (r, c) in shapes {
        fleet.submit(req(id, r, c, PriorityClass::Batch), rec).unwrap();
        id += 1;
    }
    fleet.process_rounds(rec).unwrap();

    // Crash (72,60)'s home shard; the next (72,60) request must fail over.
    let home = fleet.preferred_shard(72, 60, 4);
    let (snapshot, orphans) = fleet.crash_shard(home, rec);
    assert!(orphans.is_empty(), "backlog was drained before the crash");
    let failover_id = id;
    fleet.submit(req(id, 72, 60, PriorityClass::Interactive), rec).unwrap();
    id += 1;
    fleet.process_rounds(rec).unwrap();

    // Overload: 16 interactive requests of one surviving shape pile onto
    // one shard — positions 12..14 degrade, 15 sheds.
    let (sr, sc) = shapes
        .iter()
        .copied()
        .find(|&(r, c)| fleet.preferred_shard(r, c, 4) != home)
        .expect("some shape prefers a surviving shard");
    for _ in 0..16 {
        fleet.submit(req(id, sr, sc, PriorityClass::Interactive), rec).unwrap();
        id += 1;
    }
    let round = fleet.process_rounds(rec).unwrap();
    let shed_ids: Vec<u64> = round
        .rounds
        .iter()
        .flat_map(|(_, r)| &r.results)
        .filter(|res| res.degrade == DegradeLevel::HostShed)
        .map(|res| res.id)
        .collect();
    assert!(!shed_ids.is_empty(), "the overload round must shed");

    // Warm restart, one clean closing round.
    fleet.restart_shard(home, &snapshot, rec).unwrap();
    fleet.submit(req(id, 72, 60, PriorityClass::Background), rec).unwrap();
    fleet.process_rounds(rec).unwrap();

    (fleet, ScenarioOutcome { failover_id, shed_ids })
}

/// Every span of the trace carries the trace id, exactly one span is the
/// root, and every other span's parent is present in the trace — i.e. the
/// whole tree is reachable from the root.
fn assert_causally_complete(rec: &TraceRecorder, tid: u64) {
    let spans = rec.trace_spans(tid);
    assert!(!spans.is_empty(), "trace {tid:016x} has spans");
    let ids: HashSet<u64> =
        spans.iter().map(|s| s.ctx.expect("trace spans carry ctx").span_id).collect();
    let mut roots = 0;
    for s in &spans {
        let ctx = s.ctx.expect("trace spans carry ctx");
        assert_eq!(ctx.trace_id, tid);
        if ctx.parent_span_id == 0 {
            assert_eq!(ctx.span_id, ROOT_SPAN, "only the root span has no parent");
            roots += 1;
        } else {
            assert!(
                ids.contains(&ctx.parent_span_id),
                "span {} of trace {tid:016x} has dangling parent {}",
                ctx.span_id,
                ctx.parent_span_id
            );
        }
    }
    assert_eq!(roots, 1, "trace {tid:016x} has exactly one root");
}

#[test]
fn served_failover_and_shed_requests_yield_complete_traces() {
    let rec = TraceRecorder::new();
    let (fleet, outcome) = scenario(&rec);

    // Every request the fleet served has a causally-complete trace.
    for tid in rec.trace_ids() {
        assert_causally_complete(&rec, tid);
    }

    // The failed-over request's trace records the failover on its route
    // span and still execs (it reached a surviving shard).
    let tid = trace_id(outcome.failover_id);
    let spans = rec.trace_spans(tid);
    let route = spans.iter().find(|s| s.name == "route").expect("route span");
    let failed_over = route
        .args
        .iter()
        .find(|(k, _)| *k == "failed_over")
        .map(|(_, v)| *v)
        .expect("route spans carry the failover flag");
    assert!((failed_over - 1.0).abs() < f64::EPSILON, "failover recorded on the route span");
    assert!(spans.iter().any(|s| s.name == "exec"), "failed-over request still executed");

    // A shed request's trace ends in the host-shed rung, not a device
    // exec — the degradation is visible in the trace itself.
    let tid = trace_id(outcome.shed_ids[0]);
    let spans = rec.trace_spans(tid);
    assert!(spans.iter().any(|s| s.name == "host-shed"), "shed rung appears in the trace");
    assert!(!spans.iter().any(|s| s.name == "exec"), "shed requests never exec on device");

    // The overload drill melted the interactive SLO: alerts fired and are
    // retained on the fleet's telemetry.
    assert!(!fleet.telemetry().alerts().is_empty(), "overload must raise a burn-rate alert");
    assert!(
        fleet.telemetry().alerts().iter().any(|a| a.class == "interactive"),
        "the melted class is the interactive one"
    );

    // Kernel-level spans emitted inside the recovery chain joined the
    // request traces as leaf children (ambient-context propagation).
    let any_leaf = rec
        .trace_ids()
        .iter()
        .flat_map(|&t| rec.trace_spans(t))
        .any(|s| s.ctx.is_some_and(|c| c.span_id == 0));
    assert!(any_leaf, "execution-layer spans must join the traces via the ctx stack");
}

/// One full scenario reduced to its observable telemetry: the Prometheus
/// export (counters, gauges, latency histograms with exemplars) and the
/// serialized alert stream.
fn observable_telemetry() -> (String, String) {
    let rec = TraceRecorder::new();
    let (fleet, _) = scenario(&rec);
    let alerts = serde_json::to_string(fleet.telemetry().alerts()).expect("alerts serialize");
    (prometheus_text(&rec), alerts)
}

#[test]
fn quantiles_and_alerts_are_byte_identical_across_runs_and_engines() {
    let (prom_a, alerts_a) = observable_telemetry();
    let (prom_b, alerts_b) = observable_telemetry();
    assert_eq!(prom_a, prom_b, "repeated runs must export identical telemetry");
    assert_eq!(alerts_a, alerts_b, "repeated runs must fire identical alerts");

    // Across engines: cache-hit batches inside the scenario run under
    // `EngineMode::parallel_auto()`, whose worker count is resolved
    // *once per process* (cached in a `OnceLock`), so re-pointing
    // RAYON_NUM_THREADS mid-test is deliberately inert — a pin-and-rerun
    // here would assert nothing. Thread-count unobservability is enforced
    // at the engine layer (`proptest_engine_equiv`: serial ≡ parallel
    // bit-identity and `thread_count_is_unobservable`); byte-identical
    // telemetry across engines then follows from the byte-identical
    // simulation plus the deterministic exporters re-checked above.
    assert!(
        EngineMode::parallel_auto().resolved_threads() >= 1,
        "parallel_auto must resolve to a usable worker count"
    );
}
