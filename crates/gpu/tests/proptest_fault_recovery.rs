//! Property: under any single injected fault, the recovering pipeline
//! either returns a verified-correct transposition or a typed
//! [`TransposeError`] — never a panic, never silent corruption.

use gpu_sim::{DeviceSpec, FaultKind, FaultPlan, Sim};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::Matrix;
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::plan_flag_words;
use ipt_gpu::recover::{transpose_with_recovery, RecoveryPolicy};
use proptest::prelude::*;

/// One recovering device-side run of the 3-stage pipeline on `rows×cols`
/// with `fault` armed. Returns whether it succeeded; on success the result
/// was verified element-exact against the reference (silent corruption
/// would surface here as a test failure).
fn run_recovering(
    rows: usize,
    cols: usize,
    tile: TileConfig,
    fault: FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<(), String> {
    let plan = StagePlan::three_stage(rows, cols, tile).expect("tile divides");
    // 2× data room keeps the out-of-place fallback reachable.
    let mut sim = Sim::new(
        DeviceSpec::tesla_k20(),
        2 * rows * cols + plan_flag_words(&plan).max(1) + 64,
    );
    sim.set_fault_plan(fault);
    let opts = GpuOptions::tuned_for(sim.device());
    let mut data = Matrix::iota(rows, cols).into_vec();
    let want = Matrix::iota(rows, cols).transposed().into_vec();
    match transpose_with_recovery(&mut sim, &mut data, rows, cols, &plan, &opts, policy) {
        Ok((_, report)) => {
            // The recovery layer claims verified output; check it really is.
            if data != want {
                return Err(format!(
                    "silent corruption: recovery reported success via {:?} but the \
                     result is wrong (faults: {:?})",
                    report.path, report.faults
                ));
            }
            Ok(())
        }
        // A typed error is an acceptable outcome; a panic is not (it would
        // abort the test).
        Err(e) => Err(format!("typed: {e}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random seeded faults (kind, trigger and payload all derived from
    /// the seed) against the default policy: with the fallback chain
    /// enabled, every single-fault run must come back verified-correct.
    #[test]
    fn any_seeded_fault_recovers(seed in 0u64..1_000_000_000) {
        let outcome = run_recovering(
            72,
            60,
            TileConfig::new(12, 10),
            FaultPlan::from_seed(seed),
            &RecoveryPolicy::default(),
        );
        // Default policy ends in the host-sequential path, which cannot
        // fail — so the outcome must be verified success.
        prop_assert!(outcome.is_ok(), "seed {seed}: {}", outcome.unwrap_err());
    }

    /// Exhaustive fault kinds at targeted trigger points, including a
    /// strict no-fallback policy: success must be verified, failure must
    /// be a typed error. Either way: no panic, no silent corruption.
    #[test]
    fn exact_fault_is_contained(
        kind_idx in 0usize..FaultKind::ALL.len(),
        trigger in 0u64..96,
        payload in 0u64..1_000_000,
        fallback in any::<bool>(),
    ) {
        let policy = RecoveryPolicy {
            max_stage_retries: 1,
            retry_backoff_s: 1e-4,
            allow_fallback: fallback,
            seed: 0,
        };
        let fault = FaultPlan::exact(1, FaultKind::ALL[kind_idx], trigger, payload);
        let outcome = run_recovering(48, 90, TileConfig::new(8, 9), fault, &policy);
        if let Err(msg) = &outcome {
            // Anything other than a typed TransposeError is a bug.
            prop_assert!(
                msg.starts_with("typed: "),
                "kind {kind_idx} trigger {trigger}: {msg}"
            );
            // Without fallback a typed error is legitimate; with the full
            // chain the host-sequential tail must have rescued the run.
            prop_assert!(
                !fallback,
                "fallback chain failed to rescue kind {kind_idx} trigger {trigger}: {msg}"
            );
        }
    }
}
