//! Acceptance tests for the observability layer: a traced 3-stage run
//! yields a valid, hierarchical Chrome trace; the §5.1 conflict counters
//! really move the way the paper says; a disabled recorder emits nothing.

use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::Matrix;
use ipt_gpu::opts::{FlagLayout, GpuOptions};
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device_rec};
use ipt_obs::{chrome_trace_json, prometheus_text, Counter, Level, TraceRecorder};

const ROWS: usize = 288;
const COLS: usize = 120;

fn three_stage() -> StagePlan {
    StagePlan::three_stage(ROWS, COLS, TileConfig::new(24, 24)).unwrap()
}

fn traced_run(rec: &TraceRecorder) {
    let dev = DeviceSpec::tesla_k20();
    let plan = three_stage();
    let opts = GpuOptions::tuned_for(&dev);
    let mut sim = Sim::new(dev, ROWS * COLS + plan_flag_words(&plan) + 64);
    let mut data = Matrix::iota(ROWS, COLS).into_vec();
    transpose_on_device_rec(&mut sim, &mut data, ROWS, COLS, &plan, &opts, rec, 0.0).unwrap();
    assert_eq!(data, Matrix::iota(ROWS, COLS).transposed().into_vec());
}

#[test]
fn traced_three_stage_run_produces_nested_chrome_trace() {
    let rec = TraceRecorder::new();
    traced_run(&rec);

    // The span hierarchy: one algorithm span covering three stage spans,
    // each stage span covering at least one kernel span, with warp spans
    // below the kernels.
    let spans = rec.spans();
    let algos: Vec<_> = spans.iter().filter(|s| s.level == Level::Algorithm).collect();
    let stages: Vec<_> = spans.iter().filter(|s| s.level == Level::Stage).collect();
    let kernels: Vec<_> = spans.iter().filter(|s| s.level == Level::Kernel).collect();
    let warps: Vec<_> = spans.iter().filter(|s| s.level == Level::Warp).collect();
    assert_eq!(algos.len(), 1, "one algorithm span");
    assert_eq!(stages.len(), 3, "3-stage plan → three stage spans");
    assert_eq!(
        stages.iter().map(|s| s.name.as_ref()).collect::<Vec<_>>(),
        vec!["100!", "0010!", "0100!"],
        "stage spans carry the factorial codes in execution order"
    );
    assert!(kernels.len() >= 3, "at least one kernel launch per stage");
    assert!(!warps.is_empty(), "sampled warp spans present");

    // DES timestamps: the algorithm span contains every stage span; stages
    // are disjoint and ordered; every kernel sits inside some stage.
    let algo = algos[0];
    assert!(algo.dur_us > 0.0);
    let eps = 1e-6;
    for (i, st) in stages.iter().enumerate() {
        assert!(st.start_us >= algo.start_us - eps, "stage {i} starts inside the algorithm");
        assert!(
            st.start_us + st.dur_us <= algo.start_us + algo.dur_us + eps,
            "stage {i} ends inside the algorithm"
        );
        if i > 0 {
            let prev = stages[i - 1];
            assert!(
                st.start_us >= prev.start_us + prev.dur_us - eps,
                "stage {i} starts after stage {} ends",
                i - 1
            );
        }
    }
    for k in &kernels {
        assert!(
            stages.iter().any(|st| k.start_us >= st.start_us - eps
                && k.start_us + k.dur_us <= st.start_us + st.dur_us + eps),
            "kernel `{}` [{}, {}] lies inside some stage",
            k.name,
            k.start_us,
            k.start_us + k.dur_us
        );
    }

    // The Chrome export is valid JSON with the right envelope.
    let json = chrome_trace_json(&rec);
    let v = serde_json::from_str(&json).expect("chrome trace must parse");
    let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    assert_eq!(complete, spans.len(), "one complete event per span");
    let metadata = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .count();
    assert!(metadata >= 4, "thread-name metadata for algorithm/stage/kernel/warp tracks");
    for e in events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")) {
        assert!(e.get("ts").and_then(serde::Value::as_f64).is_some(), "X event has ts");
        assert!(e.get("dur").and_then(serde::Value::as_f64).is_some(), "X event has dur");
    }

    // The Prometheus export mentions the core §5.1 counters.
    let prom = prometheus_text(&rec);
    assert!(prom.contains("ipt_dram_bytes_total"), "{prom}");
    assert!(prom.contains("ipt_cycle_length_bucket"), "cycle histogram exported");
}

/// Run PTTWAC-010 on 16 instances of a 16×4096 tile — 1M elements whose
/// pure power-of-two strides (m·n = 2¹⁶) are the §5.1.2 pathology: packed
/// flags hammer the same banks and alias the 1024 local-memory locks —
/// under one flag layout, counting conflicts through the recorder.
fn conflicts_with(flags: FlagLayout) -> TraceRecorder {
    let (instances, rows, cols) = (16usize, 16usize, 4096usize);
    let rec = TraceRecorder::new();
    let op = ipt_core::InstancedTranspose::new(instances, rows, cols, 1);
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), op.total_len() + 8);
    let buf = sim.alloc(op.total_len());
    let data: Vec<u32> = (0..op.total_len() as u32).collect();
    sim.upload_u32(buf, &data);
    let k = ipt_gpu::Pttwac010 { data: buf, instances, rows, cols, wg_size: 256, flags, backoff: None };
    sim.launch_rec(&k, &rec, 0.0).expect("feasible");
    let mut want = data;
    op.apply_seq(&mut want);
    assert_eq!(sim.download_u32(buf), want, "{flags:?} must still transpose correctly");
    rec
}

#[test]
fn spreading_and_padding_strictly_reduce_conflicts_in_recorder() {
    let packed = conflicts_with(FlagLayout::Packed);
    let tuned = conflicts_with(FlagLayout::SpreadPadded { factor: 2 });

    // Spreading (Eq. 3) breaks up the same-word pile-ups (position
    // conflicts); padding (§5.1.2) rotates the surviving accesses across
    // banks and locks. On the power-of-two matrix, the combination must
    // strictly reduce every §5.1 conflict class vs unspread/unpadded.
    let pos = |r: &TraceRecorder| r.total(Counter::PositionConflicts);
    let lock = |r: &TraceRecorder| r.total(Counter::LockConflicts);
    let bank = |r: &TraceRecorder| r.total(Counter::BankConflicts);
    assert!(pos(&packed) > 0, "packed layout must suffer position conflicts");
    assert!(lock(&packed) > 0, "packed layout must suffer lock conflicts");
    assert!(bank(&packed) > 0, "packed layout must suffer bank conflicts");
    assert!(
        pos(&tuned) < pos(&packed),
        "position conflicts: tuned {} vs packed {}",
        pos(&tuned),
        pos(&packed)
    );
    assert!(
        lock(&tuned) < lock(&packed),
        "lock conflicts: tuned {} vs packed {}",
        lock(&tuned),
        lock(&packed)
    );
    assert!(
        bank(&tuned) < bank(&packed),
        "bank conflicts: tuned {} vs packed {}",
        bank(&tuned),
        bank(&packed)
    );
    // The recorder agrees with itself: per-scope counters sum to totals.
    let per_scope: u64 = packed
        .counters()
        .iter()
        .filter(|(_, c, _)| *c == Counter::PositionConflicts)
        .map(|(_, _, v)| v)
        .sum();
    assert_eq!(per_scope, pos(&packed));
}

#[test]
fn disabled_recorder_emits_nothing() {
    let rec = TraceRecorder::disabled();
    traced_run(&rec);
    assert!(rec.is_empty(), "disabled recorder must collect no spans/counters/events");
}

#[test]
fn traffic_and_claim_counters_are_exercised() {
    let rec = TraceRecorder::new();
    traced_run(&rec);
    let bytes = (ROWS * COLS * 4) as u64;
    assert_eq!(rec.counter("sim", Counter::H2dBytes), bytes, "one upload of the matrix");
    assert!(rec.counter("sim", Counter::D2hBytes) >= bytes, "download counted");
    assert!(rec.counter("sim", Counter::MemsetBytes) > 0, "flag memsets counted");
    assert!(rec.total(Counter::WarpSteps) > 0);
    // The cycle-length histogram covers the instanced stages.
    assert!(!rec.cycle_histogram().is_empty());
}

