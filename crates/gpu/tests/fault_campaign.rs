//! Seeded fault-injection campaign across the whole transposition
//! pipeline: BS, PTTWAC 010!, PTTWAC 100! and both host schemes.
//!
//! The contract under test (the repo's failure model): with a single
//! injected fault per run,
//!
//! * **zero panics** — every failure is a typed [`TransposeError`],
//! * **no silent corruption** — every success is checksum- and
//!   element-verified against the reference permutation (possibly
//!   delivered by a fallback path),
//! * **reproducible** — the same seed produces the same outcome, fault
//!   log included.
//!
//! The campaign runs 240 seeded configurations (≥ 200 required); CI runs
//! it nightly.

use gpu_sim::{DeviceSpec, FaultPlan, LaunchError, Sim};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::{InstancedTranspose, Matrix};
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::{plan_flag_words, run_instanced_public, select_kernel, StageKernel};
use ipt_gpu::recover::{transpose_with_recovery, RecoveryPolicy, TransposeError};
use ipt_gpu::{run_host_async_recovering, run_host_sync_recovering};

const CAMPAIGN_SEEDS: u64 = 240;
const REPRO_SEEDS: u64 = 24;

/// Everything that characterises one run, for reproducibility checks.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    config: &'static str,
    /// `Ok(path)` for a verified-correct result, `Err(error string)` for a
    /// typed failure.
    result: Result<String, String>,
    /// `kind @ site` per fired fault, in order.
    faults: Vec<String>,
    retries: (usize, usize, usize), // stage, transfer, scheme
}

fn fault_tags(records: &[gpu_sim::FaultRecord]) -> Vec<String> {
    records.iter().map(|r| format!("{:?} @ {}", r.kind, r.site)).collect()
}

/// Device-level recovering run of `plan` on `rows×cols`.
fn device_run(
    config: &'static str,
    rows: usize,
    cols: usize,
    plan: &StagePlan,
    seed: u64,
) -> Outcome {
    let mut sim = Sim::new(
        DeviceSpec::tesla_k20(),
        2 * rows * cols + plan_flag_words(plan).max(1) + 64,
    );
    sim.set_fault_plan(FaultPlan::from_seed(seed));
    let opts = GpuOptions::tuned_for(sim.device());
    let mut data = Matrix::iota(rows, cols).into_vec();
    let want = Matrix::iota(rows, cols).transposed().into_vec();
    match transpose_with_recovery(
        &mut sim,
        &mut data,
        rows,
        cols,
        plan,
        &opts,
        &RecoveryPolicy::default(),
    ) {
        Ok((_, report)) => {
            assert_eq!(data, want, "silent corruption (config {config}, seed {seed})");
            Outcome {
                config,
                result: Ok(report.path.to_string()),
                faults: fault_tags(&report.faults),
                retries: (report.stage_retries, report.transfer_retries, report.scheme_retries),
            }
        }
        Err(e) => Outcome {
            config,
            result: Err(e.to_string()),
            faults: fault_tags(&sim.fault_records()),
            retries: (0, 0, 0),
        },
    }
}

/// Kernel-level recovering run of PTTWAC 010! — the one kernel a full
/// plan cannot route to on these devices (a tile too large for local
/// memory implies stage-1 super-elements too large for the 100! kernel),
/// so the campaign exercises it directly: snapshot, launch, verify
/// against the elementary permutation, retry on failure, degrade to the
/// host applying the permutation.
fn pttwac010_run(seed: u64) -> Outcome {
    const CONFIG: &str = "kernel-010";
    let op = InstancedTranspose::new(4, 64, 220, 1);
    let words = op.total_len();
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), words + 64);
    sim.set_fault_plan(FaultPlan::from_seed(seed));
    let opts = GpuOptions::tuned_for(sim.device());
    assert_eq!(
        select_kernel(&sim, &op, &opts),
        StageKernel::Pttwac010,
        "shape no longer routes to PTTWAC 010!"
    );
    let data = sim.alloc(words);
    let flags = sim.alloc(1);
    let host: Vec<u32> = (0..words as u32).collect();
    let mut want = host.clone();
    op.apply_seq(&mut want);
    sim.upload_u32(data, &host);

    let policy = RecoveryPolicy::default();
    let mut retries = 0usize;
    let mut path: Result<String, String> = Err("unreached".into());
    for attempt in 0..=policy.max_stage_retries {
        match run_instanced_public(&sim, data, flags, &op, &opts) {
            Ok(_) if sim.download_u32(data) == want => {
                path = Ok(if attempt == 0 { "primary" } else { "stage-retry" }.into());
                break;
            }
            Ok(_) | Err(LaunchError::Aborted { .. }) => {
                // Corrupted or aborted: restore the snapshot and retry
                // (the injected fault is single-shot).
                sim.upload_u32(data, &host);
                retries += 1;
            }
            Err(e) => {
                path = Err(TransposeError::from(e).to_string());
                break;
            }
        }
    }
    if path == Err("unreached".into()) {
        // Retry budget spent: the host applies the permutation itself.
        sim.upload_u32(data, &want);
        path = Ok("host-sequential".into());
    }
    if let Ok(p) = &path {
        assert_eq!(
            sim.download_u32(data),
            want,
            "silent corruption (config {CONFIG}, seed {seed}, path {p})"
        );
    }
    Outcome {
        config: CONFIG,
        result: path,
        faults: fault_tags(&sim.fault_records()),
        retries: (retries, 0, 0),
    }
}

fn host_sync_run(seed: u64) -> Outcome {
    const CONFIG: &str = "host-sync";
    let (rows, cols) = (144, 120);
    let plan = StagePlan::three_stage(rows, cols, TileConfig::new(12, 10)).unwrap();
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    match run_host_sync_recovering(
        &dev,
        rows,
        cols,
        &plan,
        &opts,
        &RecoveryPolicy::default(),
        Some(FaultPlan::from_seed(seed)),
    ) {
        Ok((rep, report)) => {
            assert!(rep.total_s > 0.0);
            Outcome {
                config: CONFIG,
                result: Ok(report.path.to_string()),
                faults: fault_tags(&report.faults),
                retries: (report.stage_retries, report.transfer_retries, report.scheme_retries),
            }
        }
        Err(e) => Outcome {
            config: CONFIG,
            result: Err(e.to_string()),
            faults: Vec::new(),
            retries: (0, 0, 0),
        },
    }
}

fn host_async_run(seed: u64) -> Outcome {
    const CONFIG: &str = "host-async";
    let (rows, cols) = (144, 120);
    let plan = StagePlan::three_stage(rows, cols, TileConfig::new(12, 10)).unwrap();
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    match run_host_async_recovering(
        &dev,
        rows,
        cols,
        &plan,
        &opts,
        3,
        &RecoveryPolicy::default(),
        Some(FaultPlan::from_seed(seed)),
    ) {
        Ok((rep, report)) => {
            assert!(rep.total_s > 0.0);
            Outcome {
                config: CONFIG,
                result: Ok(report.path.to_string()),
                faults: fault_tags(&report.faults),
                retries: (report.stage_retries, report.transfer_retries, report.scheme_retries),
            }
        }
        Err(e) => Outcome {
            config: CONFIG,
            result: Err(e.to_string()),
            faults: Vec::new(),
            retries: (0, 0, 0),
        },
    }
}

/// Dispatch: five configurations interleaved over the seed space so every
/// fault kind meets every configuration.
fn run_one(seed: u64) -> Outcome {
    match seed % 5 {
        // 3-stage: BS stage 2 plus 100! stages 1 and 3.
        0 => device_run(
            "device-3stage",
            72,
            60,
            &StagePlan::three_stage(72, 60, TileConfig::new(12, 10)).unwrap(),
            seed,
        ),
        // 4-stage + fusion: the fused 100! moving stage.
        1 => device_run(
            "device-4stage-fused",
            48,
            90,
            &StagePlan::four_stage_fused(48, 90, TileConfig::new(8, 9)).unwrap(),
            seed,
        ),
        2 => pttwac010_run(seed),
        3 => host_sync_run(seed),
        _ => host_async_run(seed),
    }
}

#[test]
fn seeded_campaign_never_panics_and_always_verifies() {
    let mut fired = 0usize;
    let mut fell_back = 0usize;
    let mut typed_errors = 0usize;
    for seed in 0..CAMPAIGN_SEEDS {
        let outcome = run_one(seed);
        // Reaching here at all means no panic; successes were verified
        // element-exact inside the runners. Tally the interesting cases.
        if !outcome.faults.is_empty() {
            fired += 1;
        }
        match &outcome.result {
            Ok(path) if path != "primary" => fell_back += 1,
            Ok(_) => {}
            Err(_) => typed_errors += 1,
        }
    }
    // The campaign is vacuous if faults never fire or never bite: a healthy
    // seed distribution must inject into a good fraction of runs and force
    // at least some recoveries.
    assert!(
        fired * 4 >= CAMPAIGN_SEEDS as usize,
        "only {fired}/{CAMPAIGN_SEEDS} runs saw a fault fire — injection is broken"
    );
    assert!(
        fell_back + typed_errors > 0,
        "no run ever needed recovery — the campaign is not stressing anything"
    );
    // With the default policy every entry point ends in an infallible
    // fallback, so typed errors should be the exception, not the rule.
    assert!(
        typed_errors * 10 <= CAMPAIGN_SEEDS as usize,
        "{typed_errors}/{CAMPAIGN_SEEDS} typed errors — recovery is failing too often"
    );
}

#[test]
fn campaign_outcomes_reproduce_from_seed() {
    for seed in 0..REPRO_SEEDS {
        let first = run_one(seed);
        let second = run_one(seed);
        assert_eq!(first, second, "seed {seed} is not reproducible");
    }
}
