//! Tests for the *limitations* the paper calls out — the implementation
//! must exhibit them, not paper over them.

use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::StagePlan;
use ipt_core::{Matrix, TileConfig, TileHeuristic};
use ipt_gpu::opts::{GpuOptions, Variant100};
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use ipt_gpu::pttwac100::Pttwac100;

/// §5.2 limitation 4: Sung's work-group-per-super-element kernel cannot run
/// when m exceeds the device's work-group limit (256 on AMD).
#[test]
fn sung_variant_infeasible_for_large_m_on_amd() {
    let dev = DeviceSpec::hd7750();
    let total = 4 * 3 * 300;
    let mut sim = Sim::new(dev, total + 64);
    let data = sim.alloc(total);
    let flags = sim.alloc(1);
    let k = Pttwac100 {
        data,
        flags,
        instances: 1,
        rows: 4,
        cols: 3,
        super_size: 300, // m = 300 > 256
        variant: Variant100::SungWorkGroup,
        wg_size: 0,
        fuse_tile: None,
        backoff: None,
    };
    assert!(sim.launch(&k).is_err(), "m=300 work-groups must not launch on AMD");
    // The warp-based variant handles the same m fine (§5.2.1 flexibility).
    let k = Pttwac100 { variant: Variant100::WarpLocalTile, wg_size: 256, ..k };
    sim.zero(flags);
    // flags needs 1 word for 12 super-elements → already allocated.
    let stats = sim.launch(&k).expect("warp variant is flexible");
    assert!(stats.time_s > 0.0);
}

/// §7.4: prime dimensions defeat the tiling and fall back to the
/// single-stage pass — correct but slow.
#[test]
fn prime_dimensions_fall_back_and_still_verify() {
    let (r, c) = (127, 61); // both prime
    assert!(TileHeuristic::default().select(r, c).is_none());
    let plan = ipt_core::full::plan_auto(r, c, ipt_core::Algorithm::ThreeStage, &TileHeuristic::default());
    assert_eq!(plan.name, "single-stage");
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    let mut sim = Sim::new(dev, r * c + plan_flag_words(&plan) + 64);
    let mut data = Matrix::iota(r, c).into_vec();
    // Verifies internally.
    let _ = transpose_on_device(&mut sim, &mut data, r, c, &plan, &opts).unwrap();
}

/// §4.1: the single-stage pass is several times slower than the staged
/// algorithm on the same matrix (paper: 1.5 vs ~7–20 GB/s).
#[test]
fn single_stage_gap_matches_paper_shape() {
    let (r, c) = (720, 180);
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    let bytes = (r * c * 4) as f64;
    let run = |plan: &StagePlan| {
        let mut sim = Sim::new(dev.clone(), r * c + plan_flag_words(plan) + 64);
        let mut data = Matrix::iota(r, c).into_vec();
        let stats = transpose_on_device(&mut sim, &mut data, r, c, plan, &opts).unwrap();
        stats.throughput_gbps(bytes)
    };
    let staged = run(&StagePlan::three_stage(r, c, TileConfig::new(60, 60)).unwrap());
    let single = run(&StagePlan::single_stage(r, c));
    assert!(
        staged > 4.0 * single,
        "staged {staged:.1} GB/s should be several times single-stage {single:.1} GB/s"
    );
}

/// Device out-of-memory is a real failure: the simulator refuses to
/// allocate past its capacity (this is the constraint that motivates
/// in-place transposition — an OOP transpose of the same matrix would not
/// fit).
#[test]
#[should_panic(expected = "device OOM")]
fn oop_does_not_fit_where_in_place_does() {
    let (r, c) = (360, 180);
    let plan = StagePlan::three_stage(r, c, TileConfig::new(60, 60)).unwrap();
    // Memory sized for in-place + flags only.
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), r * c + plan_flag_words(&plan) + 64);
    let _src = sim.alloc(r * c);
    let _flags = sim.alloc(plan_flag_words(&plan).max(1));
    // An out-of-place transpose would need a second matrix-sized buffer:
    let _dst = sim.alloc(r * c); // ← panics: device OOM
}

/// The coordination-bit overhead stays under 0.1 % for heuristic tiles
/// (Table 3's "≈0 %" GPU overhead row).
#[test]
fn coordination_overhead_below_paper_bound() {
    for &(r, c) in &[(1440usize, 360usize), (720, 180), (1020, 500)] {
        let tile = TileHeuristic::default()
            .select(r, c)
            .or_else(|| {
                TileHeuristic { preferred_lo: 30, preferred_hi: 90, ..Default::default() }
                    .select(r, c)
            })
            .unwrap();
        let plan = StagePlan::three_stage(r, c, tile).unwrap();
        let overhead = plan_flag_words(&plan) as f64 / (r * c) as f64;
        assert!(overhead < 0.001, "{r}x{c}: {:.3}%", overhead * 100.0);
    }
}
