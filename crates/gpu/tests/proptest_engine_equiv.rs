//! Property: the pooled parallel simulation engine is *observably
//! indistinguishable* from the serial round-robin engine.
//!
//! For random shapes and every kernel family the engines must produce
//! byte-identical memory images, bit-identical [`KernelStats`] (simulated
//! times, conflict counters, claim retries, chain cycles — no epsilon), and
//! identical Chrome-trace span trees; thread count (1, 2, N) must not be
//! observable either. Work-group-local kernels run concurrently as-is;
//! the cross-work-group `100!` family (all three variants, fused and
//! backoff paths included) runs **natively parallel** through the
//! two-phase control replay and must still agree bit for bit.

use gpu_sim::{
    DeviceSpec, EngineMode, FaultKind, FaultPlan, KernelStats, SchedPolicy, Sim, Watchdog,
};
use ipt_core::InstancedTranspose;
use ipt_gpu::bs::BsKernel;
use ipt_gpu::c2r::{C2rLinePass, C2rPassKind};
use ipt_gpu::coprime::{CoprimeColShuffle, CoprimeRowScramble};
use ipt_gpu::oop::OopTranspose;
use ipt_gpu::opts::{ClaimBackoff, FlagLayout, Variant100};
use ipt_gpu::pttwac010::Pttwac010;
use ipt_gpu::pttwac100::Pttwac100;
use ipt_obs::{chrome_trace_json, TraceRecorder};
use proptest::prelude::*;

/// Which kernel family the equivalence run drives.
#[derive(Debug, Clone, Copy)]
enum Fam {
    Bs,
    P010,
    CoprimeRow,
    CoprimeCol,
    C2rRotate,
    C2rRows,
    C2rCols,
    Oop,
    /// Cross-work-group claims, warp-local-tile variant: runs natively
    /// parallel through the control-replay engine.
    P100,
    /// `100!`, original Sung work-group-per-chain variant.
    P100Sung,
    /// `100!`, register-tiling variant.
    P100Reg,
    /// `100!` with fused per-super-element tile transposition.
    P100Fused,
    /// `100!` with claim-retry backoff (cooldown slices exercise the
    /// control twin's non-claiming path).
    P100Backoff,
}

const FAMS: [Fam; 13] = [
    Fam::Bs,
    Fam::P010,
    Fam::CoprimeRow,
    Fam::CoprimeCol,
    Fam::C2rRotate,
    Fam::C2rRows,
    Fam::C2rCols,
    Fam::Oop,
    Fam::P100,
    Fam::P100Sung,
    Fam::P100Reg,
    Fam::P100Fused,
    Fam::P100Backoff,
];

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 { a } else { gcd(b, a % b) }
}

fn is_p100(fam: Fam) -> bool {
    matches!(fam, Fam::P100 | Fam::P100Sung | Fam::P100Reg | Fam::P100Fused | Fam::P100Backoff)
}

/// `100!` kernel configuration for a family: (variant, wg_size, super_size,
/// fuse_tile, backoff). `sup` scales the super-element size per family so
/// the proptest sweeps genuine `super_size` diversity.
fn p100_cfg(
    fam: Fam,
    sup: usize,
) -> (Variant100, usize, usize, Option<(usize, usize)>, Option<ClaimBackoff>) {
    match fam {
        Fam::P100 => (Variant100::WarpLocalTile, 256, sup, None, None),
        Fam::P100Sung => (Variant100::SungWorkGroup, 0, sup, None, None),
        // Resolve against the K20's SIMD width: an unaligned `sup` legally
        // downgrades to local tiling, exactly like production launches.
        Fam::P100Reg => (Variant100::WarpRegTile.resolve(sup, 32), 256, sup, None, None),
        Fam::P100Fused => (Variant100::WarpLocalTile, 256, 2 * sup, Some((2, sup)), None),
        Fam::P100Backoff => {
            (Variant100::WarpLocalTile, 256, sup, None, Some(ClaimBackoff::mild(13)))
        }
        _ => unreachable!("not a 100! family"),
    }
}

/// Everything an engine run can leak: final memory, the full stats report,
/// and the rendered Chrome trace (span tree, counters, metadata).
struct Observed {
    mem: Vec<u32>,
    stats: KernelStats,
    trace: String,
}

/// One traced execution of `fam` on `rows × cols` under `engine`.
fn run_under(
    fam: Fam,
    rows: usize,
    cols: usize,
    instances: usize,
    sup: usize,
    engine: EngineMode,
) -> Observed {
    // Coprime stages need coprime dimensions; nudge cols until they are.
    let (rows, cols) = match fam {
        Fam::CoprimeRow | Fam::CoprimeCol => {
            let mut c = cols;
            while gcd(rows, c) != 1 {
                c += 1;
            }
            (rows, c)
        }
        _ => (rows, cols),
    };
    let super_size = if is_p100(fam) { p100_cfg(fam, sup).2 } else { 1 };
    let op = InstancedTranspose::new(instances, rows, cols, super_size);
    let flag_words = Pttwac100::flag_words(instances * rows * cols);
    let mut sim =
        Sim::new(DeviceSpec::tesla_k20(), 2 * op.total_len() + flag_words + 8);
    sim.set_engine_mode(engine);
    let data = sim.alloc(op.total_len());
    sim.upload_u32(data, &(0..op.total_len() as u32).collect::<Vec<_>>());
    let rec = TraceRecorder::new();
    let stats = match fam {
        Fam::Bs => {
            let k = BsKernel { data, instances, rows, cols, super_size, wg_size: 64 };
            sim.launch_rec(&k, &rec, 0.0).expect("bs launch")
        }
        Fam::P010 => {
            let k = Pttwac010 {
                data,
                instances,
                rows,
                cols,
                wg_size: 64,
                flags: FlagLayout::Packed,
                backoff: None,
            };
            sim.launch_rec(&k, &rec, 0.0).expect("010 launch")
        }
        Fam::CoprimeRow => {
            let k = CoprimeRowScramble::new(data, rows, cols, 64);
            sim.launch_rec(&k, &rec, 0.0).expect("coprime-row launch")
        }
        Fam::CoprimeCol => {
            let k = CoprimeColShuffle { data, rows, cols, wg_size: 64 };
            sim.launch_rec(&k, &rec, 0.0).expect("coprime-col launch")
        }
        Fam::C2rRotate | Fam::C2rRows | Fam::C2rCols => {
            // C2R passes are WgLocal whatever the gcd, so the parallel
            // engine must cover them natively — no shape nudging needed.
            let geom = ipt_core::C2rGeometry::new(rows, cols);
            let kind = match fam {
                Fam::C2rRotate => C2rPassKind::Rotate,
                Fam::C2rRows => C2rPassKind::RowShuffle,
                _ => C2rPassKind::ColShuffle,
            };
            let k = C2rLinePass::new(data, geom, kind, 64, &DeviceSpec::tesla_k20(), None);
            sim.launch_rec(&k, &rec, 0.0).expect("c2r launch")
        }
        Fam::Oop => {
            let dst = sim.alloc(op.total_len());
            let k = OopTranspose { src: data, dst, rows, cols };
            let stats = sim.launch_rec(&k, &rec, 0.0).expect("oop launch");
            // Observe the *destination* buffer for OOP.
            return Observed {
                mem: sim.download_u32(dst),
                stats,
                trace: chrome_trace_json(&rec),
            };
        }
        Fam::P100 | Fam::P100Sung | Fam::P100Reg | Fam::P100Fused | Fam::P100Backoff => {
            let (variant, wg_size, super_size, fuse_tile, backoff) = p100_cfg(fam, sup);
            let flags = sim.alloc(flag_words);
            sim.zero(flags);
            let k = Pttwac100 {
                data,
                flags,
                instances,
                rows,
                cols,
                super_size,
                variant,
                wg_size,
                fuse_tile,
                backoff,
            };
            sim.launch_rec(&k, &rec, 0.0).expect("100 launch")
        }
    };
    Observed { mem: sim.download_u32(data), stats, trace: chrome_trace_json(&rec) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole invariant: parallel engine ≡ serial engine, bit for bit,
    /// on every kernel family — memory, stats (incl. conflict counters,
    /// claim retries, and f64 chain cycles), and the whole trace. The
    /// `100!` families sweep variants × super_size × fusion × backoff
    /// through the control-replay engine.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial(
        rows in 2usize..16,
        cols in 2usize..16,
        instances in 1usize..6,
        sup in 1usize..6,
    ) {
        for fam in FAMS {
            // Coprime/OOP families ignore `instances` (single matrix);
            // the 100! families sweep it too (multi-instance claims).
            let inst = if matches!(fam, Fam::Bs | Fam::P010) || is_p100(fam) {
                instances
            } else {
                1
            };
            let serial = run_under(fam, rows, cols, inst, sup, EngineMode::Serial);
            let par =
                run_under(fam, rows, cols, inst, sup, EngineMode::Parallel { threads: 3 });
            prop_assert_eq!(
                &serial.mem, &par.mem,
                "{:?} {}x{}x{} sup={}: memory diverged", fam, inst, rows, cols, sup
            );
            prop_assert_eq!(
                &serial.stats, &par.stats,
                "{:?} {}x{}x{} sup={}: stats diverged", fam, inst, rows, cols, sup
            );
            prop_assert_eq!(
                &serial.trace, &par.trace,
                "{:?} {}x{}x{} sup={}: trace diverged", fam, inst, rows, cols, sup
            );
        }
    }

    /// Satellite invariant: the worker-thread count is unobservable —
    /// 1, 2, and N threads produce byte-identical memory, stats, and
    /// Chrome-trace span trees, for a WgLocal family and a CrossWgClaims
    /// family alike.
    #[test]
    fn thread_count_is_unobservable(
        rows in 2usize..14,
        cols in 2usize..14,
        instances in 2usize..8,
    ) {
        for fam in [Fam::Bs, Fam::P100Backoff] {
            let base =
                run_under(fam, rows, cols, instances, 3, EngineMode::Parallel { threads: 1 });
            for threads in [2usize, 7] {
                let other = run_under(
                    fam, rows, cols, instances, 3, EngineMode::Parallel { threads },
                );
                prop_assert_eq!(&base.mem, &other.mem, "{:?} threads={} memory", fam, threads);
                prop_assert_eq!(&base.stats, &other.stats, "{:?} threads={} stats", fam, threads);
                prop_assert_eq!(&base.trace, &other.trace, "{:?} threads={} trace", fam, threads);
            }
        }
    }
}

/// Which ineligibility feature a fallback run arms.
#[derive(Debug, Clone, Copy)]
enum Ineligible {
    PctScheduler,
    FaultPlan,
    Watchdog,
}

/// One `100!` execution (warp-local-tile, backoff armed — the newly
/// parallel-eligible configuration) with `feature` armed under `engine`.
fn run_p100_ineligible(feature: Ineligible, engine: EngineMode) -> Observed {
    let (instances, rows, cols, super_size) = (2usize, 9usize, 7usize, 4usize);
    let op = InstancedTranspose::new(instances, rows, cols, super_size);
    let flag_words = Pttwac100::flag_words(instances * rows * cols);
    let mut sim = Sim::new(DeviceSpec::tesla_k20(), 2 * op.total_len() + flag_words + 8);
    sim.set_engine_mode(engine);
    match feature {
        Ineligible::PctScheduler => sim.set_sched_policy(SchedPolicy::Pct { seed: 42, depth: 3 }),
        // Tamper with a global atomic mid-claim: outcome-visible, non-fatal.
        Ineligible::FaultPlan => {
            sim.set_fault_plan(FaultPlan::exact(7, FaultKind::DropGlobalAtomic, 3, 0));
        }
        Ineligible::Watchdog => sim.set_watchdog(Some(Watchdog::new(1 << 20, 1 << 30))),
    }
    let data = sim.alloc(op.total_len());
    sim.upload_u32(data, &(0..op.total_len() as u32).collect::<Vec<_>>());
    let flags = sim.alloc(flag_words);
    sim.zero(flags);
    let rec = TraceRecorder::new();
    let k = Pttwac100 {
        data,
        flags,
        instances,
        rows,
        cols,
        super_size,
        variant: Variant100::WarpLocalTile,
        wg_size: 256,
        fuse_tile: None,
        backoff: Some(ClaimBackoff::mild(5)),
    };
    let stats = sim.launch_rec(&k, &rec, 0.0).expect("100 launch");
    Observed { mem: sim.download_u32(data), stats, trace: chrome_trace_json(&rec) }
}

/// Satellite pin: a launch made ineligible by a PCT scheduler, an armed
/// fault plan, or a watchdog silently runs serial under
/// `EngineMode::Parallel` and stays bit-identical to an explicit serial
/// launch with the same feature armed — specifically for the `100!`
/// kernels the parallel engine newly covers. (If the gate ever let such a
/// launch onto the pooled engine, the PCT schedule and the fault injection
/// would not apply and the observations would diverge.)
#[test]
fn ineligible_crosswg_claims_launches_fall_back_to_serial() {
    for feature in [Ineligible::PctScheduler, Ineligible::FaultPlan, Ineligible::Watchdog] {
        let serial = run_p100_ineligible(feature, EngineMode::Serial);
        let par = run_p100_ineligible(feature, EngineMode::Parallel { threads: 4 });
        assert_eq!(serial.mem, par.mem, "{feature:?}: memory diverged");
        assert_eq!(serial.stats, par.stats, "{feature:?}: stats diverged");
        assert_eq!(serial.trace, par.trace, "{feature:?}: trace diverged");
    }
}
