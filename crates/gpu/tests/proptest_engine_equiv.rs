//! Property: the pooled parallel simulation engine is *observably
//! indistinguishable* from the serial round-robin engine.
//!
//! For random shapes and every work-group-local kernel family the engines
//! must produce byte-identical memory images, bit-identical
//! [`KernelStats`] (simulated times, conflict counters, chain cycles — no
//! epsilon), and identical Chrome-trace span trees; thread count (1, 2, N)
//! must not be observable either. Cross-work-group kernels (`100!`) must
//! silently fall back to the serial engine and still agree.

use gpu_sim::{DeviceSpec, EngineMode, KernelStats, Sim};
use ipt_core::InstancedTranspose;
use ipt_gpu::bs::BsKernel;
use ipt_gpu::c2r::{C2rLinePass, C2rPassKind};
use ipt_gpu::coprime::{CoprimeColShuffle, CoprimeRowScramble};
use ipt_gpu::oop::OopTranspose;
use ipt_gpu::opts::{FlagLayout, Variant100};
use ipt_gpu::pttwac010::Pttwac010;
use ipt_gpu::pttwac100::Pttwac100;
use ipt_obs::{chrome_trace_json, TraceRecorder};
use proptest::prelude::*;

/// Which kernel family the equivalence run drives.
#[derive(Debug, Clone, Copy)]
enum Fam {
    Bs,
    P010,
    CoprimeRow,
    CoprimeCol,
    C2rRotate,
    C2rRows,
    C2rCols,
    Oop,
    /// Cross-work-group: must *fall back* to serial under a parallel
    /// request, so both runs take the identical code path.
    P100,
}

const FAMS: [Fam; 9] = [
    Fam::Bs,
    Fam::P010,
    Fam::CoprimeRow,
    Fam::CoprimeCol,
    Fam::C2rRotate,
    Fam::C2rRows,
    Fam::C2rCols,
    Fam::Oop,
    Fam::P100,
];

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 { a } else { gcd(b, a % b) }
}

/// Everything an engine run can leak: final memory, the full stats report,
/// and the rendered Chrome trace (span tree, counters, metadata).
struct Observed {
    mem: Vec<u32>,
    stats: KernelStats,
    trace: String,
}

/// One traced execution of `fam` on `rows × cols` under `engine`.
fn run_under(fam: Fam, rows: usize, cols: usize, instances: usize, engine: EngineMode) -> Observed {
    // Coprime stages need coprime dimensions; nudge cols until they are.
    let (rows, cols) = match fam {
        Fam::CoprimeRow | Fam::CoprimeCol => {
            let mut c = cols;
            while gcd(rows, c) != 1 {
                c += 1;
            }
            (rows, c)
        }
        _ => (rows, cols),
    };
    let super_size = if matches!(fam, Fam::P100) { 2 } else { 1 };
    let op = InstancedTranspose::new(instances, rows, cols, super_size);
    let flag_words = Pttwac100::flag_words(rows * cols);
    let mut sim =
        Sim::new(DeviceSpec::tesla_k20(), 2 * op.total_len() + flag_words + 8);
    sim.set_engine_mode(engine);
    let data = sim.alloc(op.total_len());
    sim.upload_u32(data, &(0..op.total_len() as u32).collect::<Vec<_>>());
    let rec = TraceRecorder::new();
    let stats = match fam {
        Fam::Bs => {
            let k = BsKernel { data, instances, rows, cols, super_size, wg_size: 64 };
            sim.launch_rec(&k, &rec, 0.0).expect("bs launch")
        }
        Fam::P010 => {
            let k = Pttwac010 {
                data,
                instances,
                rows,
                cols,
                wg_size: 64,
                flags: FlagLayout::Packed,
                backoff: None,
            };
            sim.launch_rec(&k, &rec, 0.0).expect("010 launch")
        }
        Fam::CoprimeRow => {
            let k = CoprimeRowScramble::new(data, rows, cols, 64);
            sim.launch_rec(&k, &rec, 0.0).expect("coprime-row launch")
        }
        Fam::CoprimeCol => {
            let k = CoprimeColShuffle { data, rows, cols, wg_size: 64 };
            sim.launch_rec(&k, &rec, 0.0).expect("coprime-col launch")
        }
        Fam::C2rRotate | Fam::C2rRows | Fam::C2rCols => {
            // C2R passes are WgLocal whatever the gcd, so the parallel
            // engine must cover them natively — no shape nudging needed.
            let geom = ipt_core::C2rGeometry::new(rows, cols);
            let kind = match fam {
                Fam::C2rRotate => C2rPassKind::Rotate,
                Fam::C2rRows => C2rPassKind::RowShuffle,
                _ => C2rPassKind::ColShuffle,
            };
            let k = C2rLinePass::new(data, geom, kind, 64, &DeviceSpec::tesla_k20(), None);
            sim.launch_rec(&k, &rec, 0.0).expect("c2r launch")
        }
        Fam::Oop => {
            let dst = sim.alloc(op.total_len());
            let k = OopTranspose { src: data, dst, rows, cols };
            let stats = sim.launch_rec(&k, &rec, 0.0).expect("oop launch");
            // Observe the *destination* buffer for OOP.
            return Observed {
                mem: sim.download_u32(dst),
                stats,
                trace: chrome_trace_json(&rec),
            };
        }
        Fam::P100 => {
            let flags = sim.alloc(flag_words);
            sim.zero(flags);
            let k = Pttwac100 {
                data,
                flags,
                instances,
                rows,
                cols,
                super_size,
                variant: Variant100::WarpLocalTile,
                wg_size: 256,
                fuse_tile: None,
                backoff: None,
            };
            sim.launch_rec(&k, &rec, 0.0).expect("100 launch")
        }
    };
    Observed { mem: sim.download_u32(data), stats, trace: chrome_trace_json(&rec) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole invariant: parallel engine ≡ serial engine, bit for bit,
    /// on every kernel family — memory, stats (incl. conflict counters
    /// and f64 chain cycles), and the whole trace.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial(
        rows in 2usize..16,
        cols in 2usize..16,
        instances in 1usize..6,
    ) {
        for fam in FAMS {
            // Coprime/OOP families ignore `instances` (single matrix).
            let inst = if matches!(fam, Fam::Bs | Fam::P010) { instances } else { 1 };
            let serial = run_under(fam, rows, cols, inst, EngineMode::Serial);
            let par = run_under(fam, rows, cols, inst, EngineMode::Parallel { threads: 3 });
            prop_assert_eq!(
                &serial.mem, &par.mem,
                "{:?} {}x{}x{}: memory diverged", fam, inst, rows, cols
            );
            prop_assert_eq!(
                &serial.stats, &par.stats,
                "{:?} {}x{}x{}: stats diverged", fam, inst, rows, cols
            );
            prop_assert_eq!(
                &serial.trace, &par.trace,
                "{:?} {}x{}x{}: trace diverged", fam, inst, rows, cols
            );
        }
    }

    /// Satellite invariant: the worker-thread count is unobservable —
    /// 1, 2, and N threads produce byte-identical memory, stats, and
    /// Chrome-trace span trees.
    #[test]
    fn thread_count_is_unobservable(
        rows in 2usize..14,
        cols in 2usize..14,
        instances in 2usize..8,
    ) {
        let base = run_under(Fam::Bs, rows, cols, instances, EngineMode::Parallel { threads: 1 });
        for threads in [2usize, 7] {
            let other = run_under(
                Fam::Bs, rows, cols, instances, EngineMode::Parallel { threads },
            );
            prop_assert_eq!(&base.mem, &other.mem, "threads={} memory", threads);
            prop_assert_eq!(&base.stats, &other.stats, "threads={} stats", threads);
            prop_assert_eq!(&base.trace, &other.trace, "threads={} trace", threads);
        }
    }
}
