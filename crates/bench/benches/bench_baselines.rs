//! Criterion benchmarks for the Table-3 CPU comparators (real wall-clock on
//! the host — absolute numbers depend on the machine; the ordering
//! out-of-place ≥ GKK in-place ≫ sequential in-place is the reproduced
//! shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipt_baselines::{
    transpose_in_place_gkk, transpose_in_place_pipt, transpose_in_place_seq, transpose_oop_par,
};
use ipt_core::Matrix;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu-baselines");
    g.sample_size(10);
    let (r, cl) = (1440usize, 360usize);
    let bytes = (r * cl * 4) as u64;
    g.throughput(Throughput::Bytes(2 * bytes));
    let m = Matrix::pattern_f32(r, cl);
    let threads = rayon::current_num_threads();

    g.bench_function(BenchmarkId::new("oop-parallel", format!("{r}x{cl}")), |b| {
        b.iter(|| black_box(transpose_oop_par(&m).len()));
    });
    g.bench_function(BenchmarkId::new("gkk-in-place", format!("{r}x{cl}")), |b| {
        b.iter_batched(
            || m.clone(),
            |x| black_box(transpose_in_place_gkk(x, threads).len()),
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::new("pipt-in-place", format!("{r}x{cl}")), |b| {
        b.iter_batched(
            || m.clone(),
            |x| black_box(transpose_in_place_pipt(x).len()),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();

    // The sequential Windley walker is minutes-slow at 1440×360; bench it
    // on a smaller matrix so the suite stays runnable.
    let mut g = c.benchmark_group("cpu-baselines-slow");
    g.sample_size(10);
    let small = Matrix::pattern_f32(360, 90);
    g.throughput(Throughput::Bytes(2 * 360 * 90 * 4));
    g.bench_function("seq-in-place/360x90", |b| {
        b.iter_batched(
            || small.clone(),
            |x| black_box(transpose_in_place_seq(x).len()),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
