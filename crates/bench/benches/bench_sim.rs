//! Criterion benchmarks of the simulation *engine* itself — serial
//! round-robin vs the pooled parallel engine on the `repro simperf`
//! workload set.
//!
//! Criterion's wall-clock here is simulator speed (an engineering metric,
//! never a checked baseline — CI uploads the criterion output as an
//! artifact instead). The regression gate lives in `repro simperf --check`
//! which routes wall numbers through the wide `wall_*` channel.
//!
//! Pin `RAYON_NUM_THREADS` when comparing runs: the parallel engine sizes
//! its worker pool from it (falling back to the host's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{DeviceSpec, EngineMode, Sim};
use ipt_bench::workloads::Scale;
use ipt_core::InstancedTranspose;
use ipt_gpu::bs::BsKernel;
use ipt_gpu::opts::FlagLayout;
use ipt_gpu::pttwac010::Pttwac010;
use std::hint::black_box;

/// One BS launch (512 tiles of 32×32) under `engine`, fresh sim each call.
fn run_bs(dev: &DeviceSpec, engine: EngineMode) -> f64 {
    let (instances, rows, cols) = (512, 32, 32);
    let op = InstancedTranspose::new(instances, rows, cols, 1);
    let mut sim = Sim::new(dev.clone(), op.total_len() + 64);
    sim.set_engine_mode(engine);
    let data = sim.alloc(op.total_len());
    sim.upload_u32(data, &(0..op.total_len() as u32).collect::<Vec<_>>());
    let k = BsKernel { data, instances, rows, cols, super_size: 1, wg_size: 256 };
    sim.launch(&k).expect("bs launch").time_s
}

/// One 010! launch (256 tiles of 32×32) under `engine`, fresh sim each call.
fn run_010(dev: &DeviceSpec, engine: EngineMode) -> f64 {
    let (instances, rows, cols) = (256, 32, 32);
    let op = InstancedTranspose::new(instances, rows, cols, 1);
    let mut sim = Sim::new(dev.clone(), op.total_len() + 64);
    sim.set_engine_mode(engine);
    let data = sim.alloc(op.total_len());
    sim.upload_u32(data, &(0..op.total_len() as u32).collect::<Vec<_>>());
    let k = Pttwac010 {
        data,
        instances,
        rows,
        cols,
        wg_size: 256,
        flags: FlagLayout::SpreadPadded { factor: 8 },
        backoff: None,
    };
    sim.launch(&k).expect("010 launch").time_s
}

fn bench_engines(c: &mut Criterion) {
    let dev = DeviceSpec::tesla_k20();
    let parallel = EngineMode::parallel_auto();
    println!(
        "engine: parallel pool uses {} worker threads (RAYON_NUM_THREADS to pin)",
        parallel.resolved_threads()
    );
    let mut g = c.benchmark_group("sim-engine");
    g.sample_size(10);
    for (name, engine) in [("serial", EngineMode::Serial), ("parallel", parallel)] {
        g.bench_function(BenchmarkId::new("bs-512x32x32", name), |b| {
            b.iter(|| black_box(run_bs(&dev, engine)));
        });
        g.bench_function(BenchmarkId::new("010-256x32x32", name), |b| {
            b.iter(|| black_box(run_010(&dev, engine)));
        });
    }
    g.finish();
}

fn bench_simperf_set(c: &mut Criterion) {
    // The full `repro simperf` reduced pipeline (both engines + the
    // bit-identity assertion), so criterion history tracks the same code
    // path the CI gate runs.
    let dev = DeviceSpec::tesla_k20();
    let mut g = c.benchmark_group("simperf-pipeline");
    g.sample_size(10);
    g.bench_function("reduced", |b| {
        b.iter(|| {
            let (rows, summary) =
                ipt_bench::experiments::simperf::run(&dev, Scale::Reduced);
            black_box((rows.len(), summary.wall_gain_x))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_engines, bench_simperf_set);
criterion_main!(benches);
