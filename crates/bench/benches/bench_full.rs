//! Criterion benchmarks of the full staged pipelines on the simulator
//! (Table-2 regeneration lives in `repro table2`; this tracks simulator
//! cost and prints the simulated GB/s per algorithm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{DeviceSpec, Sim};
use ipt_bench::experiments::table2::{tile3_for, tile4_for};
use ipt_bench::workloads::Scale;
use ipt_core::stages::StagePlan;
use ipt_core::Matrix;
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use std::hint::black_box;

fn run_once(dev: &DeviceSpec, r: usize, c: usize, plan: &StagePlan) -> f64 {
    let opts = GpuOptions::tuned_for(dev);
    let mut sim = Sim::new(dev.clone(), r * c + plan_flag_words(plan) + 64);
    let mut data = Matrix::iota(r, c).into_vec();
    let stats = transpose_on_device(&mut sim, &mut data, r, c, plan, &opts).expect("plan runs");
    stats.throughput_gbps((r * c * 4) as f64)
}

fn bench_pipelines(c: &mut Criterion) {
    let dev = DeviceSpec::tesla_k20();
    let (r, cl) = (1440usize, 360usize);
    let mut g = c.benchmark_group("sim-full-transpose");
    g.sample_size(10);
    let t3 = tile3_for(r, cl, Scale::Reduced);
    let t4 = tile4_for(r, cl);
    for (name, plan) in [
        ("3-stage", StagePlan::three_stage(r, cl, t3).unwrap()),
        ("4-stage", StagePlan::four_stage(r, cl, t4).unwrap()),
        ("4-stage-fused", StagePlan::four_stage_fused(r, cl, t4).unwrap()),
    ] {
        println!("sim: {name}: {:.2} GB/s on {}", run_once(&dev, r, cl, &plan), dev.name);
        g.bench_function(BenchmarkId::new("k20-1440x360", name), |b| {
            b.iter(|| black_box(run_once(&dev, r, cl, &plan)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
