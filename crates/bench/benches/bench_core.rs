//! Criterion benchmarks for the host-side core: cycle mathematics and the
//! elementary / staged in-place transposition engines (real wall-clock, not
//! simulated time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipt_core::full::{plan_auto, Algorithm};
use ipt_core::{Matrix, TileHeuristic, TransposePerm};
use std::hint::black_box;

fn bench_cycle_math(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle-math");
    for &(r, cl) in &[(720usize, 180usize), (1440, 360)] {
        let perm = TransposePerm::new(r, cl);
        g.bench_with_input(BenchmarkId::new("cycle_count", format!("{r}x{cl}")), &perm, |b, p| {
            b.iter(|| black_box(p.cycle_count()));
        });
        g.bench_with_input(BenchmarkId::new("leaders", format!("{r}x{cl}")), &perm, |b, p| {
            b.iter(|| {
                black_box(ipt_core::elementary::parallel::find_cycle_leaders(p).len())
            });
        });
    }
    g.finish();
}

fn bench_plans(c: &mut Criterion) {
    let mut g = c.benchmark_group("staged-transpose-cpu");
    g.sample_size(10);
    let (r, cl) = (1440usize, 360usize);
    let bytes = (r * cl * 4) as u64;
    g.throughput(Throughput::Bytes(2 * bytes));
    let m = Matrix::pattern_f32(r, cl);
    for algo in [Algorithm::ThreeStage, Algorithm::FourStage, Algorithm::FourStageFused] {
        let plan = plan_auto(r, cl, algo, &TileHeuristic::default());
        g.bench_function(BenchmarkId::new("seq", algo.name()), |b| {
            b.iter_batched(
                || m.as_slice().to_vec(),
                |mut data| {
                    plan.execute_seq(&mut data);
                    black_box(data.len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_function(BenchmarkId::new("par", algo.name()), |b| {
            b.iter_batched(
                || m.as_slice().to_vec(),
                |mut data| {
                    plan.execute_par(&mut data);
                    black_box(data.len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cycle_math, bench_plans);
criterion_main!(benches);
