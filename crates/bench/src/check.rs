//! The regression harness behind `repro --check`.
//!
//! A check compares a freshly measured [`BenchReport`] against the committed
//! baseline JSON for the same experiment. Only the `rows` subtree is
//! compared — provenance carries device constants such as `peak_gbps` that
//! are configuration, not measurement. The simulator is deterministic, so a
//! clean tree reproduces the baseline exactly; the tolerance exists for the
//! day the cost model legitimately moves and for real-hardware backends.

use ipt_obs::{
    compare_metrics, current_git_rev, extract_metrics, BenchReport, Metric, Provenance,
    Regression, SCHEMA_VERSION,
};
use serde::{Serialize, Value};

/// Default relative tolerance for `repro --check` (10 %).
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Wrap experiment rows in the versioned envelope with this run's
/// provenance (direct heuristic planning).
pub fn make_report(
    experiment: &str,
    device: &gpu_sim::DeviceSpec,
    scale: &str,
    rows: &impl Serialize,
) -> BenchReport {
    make_report_scheme(experiment, device, scale, "heuristic", rows)
}

/// [`make_report`] with explicit planning-scheme provenance (e.g.
/// `"plan-cache"` for the serving layer, or a short-circuit scheme name).
pub fn make_report_scheme(
    experiment: &str,
    device: &gpu_sim::DeviceSpec,
    scale: &str,
    scheme: &str,
    rows: &impl Serialize,
) -> BenchReport {
    BenchReport::new(
        experiment,
        Provenance {
            git_rev: current_git_rev(),
            device: device.to_value(),
            seed: 0,
            scale: scale.to_string(),
            schedule: "round-robin".to_string(),
            scheme: scheme.to_string(),
        },
        rows,
    )
}

/// The result of checking one experiment.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Experiment name.
    pub experiment: String,
    /// How many baseline metrics were compared.
    pub metrics_compared: usize,
    /// Every metric that regressed past the tolerance.
    pub regressions: Vec<Regression>,
}

impl CheckOutcome {
    /// Did the experiment pass?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare a fresh report against the committed baseline JSON.
///
/// `inject_slowdown_pct` scales every fresh throughput metric down by that
/// percentage before comparing — the self-test hook proving the harness
/// actually fails when performance drops (a harness that cannot fail
/// verifies nothing).
///
/// # Errors
///
/// Returns a description when the baseline is unparsable, unversioned, has
/// a mismatched schema version, names a different experiment, or was
/// generated on different simulated hardware.
pub fn check_report(
    baseline_json: &str,
    fresh: &BenchReport,
    tolerance: f64,
    inject_slowdown_pct: f64,
) -> Result<CheckOutcome, String> {
    let baseline = serde_json::from_str(baseline_json)
        .map_err(|e| format!("baseline for {:?} is not valid JSON: {e:?}", fresh.experiment))?;
    let version = baseline.get("schema_version").and_then(Value::as_u64);
    if version != Some(SCHEMA_VERSION) {
        return Err(format!(
            "baseline for {:?} has schema_version {version:?}, expected {SCHEMA_VERSION}; \
             regenerate with `repro all --json bench_out`",
            fresh.experiment
        ));
    }
    let name = baseline.get("experiment").and_then(Value::as_str);
    if name != Some(&fresh.experiment) {
        return Err(format!(
            "baseline names experiment {name:?}, fresh run is {:?}",
            fresh.experiment
        ));
    }
    let base_dev = baseline
        .get("provenance")
        .and_then(|p| p.get("device"))
        .and_then(|d| d.get("name"))
        .and_then(Value::as_str);
    let fresh_dev = fresh.provenance.device.get("name").and_then(Value::as_str);
    if base_dev != fresh_dev {
        return Err(format!(
            "baseline for {:?} was generated on {base_dev:?}, this run simulates {fresh_dev:?}",
            fresh.experiment
        ));
    }

    let base_rows = baseline
        .get("rows")
        .ok_or_else(|| format!("baseline for {:?} has no rows", fresh.experiment))?;
    let base_metrics = extract_metrics(base_rows);
    let mut fresh_metrics = extract_metrics(&fresh.rows);
    if inject_slowdown_pct != 0.0 {
        let factor = 1.0 - inject_slowdown_pct / 100.0;
        for m in &mut fresh_metrics {
            m.value *= factor;
        }
    }
    Ok(CheckOutcome {
        experiment: fresh.experiment.clone(),
        metrics_compared: base_metrics.len(),
        regressions: compare_metrics(&base_metrics, &fresh_metrics, tolerance),
    })
}

/// Extracted fresh metrics of a report's rows (diagnostics / tests).
#[must_use]
pub fn report_metrics(report: &BenchReport) -> Vec<Metric> {
    extract_metrics(&report.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        input: String,
        gbps: f64,
    }

    fn fresh() -> BenchReport {
        let rows = vec![
            Row { input: "1440x600".into(), gbps: 41.5 },
            Row { input: "2400x360".into(), gbps: 38.2 },
        ];
        make_report("table2", &DeviceSpec::tesla_k20(), "reduced", &rows)
    }

    #[test]
    fn clean_self_comparison_passes() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let out = check_report(&baseline, &rep, DEFAULT_TOLERANCE, 0.0).unwrap();
        assert_eq!(out.metrics_compared, 2);
        assert!(out.passed(), "identical reports must not regress: {:?}", out.regressions);
    }

    #[test]
    fn synthetic_twenty_percent_slowdown_fails() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let out = check_report(&baseline, &rep, DEFAULT_TOLERANCE, 20.0).unwrap();
        assert!(!out.passed(), "a 20% slowdown must trip a 10% tolerance");
        assert_eq!(out.regressions.len(), 2, "every throughput metric slowed down");
        for r in &out.regressions {
            assert!((r.change - (-0.2)).abs() < 1e-9, "{r}");
        }
    }

    #[test]
    fn unversioned_baseline_is_rejected() {
        let err = check_report("[{\"gbps\": 10.0}]", &fresh(), DEFAULT_TOLERANCE, 0.0)
            .unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn device_mismatch_is_rejected() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let other = make_report("table2", &DeviceSpec::hd7750(), "reduced", &Vec::<Row>::new());
        let err = check_report(&baseline, &other, DEFAULT_TOLERANCE, 0.0).unwrap_err();
        assert!(err.contains("simulates"), "{err}");
    }

    #[test]
    fn experiment_mismatch_is_rejected() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let other = make_report("fig6", &DeviceSpec::tesla_k20(), "reduced", &Vec::<Row>::new());
        let err = check_report(&baseline, &other, DEFAULT_TOLERANCE, 0.0).unwrap_err();
        assert!(err.contains("experiment"), "{err}");
    }

    #[test]
    fn provenance_device_constants_are_not_metrics() {
        // DeviceSpec carries `peak_gbps`/`bandwidth_gbps`; they must not be
        // compared as measurements.
        let rep = fresh();
        let paths: Vec<String> = report_metrics(&rep).into_iter().map(|m| m.path).collect();
        assert_eq!(paths, vec!["0/gbps", "1/gbps"]);
    }
}
